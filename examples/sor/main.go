// SOR side by side: runs red-black successive over-relaxation under both
// paradigms at 1..8 processors and prints the speedups, message counts,
// and data volumes — a miniature of the paper's Figure 2/3 plus Table 2
// rows, demonstrating the 5x message ratio and the SOR-Zero diff effect.
//
// Run with:
//
//	go run ./examples/sor
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/sor"
	"repro/internal/core"
)

func main() {
	for _, zero := range []bool{true, false} {
		cfg := sor.Small(zero)
		cfg.M = 512
		cfg.Sweeps = 10
		name := "SOR-Zero"
		if !zero {
			name = "SOR-Nonzero"
		}
		seq, _, err := sor.RunSeq(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%dx%d, %d sweeps): sequential %.2fs\n",
			name, cfg.M, cfg.N, cfg.Sweeps, seq.Time.Seconds())
		fmt.Printf("%6s  %22s  %22s\n", "procs", "TreadMarks (sp/msgs/KB)", "PVM (sp/msgs/KB)")
		for _, n := range []int{1, 2, 4, 8} {
			tres, _, err := sor.RunTMK(cfg, core.Default(n))
			if err != nil {
				log.Fatal(err)
			}
			pres, _, err := sor.RunPVM(cfg, core.Default(n))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%6d  %7.2f %6d %7.0f  %7.2f %6d %7.0f\n", n,
				seq.Time.Seconds()/tres.Time.Seconds(), tres.Net.Messages, tres.Net.Kilobytes(),
				seq.Time.Seconds()/pres.Time.Seconds(), pres.Net.Messages, pres.Net.Kilobytes())
		}
		fmt.Println()
	}
	fmt.Println("Note how SOR-Zero's TreadMarks column ships *less* data than")
	fmt.Println("PVM (diffs of mostly-zero pages are tiny) while still sending")
	fmt.Println("about five times as many messages (barrier + diff requests).")
}
