// Quickstart: the same tiny program — four processors cooperatively
// incrementing a shared counter and exchanging a vector — written twice,
// once against the TreadMarks DSM API and once against the PVM
// message-passing API, on the simulated 100 Mbit/s FDDI cluster.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
)

const nprocs = 4

func main() {
	runDSM()
	runMessagePassing()
}

// runDSM is the shared-memory version: ordinary reads and writes plus
// locks and barriers.  The DSM moves the data.
func runDSM() {
	cfg := core.Default(nprocs)
	var counter, vec tmk.Addr
	res, err := core.RunTMK(cfg,
		func(sys *tmk.System) {
			counter = sys.Malloc(8)
			vec = sys.Malloc(8 * nprocs)
		},
		func(p *tmk.Proc) {
			// Every processor bumps the shared counter under a lock...
			p.LockAcquire(0)
			p.WriteI64(counter, p.ReadI64(counter)+1)
			p.LockRelease(0)
			// ...writes its slot of a shared vector...
			p.WriteF64(vec+tmk.Addr(8*p.ID()), float64(p.ID()*p.ID()))
			p.Barrier(0)
			// ...and reads everyone else's slots after the barrier.
			sum := 0.0
			arr := p.F64Array(vec, nprocs)
			for i := 0; i < nprocs; i++ {
				sum += arr.At(i)
			}
			if p.ID() == 0 {
				fmt.Printf("[tmk] counter=%d vector-sum=%.0f\n", p.ReadI64(counter), sum)
			}
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[tmk] modeled time %v, %d wire messages, %.1f KB\n\n",
		res.Time, res.Net.Messages, res.Net.Kilobytes())
}

// runMessagePassing is the same program with explicit pack/send/receive:
// the programmer moves the data.
func runMessagePassing() {
	cfg := core.Default(nprocs)
	res, err := core.RunPVM(cfg, nil, func(p *pvm.Proc) {
		if p.ID() == 0 {
			counter := int64(1) // proc 0's own increment
			sum := 0.0
			for src := 1; src < p.N(); src++ {
				r := p.Recv(src, 1)
				counter += r.UnpackOneInt64()
				sum += r.UnpackOneFloat64()
			}
			fmt.Printf("[pvm] counter=%d vector-sum=%.0f\n", counter, sum)
			return
		}
		p.Compute(10 * sim.Microsecond) // some local work
		b := p.InitSend()
		b.PackOneInt64(1)
		b.PackOneFloat64(float64(p.ID() * p.ID()))
		p.Send(0, 1)
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[pvm] modeled time %v, %d user messages, %.1f KB\n",
		res.Time, res.Net.Messages, res.Net.Kilobytes())
}
