// TSP under both paradigms: solves a traveling salesman instance with
// branch and bound, comparing the shared-structure TreadMarks version
// (tour pool, priority queue, and stack all migrate between processors)
// against the PVM master/slave version (one process owns everything).
//
// Run with:
//
//	go run ./examples/tsp [-cities n]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps/tsp"
	"repro/internal/core"
)

func main() {
	cities := flag.Int("cities", 14, "number of cities")
	flag.Parse()

	cfg := tsp.Paper()
	cfg.Cities = *cities
	cfg.Threshold = *cities - 4 // the solver gets all but 4-city prefixes

	seq, out, err := tsp.RunSeq(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TSP: %d cities, optimal tour length %d, sequential %.2fs\n\n",
		cfg.Cities, out.Best, seq.Time.Seconds())

	fmt.Printf("%6s  %28s  %28s\n", "procs", "TreadMarks (sp/msgs/faults)", "PVM master-slave (sp/msgs)")
	for _, n := range []int{1, 2, 4, 8} {
		tres, tout, err := tsp.RunTMK(cfg, core.Default(n))
		if err != nil {
			log.Fatal(err)
		}
		pres, pout, err := tsp.RunPVM(cfg, core.Default(n))
		if err != nil {
			log.Fatal(err)
		}
		if tout.Best != out.Best || pout.Best != out.Best {
			log.Fatalf("optimum mismatch: seq %d tmk %d pvm %d", out.Best, tout.Best, pout.Best)
		}
		fmt.Printf("%6d  %10.2f %8d %8d  %13.2f %8d   lock-wait %4.0f%%\n", n,
			seq.Time.Seconds()/tres.Time.Seconds(), tres.Net.Messages, tres.Faults,
			seq.Time.Seconds()/pres.Time.Seconds(), pres.Net.Messages,
			100*tres.LockWait.Seconds()/(tres.Time.Seconds()*float64(n)))
	}
	fmt.Println("\nAll versions find the same optimum; the TreadMarks version")
	fmt.Println("pays page faults and diff accumulation every time the shared")
	fmt.Println("tour structures migrate to another processor.")
}
