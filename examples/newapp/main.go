// Porting template: how to take your own kernel — here a blocked
// matrix-vector iteration — and register it as a core.App, the way the
// nine paper applications are registered under internal/apps.  One App
// implementation gives you every backend (sequential, TreadMarks, PVM,
// and derived variants) and every scenario (processor counts, page
// sizes, link speeds) for free: the experiment surface is data.
//
// The recipe:
//
//  1. Put the per-run configuration in a struct and embed it in an app
//     type that will also carry the outputs.
//  2. Seq: the plain sequential kernel charging model time (ctx.Compute).
//  3. SetupTMK/TMK: put the data other processors must see in shared
//     memory (Malloc + Init*), express synchronization as locks and
//     barriers, and let the DSM move the data.
//  4. SetupPVM/PVM (+ Master for master/slave apps): keep everything
//     private, and pack/send exactly what each process needs.
//  5. Check: compare the parallel output against the sequential run.
//
// Run with:
//
//	go run ./examples/newapp
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
)

const (
	size  = 1024 // matrix dimension
	iters = 4
	// Per multiply-add on the modeled 1995 workstation.
	flopCost = 100 * sim.Nanosecond
)

// row i of the deterministic test matrix.
func matRow(i int) []float64 {
	row := make([]float64, size)
	for j := range row {
		row[j] = float64((i*31+j*17)%97) / 97
	}
	return row
}

func initVec() []float64 {
	v := make([]float64, size)
	for i := range v {
		v[i] = float64(i%13) / 13
	}
	return v
}

// normalize keeps values bounded across iterations (power iteration).
func normalize(v []float64) {
	max := 1e-12
	for _, x := range v {
		if x > max {
			max = x
		}
	}
	for i := range v {
		v[i] /= max
	}
}

func checksum(v []float64) float64 {
	s := 0.0
	for i, x := range v {
		s += x * float64(i%7+1)
	}
	return s
}

func span(id, n int) (int, int) { return id * size / n, (id + 1) * size / n }

// matvec implements core.App: the tenth application.
type matvec struct {
	vecA tmk.Addr // shared vector of the current TreadMarks run

	seqSum, parSum float64
	hasSeq, hasPar bool
}

func (a *matvec) Name() string    { return "MatVec" }
func (a *matvec) Figure() int     { return 0 } // not a paper figure
func (a *matvec) Problem() string { return fmt.Sprintf("%dx%d f64, %d iters", size, size, iters) }

// Clone (optional, core.Cloneable) hands the grid's worker pool an
// isolated instance per run; without it the pool still works but
// serializes this app's runs on the one shared instance.
func (a *matvec) Clone() core.App { return &matvec{} }

func (a *matvec) Check() error {
	if !a.hasSeq || !a.hasPar {
		return fmt.Errorf("matvec: Check needs a sequential and a parallel run")
	}
	if a.seqSum != a.parSum {
		return fmt.Errorf("matvec: checksum %v vs %v", a.parSum, a.seqSum)
	}
	return nil
}

// Step 2: the sequential kernel.
func (a *matvec) Seq(ctx *sim.Ctx) {
	x := initVec()
	y := make([]float64, size)
	for it := 0; it < iters; it++ {
		for i := 0; i < size; i++ {
			row := matRow(i)
			acc := 0.0
			for j := range row {
				acc += row[j] * x[j]
			}
			y[i] = acc
		}
		ctx.Compute(sim.Time(size*size) * flopCost)
		normalize(y)
		x, y = y, x
	}
	a.seqSum = checksum(x)
	a.hasSeq = true
}

// Step 3: the TreadMarks version: the vector is shared; each processor
// computes a band of rows and barriers between iterations.
func (a *matvec) SetupTMK(sys *tmk.System) {
	a.parSum, a.hasPar = 0, false
	a.vecA = sys.Malloc(8 * size)
	sys.InitF64(a.vecA, initVec())
}

func (a *matvec) TMK(p *tmk.Proc) {
	lo, hi := span(p.ID(), p.N())
	vec := p.F64Array(a.vecA, size)
	x := make([]float64, size)
	y := make([]float64, hi-lo)
	for it := 0; it < iters; it++ {
		vec.Load(x, 0, size) // remote bands fault in
		for i := lo; i < hi; i++ {
			row := matRow(i)
			acc := 0.0
			for j := range row {
				acc += row[j] * x[j]
			}
			y[i-lo] = acc
		}
		p.Compute(sim.Time((hi-lo)*size) * flopCost)
		// Everyone needs the global maximum before normalizing, so
		// publish raw results first.
		vec.Store(y, lo)
		p.Barrier(2 * it)
		vec.Load(x, 0, size)
		normalize(x)
		vec.Store(x[lo:hi], lo)
		p.Barrier(2*it + 1)
	}
	if p.ID() == 0 {
		vec.Load(x, 0, size)
		a.parSum = checksum(x)
		a.hasPar = true
	}
}

// Step 4: the PVM version: each process owns a band and broadcasts its
// piece after every iteration.
func (a *matvec) SetupPVM(sys *pvm.System) {
	a.parSum, a.hasPar = 0, false
}

func (a *matvec) PVM(p *pvm.Proc) {
	lo, hi := span(p.ID(), p.N())
	x := initVec()
	for it := 0; it < iters; it++ {
		y := make([]float64, hi-lo)
		for i := lo; i < hi; i++ {
			row := matRow(i)
			acc := 0.0
			for j := range row {
				acc += row[j] * x[j]
			}
			y[i-lo] = acc
		}
		p.Compute(sim.Time((hi-lo)*size) * flopCost)
		if p.N() > 1 {
			b := p.InitSend()
			b.PackFloat64(y, len(y), 1)
			p.Bcast(1)
			copy(x[lo:hi], y)
			for got := 0; got < p.N()-1; got++ {
				r := p.Recv(-1, 1)
				qlo, qhi := span(r.Src(), p.N())
				r.UnpackFloat64(x[qlo:qhi], qhi-qlo, 1)
			}
		} else {
			copy(x[lo:hi], y)
		}
		normalize(x)
	}
	if p.ID() == 0 {
		a.parSum = checksum(x)
		a.hasPar = true
	}
}

func (a *matvec) Master() func(*pvm.Proc) { return nil } // no master process

func main() {
	app := &matvec{}

	// Step 5 in action: the sequential baseline, then both systems at
	// several processor counts, checking outputs after every run.  The
	// scenario list is data — swapping in a page-size sweep or a slower
	// link is an edit here, not in the app.
	if _, err := core.Seq.Run(app, core.Base(1)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential: checksum %.6f\n", app.seqSum)

	for _, n := range []int{2, 4, 8} {
		sc := core.Base(n)
		tres, err := core.TMK.Run(app, sc)
		if err != nil {
			log.Fatal(err)
		}
		if err := app.Check(); err != nil {
			log.Fatal(err)
		}
		pres, err := core.PVM.Run(app, sc)
		if err != nil {
			log.Fatal(err)
		}
		if err := app.Check(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%d: tmk %v (%d msgs)  pvm %v (%d msgs)\n",
			n, tres.Time, tres.Net.Messages, pres.Time, pres.Net.Messages)
	}

	// A scenario ablation, still with zero app changes: TreadMarks on
	// 1 KB pages.
	small := core.Base(8)
	small.Name = "page=1024"
	small.DSM.PageSize = 1024
	res, err := core.TMK.Run(app, small)
	if err != nil {
		log.Fatal(err)
	}
	if err := app.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tmk on 1KB pages: %v (%d msgs)\n", res.Time, res.Net.Messages)
	fmt.Println("all versions agree")
}
