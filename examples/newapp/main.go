// Porting template: how to take your own kernel — here a blocked
// matrix-vector iteration — and write it against both programming models,
// the way the paper's authors ported their nine applications.  Use this
// as the starting point for adding a tenth application.
//
// The recipe:
//
//  1. Write the plain sequential kernel charging model time via
//     ctx.Compute (RunSeq).
//  2. For TreadMarks: put the data other processors must see in shared
//     memory (System.Malloc + Init*), express synchronization as locks
//     and barriers, and let the DSM move the data (RunTMK).
//  3. For PVM: keep everything private, and pack/send exactly what each
//     process needs (RunPVM).
//  4. Return a deterministic Output from each and check they agree.
//
// Run with:
//
//	go run ./examples/newapp
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
)

const (
	size  = 1024 // matrix dimension
	iters = 4
	// Per multiply-add on the modeled 1995 workstation.
	flopCost = 100 * sim.Nanosecond
)

// row i of the deterministic test matrix.
func matRow(i int) []float64 {
	row := make([]float64, size)
	for j := range row {
		row[j] = float64((i*31+j*17)%97) / 97
	}
	return row
}

func initVec() []float64 {
	v := make([]float64, size)
	for i := range v {
		v[i] = float64(i%13) / 13
	}
	return v
}

// normalize keeps values bounded across iterations (power iteration).
func normalize(v []float64) {
	max := 1e-12
	for _, x := range v {
		if x > max {
			max = x
		}
	}
	for i := range v {
		v[i] /= max
	}
}

func checksum(v []float64) float64 {
	s := 0.0
	for i, x := range v {
		s += x * float64(i%7+1)
	}
	return s
}

func span(id, n int) (int, int) { return id * size / n, (id + 1) * size / n }

func main() {
	seqSum, seqTime := runSeq()
	fmt.Printf("sequential: checksum %.6f, modeled %v\n", seqSum, seqTime)

	for _, n := range []int{2, 4, 8} {
		tSum, tRes := runTMK(n)
		pSum, pRes := runPVM(n)
		if tSum != seqSum || pSum != seqSum {
			log.Fatalf("n=%d: checksums diverge: seq %v tmk %v pvm %v", n, seqSum, tSum, pSum)
		}
		fmt.Printf("n=%d: tmk %v (%d msgs)  pvm %v (%d msgs)\n",
			n, tRes.Time, tRes.Net.Messages, pRes.Time, pRes.Net.Messages)
	}
	fmt.Println("all versions agree")
}

// Step 1: the sequential kernel.
func runSeq() (float64, sim.Time) {
	var sum float64
	res, err := core.RunSeq(func(ctx *sim.Ctx) {
		x := initVec()
		y := make([]float64, size)
		for it := 0; it < iters; it++ {
			for i := 0; i < size; i++ {
				row := matRow(i)
				acc := 0.0
				for j := range row {
					acc += row[j] * x[j]
				}
				y[i] = acc
			}
			ctx.Compute(sim.Time(size*size) * flopCost)
			normalize(y)
			x, y = y, x
		}
		sum = checksum(x)
	})
	if err != nil {
		log.Fatal(err)
	}
	return sum, res.Time
}

// Step 2: the TreadMarks version: the vector is shared; each processor
// computes a band of rows and barriers between iterations.
func runTMK(n int) (float64, core.Result) {
	var vecA tmk.Addr
	var sum float64
	res, err := core.RunTMK(core.Default(n),
		func(sys *tmk.System) {
			vecA = sys.Malloc(8 * size)
			sys.InitF64(vecA, initVec())
		},
		func(p *tmk.Proc) {
			lo, hi := span(p.ID(), p.N())
			vec := p.F64Array(vecA, size)
			x := make([]float64, size)
			y := make([]float64, hi-lo)
			for it := 0; it < iters; it++ {
				vec.Load(x, 0, size) // remote bands fault in
				for i := lo; i < hi; i++ {
					row := matRow(i)
					acc := 0.0
					for j := range row {
						acc += row[j] * x[j]
					}
					y[i-lo] = acc
				}
				p.Compute(sim.Time((hi-lo)*size) * flopCost)
				// Everyone needs the global maximum before normalizing, so
				// publish raw results first.
				vec.Store(y, lo)
				p.Barrier(2 * it)
				vec.Load(x, 0, size)
				normalize(x)
				vec.Store(x[lo:hi], lo)
				p.Barrier(2*it + 1)
			}
			if p.ID() == 0 {
				vec.Load(x, 0, size)
				sum = checksum(x)
			}
		})
	if err != nil {
		log.Fatal(err)
	}
	return sum, res
}

// Step 3: the PVM version: each process owns a band and broadcasts its
// piece after every iteration.
func runPVM(n int) (float64, core.Result) {
	var sum float64
	res, err := core.RunPVM(core.Default(n), func(p *pvm.Proc) {
		lo, hi := span(p.ID(), p.N())
		x := initVec()
		for it := 0; it < iters; it++ {
			y := make([]float64, hi-lo)
			for i := lo; i < hi; i++ {
				row := matRow(i)
				acc := 0.0
				for j := range row {
					acc += row[j] * x[j]
				}
				y[i-lo] = acc
			}
			p.Compute(sim.Time((hi-lo)*size) * flopCost)
			if p.N() > 1 {
				b := p.InitSend()
				b.PackFloat64(y, len(y), 1)
				p.Bcast(1)
				copy(x[lo:hi], y)
				for got := 0; got < p.N()-1; got++ {
					r := p.Recv(-1, 1)
					qlo, qhi := span(r.Src(), p.N())
					r.UnpackFloat64(x[qlo:qhi], qhi-qlo, 1)
				}
			} else {
				copy(x[lo:hi], y)
			}
			normalize(x)
		}
		if p.ID() == 0 {
			sum = checksum(x)
		}
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	return sum, res
}
