// Benchmarks regenerating every table and figure of the paper's
// evaluation section.  Each benchmark iteration performs the full
// experiment: the sequential baseline plus the TreadMarks and PVM runs it
// needs (all processor counts, for figures).
//
// Workloads run at a reduced scale (BenchScale) so `go test -bench=.`
// finishes in minutes; the msvdsm command reproduces the same experiments
// at full paper scale.  Reported metrics:
//
//	modelsec/op   modeled 8-processor wall-clock (virtual seconds)
//	tmkmsg/op     TreadMarks wire messages at 8 processors
//	pvmmsg/op     PVM user messages at 8 processors
//
// Component microbenchmarks live next to their subsystems: BenchmarkEngine
// (scheduler ping-pong) in internal/vnet, BenchmarkAccess (DSM access
// checks) and BenchmarkMakeDiff (page diffing) in internal/tmk.
package repro

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
)

// BenchScale shrinks the paper workloads for benchmarking.
const BenchScale = 0.1

func benchFigure(b *testing.B, name string) {
	b.Helper()
	app := harness.Find(harness.Apps(BenchScale), name)
	if app == nil {
		b.Fatalf("unknown experiment %q", name)
	}
	seq, err := core.Seq.Run(app, core.Base(1))
	if err != nil {
		b.Fatal(err)
	}
	// The TreadMarks and PVM runs are independent engines: the grid's
	// worker pool runs them concurrently (on clones of the app), exactly
	// as `msvdsm -j` regenerates the figure.  On a single-core host this
	// degenerates to the serial path; records are identical either way.
	grid := harness.Grid{
		Apps:      []core.App{app},
		Backends:  []core.Backend{core.TMK, core.PVM},
		Scenarios: harness.BaseScenarios(8),
		Workers:   runtime.GOMAXPROCS(0),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := grid.Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			tres, pres := recs[0], recs[1]
			b.ReportMetric(tres.Seconds, "tmk-modelsec/op")
			b.ReportMetric(pres.Seconds, "pvm-modelsec/op")
			b.ReportMetric(seq.Time.Seconds()/tres.Seconds, "tmk-speedup")
			b.ReportMetric(seq.Time.Seconds()/pres.Seconds, "pvm-speedup")
			b.ReportMetric(float64(tres.Messages), "tmkmsg/op")
			b.ReportMetric(float64(pres.Messages), "pvmmsg/op")
		}
	}
}

// BenchmarkTable1 regenerates the sequential-time table.
func BenchmarkTable1(b *testing.B) {
	apps := harness.Apps(BenchScale)
	for i := 0; i < b.N; i++ {
		if _, err := harness.Table1(apps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates the 8-processor traffic table.
func BenchmarkTable2(b *testing.B) {
	apps := harness.Apps(BenchScale)
	for i := 0; i < b.N; i++ {
		if _, err := harness.Table2(apps); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per speedup figure (Figures 1-12).

func BenchmarkFigEP(b *testing.B)         { benchFigure(b, "EP") }
func BenchmarkFigSORZero(b *testing.B)    { benchFigure(b, "SOR-Zero") }
func BenchmarkFigSORNonzero(b *testing.B) { benchFigure(b, "SOR-Nonzero") }
func BenchmarkFigISSmall(b *testing.B)    { benchFigure(b, "IS-Small") }
func BenchmarkFigISLarge(b *testing.B)    { benchFigure(b, "IS-Large") }
func BenchmarkFigTSP(b *testing.B)        { benchFigure(b, "TSP") }
func BenchmarkFigQSORT(b *testing.B)      { benchFigure(b, "QSORT") }
func BenchmarkFigWater288(b *testing.B)   { benchFigure(b, "Water-288") }
func BenchmarkFigWater1728(b *testing.B)  { benchFigure(b, "Water-1728") }
func BenchmarkFigBarnesHut(b *testing.B)  { benchFigure(b, "Barnes-Hut") }
func BenchmarkFigFFT(b *testing.B)        { benchFigure(b, "3D-FFT") }
func BenchmarkFigILINK(b *testing.B)      { benchFigure(b, "ILINK") }
