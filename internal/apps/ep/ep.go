// Package ep implements the NAS Embarrassingly Parallel benchmark
// (paper §3.3): generate pairs of Gaussian random deviates by the polar
// (acceptance-rejection) method and tabulate the number of pairs in
// successive square annuli.  The only communication is summing a
// ten-element list at the end of the run.
//
// In the TreadMarks version the shared tally is updated under a lock; in
// the PVM version processor 0 receives each processor's list and sums
// them, as described in the paper.
package ep

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
)

// Config describes one EP problem.
type Config struct {
	Pairs     int      // uniform pairs generated (before rejection)
	CostScale int      // virtual pairs modeled per real pair (problem scaling)
	PairCost  sim.Time // modeled CPU time per virtual pair
	Seed      uint64
}

// Paper returns the paper-equivalent problem: the class A size (2^28
// pairs) is modeled by generating 2^22 real pairs, each standing for 64
// virtual pairs of CPU time.  See EXPERIMENTS.md for the calibration.
func Paper() Config {
	return Config{Pairs: 1 << 22, CostScale: 64, PairCost: 3300 * sim.Nanosecond, Seed: 271828}
}

// Small returns a CI-sized problem.
func Small() Config {
	return Config{Pairs: 1 << 14, CostScale: 1, PairCost: 3300 * sim.Nanosecond, Seed: 271828}
}

// Output is the benchmark result: annulus counts and deviate sums.
type Output struct {
	Q          [10]int64
	SumX, SumY float64
	Accepted   int64
}

// Check compares outputs: counts exactly, sums within floating tolerance
// (the parallel versions reduce partial sums in different orders).
func (o Output) Check(other Output) error {
	if o.Q != other.Q {
		return fmt.Errorf("ep: annuli differ: %v vs %v", o.Q, other.Q)
	}
	if o.Accepted != other.Accepted {
		return fmt.Errorf("ep: accepted %d vs %d", o.Accepted, other.Accepted)
	}
	if !closeEnough(o.SumX, other.SumX) || !closeEnough(o.SumY, other.SumY) {
		return fmt.Errorf("ep: sums differ: (%g,%g) vs (%g,%g)", o.SumX, o.SumY, other.SumX, other.SumY)
	}
	return nil
}

func closeEnough(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// splitmix64 gives a reproducible, index-addressable random stream, so
// every processor can generate its slice of pairs independently.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func uniform(seed, idx uint64) float64 {
	return 2*float64(splitmix64(seed+idx)>>11)/(1<<53) - 1
}

// chunk computes EP over pair indices [lo,hi), charging modeled time.
func chunk(ctx *sim.Ctx, cfg Config, lo, hi int) Output {
	var out Output
	const batch = 8192
	for i := lo; i < hi; i++ {
		if (i-lo)%batch == 0 {
			n := batch
			if hi-i < n {
				n = hi - i
			}
			ctx.Compute(sim.Time(n*cfg.CostScale) * cfg.PairCost)
		}
		x := uniform(cfg.Seed, uint64(2*i))
		y := uniform(cfg.Seed, uint64(2*i+1))
		t := x*x + y*y
		if t > 1 || t == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(t) / t)
		gx, gy := x*f, y*f
		out.SumX += gx
		out.SumY += gy
		l := int(math.Max(math.Abs(gx), math.Abs(gy)))
		if l > 9 {
			l = 9
		}
		out.Q[l]++
		out.Accepted++
	}
	return out
}

// span divides [0,total) into nearly equal slices.
func span(total, nprocs, id int) (int, int) {
	lo := id * total / nprocs
	hi := (id + 1) * total / nprocs
	return lo, hi
}

// RunSeq runs the sequential program (no communication library).
func RunSeq(cfg Config) (core.Result, Output, error) {
	a := newApp(cfg)
	res, err := core.Seq.Run(a, core.Base(1))
	return res, a.seqOut, err
}

// Shared layout for the TreadMarks version.
const (
	lockTally = 0
)

// RunTMK runs the TreadMarks version on ccfg.Procs processors.
func RunTMK(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := newApp(cfg)
	res, err := core.TMK.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, a.parOut, err
}

// Message tags for the PVM version.
const tagTally = 1

// RunPVM runs the PVM version on ccfg.Procs processes.
func RunPVM(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := newApp(cfg)
	res, err := core.PVM.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, a.parOut, err
}
