package ep

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
)

// app implements core.App: the bodies the backends run, plus output
// capture for verification.
type app struct {
	cfg Config

	seqOut Output
	parOut Output
	hasSeq bool
	hasPar bool
}

// NewApp wraps an EP configuration as a registrable experiment.
func NewApp(cfg Config) core.App { return newApp(cfg) }

func newApp(cfg Config) *app { return &app{cfg: cfg} }

// Clone returns a fresh instance with the same configuration and no run
// state, so grid workers can run copies concurrently (core.Cloneable).
func (a *app) Clone() core.App { return newApp(a.cfg) }

// Apps returns this package's registry entry (Figure 1) at the given
// workload scale (1.0 = paper scale).
func Apps(scale float64) []core.App {
	cfg := Paper()
	cfg.Pairs = core.Scaled(cfg.Pairs, scale, 1<<12)
	return []core.App{newApp(cfg)}
}

// BigApps returns the registry entry for the bigp scenario family: the
// same class A virtual workload as Paper, modeled with fewer real
// pairs each standing for more virtual ones, so a procs=256 run stays
// CI-sized without shrinking the modeled problem.
func BigApps(scale float64) []core.App {
	cfg := Paper()
	cfg.Pairs = 1 << 18
	cfg.CostScale = 1 << 10
	cfg.Pairs = core.Scaled(cfg.Pairs, scale, 1<<14)
	return []core.App{newApp(cfg)}
}

func (a *app) Name() string { return "EP" }
func (a *app) Figure() int  { return 1 }

func (a *app) Problem() string {
	return fmt.Sprintf("2^28 pairs (model), %d generated", a.cfg.Pairs)
}

func (a *app) Check() error {
	if !a.hasSeq || !a.hasPar {
		return fmt.Errorf("ep: Check needs a sequential and a parallel run")
	}
	return a.seqOut.Check(a.parOut)
}

func (a *app) Seq(ctx *sim.Ctx) {
	a.seqOut = chunk(ctx, a.cfg, 0, a.cfg.Pairs)
	a.hasSeq = true
}

func (a *app) SetupTMK(sys *tmk.System) {
	a.parOut, a.hasPar = Output{}, false
	sys.Malloc(10 * 8) // shared annuli tally
	sys.Malloc(2 * 8)  // shared sums
	sys.Malloc(8)      // shared accepted count
}

func (a *app) TMK(p *tmk.Proc) {
	cfg := a.cfg
	qAddr := tmk.Addr(0)
	sumAddr := tmk.Addr(80)
	accAddr := tmk.Addr(96)
	lo, hi := span(cfg.Pairs, p.N(), p.ID())
	local := chunk(p.Ctx(), cfg, lo, hi)
	// Updates to the shared list are protected by a lock.
	p.LockAcquire(lockTally)
	q := p.I64Array(qAddr, 10)
	for i := 0; i < 10; i++ {
		q.Set(i, q.At(i)+local.Q[i])
	}
	p.WriteF64(sumAddr, p.ReadF64(sumAddr)+local.SumX)
	p.WriteF64(sumAddr+8, p.ReadF64(sumAddr+8)+local.SumY)
	p.WriteI64(accAddr, p.ReadI64(accAddr)+local.Accepted)
	p.LockRelease(lockTally)
	p.Barrier(0)
	if p.ID() == 0 {
		q := p.I64Array(qAddr, 10)
		for i := 0; i < 10; i++ {
			a.parOut.Q[i] = q.At(i)
		}
		a.parOut.SumX = p.ReadF64(sumAddr)
		a.parOut.SumY = p.ReadF64(sumAddr + 8)
		a.parOut.Accepted = p.ReadI64(accAddr)
		a.hasPar = true
	}
}

func (a *app) SetupPVM(sys *pvm.System) {
	a.parOut, a.hasPar = Output{}, false
}

func (a *app) PVM(p *pvm.Proc) {
	cfg := a.cfg
	lo, hi := span(cfg.Pairs, p.N(), p.ID())
	local := chunk(p.Ctx(), cfg, lo, hi)
	if p.ID() != 0 {
		b := p.InitSend()
		b.PackInt64(local.Q[:], 10, 1)
		b.PackFloat64([]float64{local.SumX, local.SumY}, 2, 1)
		b.PackOneInt64(local.Accepted)
		p.Send(0, tagTally)
		return
	}
	// Processor 0 receives the lists from each processor and sums.
	total := local
	for src := 1; src < p.N(); src++ {
		r := p.Recv(src, tagTally)
		var q [10]int64
		r.UnpackInt64(q[:], 10, 1)
		var sums [2]float64
		r.UnpackFloat64(sums[:], 2, 1)
		acc := r.UnpackOneInt64()
		for i := 0; i < 10; i++ {
			total.Q[i] += q[i]
		}
		total.SumX += sums[0]
		total.SumY += sums[1]
		total.Accepted += acc
	}
	a.parOut = total
	a.hasPar = true
}

func (a *app) Master() func(*pvm.Proc) { return nil }
