package ep

import (
	"testing"

	"repro/internal/core"
)

func TestSeqDeterministic(t *testing.T) {
	cfg := Small()
	_, a, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("sequential runs differ: %+v vs %+v", a, b)
	}
	if a.Accepted == 0 || a.Q[0] == 0 {
		t.Fatalf("degenerate output: %+v", a)
	}
	// Polar method accepts ~ pi/4 of pairs.
	frac := float64(a.Accepted) / float64(cfg.Pairs)
	if frac < 0.75 || frac > 0.82 {
		t.Fatalf("acceptance fraction %v, want ~0.785", frac)
	}
}

func TestTMKMatchesSequential(t *testing.T) {
	cfg := Small()
	_, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 8} {
		_, got, err := RunTMK(cfg, core.Default(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := want.Check(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestPVMMatchesSequential(t *testing.T) {
	cfg := Small()
	_, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 5, 8} {
		_, got, err := RunPVM(cfg, core.Default(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := want.Check(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// The paper: "Both TreadMarks and PVM achieve a speedup of ~8 using 8
// processors because ... the communication overhead is negligible."
func TestNearLinearSpeedup(t *testing.T) {
	// Use a paper-scale compute/communication ratio (the Small config is
	// deliberately tiny and communication-bound).
	cfg := Small()
	cfg.Pairs = 1 << 17
	cfg.CostScale = 64
	seq, _, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tmkRes, _, err := RunTMK(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	pvmRes, _, err := RunPVM(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	st := seq.Time.Seconds() / tmkRes.Time.Seconds()
	sp := seq.Time.Seconds() / pvmRes.Time.Seconds()
	if st < 7.0 || sp < 7.0 {
		t.Fatalf("speedups at 8 procs: tmk=%.2f pvm=%.2f, want ~8", st, sp)
	}
}

// PVM sends exactly n-1 user messages (the tally lists).
func TestPVMMessageCount(t *testing.T) {
	cfg := Small()
	res, _, err := RunPVM(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Net.Messages != 7 {
		t.Fatalf("messages = %d, want 7", res.Net.Messages)
	}
}

// TreadMarks communication is small: a lock chain plus a barrier plus a
// handful of diff fetches for the single shared page.
func TestTMKTrafficSmall(t *testing.T) {
	cfg := Small()
	res, _, err := RunTMK(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Net.Messages == 0 || res.Net.Messages > 120 {
		t.Fatalf("tmk messages = %d, want small nonzero", res.Net.Messages)
	}
	if res.Net.Bytes > 100_000 {
		t.Fatalf("tmk bytes = %d, want < 100 KB", res.Net.Bytes)
	}
}
