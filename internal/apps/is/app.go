package is

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
)

// app implements core.App for one Integer Sort key range.
type app struct {
	cfg    Config
	name   string
	figure int

	// Shared-memory layout of the current TreadMarks run.
	bktA, turnA tmk.Addr

	// Per-processor rank checksums of the last iteration, collected out
	// of band; runs are engine-serial, so plain slots suffice.  The
	// parallel output is assembled from these on demand.
	ranks     []int64
	bucketSum int64

	seqOut Output
	hasSeq bool
	hasPar bool
}

// NewApp wraps an IS configuration as a registrable experiment; the key
// range (cfg.Bmax) selects between the paper's IS-Small and IS-Large
// page geometries.
func NewApp(cfg Config) core.App {
	a := newApp(cfg)
	if cfg.Bmax >= 1<<15 {
		a.name, a.figure = "IS-Large", 5
	}
	return a
}

func newApp(cfg Config) *app { return &app{cfg: cfg, name: "IS-Small", figure: 4} }

// Clone returns a fresh instance with the same configuration and no run
// state, so grid workers can run copies concurrently (core.Cloneable).
func (a *app) Clone() core.App { return &app{cfg: a.cfg, name: a.name, figure: a.figure} }

// Apps returns this package's registry entries (Figures 4 and 5) at the
// given workload scale.
func Apps(scale float64) []core.App {
	var out []core.App
	for _, paper := range []Config{PaperSmall(), PaperLarge()} {
		cfg := paper
		cfg.Keys = core.Scaled(cfg.Keys, scale, 1<<12)
		cfg.Iters = core.Scaled(cfg.Iters, scale, 2)
		out = append(out, NewApp(cfg))
	}
	return out
}

// BigApps returns the registry entries for the bigp scenario family:
// fewer keys and iterations than the paper inputs (the per-key work is
// embarrassingly parallel anyway), with the large bucket range clamped
// so the shared bucket pages every processor diffs at the barrier stay
// a handful rather than dozens.
func BigApps(scale float64) []core.App {
	var out []core.App
	for _, paper := range []Config{PaperSmall(), PaperLarge()} {
		cfg := paper
		cfg.Keys, cfg.Iters = 1<<18, 4
		if cfg.Bmax > 1<<12 {
			cfg.Bmax = 1 << 12
		}
		cfg.Keys = core.Scaled(cfg.Keys, scale, 1<<14)
		cfg.Iters = core.Scaled(cfg.Iters, scale, 2)
		// The clamp above can pull Bmax below NewApp's small/large
		// threshold, so the paper input — not the clamped one — decides
		// which registry entry this is.
		a := newApp(cfg)
		if paper.Bmax >= 1<<15 {
			a.name, a.figure = "IS-Large", 5
		}
		out = append(out, a)
	}
	return out
}

func (a *app) Name() string { return a.name }
func (a *app) Figure() int  { return a.figure }

func (a *app) Problem() string {
	bexp := 0
	for 1<<bexp < a.cfg.Bmax {
		bexp++
	}
	return fmt.Sprintf("N=%d Bmax=2^%d, %d iters", a.cfg.Keys, bexp, a.cfg.Iters)
}

// assemble builds the parallel output from the per-processor collectors.
func (a *app) assemble() Output {
	out := Output{BucketSum: a.bucketSum}
	for _, r := range a.ranks {
		out.RankSum += r
	}
	return out
}

func (a *app) reset(n int) {
	a.ranks = make([]int64, n)
	a.bucketSum = 0
	a.hasPar = false
}

func (a *app) Check() error {
	if !a.hasSeq || !a.hasPar {
		return fmt.Errorf("is: Check needs a sequential and a parallel run")
	}
	return a.seqOut.Check(a.assemble())
}

func (a *app) Seq(ctx *sim.Ctx) {
	cfg := a.cfg
	for it := 0; it < cfg.Iters; it++ {
		counts := cfg.countKeys(ctx, 0, cfg.Keys)
		a.seqOut.BucketSum = bucketChecksum(counts)
		a.seqOut.RankSum = cfg.rankChunk(ctx, counts, 0, cfg.Keys)
	}
	a.hasSeq = true
}

func (a *app) SetupTMK(sys *tmk.System) {
	a.reset(sys.N())
	a.bktA = sys.MallocPageAligned(4 * a.cfg.Bmax)
	a.turnA = sys.MallocPageAligned(8) // per-iteration arrival counter
}

func (a *app) TMK(p *tmk.Proc) {
	cfg := a.cfg
	lo, hi := span(cfg.Keys, p.N(), p.ID())
	counts := make([]int32, cfg.Bmax)
	for it := 0; it < cfg.Iters; it++ {
		private := cfg.countKeys(p.Ctx(), lo, hi)
		// Add private counts into the shared array under a lock.
		p.LockAcquire(lockBuckets)
		shared := p.I32Array(a.bktA, cfg.Bmax)
		first := p.ReadI64(a.turnA)%int64(p.N()) == 0
		p.WriteI64(a.turnA, p.ReadI64(a.turnA)+1)
		if first {
			// First writer of the iteration resets the array.
			shared.Store(private, 0)
		} else {
			shared.Load(counts, 0, cfg.Bmax)
			for v := range counts {
				counts[v] += private[v]
			}
			shared.Store(counts, 0)
		}
		p.Compute(sim.Time(cfg.Bmax) * cfg.BktCost)
		p.LockRelease(lockBuckets)
		p.Barrier(2 * it)
		// All processors read the final counts and rank.
		shared.Load(counts, 0, cfg.Bmax)
		a.ranks[p.ID()] = cfg.rankChunk(p.Ctx(), counts, lo, hi)
		if p.ID() == 0 {
			a.bucketSum = bucketChecksum(counts)
			a.hasPar = true
		}
		p.Barrier(2*it + 1)
	}
}

func (a *app) SetupPVM(sys *pvm.System) {
	a.reset(sys.NumTasks())
}

func (a *app) PVM(p *pvm.Proc) {
	cfg := a.cfg
	lo, hi := span(cfg.Keys, p.N(), p.ID())
	n := p.N()
	final := make([]int32, cfg.Bmax)
	for it := 0; it < cfg.Iters; it++ {
		private := cfg.countKeys(p.Ctx(), lo, hi)
		if n == 1 {
			copy(final, private)
		} else {
			// Chain sum: 0 -> 1 -> ... -> n-1, then broadcast.
			if p.ID() == 0 {
				b := p.InitSend()
				b.PackInt32(private, cfg.Bmax, 1)
				p.Send(1, tagChain)
				r := p.Recv(n-1, tagFinal)
				r.UnpackInt32(final, cfg.Bmax, 1)
			} else {
				r := p.Recv(p.ID()-1, tagChain)
				r.UnpackInt32(final, cfg.Bmax, 1)
				for v := range final {
					final[v] += private[v]
				}
				p.Compute(sim.Time(cfg.Bmax) * cfg.BktCost)
				if p.ID() == n-1 {
					b := p.InitSend()
					b.PackInt32(final, cfg.Bmax, 1)
					p.Bcast(tagFinal)
				} else {
					b := p.InitSend()
					b.PackInt32(final, cfg.Bmax, 1)
					p.Send(p.ID()+1, tagChain)
					r := p.Recv(n-1, tagFinal)
					r.UnpackInt32(final, cfg.Bmax, 1)
				}
			}
		}
		a.ranks[p.ID()] = cfg.rankChunk(p.Ctx(), final, lo, hi)
		if p.ID() == 0 {
			a.bucketSum = bucketChecksum(final)
			a.hasPar = true
		}
	}
}

func (a *app) Master() func(*pvm.Proc) { return nil }
