// Package is implements the NAS Integer Sort benchmark (paper §3.5):
// ranking a sequence of integer keys with bucket sort.  Each processor
// counts its share of the keys into a private bucket array; the private
// arrays are summed into a global array; every processor then reads the
// global counts and ranks its keys.
//
// In the TreadMarks version the global array is shared: each processor
// locks it, adds its private counts, releases, and waits at a barrier;
// after the barrier everyone reads the final counts.  Because each lock
// holder overwrites (essentially) the whole array, the acquirer receives
// the accumulated diffs of every processor it has not yet synchronized
// with — the paper's "diff accumulation" pathology, which makes the data
// sent grow like n*(n-1)*b per iteration versus PVM's 2*(n-1)*b.
//
// In the PVM version the processors form a chain: processor 0 sends its
// counts to 1, which adds and forwards, and so on; the last processor
// computes the final counts and broadcasts them.
//
// Two key ranges reproduce the paper's inputs: IS-Small (Bmax = 2^7, the
// bucket array fits in one page) and IS-Large (Bmax = 2^15, the bucket
// array spans 32 pages, so every access costs 32 diff request/response
// pairs in TreadMarks against PVM's single message).
package is

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Config describes one Integer Sort problem.
type Config struct {
	Keys    int // number of keys (the paper: 2^20)
	Bmax    int // key range / bucket count (2^7 small, 2^15 large)
	Iters   int // ranking iterations (the paper: 10)
	Seed    uint64
	KeyCost sim.Time // per-key cost per pass (count pass + rank pass)
	BktCost sim.Time // per-bucket cost (sum/prefix passes)
}

// PaperSmall returns the IS-Small input.
func PaperSmall() Config {
	return Config{Keys: 1 << 20, Bmax: 1 << 7, Iters: 10, Seed: 31415,
		KeyCost: 500 * sim.Nanosecond, BktCost: 100 * sim.Nanosecond}
}

// PaperLarge returns the IS-Large input.  The per-key cost is higher than
// IS-Small's: random accesses into a 128 KB bucket array miss the HP-735's
// cache, while IS-Small's 512-byte array stays resident.
func PaperLarge() Config {
	return Config{Keys: 1 << 20, Bmax: 1 << 15, Iters: 10, Seed: 31415,
		KeyCost: 1600 * sim.Nanosecond, BktCost: 100 * sim.Nanosecond}
}

// Small returns a CI-sized problem with the IS-Large page geometry.
func Small() Config {
	return Config{Keys: 1 << 12, Bmax: 1 << 10, Iters: 3, Seed: 31415,
		KeyCost: 500 * sim.Nanosecond, BktCost: 100 * sim.Nanosecond}
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// key returns the i-th key, reproducible and processor-independent.
// As in NAS IS, keys follow a centered (sum-of-uniforms) distribution,
// so middle buckets are hot and the tails nearly empty.
func (c Config) key(i int) int32 {
	r := splitmix64(c.Seed + uint64(i))
	// Average four 16-bit lanes of the random word.
	s := (r & 0xFFFF) + (r >> 16 & 0xFFFF) + (r >> 32 & 0xFFFF) + (r >> 48 & 0xFFFF)
	return int32(s * uint64(c.Bmax) / (4 << 16))
}

// Output is the verification result: the final bucket counts checksum and
// a rank checksum over all keys.
type Output struct {
	BucketSum int64
	RankSum   int64
}

// Check compares outputs exactly (all-integer arithmetic).
func (o Output) Check(other Output) error {
	if o != other {
		return fmt.Errorf("is: output %+v vs %+v", o, other)
	}
	return nil
}

func span(total, nprocs, id int) (int, int) {
	return id * total / nprocs, (id + 1) * total / nprocs
}

// countKeys tallies keys [lo,hi) into a fresh bucket array.
func (c Config) countKeys(ctx *sim.Ctx, lo, hi int) []int32 {
	b := make([]int32, c.Bmax)
	for i := lo; i < hi; i++ {
		b[c.key(i)]++
	}
	ctx.Compute(sim.Time(hi-lo) * c.KeyCost)
	return b
}

// rankChunk ranks keys [lo,hi) given global counts, returning the rank
// checksum contribution.  rank(k) = number of keys with smaller value
// plus this key's ordinal among equal keys scanned so far in the chunk —
// the per-chunk ordinal keeps the checksum partition-independent by
// using the global index i as tiebreaker weight.
func (c Config) rankChunk(ctx *sim.Ctx, counts []int32, lo, hi int) int64 {
	// Prefix sums: start[v] = #keys < v.
	start := make([]int64, c.Bmax)
	var acc int64
	for v := 0; v < c.Bmax; v++ {
		start[v] = acc
		acc += int64(counts[v])
	}
	ctx.Compute(sim.Time(c.Bmax) * c.BktCost)
	var sum int64
	for i := lo; i < hi; i++ {
		k := c.key(i)
		r := start[k] // rank of the first key with this value
		sum += r * int64(i%97+1)
	}
	ctx.Compute(sim.Time(hi-lo) * c.KeyCost)
	return sum
}

func bucketChecksum(counts []int32) int64 {
	var s int64
	for v, n := range counts {
		s += int64(n) * int64(v+1)
	}
	return s
}

// RunSeq runs the sequential program.
func RunSeq(cfg Config) (core.Result, Output, error) {
	a := newApp(cfg)
	res, err := core.Seq.Run(a, core.Base(1))
	return res, a.seqOut, err
}

const lockBuckets = 0

// RunTMK runs the TreadMarks version.
func RunTMK(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := newApp(cfg)
	res, err := core.TMK.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, a.assemble(), err
}

const (
	tagChain = 1
	tagFinal = 2
)

// RunPVM runs the PVM version.
func RunPVM(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := newApp(cfg)
	res, err := core.PVM.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, a.assemble(), err
}
