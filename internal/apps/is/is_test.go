package is

import (
	"testing"

	"repro/internal/core"
)

func TestSeqDeterministic(t *testing.T) {
	cfg := Small()
	_, a, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Check(b); err != nil {
		t.Fatal(err)
	}
	if a.BucketSum == 0 || a.RankSum == 0 {
		t.Fatalf("degenerate output %+v", a)
	}
}

func TestTMKMatchesSequential(t *testing.T) {
	cfg := Small()
	_, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 8} {
		_, got, err := RunTMK(cfg, core.Default(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := want.Check(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestPVMMatchesSequential(t *testing.T) {
	cfg := Small()
	_, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 5, 8} {
		_, got, err := RunPVM(cfg, core.Default(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := want.Check(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// PVM messages per iteration: (n-1) chain + (n-1) broadcast.
func TestPVMMessageCount(t *testing.T) {
	cfg := Small()
	const n = 8
	res, _, err := RunPVM(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Iters * 2 * (n - 1))
	if res.Net.Messages != want {
		t.Fatalf("messages = %d, want %d", res.Net.Messages, want)
	}
}

// The diff-accumulation law (paper §3.5): per iteration PVM moves
// 2*(n-1)*b of bucket data while TreadMarks moves about n*(n-1)*b, so the
// data ratio approaches n/2.
func TestDiffAccumulationDataRatio(t *testing.T) {
	cfg := PaperLarge()
	cfg.Iters = 3 // ratio per iteration is stable
	const n = 8
	pvmRes, _, err := RunPVM(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	tmkRes, _, err := RunTMK(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(tmkRes.Net.Bytes) / float64(pvmRes.Net.Bytes)
	// The law predicts n/2 = 4 at full diff density; the centered key
	// distribution thins the tail pages, so ~3 is expected.
	if ratio < 2.2 || ratio > 6.5 {
		t.Fatalf("data ratio = %.2f (tmk=%d pvm=%d), want ~n/2=4",
			ratio, tmkRes.Net.Bytes, pvmRes.Net.Bytes)
	}
}

// IS-Large at 8 processors: PVM outperforms TreadMarks by about 2x
// (the paper's headline negative result for DSM).
func TestISLargePVMTwiceAsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	cfg := PaperLarge()
	cfg.Iters = 5
	const n = 8
	pvmRes, _, err := RunPVM(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	tmkRes, _, err := RunTMK(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	gap := tmkRes.Time.Seconds() / pvmRes.Time.Seconds()
	if gap < 1.5 {
		t.Fatalf("IS-Large gap = %.2fx (tmk %.3fs pvm %.3fs), want ~2x",
			gap, tmkRes.Time.Seconds(), pvmRes.Time.Seconds())
	}
	if gap > 3.0 {
		t.Fatalf("IS-Large gap = %.2fx implausibly large", gap)
	}
}

// IS-Small: bucket array fits in one page, so TreadMarks' penalty is much
// smaller than IS-Large's 32-page penalty.
func TestISSmallCloserThanISLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	gap := func(cfg Config) float64 {
		cfg.Iters = 5
		const n = 8
		pvmRes, _, err := RunPVM(cfg, core.Default(n))
		if err != nil {
			t.Fatal(err)
		}
		tmkRes, _, err := RunTMK(cfg, core.Default(n))
		if err != nil {
			t.Fatal(err)
		}
		return tmkRes.Time.Seconds() / pvmRes.Time.Seconds()
	}
	smallGap := gap(PaperSmall())
	largeGap := gap(PaperLarge())
	if smallGap >= largeGap {
		t.Fatalf("small gap %.2f should beat large gap %.2f", smallGap, largeGap)
	}
}
