package water

import (
	"testing"

	"repro/internal/core"
)

func TestSeqDeterministic(t *testing.T) {
	cfg := Small()
	_, a, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Check(b); err != nil {
		t.Fatal(err)
	}
	if a.ForceSum == 0 || a.PosSum == 0 {
		t.Fatalf("degenerate output %+v", a)
	}
}

func TestInteractionWindowCoversForceTargets(t *testing.T) {
	for _, mols := range []int{64, 288} {
		for nprocs := 1; nprocs <= 8; nprocs++ {
			for id := 0; id < nprocs; id++ {
				window := map[int]bool{}
				for _, q := range interactionWindow(mols, nprocs, id) {
					window[q] = true
				}
				lo, hi := chunk(mols, nprocs, id)
				half := mols / 2
				for a := lo; a < hi; a++ {
					for off := 1; off <= half; off++ {
						b := (a + off) % mols
						q := owner(mols, nprocs, b)
						if q != id && !window[q] {
							t.Fatalf("mols=%d n=%d id=%d: owner %d of molecule %d not in window",
								mols, nprocs, id, q, b)
						}
					}
				}
			}
		}
	}
}

func TestTMKMatchesSequential(t *testing.T) {
	cfg := Small()
	_, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		_, got, err := RunTMK(cfg, core.Default(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := want.Check(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestPVMMatchesSequential(t *testing.T) {
	cfg := Small()
	_, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		_, got, err := RunPVM(cfg, core.Default(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := want.Check(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// Water-1728 narrows the TreadMarks/PVM gap relative to Water-288: the
// larger run has a higher computation-to-communication ratio and less
// false sharing (the paper's central Water observation).
func TestLargerInputNarrowsGap(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	gap := func(cfg Config) float64 {
		pvmRes, pvmOut, err := RunPVM(cfg, core.Default(8))
		if err != nil {
			t.Fatal(err)
		}
		tmkRes, tmkOut, err := RunTMK(cfg, core.Default(8))
		if err != nil {
			t.Fatal(err)
		}
		if err := pvmOut.Check(tmkOut); err != nil {
			t.Fatal(err)
		}
		return tmkRes.Time.Seconds() / pvmRes.Time.Seconds()
	}
	small := gap(Paper288())
	cfgLarge := Paper1728()
	cfgLarge.Steps = 2 // keep the test quick; per-step ratios unchanged
	large := gap(cfgLarge)
	if large >= small {
		t.Fatalf("Water-1728 gap %.3f should be below Water-288 gap %.3f", large, small)
	}
	if large > 1.35 {
		t.Fatalf("Water-1728 gap %.3f too large (paper: within ~10%%)", large)
	}
	if small > 2.0 {
		t.Fatalf("Water-288 gap %.3f too large (paper: ~25-40%%)", small)
	}
}

// At 8 processors TreadMarks sends several times more data than PVM on
// Water-288 (false sharing + diff accumulation; paper: ~2.5x).
func TestWater288DataRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	cfg := Paper288()
	pvmRes, _, err := RunPVM(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	tmkRes, _, err := RunTMK(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(tmkRes.Net.Bytes) / float64(pvmRes.Net.Bytes)
	if ratio < 1.2 {
		t.Fatalf("data ratio %.2f: TreadMarks should send more data", ratio)
	}
	if ratio > 8 {
		t.Fatalf("data ratio %.2f implausibly large", ratio)
	}
}
