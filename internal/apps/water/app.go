package water

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
	"sync"
)

// app implements core.App for one Water input size.
type app struct {
	cfg    Config
	name   string
	figure int

	// Shared-memory layout of the current TreadMarks run.
	posA, frcA tmk.Addr

	mu     sync.Mutex // guards parOut: procs fold partials concurrently
	parOut Output     // accumulated per-processor checksums (run collector)
	seqOut Output
	hasSeq bool
	hasPar bool
}

// NewApp wraps a Water configuration as a registrable experiment.
func NewApp(cfg Config) core.App {
	return &app{cfg: cfg, name: fmt.Sprintf("Water-%d", cfg.Mols)}
}

// Clone returns a fresh instance with the same configuration and no run
// state, so grid workers can run copies concurrently (core.Cloneable).
func (a *app) Clone() core.App { return &app{cfg: a.cfg, name: a.name, figure: a.figure} }

// Apps returns this package's registry entries (Figures 8 and 9) at the
// given workload scale.  The large input keeps its paper name even when
// quick mode shrinks the molecule count.
func Apps(scale float64) []core.App {
	w288 := Paper288()
	w288.Steps = core.Scaled(w288.Steps, scale, 2)
	w1728 := Paper1728()
	w1728.Steps = core.Scaled(w1728.Steps, scale, 1)
	if scale < 1 {
		w1728.Mols = 512
	}
	return []core.App{
		&app{cfg: w288, name: "Water-288", figure: 8},
		&app{cfg: w1728, name: "Water-1728", figure: 9},
	}
}

// BigApps returns the registry entries for the bigp scenario family:
// molecule counts that keep several molecules per processor at P=256,
// over two steps.  Both entries keep their paper names, as quick mode
// already does.
func BigApps(scale float64) []core.App {
	small := Paper288()
	small.Mols, small.Steps = 512, 2
	large := Paper1728()
	large.Mols, large.Steps = 1024, 2
	if scale < 1 {
		small.Steps, large.Steps = 1, 1
	}
	return []core.App{
		&app{cfg: small, name: "Water-288", figure: 8},
		&app{cfg: large, name: "Water-1728", figure: 9},
	}
}

func (a *app) Name() string { return a.name }
func (a *app) Figure() int  { return a.figure }

func (a *app) Problem() string {
	return fmt.Sprintf("%d molecules, %d steps", a.cfg.Mols, a.cfg.Steps)
}

// addPart folds one processor's partial checksums into the collector;
// integer addition commutes, so any accumulation order — including the
// parallel engine's concurrent compute phases — gives the same output.
func (a *app) addPart(part Output) {
	a.mu.Lock()
	a.parOut.ForceSum += part.ForceSum
	a.parOut.PosSum += part.PosSum
	a.mu.Unlock()
}

func (a *app) Check() error {
	if !a.hasSeq || !a.hasPar {
		return fmt.Errorf("water: Check needs a sequential and a parallel run")
	}
	return a.seqOut.Check(a.parOut)
}

func (a *app) Seq(ctx *sim.Ctx) {
	cfg := a.cfg
	s := newState(cfg)
	forces := make([]int64, 3*cfg.Mols)
	for step := 0; step < cfg.Steps; step++ {
		for i := range forces {
			forces[i] = 0
		}
		pairs := s.forceRange(0, cfg.Mols, forces)
		ctx.Compute(sim.Time(pairs) * cfg.PairCost)
		s.integrate(0, cfg.Mols, forces)
		ctx.Compute(sim.Time(cfg.Mols) * cfg.MolCost)
	}
	a.seqOut = s.checksum(forces)
	a.hasSeq = true
}

func (a *app) SetupTMK(sys *tmk.System) {
	a.parOut, a.hasPar = Output{}, true
	cfg := a.cfg
	s := newState(cfg) // master copy: every proc reads pos lazily via DSM
	n3 := 3 * cfg.Mols
	a.posA = sys.MallocPageAligned(8 * n3)
	a.frcA = sys.MallocPageAligned(8 * n3)
	sys.InitF64(a.posA, s.pos)
}

func (a *app) TMK(p *tmk.Proc) {
	cfg := a.cfg
	n3 := 3 * cfg.Mols
	nprocs := p.N()
	lo, hi := chunk(cfg.Mols, nprocs, p.ID())
	pos := p.F64Array(a.posA, n3)
	frc := p.I64Array(a.frcA, n3)
	// Each proc's private state mirror; positions are read from
	// shared memory each step.
	ps := newState(cfg)
	acc := make([]int64, n3)
	forces := make([]int64, n3)
	for step := 0; step < cfg.Steps; step++ {
		// Read the positions this proc interacts with.
		half := cfg.Mols / 2
		for off := 0; off < hi-lo+half && off < cfg.Mols; off++ {
			m := (lo + off) % cfg.Mols
			for k := 0; k < 3; k++ {
				ps.pos[3*m+k] = pos.At(3*m + k)
			}
		}
		for i := range acc {
			acc[i] = 0
		}
		pairs := ps.forceRange(lo, hi, acc)
		p.Compute(sim.Time(pairs) * cfg.PairCost)
		// Merge per-owner contributions under that owner's lock.
		for _, q := range append([]int{p.ID()}, interactionWindow(cfg.Mols, nprocs, p.ID())...) {
			qlo, qhi := chunk(cfg.Mols, nprocs, q)
			any := false
			for i := 3 * qlo; i < 3*qhi; i++ {
				if acc[i] != 0 {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			p.LockAcquire(q)
			for i := 3 * qlo; i < 3*qhi; i++ {
				if acc[i] != 0 {
					frc.Set(i, frc.At(i)+acc[i])
				}
			}
			p.LockRelease(q)
		}
		p.Barrier(3 * step)
		// Owners read their final forces (may fault: last writer
		// was elsewhere, and false sharing brings extra data).
		for i := 3 * lo; i < 3*hi; i++ {
			forces[i] = frc.At(i)
		}
		ps.integrate(lo, hi, forces)
		p.Compute(sim.Time(hi-lo) * cfg.MolCost)
		// Write updated positions and clear own forces.
		for m := lo; m < hi; m++ {
			for k := 0; k < 3; k++ {
				pos.Set(3*m+k, ps.pos[3*m+k])
			}
		}
		for i := 3 * lo; i < 3*hi; i++ {
			frc.Set(i, 0)
		}
		p.Barrier(3*step + 1)
	}
	// Verification: fold this proc's chunk into the collector.
	var part Output
	for i := 3 * lo; i < 3*hi; i++ {
		part.ForceSum += forces[i] * int64(i%31+1)
	}
	for m := lo; m < hi; m++ {
		for k := 0; k < 3; k++ {
			i := 3*m + k
			part.PosSum += int64(math.Round(ps.pos[i]*1e6)) * int64(i%17+1)
		}
	}
	a.addPart(part)
}

func (a *app) SetupPVM(sys *pvm.System) {
	a.parOut, a.hasPar = Output{}, true
}

func (a *app) PVM(p *pvm.Proc) {
	cfg := a.cfg
	nprocs := p.N()
	lo, hi := chunk(cfg.Mols, nprocs, p.ID())
	window := interactionWindow(cfg.Mols, nprocs, p.ID())
	// Processors whose force phases need *my* positions: those whose
	// windows contain me.
	var audience []int
	for q := 0; q < nprocs; q++ {
		if q == p.ID() {
			continue
		}
		for _, w := range interactionWindow(cfg.Mols, nprocs, q) {
			if w == p.ID() {
				audience = append(audience, q)
				break
			}
		}
	}
	ps := newState(cfg)
	acc := make([]int64, 3*cfg.Mols)
	forces := make([]int64, 3*cfg.Mols)
	for step := 0; step < cfg.Steps; step++ {
		// Step-distinct tags (pos odd, frc even): the wildcard receives
		// must not conflate a delayed peer's message with a faster peer's
		// next-step traffic.
		posTag, frcTag := tagPos+2*step, tagFrc+2*step
		// Exchange displacements.
		if len(audience) > 0 {
			b := p.InitSend()
			b.PackFloat64(ps.pos[3*lo:3*hi], 3*(hi-lo), 1)
			p.Mcast(audience, posTag)
		}
		for range window {
			r := p.Recv(-1, posTag)
			qlo, qhi := chunk(cfg.Mols, nprocs, r.Src())
			r.UnpackFloat64(ps.pos[3*qlo:3*qhi], 3*(qhi-qlo), 1)
		}
		for i := range acc {
			acc[i] = 0
		}
		pairs := ps.forceRange(lo, hi, acc)
		p.Compute(sim.Time(pairs) * cfg.PairCost)
		// Ship per-owner force contributions.
		for _, q := range window {
			qlo, qhi := chunk(cfg.Mols, nprocs, q)
			b := p.InitSend()
			b.PackInt64(acc[3*qlo:3*qhi], 3*(qhi-qlo), 1)
			p.Send(q, frcTag)
		}
		for i := 3 * lo; i < 3*hi; i++ {
			forces[i] = acc[i]
		}
		for range audience {
			r := p.Recv(-1, frcTag)
			contrib := make([]int64, 3*(hi-lo))
			r.UnpackInt64(contrib, 3*(hi-lo), 1)
			for i := range contrib {
				forces[3*lo+i] += contrib[i]
			}
		}
		ps.integrate(lo, hi, forces)
		p.Compute(sim.Time(hi-lo) * cfg.MolCost)
	}
	var part Output
	for i := 3 * lo; i < 3*hi; i++ {
		part.ForceSum += forces[i] * int64(i%31+1)
	}
	for m := lo; m < hi; m++ {
		for k := 0; k < 3; k++ {
			i := 3*m + k
			part.PosSum += int64(math.Round(ps.pos[i]*1e6)) * int64(i%17+1)
		}
	}
	a.addPart(part)
}

func (a *app) Master() func(*pvm.Proc) { return nil }
