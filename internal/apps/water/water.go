// Package water implements the SPLASH Water molecular dynamics kernel
// (paper §3.8): molecules in a periodic box; each time step updates
// positions, computes pairwise intermolecular forces within a spherical
// cutoff, and updates velocities.  To avoid computing all n^2/2 pairs,
// each processor computes interactions between its own molecules and the
// n/2 molecules following them in wraparound order.
//
// Parallelization follows the paper's tuned TreadMarks version: the
// molecule array is statically divided into contiguous chunks; only
// positions ("displacements") and forces are shared; force contributions
// are accumulated locally during the force phase and added to the shared
// arrays at the end of the phase under per-processor locks.  In the PVM
// version processors exchange displacements before the force phase and
// ship locally accumulated force modifications afterwards — two user
// messages per interacting processor pair.
//
// Force accumulation order differs between runs and systems, so forces
// are accumulated in fixed-point (integer) units: addition becomes
// associative and every version produces bit-identical results.
package water

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
)

// Config describes one Water problem.
type Config struct {
	Mols  int // number of molecules (the paper: 288 and 1728)
	Steps int // time steps (the paper: 5)
	Seed  uint64

	PairCost sim.Time // per pairwise interaction evaluated
	MolCost  sim.Time // per molecule per integration phase
}

// Paper288 returns the small input (288 molecules).
func Paper288() Config {
	return Config{Mols: 288, Steps: 5, Seed: 602214,
		PairCost: 15 * sim.Microsecond, MolCost: 5 * sim.Microsecond}
}

// Paper1728 returns the large input (1728 molecules).
func Paper1728() Config {
	return Config{Mols: 1728, Steps: 5, Seed: 602214,
		PairCost: 15 * sim.Microsecond, MolCost: 5 * sim.Microsecond}
}

// Small returns a CI-sized problem.
func Small() Config {
	return Config{Mols: 64, Steps: 3, Seed: 602214,
		PairCost: 15 * sim.Microsecond, MolCost: 5 * sim.Microsecond}
}

// Fixed-point scale for force accumulation.
const fpScale = 1 << 20

// box returns the periodic box side: density held constant.
func (c Config) box() float64 {
	return 10 * math.Cbrt(float64(c.Mols)/64)
}

// cutoff returns the spherical cutoff radius.
func (c Config) cutoff() float64 {
	half := c.box() / 2
	return half * 0.9
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// initPositions places molecules on a perturbed lattice.
func (c Config) initPositions() []float64 {
	side := int(math.Ceil(math.Cbrt(float64(c.Mols))))
	spacing := c.box() / float64(side)
	pos := make([]float64, 3*c.Mols)
	i := 0
	for x := 0; x < side && i < c.Mols; x++ {
		for y := 0; y < side && i < c.Mols; y++ {
			for z := 0; z < side && i < c.Mols; z++ {
				jx := float64(splitmix64(c.Seed+uint64(3*i))%1000)/5000 - 0.1
				jy := float64(splitmix64(c.Seed+uint64(3*i+1))%1000)/5000 - 0.1
				jz := float64(splitmix64(c.Seed+uint64(3*i+2))%1000)/5000 - 0.1
				pos[3*i] = (float64(x) + 0.5 + jx) * spacing
				pos[3*i+1] = (float64(y) + 0.5 + jy) * spacing
				pos[3*i+2] = (float64(z) + 0.5 + jz) * spacing
				i++
			}
		}
	}
	return pos
}

// Output is the verification checksum: fixed-point force totals and a
// position checksum after the final step.
type Output struct {
	ForceSum int64
	PosSum   int64
}

// Check compares outputs exactly (fixed-point arithmetic end to end).
func (o Output) Check(other Output) error {
	if o != other {
		return fmt.Errorf("water: output %+v vs %+v", o, other)
	}
	return nil
}

// pairForce computes the fixed-point force contribution between two
// molecules under the minimum-image convention, or ok=false outside the
// cutoff.
func pairForce(box, cut float64, pa, pb []float64) (f [3]int64, ok bool) {
	var d [3]float64
	r2 := 0.0
	for k := 0; k < 3; k++ {
		d[k] = pa[k] - pb[k]
		if d[k] > box/2 {
			d[k] -= box
		} else if d[k] < -box/2 {
			d[k] += box
		}
		r2 += d[k] * d[k]
	}
	if r2 >= cut*cut || r2 == 0 {
		return f, false
	}
	// Soft Lennard-Jones-like radial force.
	inv := 1.0 / (r2 + 0.25)
	mag := inv*inv - 0.05*inv
	for k := 0; k < 3; k++ {
		f[k] = int64(math.Round(mag * d[k] * fpScale))
	}
	return f, true
}

// chunk returns processor id's molecule range [lo,hi).
func chunk(mols, nprocs, id int) (int, int) {
	return id * mols / nprocs, (id + 1) * mols / nprocs
}

// owner returns the processor owning molecule m.
func owner(mols, nprocs, m int) int {
	// Inverse of chunk's split.
	for p := 0; p < nprocs; p++ {
		lo, hi := chunk(mols, nprocs, p)
		if m >= lo && m < hi {
			return p
		}
	}
	panic("water: no owner")
}

// sim state shared by the three versions, operating on plain slices.
type state struct {
	cfg Config
	box float64
	cut float64
	pos []float64 // 3n positions
	vel []float64 // 3n velocities (private in all versions)
}

func newState(cfg Config) *state {
	return &state{cfg: cfg, box: cfg.box(), cut: cfg.cutoff(),
		pos: cfg.initPositions(), vel: make([]float64, 3*cfg.Mols)}
}

// forceRange computes force contributions of molecules [lo,hi) against
// their n/2 followers, accumulating fixed-point forces into acc (length
// 3n), and returns the number of pairs evaluated.
func (s *state) forceRange(lo, hi int, acc []int64) int {
	n := s.cfg.Mols
	half := n / 2
	pairs := 0
	for a := lo; a < hi; a++ {
		pa := s.pos[3*a : 3*a+3]
		for off := 1; off <= half; off++ {
			b := (a + off) % n
			// With even n, pair (a, a+n/2) appears twice (once from each
			// side); keep only the copy from the smaller index.
			if 2*off == n && a >= b {
				continue
			}
			pairs++
			f, ok := pairForce(s.box, s.cut, pa, s.pos[3*b:3*b+3])
			if !ok {
				continue
			}
			for k := 0; k < 3; k++ {
				acc[3*a+k] += f[k]
				acc[3*b+k] -= f[k]
			}
		}
	}
	return pairs
}

// integrate advances molecules [lo,hi) one step from fixed-point forces,
// updating positions and velocities in place.
func (s *state) integrate(lo, hi int, forces []int64) {
	const dt = 0.002
	for m := lo; m < hi; m++ {
		for k := 0; k < 3; k++ {
			fv := float64(forces[3*m+k]) / fpScale
			s.vel[3*m+k] += fv * dt
			p := s.pos[3*m+k] + s.vel[3*m+k]*dt
			// Wrap into the box.
			if p < 0 {
				p += s.box
			} else if p >= s.box {
				p -= s.box
			}
			s.pos[3*m+k] = p
		}
	}
}

// checksum folds positions and forces into the exact output.
func (s *state) checksum(forces []int64) Output {
	var out Output
	for i := range forces {
		out.ForceSum += forces[i] * int64(i%31+1)
	}
	for i, p := range s.pos {
		out.PosSum += int64(math.Round(p*1e6)) * int64(i%17+1)
	}
	return out
}

// RunSeq runs the sequential program.
func RunSeq(cfg Config) (core.Result, Output, error) {
	a := &app{cfg: cfg}
	res, err := core.Seq.Run(a, core.Base(1))
	return res, a.seqOut, err
}
