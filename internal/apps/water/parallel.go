package water

import (
	"math"

	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
)

// interactionWindow lists the processors whose chunks overlap the n/2
// molecules following processor id's chunk — the processors id exchanges
// data with.
func interactionWindow(mols, nprocs, id int) []int {
	lo, hi := chunk(mols, nprocs, id)
	half := mols / 2
	seen := map[int]bool{}
	var out []int
	for a := lo; a < hi; a++ {
		for _, b := range []int{(a + 1) % mols, (a + half) % mols} {
			p := owner(mols, nprocs, b)
			if p != id && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	// The window is contiguous in wraparound order; molecules between the
	// two probes above belong to processors between them as well.
	for p := 0; p < nprocs; p++ {
		if p == id || seen[p] {
			continue
		}
		plo, _ := chunk(mols, nprocs, p)
		// Does any molecule of p fall inside (lo, hi+half) mod mols?
		d := (plo - lo + mols) % mols
		if d < hi-lo+half {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// collected accumulates per-processor verification checksums out of band.
var collected Output

// RunTMK runs the TreadMarks version: positions and forces shared; force
// contributions accumulated privately and merged under per-processor
// locks at the end of the force phase.
func RunTMK(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	var posA, frcA tmk.Addr
	s := newState(cfg) // master copy: every proc reads pos lazily via DSM
	n3 := 3 * cfg.Mols
	res, err := core.RunTMK(ccfg,
		func(sys *tmk.System) {
			posA = sys.MallocPageAligned(8 * n3)
			frcA = sys.MallocPageAligned(8 * n3)
			sys.InitF64(posA, s.pos)
		},
		func(p *tmk.Proc) {
			nprocs := p.N()
			lo, hi := chunk(cfg.Mols, nprocs, p.ID())
			pos := p.F64Array(posA, n3)
			frc := p.I64Array(frcA, n3)
			// Each proc's private state mirror; positions are read from
			// shared memory each step.
			ps := newState(cfg)
			acc := make([]int64, n3)
			forces := make([]int64, n3)
			for step := 0; step < cfg.Steps; step++ {
				// Read the positions this proc interacts with.
				half := cfg.Mols / 2
				for off := 0; off < hi-lo+half && off < cfg.Mols; off++ {
					m := (lo + off) % cfg.Mols
					for k := 0; k < 3; k++ {
						ps.pos[3*m+k] = pos.At(3*m + k)
					}
				}
				for i := range acc {
					acc[i] = 0
				}
				pairs := ps.forceRange(lo, hi, acc)
				p.Compute(sim.Time(pairs) * cfg.PairCost)
				// Merge per-owner contributions under that owner's lock.
				for _, q := range append([]int{p.ID()}, interactionWindow(cfg.Mols, nprocs, p.ID())...) {
					qlo, qhi := chunk(cfg.Mols, nprocs, q)
					any := false
					for i := 3 * qlo; i < 3*qhi; i++ {
						if acc[i] != 0 {
							any = true
							break
						}
					}
					if !any {
						continue
					}
					p.LockAcquire(q)
					for i := 3 * qlo; i < 3*qhi; i++ {
						if acc[i] != 0 {
							frc.Set(i, frc.At(i)+acc[i])
						}
					}
					p.LockRelease(q)
				}
				p.Barrier(3 * step)
				// Owners read their final forces (may fault: last writer
				// was elsewhere, and false sharing brings extra data).
				for i := 3 * lo; i < 3*hi; i++ {
					forces[i] = frc.At(i)
				}
				ps.integrate(lo, hi, forces)
				p.Compute(sim.Time(hi-lo) * cfg.MolCost)
				// Write updated positions and clear own forces.
				for m := lo; m < hi; m++ {
					for k := 0; k < 3; k++ {
						pos.Set(3*m+k, ps.pos[3*m+k])
					}
				}
				for i := 3 * lo; i < 3*hi; i++ {
					frc.Set(i, 0)
				}
				p.Barrier(3*step + 1)
			}
			// Verification: fold this proc's chunk into the collector.
			var part Output
			for i := 3 * lo; i < 3*hi; i++ {
				part.ForceSum += forces[i] * int64(i%31+1)
			}
			for m := lo; m < hi; m++ {
				for k := 0; k < 3; k++ {
					i := 3*m + k
					part.PosSum += int64(math.Round(ps.pos[i]*1e6)) * int64(i%17+1)
				}
			}
			collected.ForceSum += part.ForceSum
			collected.PosSum += part.PosSum
		})
	out := collected
	collected = Output{}
	return res, out, err
}

// PVM message tags.
const (
	tagPos = 1
	tagFrc = 2
)

// RunPVM runs the PVM version: processors exchange displacements before
// the force phase and locally accumulated force modifications after it.
func RunPVM(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	res, err := core.RunPVM(ccfg, func(p *pvm.Proc) {
		nprocs := p.N()
		lo, hi := chunk(cfg.Mols, nprocs, p.ID())
		window := interactionWindow(cfg.Mols, nprocs, p.ID())
		// Processors whose force phases need *my* positions: those whose
		// windows contain me.
		var audience []int
		for q := 0; q < nprocs; q++ {
			if q == p.ID() {
				continue
			}
			for _, w := range interactionWindow(cfg.Mols, nprocs, q) {
				if w == p.ID() {
					audience = append(audience, q)
					break
				}
			}
		}
		ps := newState(cfg)
		acc := make([]int64, 3*cfg.Mols)
		forces := make([]int64, 3*cfg.Mols)
		for step := 0; step < cfg.Steps; step++ {
			// Exchange displacements.
			if len(audience) > 0 {
				b := p.InitSend()
				b.PackFloat64(ps.pos[3*lo:3*hi], 3*(hi-lo), 1)
				p.Mcast(audience, tagPos)
			}
			for range window {
				r := p.Recv(-1, tagPos)
				qlo, qhi := chunk(cfg.Mols, nprocs, r.Src())
				r.UnpackFloat64(ps.pos[3*qlo:3*qhi], 3*(qhi-qlo), 1)
			}
			for i := range acc {
				acc[i] = 0
			}
			pairs := ps.forceRange(lo, hi, acc)
			p.Compute(sim.Time(pairs) * cfg.PairCost)
			// Ship per-owner force contributions.
			for _, q := range window {
				qlo, qhi := chunk(cfg.Mols, nprocs, q)
				b := p.InitSend()
				b.PackInt64(acc[3*qlo:3*qhi], 3*(qhi-qlo), 1)
				p.Send(q, tagFrc)
			}
			for i := 3 * lo; i < 3*hi; i++ {
				forces[i] = acc[i]
			}
			for range audience {
				r := p.Recv(-1, tagFrc)
				contrib := make([]int64, 3*(hi-lo))
				r.UnpackInt64(contrib, 3*(hi-lo), 1)
				for i := range contrib {
					forces[3*lo+i] += contrib[i]
				}
			}
			ps.integrate(lo, hi, forces)
			p.Compute(sim.Time(hi-lo) * cfg.MolCost)
		}
		var part Output
		for i := 3 * lo; i < 3*hi; i++ {
			part.ForceSum += forces[i] * int64(i%31+1)
		}
		for m := lo; m < hi; m++ {
			for k := 0; k < 3; k++ {
				i := 3*m + k
				part.PosSum += int64(math.Round(ps.pos[i]*1e6)) * int64(i%17+1)
			}
		}
		collected.ForceSum += part.ForceSum
		collected.PosSum += part.PosSum
	}, nil)
	out := collected
	collected = Output{}
	return res, out, err
}
