package water

import (
	"repro/internal/core"
)

// interactionWindow lists the processors whose chunks overlap the n/2
// molecules following processor id's chunk — the processors id exchanges
// data with.
func interactionWindow(mols, nprocs, id int) []int {
	lo, hi := chunk(mols, nprocs, id)
	half := mols / 2
	seen := map[int]bool{}
	var out []int
	for a := lo; a < hi; a++ {
		for _, b := range []int{(a + 1) % mols, (a + half) % mols} {
			p := owner(mols, nprocs, b)
			if p != id && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	// The window is contiguous in wraparound order; molecules between the
	// two probes above belong to processors between them as well.
	for p := 0; p < nprocs; p++ {
		if p == id || seen[p] {
			continue
		}
		plo, _ := chunk(mols, nprocs, p)
		// Does any molecule of p fall inside (lo, hi+half) mod mols?
		d := (plo - lo + mols) % mols
		if d < hi-lo+half {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// RunTMK runs the TreadMarks version: positions and forces shared; force
// contributions accumulated privately and merged under per-processor
// locks at the end of the force phase.
func RunTMK(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := &app{cfg: cfg}
	res, err := core.TMK.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, a.parOut, err
}

// PVM message tags.
const (
	tagPos = 1
	tagFrc = 2
)

// RunPVM runs the PVM version: processors exchange displacements before
// the force phase and locally accumulated force modifications after it.
func RunPVM(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := &app{cfg: cfg}
	res, err := core.PVM.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, a.parOut, err
}
