package qsort

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
)

// app implements core.App.  QSORT is a master/slave app under PVM: the
// master owns the list and work queue, slaves partition and bubble-sort
// shipped subarrays.
type app struct {
	cfg Config

	// Shared-memory layout of the current TreadMarks run.
	listA, headA, queueA tmk.Addr

	// sink collects sorted leaves out of band; the parallel output is
	// assembled from it on demand.
	sink *leafSink

	seqOut Output
	hasSeq bool
	hasPar bool
}

// NewApp wraps a QSORT configuration as a registrable experiment.
func NewApp(cfg Config) core.App { return newApp(cfg) }

func newApp(cfg Config) *app { return &app{cfg: cfg, sink: newSink()} }

// Clone returns a fresh instance with the same configuration and no run
// state, so grid workers can run copies concurrently (core.Cloneable).
func (a *app) Clone() core.App { return newApp(a.cfg) }

// Apps returns this package's registry entry (Figure 7) at the given
// workload scale.
func Apps(scale float64) []core.App {
	cfg := Paper()
	cfg.N = core.Scaled(cfg.N, scale, 1<<12)
	cfg.Threshold = core.Scaled(cfg.Threshold, scale, 64)
	return []core.App{newApp(cfg)}
}

// BigApps returns the registry entry for the bigp scenario family: a
// bubble threshold low enough that the task queue holds ~256 leaf
// sorts, so P=256 workers all find work.
func BigApps(scale float64) []core.App {
	cfg := Paper()
	cfg.N, cfg.Threshold = 128*1024, 512
	cfg.N = core.Scaled(cfg.N, scale, 1<<14)
	return []core.App{newApp(cfg)}
}

func (a *app) Name() string { return "QSORT" }
func (a *app) Figure() int  { return 7 }

func (a *app) Problem() string {
	return fmt.Sprintf("%dK integers, bubble %d", a.cfg.N/1024, a.cfg.Threshold)
}

func (a *app) Check() error {
	if !a.hasSeq || !a.hasPar {
		return fmt.Errorf("qsort: Check needs a sequential and a parallel run")
	}
	return a.seqOut.Check(a.sink.assemble(a.cfg.N))
}

func (a *app) Seq(ctx *sim.Ctx) {
	cfg := a.cfg
	v := cfg.input()
	type rng struct{ lo, hi int }
	stack := []rng{{0, cfg.N}}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sub := v[r.lo:r.hi]
		if len(sub) <= cfg.Threshold {
			ops := bubble(sub)
			ctx.Compute(sim.Time(ops) * cfg.BubbleCost)
			continue
		}
		m := partition(sub)
		ctx.Compute(sim.Time(len(sub)) * cfg.PartCost)
		stack = append(stack, rng{r.lo, r.lo + m}, rng{r.lo + m, r.hi})
	}
	a.seqOut = checksum(v)
	a.hasSeq = true
}

func (a *app) SetupTMK(sys *tmk.System) {
	cfg := a.cfg
	a.sink = newSink()
	a.hasPar = true
	a.listA = sys.MallocPageAligned(4 * cfg.N)
	a.headA = sys.MallocPageAligned(8) // qcount, doneCount (int32 x2)
	a.queueA = sys.MallocPageAligned(8 * maxQueue)
	sys.InitI32(a.listA, cfg.input())
	sys.InitI32(a.headA, []int32{1, 0})
	sys.InitI64(a.queueA, []int64{int64(cfg.N)}) // (lo=0)<<32 | hi=N... lo in high half
}

func (a *app) TMK(p *tmk.Proc) {
	cfg := a.cfg
	list := p.I32Array(a.listA, cfg.N)
	queue := p.I64Array(a.queueA, maxQueue)
	buf := make([]int32, cfg.N)
	for {
		p.LockAcquire(lockQueue)
		qc := p.ReadI32(a.headA)
		done := p.ReadI32(a.headA + 4)
		if qc == 0 {
			p.LockRelease(lockQueue)
			if int(done) == cfg.N {
				break
			}
			p.Compute(500 * sim.Microsecond) // idle backoff, then re-poll
			continue
		}
		ent := queue.At(int(qc) - 1)
		p.WriteI32(a.headA, qc-1)
		p.LockRelease(lockQueue)
		lo := int(ent >> 32)
		hi := int(ent & 0xFFFFFFFF)
		sub := buf[:hi-lo]
		list.Load(sub, lo, hi)
		if hi-lo <= cfg.Threshold {
			ops := bubble(sub)
			p.Compute(sim.Time(ops) * cfg.BubbleCost)
			list.Store(sub, lo)
			a.sink.add(lo, sub)
			p.LockAcquire(lockQueue)
			p.WriteI32(a.headA+4, p.ReadI32(a.headA+4)+int32(hi-lo))
			p.LockRelease(lockQueue)
			continue
		}
		m := partition(sub)
		p.Compute(sim.Time(hi-lo) * cfg.PartCost)
		list.Store(sub, lo)
		// Reacquire the queue to push the two new subarrays.
		p.LockAcquire(lockQueue)
		qc = p.ReadI32(a.headA)
		if int(qc)+2 > maxQueue {
			panic("qsort: work queue overflow")
		}
		queue.Set(int(qc), int64(lo)<<32|int64(lo+m))
		queue.Set(int(qc)+1, int64(lo+m)<<32|int64(hi))
		p.WriteI32(a.headA, qc+2)
		p.LockRelease(lockQueue)
	}
	p.Barrier(0)
}

func (a *app) SetupPVM(sys *pvm.System) {
	a.sink = newSink()
	a.hasPar = true
}

// PVM is the slave body.
func (a *app) PVM(p *pvm.Proc) {
	cfg := a.cfg
	master := p.N()
	for {
		b := p.InitSend()
		b.PackOneInt32(int32(p.ID()))
		p.Send(master, tagWorkReq)
		r := p.Recv(master, tagWork)
		kind := r.UnpackOneInt32()
		if kind == 0 {
			return
		}
		lo := int(r.UnpackOneInt32())
		ln := int(r.UnpackOneInt32())
		sub := make([]int32, ln)
		r.UnpackInt32(sub, ln, 1)
		if ln <= cfg.Threshold {
			ops := bubble(sub)
			p.Compute(sim.Time(ops) * cfg.BubbleCost)
			b := p.InitSend()
			b.PackOneInt32(int32(lo))
			b.PackOneInt32(int32(ln))
			b.PackInt32(sub, ln, 1)
			p.Send(master, tagLeaf)
		} else {
			m := partition(sub)
			p.Compute(sim.Time(ln) * cfg.PartCost)
			b := p.InitSend()
			b.PackOneInt32(int32(lo))
			b.PackOneInt32(int32(m))
			b.PackOneInt32(int32(ln))
			b.PackInt32(sub, ln, 1)
			p.Send(master, tagSplit)
		}
	}
}

func (a *app) Master() func(*pvm.Proc) { return a.master }

// master owns the list and the work queue.
func (a *app) master(p *pvm.Proc) {
	cfg := a.cfg
	n := p.N()
	v := cfg.input()
	type rng struct{ lo, hi int }
	queue := []rng{{0, cfg.N}}
	waiting := []int{}
	outstanding := 0
	doneCount := 0
	doneSlaves := 0
	sendWork := func(slave int) {
		r := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		b := p.InitSend()
		b.PackOneInt32(1)
		b.PackOneInt32(int32(r.lo))
		b.PackOneInt32(int32(r.hi - r.lo))
		b.PackInt32(v[r.lo:r.hi], r.hi-r.lo, 1)
		p.Send(slave, tagWork)
		outstanding++
	}
	sendDone := func(slave int) {
		b := p.InitSend()
		b.PackOneInt32(0)
		p.Send(slave, tagWork)
		doneSlaves++
	}
	serveWaiting := func() {
		for len(waiting) > 0 && len(queue) > 0 {
			s := waiting[0]
			waiting = waiting[1:]
			sendWork(s)
		}
		if len(queue) == 0 && outstanding == 0 && doneCount == cfg.N {
			for _, s := range waiting {
				sendDone(s)
			}
			waiting = nil
		}
	}
	for doneSlaves < n {
		r := p.Recv(-1, -1)
		switch r.Tag() {
		case tagWorkReq:
			slave := int(r.UnpackOneInt32())
			if len(queue) > 0 {
				sendWork(slave)
			} else if outstanding == 0 && doneCount == cfg.N {
				sendDone(slave)
			} else {
				waiting = append(waiting, slave)
			}
		case tagLeaf:
			lo := int(r.UnpackOneInt32())
			ln := int(r.UnpackOneInt32())
			sub := make([]int32, ln)
			r.UnpackInt32(sub, ln, 1)
			copy(v[lo:lo+ln], sub)
			a.sink.add(lo, sub)
			doneCount += ln
			outstanding--
			serveWaiting()
		case tagSplit:
			lo := int(r.UnpackOneInt32())
			m := int(r.UnpackOneInt32())
			ln := int(r.UnpackOneInt32())
			sub := make([]int32, ln)
			r.UnpackInt32(sub, ln, 1)
			copy(v[lo:lo+ln], sub)
			queue = append(queue, rng{lo, lo + m}, rng{lo + m, lo + ln})
			outstanding--
			serveWaiting()
		}
	}
}
