// Package qsort implements the parallel quicksort of the paper (§3.7):
// a work queue holds descriptors of unsorted subarrays; workers pop a
// subarray, partition it (pushing the pieces back on the queue), and
// bubble-sort it once it is below a threshold.
//
// In the TreadMarks version the integer list and the work queue are
// shared, with queue access protected by a lock; subarrays and the queue
// migrate between processors, producing the diff requests, false sharing
// at subarray boundaries, and diff accumulation the paper reports.  In
// the PVM version a master process owns the list and the queue; slaves
// receive subarray data, partition or sort it, and ship it back.
package qsort

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
)

// Config describes one sorting problem.
type Config struct {
	N         int // number of integers (the paper: 256K)
	Threshold int // bubble-sort threshold (the paper: 1024)
	Seed      uint64

	PartCost   sim.Time // per element partitioned
	BubbleCost sim.Time // per bubble-sort comparison
}

// Paper returns the paper-scale problem.
func Paper() Config {
	return Config{N: 256 * 1024, Threshold: 1024, Seed: 141421,
		PartCost: 250 * sim.Nanosecond, BubbleCost: 150 * sim.Nanosecond}
}

// Small returns a CI-sized problem.
func Small() Config {
	return Config{N: 4096, Threshold: 256, Seed: 141421,
		PartCost: 250 * sim.Nanosecond, BubbleCost: 150 * sim.Nanosecond}
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// input generates the deterministic unsorted list.
func (c Config) input() []int32 {
	v := make([]int32, c.N)
	for i := range v {
		v[i] = int32(splitmix64(c.Seed+uint64(i)) & 0x7FFFFFFF)
	}
	return v
}

// Output is the verification checksum over the sorted array.
type Output struct {
	Checksum int64
	Sorted   bool
}

// Check compares outputs exactly.
func (o Output) Check(other Output) error {
	if o != other {
		return fmt.Errorf("qsort: output %+v vs %+v", o, other)
	}
	return nil
}

func checksum(v []int32) Output {
	var s int64
	sorted := true
	for i, x := range v {
		s += int64(x) * int64(i%1000+1)
		if i > 0 && v[i-1] > x {
			sorted = false
		}
	}
	return Output{Checksum: s, Sorted: sorted}
}

// partition performs a deterministic Hoare-style partition with a
// median-of-three pivot, returning the split point (elements [0,m) <=
// pivot <= elements [m, len)); m is always in (0, len).
func partition(v []int32) int {
	n := len(v)
	a, b, c := v[0], v[n/2], v[n-1]
	pivot := a
	if (a <= b && b <= c) || (c <= b && b <= a) {
		pivot = b
	} else if (b <= a && a <= c) || (c <= a && a <= b) {
		pivot = a
	} else {
		pivot = c
	}
	i, j := 0, n-1
	for {
		for v[i] < pivot {
			i++
		}
		for v[j] > pivot {
			j--
		}
		if i >= j {
			break
		}
		v[i], v[j] = v[j], v[i]
		i++
		j--
	}
	m := j + 1
	if m <= 0 {
		m = 1
	}
	if m >= n {
		m = n - 1
	}
	return m
}

// bubble sorts v in place and returns the comparison count.
func bubble(v []int32) int64 {
	var ops int64
	n := len(v)
	for {
		swapped := false
		for i := 1; i < n; i++ {
			ops++
			if v[i-1] > v[i] {
				v[i-1], v[i] = v[i], v[i-1]
				swapped = true
			}
		}
		n--
		if !swapped || n <= 1 {
			return ops
		}
	}
}

// RunSeq runs the sequential program (explicit stack of subarrays).
func RunSeq(cfg Config) (core.Result, Output, error) {
	var out Output
	res, err := core.RunSeq(func(ctx *sim.Ctx) {
		v := cfg.input()
		type rng struct{ lo, hi int }
		stack := []rng{{0, cfg.N}}
		for len(stack) > 0 {
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			sub := v[r.lo:r.hi]
			if len(sub) <= cfg.Threshold {
				ops := bubble(sub)
				ctx.Compute(sim.Time(ops) * cfg.BubbleCost)
				continue
			}
			m := partition(sub)
			ctx.Compute(sim.Time(len(sub)) * cfg.PartCost)
			stack = append(stack, rng{r.lo, r.lo + m}, rng{r.lo + m, r.hi})
		}
		out = checksum(v)
	})
	return res, out, err
}

// leafSink collects sorted leaves out of band for verification.
type leafSink struct {
	leaves map[int][]int32
}

func newSink() *leafSink { return &leafSink{leaves: map[int][]int32{}} }

func (s *leafSink) add(lo int, vals []int32) {
	s.leaves[lo] = append([]int32(nil), vals...)
}

func (s *leafSink) assemble(n int) Output {
	offs := make([]int, 0, len(s.leaves))
	for lo := range s.leaves {
		offs = append(offs, lo)
	}
	sort.Ints(offs)
	v := make([]int32, 0, n)
	for _, lo := range offs {
		if lo != len(v) {
			return Output{} // gap or overlap: verification fails loudly
		}
		v = append(v, s.leaves[lo]...)
	}
	if len(v) != n {
		return Output{}
	}
	return checksum(v)
}

// Shared layout for the TreadMarks version.
const (
	lockQueue = 0
	maxQueue  = 8192
)

// RunTMK runs the TreadMarks version: list and work queue shared, queue
// under a lock, termination via a shared done-count.
func RunTMK(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	var listA, headA, queueA tmk.Addr
	sink := newSink()
	res, err := core.RunTMK(ccfg,
		func(sys *tmk.System) {
			listA = sys.MallocPageAligned(4 * cfg.N)
			headA = sys.MallocPageAligned(8) // qcount, doneCount (int32 x2)
			queueA = sys.MallocPageAligned(8 * maxQueue)
			sys.InitI32(listA, cfg.input())
			sys.InitI32(headA, []int32{1, 0})
			sys.InitI64(queueA, []int64{int64(cfg.N)}) // (lo=0)<<32 | hi=N... lo in high half
		},
		func(p *tmk.Proc) {
			list := p.I32Array(listA, cfg.N)
			queue := p.I64Array(queueA, maxQueue)
			buf := make([]int32, cfg.N)
			for {
				p.LockAcquire(lockQueue)
				qc := p.ReadI32(headA)
				done := p.ReadI32(headA + 4)
				if qc == 0 {
					p.LockRelease(lockQueue)
					if int(done) == cfg.N {
						break
					}
					p.Compute(500 * sim.Microsecond) // idle backoff, then re-poll
					continue
				}
				ent := queue.At(int(qc) - 1)
				p.WriteI32(headA, qc-1)
				p.LockRelease(lockQueue)
				lo := int(ent >> 32)
				hi := int(ent & 0xFFFFFFFF)
				sub := buf[:hi-lo]
				list.Load(sub, lo, hi)
				if hi-lo <= cfg.Threshold {
					ops := bubble(sub)
					p.Compute(sim.Time(ops) * cfg.BubbleCost)
					list.Store(sub, lo)
					sink.add(lo, sub)
					p.LockAcquire(lockQueue)
					p.WriteI32(headA+4, p.ReadI32(headA+4)+int32(hi-lo))
					p.LockRelease(lockQueue)
					continue
				}
				m := partition(sub)
				p.Compute(sim.Time(hi-lo) * cfg.PartCost)
				list.Store(sub, lo)
				// Reacquire the queue to push the two new subarrays.
				p.LockAcquire(lockQueue)
				qc = p.ReadI32(headA)
				if int(qc)+2 > maxQueue {
					panic("qsort: work queue overflow")
				}
				queue.Set(int(qc), int64(lo)<<32|int64(lo+m))
				queue.Set(int(qc)+1, int64(lo+m)<<32|int64(hi))
				p.WriteI32(headA, qc+2)
				p.LockRelease(lockQueue)
			}
			p.Barrier(0)
		})
	return res, sink.assemble(cfg.N), err
}

// PVM message tags.
const (
	tagWorkReq = 1
	tagWork    = 2 // kind, lo, data (kind 0 = done)
	tagLeaf    = 3 // sorted leaf: lo, data
	tagSplit   = 4 // partitioned subarray: lo, m, data
)

// RunPVM runs the master/slave PVM version.
func RunPVM(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	sink := newSink()
	n := ccfg.Procs
	res, err := core.RunPVM(ccfg,
		func(p *pvm.Proc) { // slave
			master := n
			for {
				b := p.InitSend()
				b.PackOneInt32(int32(p.ID()))
				p.Send(master, tagWorkReq)
				r := p.Recv(master, tagWork)
				kind := r.UnpackOneInt32()
				if kind == 0 {
					return
				}
				lo := int(r.UnpackOneInt32())
				ln := int(r.UnpackOneInt32())
				sub := make([]int32, ln)
				r.UnpackInt32(sub, ln, 1)
				if ln <= cfg.Threshold {
					ops := bubble(sub)
					p.Compute(sim.Time(ops) * cfg.BubbleCost)
					b := p.InitSend()
					b.PackOneInt32(int32(lo))
					b.PackOneInt32(int32(ln))
					b.PackInt32(sub, ln, 1)
					p.Send(master, tagLeaf)
				} else {
					m := partition(sub)
					p.Compute(sim.Time(ln) * cfg.PartCost)
					b := p.InitSend()
					b.PackOneInt32(int32(lo))
					b.PackOneInt32(int32(m))
					b.PackOneInt32(int32(ln))
					b.PackInt32(sub, ln, 1)
					p.Send(master, tagSplit)
				}
			}
		},
		func(p *pvm.Proc) { // master: owns the list and the work queue
			v := cfg.input()
			type rng struct{ lo, hi int }
			queue := []rng{{0, cfg.N}}
			waiting := []int{}
			outstanding := 0
			doneCount := 0
			doneSlaves := 0
			sendWork := func(slave int) {
				r := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				b := p.InitSend()
				b.PackOneInt32(1)
				b.PackOneInt32(int32(r.lo))
				b.PackOneInt32(int32(r.hi - r.lo))
				b.PackInt32(v[r.lo:r.hi], r.hi-r.lo, 1)
				p.Send(slave, tagWork)
				outstanding++
			}
			sendDone := func(slave int) {
				b := p.InitSend()
				b.PackOneInt32(0)
				p.Send(slave, tagWork)
				doneSlaves++
			}
			serveWaiting := func() {
				for len(waiting) > 0 && len(queue) > 0 {
					s := waiting[0]
					waiting = waiting[1:]
					sendWork(s)
				}
				if len(queue) == 0 && outstanding == 0 && doneCount == cfg.N {
					for _, s := range waiting {
						sendDone(s)
					}
					waiting = nil
				}
			}
			for doneSlaves < n {
				r := p.Recv(-1, -1)
				switch r.Tag() {
				case tagWorkReq:
					slave := int(r.UnpackOneInt32())
					if len(queue) > 0 {
						sendWork(slave)
					} else if outstanding == 0 && doneCount == cfg.N {
						sendDone(slave)
					} else {
						waiting = append(waiting, slave)
					}
				case tagLeaf:
					lo := int(r.UnpackOneInt32())
					ln := int(r.UnpackOneInt32())
					sub := make([]int32, ln)
					r.UnpackInt32(sub, ln, 1)
					copy(v[lo:lo+ln], sub)
					sink.add(lo, sub)
					doneCount += ln
					outstanding--
					serveWaiting()
				case tagSplit:
					lo := int(r.UnpackOneInt32())
					m := int(r.UnpackOneInt32())
					ln := int(r.UnpackOneInt32())
					sub := make([]int32, ln)
					r.UnpackInt32(sub, ln, 1)
					copy(v[lo:lo+ln], sub)
					queue = append(queue, rng{lo, lo + m}, rng{lo + m, lo + ln})
					outstanding--
					serveWaiting()
				}
			}
		})
	return res, sink.assemble(cfg.N), err
}
