// Package qsort implements the parallel quicksort of the paper (§3.7):
// a work queue holds descriptors of unsorted subarrays; workers pop a
// subarray, partition it (pushing the pieces back on the queue), and
// bubble-sort it once it is below a threshold.
//
// In the TreadMarks version the integer list and the work queue are
// shared, with queue access protected by a lock; subarrays and the queue
// migrate between processors, producing the diff requests, false sharing
// at subarray boundaries, and diff accumulation the paper reports.  In
// the PVM version a master process owns the list and the queue; slaves
// receive subarray data, partition or sort it, and ship it back.
package qsort

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
	"sync"
)

// Config describes one sorting problem.
type Config struct {
	N         int // number of integers (the paper: 256K)
	Threshold int // bubble-sort threshold (the paper: 1024)
	Seed      uint64

	PartCost   sim.Time // per element partitioned
	BubbleCost sim.Time // per bubble-sort comparison
}

// Paper returns the paper-scale problem.
func Paper() Config {
	return Config{N: 256 * 1024, Threshold: 1024, Seed: 141421,
		PartCost: 250 * sim.Nanosecond, BubbleCost: 150 * sim.Nanosecond}
}

// Small returns a CI-sized problem.
func Small() Config {
	return Config{N: 4096, Threshold: 256, Seed: 141421,
		PartCost: 250 * sim.Nanosecond, BubbleCost: 150 * sim.Nanosecond}
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// input generates the deterministic unsorted list.
func (c Config) input() []int32 {
	v := make([]int32, c.N)
	for i := range v {
		v[i] = int32(splitmix64(c.Seed+uint64(i)) & 0x7FFFFFFF)
	}
	return v
}

// Output is the verification checksum over the sorted array.
type Output struct {
	Checksum int64
	Sorted   bool
}

// Check compares outputs exactly.
func (o Output) Check(other Output) error {
	if o != other {
		return fmt.Errorf("qsort: output %+v vs %+v", o, other)
	}
	return nil
}

func checksum(v []int32) Output {
	var s int64
	sorted := true
	for i, x := range v {
		s += int64(x) * int64(i%1000+1)
		if i > 0 && v[i-1] > x {
			sorted = false
		}
	}
	return Output{Checksum: s, Sorted: sorted}
}

// partition performs a deterministic Hoare-style partition with a
// median-of-three pivot, returning the split point (elements [0,m) <=
// pivot <= elements [m, len)); m is always in (0, len).
func partition(v []int32) int {
	n := len(v)
	a, b, c := v[0], v[n/2], v[n-1]
	pivot := a
	if (a <= b && b <= c) || (c <= b && b <= a) {
		pivot = b
	} else if (b <= a && a <= c) || (c <= a && a <= b) {
		pivot = a
	} else {
		pivot = c
	}
	i, j := 0, n-1
	for {
		for v[i] < pivot {
			i++
		}
		for v[j] > pivot {
			j--
		}
		if i >= j {
			break
		}
		v[i], v[j] = v[j], v[i]
		i++
		j--
	}
	m := j + 1
	if m <= 0 {
		m = 1
	}
	if m >= n {
		m = n - 1
	}
	return m
}

// bubble sorts v in place and returns the comparison count.
func bubble(v []int32) int64 {
	var ops int64
	n := len(v)
	for {
		swapped := false
		for i := 1; i < n; i++ {
			ops++
			if v[i-1] > v[i] {
				v[i-1], v[i] = v[i], v[i-1]
				swapped = true
			}
		}
		n--
		if !swapped || n <= 1 {
			return ops
		}
	}
}

// RunSeq runs the sequential program (explicit stack of subarrays).
func RunSeq(cfg Config) (core.Result, Output, error) {
	a := newApp(cfg)
	res, err := core.Seq.Run(a, core.Base(1))
	return res, a.seqOut, err
}

// leafSink collects sorted leaves out of band for verification.  The
// mutex makes add safe from concurrently executing compute phases
// (parallel engine mode); the assembled output is keyed by offset, so
// insertion order never matters.
type leafSink struct {
	mu     sync.Mutex
	leaves map[int][]int32
}

func newSink() *leafSink { return &leafSink{leaves: map[int][]int32{}} }

func (s *leafSink) add(lo int, vals []int32) {
	s.mu.Lock()
	s.leaves[lo] = append([]int32(nil), vals...)
	s.mu.Unlock()
}

func (s *leafSink) assemble(n int) Output {
	offs := make([]int, 0, len(s.leaves))
	for lo := range s.leaves {
		offs = append(offs, lo)
	}
	sort.Ints(offs)
	v := make([]int32, 0, n)
	for _, lo := range offs {
		if lo != len(v) {
			return Output{} // gap or overlap: verification fails loudly
		}
		v = append(v, s.leaves[lo]...)
	}
	if len(v) != n {
		return Output{}
	}
	return checksum(v)
}

// Shared layout for the TreadMarks version.
const (
	lockQueue = 0
	maxQueue  = 8192
)

// RunTMK runs the TreadMarks version: list and work queue shared, queue
// under a lock, termination via a shared done-count.
func RunTMK(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := newApp(cfg)
	res, err := core.TMK.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, a.sink.assemble(cfg.N), err
}

// PVM message tags.
const (
	tagWorkReq = 1
	tagWork    = 2 // kind, lo, data (kind 0 = done)
	tagLeaf    = 3 // sorted leaf: lo, data
	tagSplit   = 4 // partitioned subarray: lo, m, data
)

// RunPVM runs the master/slave PVM version.
func RunPVM(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := newApp(cfg)
	res, err := core.PVM.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, a.sink.assemble(cfg.N), err
}
