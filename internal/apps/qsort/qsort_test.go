package qsort

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestPartitionProperty(t *testing.T) {
	f := func(vals []int32) bool {
		if len(vals) < 2 {
			return true
		}
		v := append([]int32(nil), vals...)
		m := partition(v)
		if m <= 0 || m >= len(v) {
			return false
		}
		max := v[0]
		for _, x := range v[:m] {
			if x > max {
				max = x
			}
		}
		for _, x := range v[m:] {
			if x < max {
				return false
			}
		}
		// Multiset preserved.
		count := map[int32]int{}
		for _, x := range vals {
			count[x]++
		}
		for _, x := range v {
			count[x]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBubbleSortsProperty(t *testing.T) {
	f := func(vals []int32) bool {
		v := append([]int32(nil), vals...)
		bubble(v)
		for i := 1; i < len(v); i++ {
			if v[i-1] > v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqSorts(t *testing.T) {
	cfg := Small()
	_, out, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Sorted {
		t.Fatal("sequential result not sorted")
	}
	if out.Checksum == 0 {
		t.Fatal("degenerate checksum")
	}
}

func TestTMKMatchesSequential(t *testing.T) {
	cfg := Small()
	_, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		_, got, err := RunTMK(cfg, core.Default(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !got.Sorted {
			t.Fatalf("n=%d: not sorted", n)
		}
		if err := want.Check(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestPVMMatchesSequential(t *testing.T) {
	cfg := Small()
	_, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		_, got, err := RunPVM(cfg, core.Default(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := want.Check(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// Diff requests dominate TreadMarks traffic here (paper: ~5x more
// messages than PVM; most are diff requests and responses).
func TestTMKManyMoreMessages(t *testing.T) {
	cfg := Small()
	const n = 4
	pvmRes, _, err := RunPVM(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	tmkRes, _, err := RunTMK(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	if tmkRes.Net.Messages <= pvmRes.Net.Messages {
		t.Fatalf("tmk %d msgs <= pvm %d msgs", tmkRes.Net.Messages, pvmRes.Net.Messages)
	}
	if tmkRes.DiffRequests == 0 {
		t.Fatal("expected diff requests for migrating subarrays")
	}
}

// Paper-scale: TreadMarks reaches 70-95% of PVM's speedup (the paper
// reports a ~20% difference at 8 processors).
func TestPaperScaleGap(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	cfg := Paper()
	seq, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pvmRes, pvmOut, err := RunPVM(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	tmkRes, tmkOut, err := RunTMK(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := want.Check(pvmOut); err != nil {
		t.Fatal(err)
	}
	if err := want.Check(tmkOut); err != nil {
		t.Fatal(err)
	}
	sp := seq.Time.Seconds() / pvmRes.Time.Seconds()
	st := seq.Time.Seconds() / tmkRes.Time.Seconds()
	if st > sp {
		t.Errorf("tmk speedup %.2f should trail pvm %.2f", st, sp)
	}
	if st < 0.5*sp {
		t.Errorf("tmk speedup %.2f below half of pvm %.2f", st, sp)
	}
}
