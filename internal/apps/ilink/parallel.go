package ilink

import (
	"repro/internal/core"
)

// RunTMK runs the TreadMarks version: the bank of genarrays and the
// parent's index array are shared; barriers separate the master's
// reinitialization, the parallel element updates, and the summation.
func RunTMK(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := &app{cfg: cfg}
	res, err := core.TMK.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, a.parOut, err
}

// PVM message tags.
const (
	tagWork   = 1
	tagResult = 2
)

// RunPVM runs the PVM version: the master keeps the bank private; per
// family it sends each slave its assigned parent elements plus the member
// cluster contexts (nonzeros only, one message), and receives the updated
// elements back (one message).
func RunPVM(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := &app{cfg: cfg}
	res, err := core.PVM.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, a.parOut, err
}
