// Package ilink implements the computational kernel of ILINK, the genetic
// linkage analysis program the paper evaluates (§3.11), following the
// parallelization of Dwarkadas et al.: the program walks a set of family
// trees visiting each nuclear family; a bank of genarrays (per-person
// genotype probability vectors, sparse, with an index array of nonzero
// positions) is reinitialized for every family; updates to a parent's
// genarray are parallelized by assigning the nonzero elements to
// processors round-robin; the master then sums the contributions.
//
// The paper's CLP input is proprietary pedigree data; we substitute a
// deterministic synthetic pedigree whose genarrays have the same footprint
// (multi-page, sparse, with nonzeros clustered as haplotype structure
// clusters them).  The three TreadMarks effects the paper identifies are
// all preserved: one diff request per genarray page instead of PVM's
// single batched message, false sharing from the round-robin element
// assignment, and diff accumulation from the bank reinitialization.
//
// In the TreadMarks version the bank and the index array are shared and
// barriers separate the phases.  In the PVM version the master keeps the
// bank privately and exchanges only nonzero elements with the slaves, one
// message each way per family.
package ilink

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Config describes one linkage analysis run.
type Config struct {
	G        int // genarray length (float64 entries; 512 entries = 1 page)
	Families int // nuclear family visits
	FamSize  int // persons per nuclear family (parent, spouse, children)
	Cluster  int // nonzero cluster span within a genarray
	Seed     uint64

	ElemCost sim.Time // per (nonzero element x family member) update
	InitCost sim.Time // per genarray entry at reinitialization
	SumCost  sim.Time // per nonzero at the master's summation
}

// Paper returns the CLP-scale substitute: 8-page genarrays, five-person
// families, ~820 nonzeros per parent.
func Paper() Config {
	return Config{G: 4096, Families: 16, FamSize: 5, Cluster: 1024, Seed: 533000,
		ElemCost: 500 * sim.Microsecond, InitCost: 2 * sim.Microsecond,
		SumCost: 1 * sim.Microsecond}
}

// Small returns a CI-sized run.
func Small() Config {
	return Config{G: 512, Families: 3, FamSize: 4, Cluster: 128, Seed: 533000,
		ElemCost: 500 * sim.Microsecond, InitCost: 2 * sim.Microsecond,
		SumCost: 1 * sim.Microsecond}
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (c Config) unit(k uint64) float64 {
	return float64(splitmix64(c.Seed+k)>>11) / (1 << 53)
}

// clusterStart gives the nonzero cluster origin for (family, member).
func (c Config) clusterStart(fam, member int) int {
	span := c.G - c.Cluster
	if span <= 0 {
		return 0
	}
	return int(splitmix64(c.Seed+uint64(1000*fam+member)) % uint64(span))
}

// initValue returns person member's genarray entry g for the given
// family: nonzero inside the member's cluster with ~80% density.
func (c Config) initValue(fam, member, g int) float64 {
	start := c.clusterStart(fam, member)
	if g < start || g >= start+c.Cluster {
		return 0
	}
	key := uint64(fam)<<40 | uint64(member)<<32 | uint64(g)
	if splitmix64(c.Seed+key)%100 >= 80 {
		return 0
	}
	return 0.1 + 0.9*c.unit(key+7)
}

// parentNonzeros lists the parent's nonzero positions in order.
func (c Config) parentNonzeros(fam int) []int32 {
	var out []int32
	start := c.clusterStart(fam, 0)
	for g := start; g < start+c.Cluster && g < c.G; g++ {
		if c.initValue(fam, 0, g) != 0 {
			out = append(out, int32(g))
		}
	}
	return out
}

// updateElem computes the parent's updated genarray entry at position g,
// conditioned on the other family members (genArrays[m][.]).  The mapping
// into member m's cluster mirrors haplotype correspondence.
func (c Config) updateElem(fam int, g int32, parentVal float64, members [][]float64) float64 {
	v := parentVal
	pstart := c.clusterStart(fam, 0)
	for m := 1; m < c.FamSize; m++ {
		mstart := c.clusterStart(fam, m)
		gm := mstart + (int(g)-pstart)%c.Cluster
		if gm >= c.G {
			gm = c.G - 1
		}
		v *= 0.55 + 0.4*members[m][gm]
	}
	return v
}

// Output is the accumulated log-likelihood (bit-exact across versions:
// the master always sums contributions in index order).
type Output struct {
	LogLike float64
}

// Check compares outputs exactly.
func (o Output) Check(other Output) error {
	if o != other {
		return fmt.Errorf("ilink: loglike %v vs %v", o.LogLike, other.LogLike)
	}
	return nil
}

// RunSeq runs the sequential program.
func RunSeq(cfg Config) (core.Result, Output, error) {
	a := &app{cfg: cfg}
	res, err := core.Seq.Run(a, core.Base(1))
	return res, a.seqOut, err
}
