package ilink

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
)

// app implements core.App.
type app struct {
	cfg Config

	bankA, idxA tmk.Addr // shared layout of the current TreadMarks run

	parOut Output // master's log-likelihood (collector)
	seqOut Output
	hasSeq bool
	hasPar bool
}

// NewApp wraps an ILINK configuration as a registrable experiment.
func NewApp(cfg Config) core.App { return &app{cfg: cfg} }

// Clone returns a fresh instance with the same configuration and no run
// state, so grid workers can run copies concurrently (core.Cloneable).
func (a *app) Clone() core.App { return &app{cfg: a.cfg} }

// Apps returns this package's registry entry (Figure 12) at the given
// workload scale.
func Apps(scale float64) []core.App {
	cfg := Paper()
	cfg.Families = core.Scaled(cfg.Families, scale, 2)
	return []core.App{&app{cfg: cfg}}
}

// BigApps returns the registry entry for the bigp scenario family:
// more family visits than the paper input (the unit of parallelism)
// over a smaller genarray, so the per-visit broadcast stays CI-sized
// at P=256.
func BigApps(scale float64) []core.App {
	cfg := Paper()
	cfg.Families, cfg.G, cfg.Cluster = 24, 2048, 512
	cfg.Families = core.Scaled(cfg.Families, scale, 4)
	return []core.App{&app{cfg: cfg}}
}

func (a *app) Name() string { return "ILINK" }
func (a *app) Figure() int  { return 12 }

func (a *app) Problem() string {
	return fmt.Sprintf("synthetic CLP, %d families", a.cfg.Families)
}

func (a *app) Check() error {
	if !a.hasSeq || !a.hasPar {
		return fmt.Errorf("ilink: Check needs a sequential and a parallel run")
	}
	return a.seqOut.Check(a.parOut)
}

func (a *app) Seq(ctx *sim.Ctx) {
	cfg := a.cfg
	bank := make([][]float64, cfg.FamSize)
	for m := range bank {
		bank[m] = make([]float64, cfg.G)
	}
	a.seqOut = Output{}
	for fam := 0; fam < cfg.Families; fam++ {
		// Reinitialize the bank for this family.
		for m := 0; m < cfg.FamSize; m++ {
			for g := 0; g < cfg.G; g++ {
				bank[m][g] = cfg.initValue(fam, m, g)
			}
		}
		ctx.Compute(sim.Time(cfg.FamSize*cfg.G) * cfg.InitCost)
		// Update the parent conditioned on spouse and children.
		nz := cfg.parentNonzeros(fam)
		for _, g := range nz {
			bank[0][g] = cfg.updateElem(fam, g, bank[0][g], bank)
		}
		ctx.Compute(sim.Time(len(nz)*(cfg.FamSize-1)) * cfg.ElemCost)
		// Sum the contributions in index order.
		sum := 0.0
		for _, g := range nz {
			sum += bank[0][g]
		}
		ctx.Compute(sim.Time(len(nz)) * cfg.SumCost)
		a.seqOut.LogLike += math.Log(sum)
	}
	a.hasSeq = true
}

func (a *app) SetupTMK(sys *tmk.System) {
	a.parOut, a.hasPar = Output{}, true
	cfg := a.cfg
	a.bankA = sys.MallocPageAligned(8 * cfg.FamSize * cfg.G)
	a.idxA = sys.MallocPageAligned(4 * (cfg.G + 1))
}

func (a *app) TMK(p *tmk.Proc) {
	cfg := a.cfg
	n := p.N()
	bank := p.F64Array(a.bankA, cfg.FamSize*cfg.G)
	idx := p.I32Array(a.idxA, cfg.G+1)
	members := make([][]float64, cfg.FamSize)
	for m := range members {
		members[m] = make([]float64, cfg.G)
	}
	for fam := 0; fam < cfg.Families; fam++ {
		if p.ID() == 0 {
			// Master: reinitialize the bank and the index array.
			buf := make([]float64, cfg.G)
			for m := 0; m < cfg.FamSize; m++ {
				for g := 0; g < cfg.G; g++ {
					buf[g] = cfg.initValue(fam, m, g)
				}
				bank.Store(buf, m*cfg.G)
			}
			p.Compute(sim.Time(cfg.FamSize*cfg.G) * cfg.InitCost)
			nz := cfg.parentNonzeros(fam)
			idx.Set(0, int32(len(nz)))
			idx.Store(nz, 1)
		}
		p.Barrier(3 * fam)
		// All: read the index array and member genarrays, update
		// the round-robin share of the parent's nonzeros.
		cnt := int(idx.At(0))
		nz := make([]int32, cnt)
		idx.Load(nz, 1, 1+cnt)
		for m := 1; m < cfg.FamSize; m++ {
			start := cfg.clusterStart(fam, m)
			end := start + cfg.Cluster
			if end > cfg.G {
				end = cfg.G
			}
			bank.Load(members[m][start:end], m*cfg.G+start, m*cfg.G+end)
		}
		work := 0
		for r := p.ID(); r < cnt; r += n {
			g := nz[r]
			old := bank.At(int(g))
			bank.Set(int(g), cfg.updateElem(fam, g, old, members))
			work++
		}
		p.Compute(sim.Time(work*(cfg.FamSize-1)) * cfg.ElemCost)
		p.Barrier(3*fam + 1)
		if p.ID() == 0 {
			// Master: sum the contributions in index order.
			sum := 0.0
			for _, g := range nz {
				sum += bank.At(int(g))
			}
			p.Compute(sim.Time(cnt) * cfg.SumCost)
			a.parOut.LogLike += math.Log(sum)
		}
	}
	p.Barrier(3 * cfg.Families)
}

func (a *app) SetupPVM(sys *pvm.System) {
	a.parOut, a.hasPar = Output{}, true
}

func (a *app) PVM(p *pvm.Proc) {
	cfg := a.cfg
	n := p.N()
	if p.ID() == 0 {
		// Master (also works on its own share, as in the paper).
		bank := make([][]float64, cfg.FamSize)
		for m := range bank {
			bank[m] = make([]float64, cfg.G)
		}
		for fam := 0; fam < cfg.Families; fam++ {
			for m := 0; m < cfg.FamSize; m++ {
				for g := 0; g < cfg.G; g++ {
					bank[m][g] = cfg.initValue(fam, m, g)
				}
			}
			p.Compute(sim.Time(cfg.FamSize*cfg.G) * cfg.InitCost)
			nz := cfg.parentNonzeros(fam)
			// Ship each slave its share plus the member contexts.
			for q := 1; q < n; q++ {
				var pos []int32
				var vals []float64
				for r := q; r < len(nz); r += n {
					pos = append(pos, nz[r])
					vals = append(vals, bank[0][nz[r]])
				}
				b := p.InitSend()
				b.PackOneInt32(int32(len(pos)))
				if len(pos) > 0 {
					b.PackInt32(pos, len(pos), 1)
					b.PackFloat64(vals, len(vals), 1)
				}
				for m := 1; m < cfg.FamSize; m++ {
					start := cfg.clusterStart(fam, m)
					end := start + cfg.Cluster
					if end > cfg.G {
						end = cfg.G
					}
					b.PackOneInt32(int32(start))
					b.PackOneInt32(int32(end - start))
					b.PackFloat64(bank[m][start:end], end-start, 1)
				}
				p.Send(q, tagWork)
			}
			// Master's own share.
			work := 0
			for r := 0; r < len(nz); r += n {
				g := nz[r]
				bank[0][g] = cfg.updateElem(fam, g, bank[0][g], bank)
				work++
			}
			p.Compute(sim.Time(work*(cfg.FamSize-1)) * cfg.ElemCost)
			// Collect slave results.
			for q := 1; q < n; q++ {
				r := p.Recv(q, tagResult)
				cnt := int(r.UnpackOneInt32())
				if cnt > 0 {
					pos := make([]int32, cnt)
					vals := make([]float64, cnt)
					r.UnpackInt32(pos, cnt, 1)
					r.UnpackFloat64(vals, cnt, 1)
					for i, g := range pos {
						bank[0][g] = vals[i]
					}
				}
			}
			sum := 0.0
			for _, g := range nz {
				sum += bank[0][g]
			}
			p.Compute(sim.Time(len(nz)) * cfg.SumCost)
			a.parOut.LogLike += math.Log(sum)
		}
		return
	}
	// Slave.
	members := make([][]float64, cfg.FamSize)
	for m := range members {
		members[m] = make([]float64, cfg.G)
	}
	for fam := 0; fam < cfg.Families; fam++ {
		r := p.Recv(0, tagWork)
		cnt := int(r.UnpackOneInt32())
		pos := make([]int32, cnt)
		vals := make([]float64, cnt)
		if cnt > 0 {
			r.UnpackInt32(pos, cnt, 1)
			r.UnpackFloat64(vals, cnt, 1)
		}
		for m := 1; m < cfg.FamSize; m++ {
			start := int(r.UnpackOneInt32())
			ln := int(r.UnpackOneInt32())
			r.UnpackFloat64(members[m][start:start+ln], ln, 1)
		}
		for i, g := range pos {
			vals[i] = cfg.updateElem(fam, g, vals[i], members)
		}
		p.Compute(sim.Time(cnt*(cfg.FamSize-1)) * cfg.ElemCost)
		b := p.InitSend()
		b.PackOneInt32(int32(cnt))
		if cnt > 0 {
			b.PackInt32(pos, cnt, 1)
			b.PackFloat64(vals, cnt, 1)
		}
		p.Send(0, tagResult)
	}
}

func (a *app) Master() func(*pvm.Proc) { return nil }
