package ilink

import (
	"testing"

	"repro/internal/core"
)

func TestParentNonzerosDeterministic(t *testing.T) {
	cfg := Small()
	a := cfg.parentNonzeros(1)
	b := cfg.parentNonzeros(1)
	if len(a) == 0 {
		t.Fatal("no nonzeros")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic nonzeros")
		}
	}
	// Positions strictly increasing and inside the cluster.
	start := cfg.clusterStart(1, 0)
	for i, g := range a {
		if i > 0 && g <= a[i-1] {
			t.Fatal("not increasing")
		}
		if int(g) < start || int(g) >= start+cfg.Cluster {
			t.Fatalf("position %d outside cluster [%d,%d)", g, start, start+cfg.Cluster)
		}
	}
}

func TestSeqDeterministic(t *testing.T) {
	cfg := Small()
	_, a, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Check(b); err != nil {
		t.Fatal(err)
	}
	if a.LogLike == 0 {
		t.Fatal("degenerate output")
	}
}

func TestTMKMatchesSequential(t *testing.T) {
	cfg := Small()
	_, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		_, got, err := RunTMK(cfg, core.Default(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := want.Check(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestPVMMatchesSequential(t *testing.T) {
	cfg := Small()
	_, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		_, got, err := RunPVM(cfg, core.Default(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := want.Check(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// The paper: ILINK's high computation-to-communication ratio keeps
// TreadMarks within ~10% of PVM; per-page diff requests still make it
// send several times more messages.
func TestPaperScaleGap(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	cfg := Paper()
	cfg.Families = 6
	pvmRes, pvmOut, err := RunPVM(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	tmkRes, tmkOut, err := RunTMK(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := pvmOut.Check(tmkOut); err != nil {
		t.Fatal(err)
	}
	gap := tmkRes.Time.Seconds() / pvmRes.Time.Seconds()
	if gap > 1.25 {
		t.Fatalf("gap %.3f (tmk %.2fs pvm %.2fs), want within ~10-15%%",
			gap, tmkRes.Time.Seconds(), pvmRes.Time.Seconds())
	}
	if tmkRes.Net.Messages < 2*pvmRes.Net.Messages {
		t.Fatalf("message ratio %.1f, want several times more in TreadMarks",
			float64(tmkRes.Net.Messages)/float64(pvmRes.Net.Messages))
	}
}
