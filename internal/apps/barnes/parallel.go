package barnes

import (
	"repro/internal/core"
)

// RunTMK runs the TreadMarks version: the body array is shared, tree
// cells are private; barriers follow the MakeTree, force, and update
// phases.
func RunTMK(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := &app{cfg: cfg}
	res, err := core.TMK.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, a.parOut, err
}

// PVM message tag.
const tagBodies = 1

// RunPVM runs the PVM version: every processor broadcasts its updated
// bodies at the end of each step so each can rebuild the complete tree.
func RunPVM(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := &app{cfg: cfg}
	res, err := core.PVM.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, a.parOut, err
}
