package barnes

import (
	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
)

// sumSink collects per-processor checksums out of band (owner sets are
// disjoint, so the sum equals the sequential checksum).
var sumSink int64

// RunTMK runs the TreadMarks version: the body array is shared, tree
// cells are private; barriers follow the MakeTree, force, and update
// phases.
func RunTMK(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	var bodyA tmk.Addr
	n3 := stride * cfg.Bodies
	sumSink = 0
	res, err := core.RunTMK(ccfg,
		func(sys *tmk.System) {
			bodyA = sys.MallocPageAligned(8 * n3)
			sys.InitF64(bodyA, cfg.initBodies())
		},
		func(p *tmk.Proc) {
			bv := p.F64Array(bodyA, n3)
			local := make([]float64, n3)
			var mine []int
			for st := 0; st < cfg.Steps; st++ {
				// MakeTree: read all shared bodies, build a private tree.
				bv.Load(local, 0, n3)
				t := buildTree(local, cfg.Bodies)
				p.Compute(sim.Time(t.built) * cfg.TreeCost)
				p.Barrier(3 * st)
				// Costzones partition over the deterministic leaf order.
				leaves := t.leavesInOrder(t.root, nil)
				mine = append([]int(nil), costzone(leaves, p.N(), p.ID())...)
				// Force computation: no synchronization needed.
				accs := make(map[int][3]float64, len(mine))
				inter := 0
				for _, b := range mine {
					var a [3]float64
					inter += t.force(b, cfg.Theta, &a)
					accs[b] = a
				}
				p.Compute(sim.Time(inter) * cfg.InteractCost)
				// Barrier: everyone has finished reading positions.
				p.Barrier(3*st + 1)
				// Update: write my bodies (scattered in memory).
				for _, b := range mine {
					integrate(local, b, accs[b])
					for k := 0; k < 6; k++ {
						bv.Set(stride*b+k, local[stride*b+k])
					}
				}
				p.Compute(sim.Time(len(mine)) * cfg.UpdateCost)
				p.Barrier(3*st + 2)
			}
			sumSink += checksum(local, mine)
		})
	return res, Output{Sum: sumSink}, err
}

// PVM message tag.
const tagBodies = 1

// RunPVM runs the PVM version: every processor broadcasts its updated
// bodies at the end of each step so each can rebuild the complete tree.
func RunPVM(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	sumSink = 0
	res, err := core.RunPVM(ccfg, func(p *pvm.Proc) {
		bodies := cfg.initBodies()
		var mine []int
		for st := 0; st < cfg.Steps; st++ {
			t := buildTree(bodies, cfg.Bodies)
			p.Compute(sim.Time(t.built) * cfg.TreeCost)
			leaves := t.leavesInOrder(t.root, nil)
			mine = append([]int(nil), costzone(leaves, p.N(), p.ID())...)
			accs := make(map[int][3]float64, len(mine))
			inter := 0
			for _, b := range mine {
				var a [3]float64
				inter += t.force(b, cfg.Theta, &a)
				accs[b] = a
			}
			p.Compute(sim.Time(inter) * cfg.InteractCost)
			for _, b := range mine {
				integrate(bodies, b, accs[b])
			}
			p.Compute(sim.Time(len(mine)) * cfg.UpdateCost)
			// Broadcast my updated bodies; receive everyone else's.
			if p.N() > 1 {
				b := p.InitSend()
				idx := make([]int32, len(mine))
				vals := make([]float64, 6*len(mine))
				for j, bi := range mine {
					idx[j] = int32(bi)
					copy(vals[6*j:], bodies[stride*bi:stride*bi+6])
				}
				b.PackOneInt32(int32(len(mine)))
				b.PackInt32(idx, len(idx), 1)
				b.PackFloat64(vals, len(vals), 1)
				p.Bcast(tagBodies)
				for got := 0; got < p.N()-1; got++ {
					r := p.Recv(-1, tagBodies)
					cnt := int(r.UnpackOneInt32())
					ridx := make([]int32, cnt)
					rvals := make([]float64, 6*cnt)
					r.UnpackInt32(ridx, cnt, 1)
					r.UnpackFloat64(rvals, 6*cnt, 1)
					for j, bi := range ridx {
						copy(bodies[stride*int(bi):stride*int(bi)+6], rvals[6*j:6*j+6])
					}
				}
			}
		}
		sumSink += checksum(bodies, mine)
	}, nil)
	return res, Output{Sum: sumSink}, err
}
