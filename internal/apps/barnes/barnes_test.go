package barnes

import (
	"testing"

	"repro/internal/core"
)

func TestTreeInvariants(t *testing.T) {
	cfg := Small()
	bodies := cfg.initBodies()
	tr := buildTree(bodies, cfg.Bodies)
	if tr.built != cfg.Bodies {
		t.Fatalf("built %d, want %d", tr.built, cfg.Bodies)
	}
	if tr.root.nbody != cfg.Bodies {
		t.Fatalf("root count %d", tr.root.nbody)
	}
	// Total mass is preserved.
	if diff := tr.root.mass - 1.0; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("root mass %v, want 1", tr.root.mass)
	}
	leaves := tr.leavesInOrder(tr.root, nil)
	if len(leaves) != cfg.Bodies {
		t.Fatalf("%d leaves, want %d", len(leaves), cfg.Bodies)
	}
	seen := map[int]bool{}
	for _, b := range leaves {
		if seen[b] {
			t.Fatalf("body %d appears twice", b)
		}
		seen[b] = true
	}
}

func TestCostzonePartition(t *testing.T) {
	leaves := make([]int, 100)
	for i := range leaves {
		leaves[i] = i * 3
	}
	total := 0
	for id := 0; id < 8; id++ {
		total += len(costzone(leaves, 8, id))
	}
	if total != 100 {
		t.Fatalf("partition covers %d, want 100", total)
	}
}

func TestSeqDeterministic(t *testing.T) {
	cfg := Small()
	_, a, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Check(b); err != nil {
		t.Fatal(err)
	}
	if a.Sum == 0 {
		t.Fatal("degenerate checksum")
	}
}

func TestTMKMatchesSequential(t *testing.T) {
	cfg := Small()
	_, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		_, got, err := RunTMK(cfg, core.Default(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := want.Check(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestPVMMatchesSequential(t *testing.T) {
	cfg := Small()
	_, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		_, got, err := RunPVM(cfg, core.Default(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := want.Check(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// The paper: TreadMarks sends far more messages than PVM (false sharing
// in the scattered update phase → diff requests to several processors),
// and somewhat more data.
func TestFalseSharingDrivesMessages(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	cfg := Paper()
	cfg.Steps = 4 // step 1 reads preloaded data: no TreadMarks traffic
	const n = 8
	pvmRes, _, err := RunPVM(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	tmkRes, _, err := RunTMK(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	if tmkRes.Net.Messages < 3*pvmRes.Net.Messages {
		t.Errorf("message ratio %.1f (tmk=%d pvm=%d), want large",
			float64(tmkRes.Net.Messages)/float64(pvmRes.Net.Messages),
			tmkRes.Net.Messages, pvmRes.Net.Messages)
	}
	// Per steady-state step TreadMarks moves at least as much data as PVM
	// (false sharing brings in unwanted bytes); TreadMarks pays nothing on
	// the first (preloaded) step, hence the (Steps-1)/Steps factor.
	steady := float64(pvmRes.Net.Bytes) * float64(cfg.Steps-1) / float64(cfg.Steps)
	if float64(tmkRes.Net.Bytes) < 0.9*steady {
		t.Errorf("tmk bytes %d below steady-state parity %.0f with pvm",
			tmkRes.Net.Bytes, steady)
	}
}

// Both systems speed up poorly (low compute/communication ratio), with
// TreadMarks behind PVM.
func TestPaperScaleGap(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	cfg := Paper()
	cfg.Steps = 3
	seq, _, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pvmRes, pvmOut, err := RunPVM(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	tmkRes, tmkOut, err := RunTMK(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := pvmOut.Check(tmkOut); err != nil {
		t.Fatal(err)
	}
	sp := seq.Time.Seconds() / pvmRes.Time.Seconds()
	st := seq.Time.Seconds() / tmkRes.Time.Seconds()
	if sp > 6.5 || st > 6.5 {
		t.Errorf("speedups pvm=%.2f tmk=%.2f: paper reports poor scaling here", sp, st)
	}
	if st >= sp {
		t.Errorf("tmk speedup %.2f should trail pvm %.2f", st, sp)
	}
}
