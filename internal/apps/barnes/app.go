package barnes

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
	"sync"
)

// app implements core.App.
type app struct {
	cfg Config

	bodyA tmk.Addr // shared body array of the current TreadMarks run

	mu     sync.Mutex // guards parOut: procs fold partials concurrently
	parOut Output     // accumulated per-processor checksums (owner sets disjoint)
	seqOut Output
	hasSeq bool
	hasPar bool
}

// NewApp wraps a Barnes-Hut configuration as a registrable experiment.
func NewApp(cfg Config) core.App { return &app{cfg: cfg} }

// Clone returns a fresh instance with the same configuration and no run
// state, so grid workers can run copies concurrently (core.Cloneable).
func (a *app) Clone() core.App { return &app{cfg: a.cfg} }

// Apps returns this package's registry entry (Figure 10) at the given
// workload scale.
func Apps(scale float64) []core.App {
	cfg := Paper()
	cfg.Bodies = core.Scaled(cfg.Bodies, scale, 128)
	cfg.Steps = core.Scaled(cfg.Steps, scale, 2)
	return []core.App{&app{cfg: cfg}}
}

// BigApps returns the registry entry for the bigp scenario family:
// half the paper's bodies over two steps — enough per-processor work
// at P=256 that the tree build and force phases stay meaningful.
func BigApps(scale float64) []core.App {
	cfg := Paper()
	cfg.Bodies, cfg.Steps = 4096, 2
	cfg.Bodies = core.Scaled(cfg.Bodies, scale, 1024)
	return []core.App{&app{cfg: cfg}}
}

func (a *app) Name() string { return "Barnes-Hut" }
func (a *app) Figure() int  { return 10 }

func (a *app) Problem() string {
	return fmt.Sprintf("%d bodies, %d steps", a.cfg.Bodies, a.cfg.Steps)
}

// addSum folds one processor's partial checksum into the collector.
// Integer addition commutes, so the result is identical in any
// accumulation order — including the concurrent compute phases of the
// parallel engine, which the mutex makes safe.
func (a *app) addSum(v int64) {
	a.mu.Lock()
	a.parOut.Sum += v
	a.mu.Unlock()
}

func (a *app) Check() error {
	if !a.hasSeq || !a.hasPar {
		return fmt.Errorf("barnes: Check needs a sequential and a parallel run")
	}
	return a.seqOut.Check(a.parOut)
}

func (a *app) Seq(ctx *sim.Ctx) {
	cfg := a.cfg
	bodies := cfg.initBodies()
	for st := 0; st < cfg.Steps; st++ {
		t := buildTree(bodies, cfg.Bodies)
		ctx.Compute(sim.Time(t.built) * cfg.TreeCost)
		leaves := t.leavesInOrder(t.root, nil)
		accs := make([][3]float64, cfg.Bodies)
		inter := 0
		for _, b := range leaves {
			inter += t.force(b, cfg.Theta, &accs[b])
		}
		ctx.Compute(sim.Time(inter) * cfg.InteractCost)
		for _, b := range leaves {
			integrate(bodies, b, accs[b])
		}
		ctx.Compute(sim.Time(len(leaves)) * cfg.UpdateCost)
	}
	all := make([]int, cfg.Bodies)
	for i := range all {
		all[i] = i
	}
	a.seqOut.Sum = checksum(bodies, all)
	a.hasSeq = true
}

func (a *app) SetupTMK(sys *tmk.System) {
	a.parOut, a.hasPar = Output{}, true
	cfg := a.cfg
	a.bodyA = sys.MallocPageAligned(8 * stride * cfg.Bodies)
	sys.InitF64(a.bodyA, cfg.initBodies())
}

func (a *app) TMK(p *tmk.Proc) {
	cfg := a.cfg
	n3 := stride * cfg.Bodies
	bv := p.F64Array(a.bodyA, n3)
	local := make([]float64, n3)
	var mine []int
	for st := 0; st < cfg.Steps; st++ {
		// MakeTree: read all shared bodies, build a private tree.
		bv.Load(local, 0, n3)
		t := buildTree(local, cfg.Bodies)
		p.Compute(sim.Time(t.built) * cfg.TreeCost)
		p.Barrier(3 * st)
		// Costzones partition over the deterministic leaf order.
		leaves := t.leavesInOrder(t.root, nil)
		mine = append([]int(nil), costzone(leaves, p.N(), p.ID())...)
		// Force computation: no synchronization needed.
		accs := make(map[int][3]float64, len(mine))
		inter := 0
		for _, b := range mine {
			var acc [3]float64
			inter += t.force(b, cfg.Theta, &acc)
			accs[b] = acc
		}
		p.Compute(sim.Time(inter) * cfg.InteractCost)
		// Barrier: everyone has finished reading positions.
		p.Barrier(3*st + 1)
		// Update: write my bodies (scattered in memory).
		for _, b := range mine {
			integrate(local, b, accs[b])
			for k := 0; k < 6; k++ {
				bv.Set(stride*b+k, local[stride*b+k])
			}
		}
		p.Compute(sim.Time(len(mine)) * cfg.UpdateCost)
		p.Barrier(3*st + 2)
	}
	a.addSum(checksum(local, mine))
}

func (a *app) SetupPVM(sys *pvm.System) {
	a.parOut, a.hasPar = Output{}, true
}

func (a *app) PVM(p *pvm.Proc) {
	cfg := a.cfg
	bodies := cfg.initBodies()
	var mine []int
	for st := 0; st < cfg.Steps; st++ {
		t := buildTree(bodies, cfg.Bodies)
		p.Compute(sim.Time(t.built) * cfg.TreeCost)
		leaves := t.leavesInOrder(t.root, nil)
		mine = append([]int(nil), costzone(leaves, p.N(), p.ID())...)
		accs := make(map[int][3]float64, len(mine))
		inter := 0
		for _, b := range mine {
			var acc [3]float64
			inter += t.force(b, cfg.Theta, &acc)
			accs[b] = acc
		}
		p.Compute(sim.Time(inter) * cfg.InteractCost)
		for _, b := range mine {
			integrate(bodies, b, accs[b])
		}
		p.Compute(sim.Time(len(mine)) * cfg.UpdateCost)
		// Broadcast my updated bodies; receive everyone else's.  The tag
		// carries the step: with a wildcard source and per-link in-order
		// delivery, a delayed peer's message must not be displaced by a
		// faster peer's next-step broadcast.
		if p.N() > 1 {
			tag := tagBodies + st
			b := p.InitSend()
			idx := make([]int32, len(mine))
			vals := make([]float64, 6*len(mine))
			for j, bi := range mine {
				idx[j] = int32(bi)
				copy(vals[6*j:], bodies[stride*bi:stride*bi+6])
			}
			b.PackOneInt32(int32(len(mine)))
			b.PackInt32(idx, len(idx), 1)
			b.PackFloat64(vals, len(vals), 1)
			p.Bcast(tag)
			for got := 0; got < p.N()-1; got++ {
				r := p.Recv(-1, tag)
				cnt := int(r.UnpackOneInt32())
				ridx := make([]int32, cnt)
				rvals := make([]float64, 6*cnt)
				r.UnpackInt32(ridx, cnt, 1)
				r.UnpackFloat64(rvals, 6*cnt, 1)
				for j, bi := range ridx {
					copy(bodies[stride*int(bi):stride*int(bi)+6], rvals[6*j:6*j+6])
				}
			}
		}
	}
	a.addSum(checksum(bodies, mine))
}

func (a *app) Master() func(*pvm.Proc) { return nil }
