// Package barnes implements the SPLASH Barnes-Hut N-body simulation
// (paper §3.9).  Each time step has four phases: MakeTree (build the
// octree), Get_my_bodies (partition the bodies among processors with the
// costzone method — logically consecutive leaves of the tree), force
// computation (traverse the tree for each owned body), and update
// (integrate the owned bodies).
//
// In the TreadMarks version the array of bodies is shared and the tree
// cells are private: every processor reads all the shared bodies and
// builds the whole tree in private memory, then computes forces for and
// updates only its own bodies.  Because a processor's bodies are adjacent
// in the tree but not in memory, the update phase writes scattered
// elements of the body array — the false sharing that drives TreadMarks'
// extra messages here.  In the PVM version every processor broadcasts its
// updated bodies at the end of each step so all can rebuild the full
// tree, which saturates the network at 8 processors.
package barnes

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
)

// Config describes one Barnes-Hut problem.
type Config struct {
	Bodies int
	Steps  int
	Theta  float64 // opening criterion
	Seed   uint64

	InteractCost sim.Time // per body-body or body-cell evaluation
	TreeCost     sim.Time // per body insertion during MakeTree
	UpdateCost   sim.Time // per body integration
}

// Paper returns the paper-like problem (8192 bodies).
func Paper() Config {
	return Config{Bodies: 8192, Steps: 6, Theta: 0.7, Seed: 667430,
		InteractCost: 3 * sim.Microsecond, TreeCost: 8 * sim.Microsecond,
		UpdateCost: 3 * sim.Microsecond}
}

// Small returns a CI-sized problem.
func Small() Config {
	return Config{Bodies: 256, Steps: 3, Theta: 0.7, Seed: 667430,
		InteractCost: 3 * sim.Microsecond, TreeCost: 8 * sim.Microsecond,
		UpdateCost: 3 * sim.Microsecond}
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (c Config) unit(i uint64) float64 {
	return float64(splitmix64(c.Seed+i)>>11) / (1 << 53)
}

// initBodies places bodies in a Plummer-like clustered sphere.
// Layout: per body [px py pz vx vy vz m], stride 7 float64.
const stride = 7

func (c Config) initBodies() []float64 {
	v := make([]float64, stride*c.Bodies)
	for i := 0; i < c.Bodies; i++ {
		r := 0.1 + 4*math.Pow(c.unit(uint64(5*i)), 2)
		th := math.Acos(2*c.unit(uint64(5*i+1)) - 1)
		ph := 2 * math.Pi * c.unit(uint64(5*i+2))
		v[stride*i+0] = r * math.Sin(th) * math.Cos(ph)
		v[stride*i+1] = r * math.Sin(th) * math.Sin(ph)
		v[stride*i+2] = r * math.Cos(th)
		v[stride*i+3] = 0.05 * (c.unit(uint64(5*i+3)) - 0.5)
		v[stride*i+4] = 0.05 * (c.unit(uint64(5*i+4)) - 0.5)
		v[stride*i+5] = 0
		v[stride*i+6] = 1.0 / float64(c.Bodies)
	}
	return v
}

// Output is the verification checksum over final positions/velocities.
type Output struct {
	Sum int64
}

// Check compares outputs exactly: tree construction and traversal are
// deterministic functions of the shared body data, so every version
// computes identical forces in identical per-body order.
func (o Output) Check(other Output) error {
	if o != other {
		return fmt.Errorf("barnes: checksum %d vs %d", o.Sum, other.Sum)
	}
	return nil
}

// ---------------------------------------------------------------------
// Octree.

type cell struct {
	center [3]float64 // geometric center of the cube
	size   float64
	com    [3]float64 // center of mass
	mass   float64
	body   int      // leaf: body index, or -1
	kids   [8]*cell // internal node children
	leaf   bool
	nbody  int // bodies under this cell
}

// tree is a private per-processor octree over the body array.
type tree struct {
	root  *cell
	pos   []float64 // snapshot: stride-7 body records
	n     int
	built int // insertion count, for cost accounting
}

// buildTree constructs the octree over all bodies, inserting them in
// index order (deterministic).
func buildTree(bodies []float64, n int) *tree {
	t := &tree{pos: bodies, n: n}
	// Bounding cube.
	min, max := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			p := bodies[stride*i+k]
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
	}
	half := (max - min) / 2
	mid := (max + min) / 2
	t.root = &cell{center: [3]float64{mid, mid, mid}, size: 2 * half * 1.0001, body: -1}
	for i := 0; i < n; i++ {
		t.insert(t.root, i)
		t.built++
	}
	t.summarize(t.root)
	return t
}

func (t *tree) bodyPos(i int) [3]float64 {
	return [3]float64{t.pos[stride*i], t.pos[stride*i+1], t.pos[stride*i+2]}
}

func (t *tree) octant(c *cell, p [3]float64) int {
	o := 0
	for k := 0; k < 3; k++ {
		if p[k] >= c.center[k] {
			o |= 1 << uint(k)
		}
	}
	return o
}

func (t *tree) child(c *cell, o int) *cell {
	if c.kids[o] == nil {
		q := c.size / 4
		ctr := c.center
		for k := 0; k < 3; k++ {
			if o&(1<<uint(k)) != 0 {
				ctr[k] += q
			} else {
				ctr[k] -= q
			}
		}
		c.kids[o] = &cell{center: ctr, size: c.size / 2, body: -1}
	}
	return c.kids[o]
}

func (t *tree) insert(c *cell, i int) {
	if c.nbody == 0 {
		c.leaf = true
		c.body = i
		c.nbody = 1
		return
	}
	if c.leaf {
		// Split: push the resident body down.
		old := c.body
		c.leaf = false
		c.body = -1
		if c.size < 1e-9 {
			// Coincident bodies: keep both in a degenerate chain guard.
			c.leaf = true
			c.body = old
			c.nbody++
			return
		}
		t.insert(t.child(c, t.octant(c, t.bodyPos(old))), old)
	}
	t.insert(t.child(c, t.octant(c, t.bodyPos(i))), i)
	c.nbody++
}

// summarize computes centers of mass bottom-up.
func (t *tree) summarize(c *cell) {
	if c.leaf {
		b := c.body
		c.mass = t.pos[stride*b+6] * float64(c.nbody)
		c.com = t.bodyPos(b)
		return
	}
	var m float64
	var com [3]float64
	for _, k := range c.kids {
		if k == nil || k.nbody == 0 {
			continue
		}
		t.summarize(k)
		m += k.mass
		for j := 0; j < 3; j++ {
			com[j] += k.mass * k.com[j]
		}
	}
	c.mass = m
	if m > 0 {
		for j := 0; j < 3; j++ {
			com[j] /= m
		}
	}
	c.com = com
}

// leavesInOrder appends body indices in deterministic tree order: the
// basis of the costzone partition.
func (t *tree) leavesInOrder(c *cell, out []int) []int {
	if c == nil || c.nbody == 0 {
		return out
	}
	if c.leaf {
		return append(out, c.body)
	}
	for _, k := range c.kids {
		out = t.leavesInOrder(k, out)
	}
	return out
}

// force computes the acceleration on body i by tree traversal with the
// given opening criterion, returning the interaction count.
func (t *tree) force(i int, theta float64, acc *[3]float64) int {
	p := t.bodyPos(i)
	interactions := 0
	const soft = 0.01
	var walk func(c *cell)
	walk = func(c *cell) {
		if c == nil || c.nbody == 0 {
			return
		}
		if c.leaf && c.body == i && c.nbody == 1 {
			return
		}
		var d [3]float64
		r2 := 0.0
		for k := 0; k < 3; k++ {
			d[k] = c.com[k] - p[k]
			r2 += d[k] * d[k]
		}
		if c.leaf || c.size*c.size < theta*theta*r2 {
			interactions++
			if r2 == 0 {
				return
			}
			inv := c.mass / ((r2 + soft) * math.Sqrt(r2+soft))
			for k := 0; k < 3; k++ {
				acc[k] += inv * d[k]
			}
			return
		}
		for _, k := range c.kids {
			walk(k)
		}
	}
	walk(t.root)
	return interactions
}

// costzone splits the in-order leaf list into nprocs equal slices and
// returns processor id's bodies.
func costzone(leaves []int, nprocs, id int) []int {
	lo := id * len(leaves) / nprocs
	hi := (id + 1) * len(leaves) / nprocs
	return leaves[lo:hi]
}

// integrate advances one body given its acceleration.
func integrate(bodies []float64, i int, acc [3]float64) {
	const dt = 0.05
	for k := 0; k < 3; k++ {
		bodies[stride*i+3+k] += acc[k] * dt
		bodies[stride*i+k] += bodies[stride*i+3+k] * dt
	}
}

// checksum folds the listed bodies' positions and velocities into an
// integer (bit-exact and additive over disjoint body sets).
func checksum(bodies []float64, idx []int) int64 {
	var s int64
	for _, i := range idx {
		for k := 0; k < 6; k++ {
			v := bodies[stride*i+k]
			s += int64(math.Round(v*1e9)) % 1000003 * int64((stride*i+k)%89+1)
		}
	}
	return s
}

// RunSeq runs the sequential program.
func RunSeq(cfg Config) (core.Result, Output, error) {
	a := &app{cfg: cfg}
	res, err := core.Seq.Run(a, core.Base(1))
	return res, a.seqOut, err
}
