package tsp

import (
	"math"
	"testing"

	"repro/internal/core"
)

// bruteForce solves a tiny instance exhaustively for ground truth.
func bruteForce(cfg Config) int32 {
	s := newSolver(cfg)
	best := int32(math.MaxInt32)
	var rec func(path []int32, visited uint32, length int32)
	rec = func(path []int32, visited uint32, length int32) {
		if len(path) == cfg.Cities {
			if t := length + s.d[path[len(path)-1]][path[0]]; t < best {
				best = t
			}
			return
		}
		for c := int32(0); c < int32(cfg.Cities); c++ {
			if visited&(1<<uint(c)) != 0 {
				continue
			}
			rec(append(path, c), visited|1<<uint(c), length+s.d[path[len(path)-1]][c])
		}
	}
	rec([]int32{0}, 1, 0)
	return best
}

func TestSeqFindsOptimum(t *testing.T) {
	cfg := Config{Cities: 9, Threshold: 5, Seed: 16180,
		NodeCost: 1, BoundCost: 1, QueueCost: 1}
	want := bruteForce(cfg)
	_, got, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Best != want {
		t.Fatalf("seq best = %d, brute force = %d", got.Best, want)
	}
}

func TestTMKMatchesSequential(t *testing.T) {
	cfg := Small()
	_, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		_, got, err := RunTMK(cfg, core.Default(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := want.Check(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestPVMMatchesSequential(t *testing.T) {
	cfg := Small()
	_, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		_, got, err := RunPVM(cfg, core.Default(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := want.Check(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// The paper: TreadMarks sends an order of magnitude more messages than
// PVM (migratory data structures vs a handful of master/slave exchanges).
func TestTMKSendsManyMoreMessages(t *testing.T) {
	cfg := Small()
	const n = 4
	pvmRes, _, err := RunPVM(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	tmkRes, _, err := RunTMK(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	if tmkRes.Net.Messages < 3*pvmRes.Net.Messages {
		t.Fatalf("tmk %d msgs vs pvm %d msgs: expected a large ratio",
			tmkRes.Net.Messages, pvmRes.Net.Messages)
	}
}

// Paper-scale run: TreadMarks reaches roughly two thirds of PVM's speedup.
func TestPaperScaleGap(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	cfg := Paper()
	seq, _, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pvmRes, pvmOut, err := RunPVM(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	tmkRes, tmkOut, err := RunTMK(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := pvmOut.Check(tmkOut); err != nil {
		t.Fatal(err)
	}
	sp := seq.Time.Seconds() / pvmRes.Time.Seconds()
	st := seq.Time.Seconds() / tmkRes.Time.Seconds()
	if st >= sp {
		t.Logf("note: tmk speedup %.2f >= pvm %.2f (search anomaly)", st, sp)
	}
	if st < 0.4*sp {
		t.Fatalf("tmk speedup %.2f below 40%% of pvm %.2f", st, sp)
	}
}

// The paper observes TSP processes spending a large fraction of their
// time waiting at lock acquires (get_tour contention).
func TestLockWaitDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	cfg := Paper()
	res, _, err := RunTMK(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	frac := res.LockWait.Seconds() / (res.Time.Seconds() * 8)
	if frac < 0.05 {
		t.Fatalf("lock wait fraction %.3f: expected significant get_tour contention", frac)
	}
	if frac > 0.95 {
		t.Fatalf("lock wait fraction %.3f implausibly high", frac)
	}
}
