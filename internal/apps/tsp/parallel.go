package tsp

import (
	"repro/internal/core"
	"repro/internal/tmk"
)

// Shared-memory capacity: the tour pool holds this many records; when the
// pool is exhausted, get_tour hands the current partial path to the solver
// instead of extending it (bounded memory, same optimum).  Sized so the
// best-first frontier of the paper-scale instance fits without overflow.
const maxPool = 32768

const (
	lockQueue = 0
	lockBest  = 1
)

// tmkLayout is the shared-memory layout of the TreadMarks version.
// The four major structures sit on distinct pages, so a get_tour takes at
// least three page faults when the structures last migrated elsewhere.
type tmkLayout struct {
	head  tmk.Addr // qsize, stackTop (int32 x2)
	best  tmk.Addr // current shortest tour length (int32)
	queue tmk.Addr // binary heap of int64 (bound<<20 | pool index)
	stack tmk.Addr // free pool slots (int32)
	pool  tmk.Addr // tour records: [len, length, cities...] int32
}

func (c Config) recInts() int { return 2 + c.Cities }

func layoutTMK(sys *tmk.System, cfg Config) tmkLayout {
	var l tmkLayout
	l.head = sys.MallocPageAligned(8)
	l.best = sys.MallocPageAligned(4)
	l.queue = sys.MallocPageAligned(8 * maxPool)
	l.stack = sys.MallocPageAligned(4 * maxPool)
	l.pool = sys.MallocPageAligned(4 * maxPool * cfg.recInts())
	// Initial state: all slots free, queue holds the root tour {0}.
	// Slot 0 holds the root tour; slots 1..maxPool-1 are free, stacked so
	// that allocSlot hands out slot 1 first.
	stack := make([]int32, maxPool)
	for i := 0; i < maxPool-1; i++ {
		stack[i] = int32(maxPool - 1 - i)
	}
	sys.InitI32(l.stack, stack)
	sys.InitI32(l.head, []int32{1, int32(maxPool - 2)}) // qsize=1, stack top index
	root := make([]int32, cfg.recInts())
	root[0] = 1 // len
	root[1] = 0 // length
	root[2] = 0 // city 0
	sys.InitI32(l.pool, root)
	sys.InitI64(l.queue, []int64{0<<20 /* bound 0 */ | 0 /* slot 0 */})
	// The search starts from the greedy tour bound, as in the sequential
	// and PVM versions.
	sys.InitI32(l.best, []int32{newSolver(cfg).greedy()})
	return l
}

// tmkWorker wraps shared-heap operations for one processor.
type tmkWorker struct {
	p   *tmk.Proc
	cfg Config
	s   *solver
	l   tmkLayout
	q   tmk.I64Array
	st  tmk.I32Array
	pl  tmk.I32Array
}

func (w *tmkWorker) qsize() int32     { return w.p.ReadI32(w.l.head) }
func (w *tmkWorker) setQsize(v int32) { w.p.WriteI32(w.l.head, v) }
func (w *tmkWorker) stackTop() int32  { return w.p.ReadI32(w.l.head + 4) }
func (w *tmkWorker) setTop(v int32)   { w.p.WriteI32(w.l.head+4, v) }

// heapPush inserts (bound, slot) into the shared priority queue.
func (w *tmkWorker) heapPush(bound int32, slot int32) {
	n := w.qsize()
	v := int64(bound)<<20 | int64(slot)
	w.q.Set(int(n), v)
	i := int(n)
	for i > 0 {
		p := (i - 1) / 2
		pv := w.q.At(p)
		if pv>>20 <= v>>20 {
			break
		}
		w.q.Set(i, pv)
		w.q.Set(p, v)
		i = p
	}
	w.setQsize(n + 1)
	w.p.Compute(w.cfg.QueueCost)
}

// heapPop removes the most promising entry.
func (w *tmkWorker) heapPop() (int32, int32) {
	n := int(w.qsize())
	top := w.q.At(0)
	last := w.q.At(n - 1)
	w.setQsize(int32(n - 1))
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		mv := last
		if l < n {
			if lv := w.q.At(l); lv>>20 < mv>>20 {
				m, mv = l, lv
			}
		}
		if r < n {
			if rv := w.q.At(r); rv>>20 < mv>>20 {
				m, mv = r, rv
			}
		}
		if m == i {
			break
		}
		w.q.Set(i, mv)
		i = m
	}
	if n > 0 {
		w.q.Set(i, last)
	}
	w.p.Compute(w.cfg.QueueCost)
	return int32(top >> 20), int32(top & 0xFFFFF)
}

// allocSlot pops a free pool slot, or -1 if the pool is exhausted.
func (w *tmkWorker) allocSlot() int32 {
	t := w.stackTop()
	if t < 0 {
		return -1
	}
	slot := w.st.At(int(t))
	w.setTop(t - 1)
	return slot
}

func (w *tmkWorker) freeSlot(slot int32) {
	t := w.stackTop() + 1
	w.st.Set(int(t), slot)
	w.setTop(t)
}

// readTour copies a pool record into local memory.
func (w *tmkWorker) readTour(slot int32) (path []int32, length int32) {
	base := int(slot) * w.cfg.recInts()
	n := int(w.pl.At(base))
	length = w.pl.At(base + 1)
	path = make([]int32, n)
	for i := 0; i < n; i++ {
		path[i] = w.pl.At(base + 2 + i)
	}
	return path, length
}

func (w *tmkWorker) writeTour(slot int32, path []int32, length int32) {
	base := int(slot) * w.cfg.recInts()
	w.pl.Set(base, int32(len(path)))
	w.pl.Set(base+1, length)
	for i, c := range path {
		w.pl.Set(base+2+i, c)
	}
}

// getTour implements the paper's get_tour under the queue lock: it
// returns a solvable path, or nil when the queue is empty.
func (w *tmkWorker) getTour() ([]int32, int32) {
	w.p.LockAcquire(lockQueue)
	defer w.p.LockRelease(lockQueue)
	for {
		if w.qsize() == 0 {
			return nil, 0
		}
		bound, slot := w.heapPop()
		path, length := w.readTour(slot)
		w.freeSlot(slot)
		best := w.p.ReadI32(w.l.best)
		if bound >= best {
			continue // pruned: a better tour appeared since insertion
		}
		if len(path) >= w.cfg.returnLen() {
			return path, length
		}
		// Extend by one city; push the promising children.
		visited := uint32(0)
		for _, c := range path {
			visited |= 1 << uint(c)
		}
		lastC := path[len(path)-1]
		overflow := false
		for c := int32(0); c < int32(w.cfg.Cities); c++ {
			if visited&(1<<uint(c)) != 0 {
				continue
			}
			nl := length + w.s.d[lastC][c]
			np := append(append([]int32(nil), path...), c)
			nb := w.s.lowerBound(np, nl)
			w.p.Compute(w.cfg.BoundCost)
			if nb >= best {
				continue
			}
			ns := w.allocSlot()
			if ns < 0 {
				overflow = true
				break
			}
			w.writeTour(ns, np, nl)
			w.heapPush(nb, ns)
		}
		if overflow {
			// Pool exhausted: solve this partial path directly.
			return path, length
		}
	}
}

// RunTMK runs the TreadMarks version.
func RunTMK(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := newApp(cfg)
	res, err := core.TMK.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, Output{Best: a.best}, err
}

// PVM message tags.
const (
	tagWorkReq = 1
	tagWork    = 2 // tour assignment (or empty = done)
	tagUpdate  = 3
)

// RunPVM runs the PVM master/slave version: the master keeps all tour
// structures private; slaves message the master to request solvable tours
// and to report improved shortest tours.
func RunPVM(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := newApp(cfg)
	res, err := core.PVM.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, Output{Best: a.best}, err
}
