package tsp

import (
	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
)

// Shared-memory capacity: the tour pool holds this many records; when the
// pool is exhausted, get_tour hands the current partial path to the solver
// instead of extending it (bounded memory, same optimum).  Sized so the
// best-first frontier of the paper-scale instance fits without overflow.
const maxPool = 32768

const (
	lockQueue = 0
	lockBest  = 1
)

// tmkLayout is the shared-memory layout of the TreadMarks version.
// The four major structures sit on distinct pages, so a get_tour takes at
// least three page faults when the structures last migrated elsewhere.
type tmkLayout struct {
	head  tmk.Addr // qsize, stackTop (int32 x2)
	best  tmk.Addr // current shortest tour length (int32)
	queue tmk.Addr // binary heap of int64 (bound<<20 | pool index)
	stack tmk.Addr // free pool slots (int32)
	pool  tmk.Addr // tour records: [len, length, cities...] int32
}

func (c Config) recInts() int { return 2 + c.Cities }

func layoutTMK(sys *tmk.System, cfg Config) tmkLayout {
	var l tmkLayout
	l.head = sys.MallocPageAligned(8)
	l.best = sys.MallocPageAligned(4)
	l.queue = sys.MallocPageAligned(8 * maxPool)
	l.stack = sys.MallocPageAligned(4 * maxPool)
	l.pool = sys.MallocPageAligned(4 * maxPool * cfg.recInts())
	// Initial state: all slots free, queue holds the root tour {0}.
	// Slot 0 holds the root tour; slots 1..maxPool-1 are free, stacked so
	// that allocSlot hands out slot 1 first.
	stack := make([]int32, maxPool)
	for i := 0; i < maxPool-1; i++ {
		stack[i] = int32(maxPool - 1 - i)
	}
	sys.InitI32(l.stack, stack)
	sys.InitI32(l.head, []int32{1, int32(maxPool - 2)}) // qsize=1, stack top index
	root := make([]int32, cfg.recInts())
	root[0] = 1 // len
	root[1] = 0 // length
	root[2] = 0 // city 0
	sys.InitI32(l.pool, root)
	sys.InitI64(l.queue, []int64{0<<20 /* bound 0 */ | 0 /* slot 0 */})
	// The search starts from the greedy tour bound, as in the sequential
	// and PVM versions.
	sys.InitI32(l.best, []int32{newSolver(cfg).greedy()})
	return l
}

// tmkWorker wraps shared-heap operations for one processor.
type tmkWorker struct {
	p   *tmk.Proc
	cfg Config
	s   *solver
	l   tmkLayout
	q   tmk.I64Array
	st  tmk.I32Array
	pl  tmk.I32Array
}

func (w *tmkWorker) qsize() int32     { return w.p.ReadI32(w.l.head) }
func (w *tmkWorker) setQsize(v int32) { w.p.WriteI32(w.l.head, v) }
func (w *tmkWorker) stackTop() int32  { return w.p.ReadI32(w.l.head + 4) }
func (w *tmkWorker) setTop(v int32)   { w.p.WriteI32(w.l.head+4, v) }

// heapPush inserts (bound, slot) into the shared priority queue.
func (w *tmkWorker) heapPush(bound int32, slot int32) {
	n := w.qsize()
	v := int64(bound)<<20 | int64(slot)
	w.q.Set(int(n), v)
	i := int(n)
	for i > 0 {
		p := (i - 1) / 2
		pv := w.q.At(p)
		if pv>>20 <= v>>20 {
			break
		}
		w.q.Set(i, pv)
		w.q.Set(p, v)
		i = p
	}
	w.setQsize(n + 1)
	w.p.Compute(w.cfg.QueueCost)
}

// heapPop removes the most promising entry.
func (w *tmkWorker) heapPop() (int32, int32) {
	n := int(w.qsize())
	top := w.q.At(0)
	last := w.q.At(n - 1)
	w.setQsize(int32(n - 1))
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		mv := last
		if l < n {
			if lv := w.q.At(l); lv>>20 < mv>>20 {
				m, mv = l, lv
			}
		}
		if r < n {
			if rv := w.q.At(r); rv>>20 < mv>>20 {
				m, mv = r, rv
			}
		}
		if m == i {
			break
		}
		w.q.Set(i, mv)
		i = m
	}
	if n > 0 {
		w.q.Set(i, last)
	}
	w.p.Compute(w.cfg.QueueCost)
	return int32(top >> 20), int32(top & 0xFFFFF)
}

// allocSlot pops a free pool slot, or -1 if the pool is exhausted.
func (w *tmkWorker) allocSlot() int32 {
	t := w.stackTop()
	if t < 0 {
		return -1
	}
	slot := w.st.At(int(t))
	w.setTop(t - 1)
	return slot
}

func (w *tmkWorker) freeSlot(slot int32) {
	t := w.stackTop() + 1
	w.st.Set(int(t), slot)
	w.setTop(t)
}

// readTour copies a pool record into local memory.
func (w *tmkWorker) readTour(slot int32) (path []int32, length int32) {
	base := int(slot) * w.cfg.recInts()
	n := int(w.pl.At(base))
	length = w.pl.At(base + 1)
	path = make([]int32, n)
	for i := 0; i < n; i++ {
		path[i] = w.pl.At(base + 2 + i)
	}
	return path, length
}

func (w *tmkWorker) writeTour(slot int32, path []int32, length int32) {
	base := int(slot) * w.cfg.recInts()
	w.pl.Set(base, int32(len(path)))
	w.pl.Set(base+1, length)
	for i, c := range path {
		w.pl.Set(base+2+i, c)
	}
}

// getTour implements the paper's get_tour under the queue lock: it
// returns a solvable path, or nil when the queue is empty.
func (w *tmkWorker) getTour() ([]int32, int32) {
	w.p.LockAcquire(lockQueue)
	defer w.p.LockRelease(lockQueue)
	for {
		if w.qsize() == 0 {
			return nil, 0
		}
		bound, slot := w.heapPop()
		path, length := w.readTour(slot)
		w.freeSlot(slot)
		best := w.p.ReadI32(w.l.best)
		if bound >= best {
			continue // pruned: a better tour appeared since insertion
		}
		if len(path) >= w.cfg.returnLen() {
			return path, length
		}
		// Extend by one city; push the promising children.
		visited := uint32(0)
		for _, c := range path {
			visited |= 1 << uint(c)
		}
		lastC := path[len(path)-1]
		overflow := false
		for c := int32(0); c < int32(w.cfg.Cities); c++ {
			if visited&(1<<uint(c)) != 0 {
				continue
			}
			nl := length + w.s.d[lastC][c]
			np := append(append([]int32(nil), path...), c)
			nb := w.s.lowerBound(np, nl)
			w.p.Compute(w.cfg.BoundCost)
			if nb >= best {
				continue
			}
			ns := w.allocSlot()
			if ns < 0 {
				overflow = true
				break
			}
			w.writeTour(ns, np, nl)
			w.heapPush(nb, ns)
		}
		if overflow {
			// Pool exhausted: solve this partial path directly.
			return path, length
		}
	}
}

// bestTMK records improvements found by any processor (verification
// collector, outside the simulation's accounting).
var bestTMK int32

// RunTMK runs the TreadMarks version.
func RunTMK(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	var l tmkLayout
	s := newSolver(cfg)
	bestTMK = s.greedy()
	res, err := core.RunTMK(ccfg,
		func(sys *tmk.System) { l = layoutTMK(sys, cfg) },
		func(p *tmk.Proc) {
			w := &tmkWorker{p: p, cfg: cfg, s: s, l: l,
				q:  p.I64Array(l.queue, maxPool),
				st: p.I32Array(l.stack, maxPool),
				pl: p.I32Array(l.pool, maxPool*cfg.recInts()),
			}
			for {
				path, length := w.getTour()
				if path == nil {
					break
				}
				localBest := p.ReadI32(l.best)
				var nodes int64
				found := s.recursiveSolve(path, length, localBest, &nodes)
				p.Compute(sim.Time(nodes) * cfg.NodeCost)
				if found < localBest {
					// Update the shortest tour under its lock.
					p.LockAcquire(lockBest)
					if cur := p.ReadI32(l.best); found < cur {
						p.WriteI32(l.best, found)
						if found < bestTMK {
							bestTMK = found
						}
					}
					p.LockRelease(lockBest)
				}
			}
			p.Barrier(0)
		})
	return res, Output{Best: bestTMK}, err
}

// PVM message tags.
const (
	tagWorkReq = 1
	tagWork    = 2 // tour assignment (or empty = done)
	tagUpdate  = 3
)

// bestPVM is the PVM verification collector.
var bestPVM int32

// RunPVM runs the PVM master/slave version: the master keeps all tour
// structures private; slaves request solvable tours and report improved
// shortest tours.
func RunPVM(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	s := newSolver(cfg)
	bestPVM = s.greedy()
	n := ccfg.Procs
	res, err := core.RunPVM(ccfg,
		func(p *pvm.Proc) { // slave
			master := n // the extra process id
			for {
				b := p.InitSend()
				b.PackOneInt32(int32(p.ID()))
				p.Send(master, tagWorkReq)
				r := p.Recv(master, tagWork)
				ln := int(r.UnpackOneInt32())
				if ln == 0 {
					return // done
				}
				path := make([]int32, ln)
				r.UnpackInt32(path, ln, 1)
				length := r.UnpackOneInt32()
				best := r.UnpackOneInt32()
				var nodes int64
				found := s.recursiveSolve(path, length, best, &nodes)
				p.Compute(sim.Time(nodes) * cfg.NodeCost)
				if found < best {
					b := p.InitSend()
					b.PackOneInt32(found)
					p.Send(master, tagUpdate)
				}
			}
		},
		func(p *pvm.Proc) { // master
			type item struct {
				bound  int32
				length int32
				path   []int32
			}
			var heap []item
			push := func(it item) {
				heap = append(heap, it)
				for i := len(heap) - 1; i > 0; {
					par := (i - 1) / 2
					if heap[par].bound <= heap[i].bound {
						break
					}
					heap[par], heap[i] = heap[i], heap[par]
					i = par
				}
				p.Compute(cfg.QueueCost)
			}
			pop := func() item {
				top := heap[0]
				last := len(heap) - 1
				heap[0] = heap[last]
				heap = heap[:last]
				for i := 0; ; {
					l, r := 2*i+1, 2*i+2
					m := i
					if l < last && heap[l].bound < heap[m].bound {
						m = l
					}
					if r < last && heap[r].bound < heap[m].bound {
						m = r
					}
					if m == i {
						break
					}
					heap[i], heap[m] = heap[m], heap[i]
					i = m
				}
				p.Compute(cfg.QueueCost)
				return top
			}
			best := s.greedy()
			push(item{0, 0, []int32{0}})
			// getTour: pop and extend until a solvable path emerges.
			getTour := func() (item, bool) {
				for len(heap) > 0 {
					it := pop()
					if it.bound >= best {
						continue
					}
					if len(it.path) >= cfg.returnLen() {
						return it, true
					}
					visited := uint32(0)
					for _, c := range it.path {
						visited |= 1 << uint(c)
					}
					lastC := it.path[len(it.path)-1]
					for c := int32(0); c < int32(cfg.Cities); c++ {
						if visited&(1<<uint(c)) != 0 {
							continue
						}
						nl := it.length + s.d[lastC][c]
						np := append(append([]int32(nil), it.path...), c)
						nb := s.lowerBound(np, nl)
						p.Compute(cfg.BoundCost)
						if nb < best {
							push(item{nb, nl, np})
						}
					}
				}
				return item{}, false
			}
			done := 0
			for done < n {
				r := p.Recv(-1, -1)
				switch r.Tag() {
				case tagUpdate:
					if v := r.UnpackOneInt32(); v < best {
						best = v
					}
				case tagWorkReq:
					slave := int(r.UnpackOneInt32())
					it, ok := getTour()
					b := p.InitSend()
					if !ok {
						b.PackOneInt32(0)
						done++
					} else {
						b.PackOneInt32(int32(len(it.path)))
						b.PackInt32(it.path, len(it.path), 1)
						b.PackOneInt32(it.length)
						b.PackOneInt32(best)
					}
					p.Send(slave, tagWork)
				}
			}
			bestPVM = best
		})
	return res, Output{Best: bestPVM}, err
}
