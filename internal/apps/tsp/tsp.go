// Package tsp implements the traveling salesman problem with branch and
// bound (paper §3.6).  The major data structures are a pool of partially
// evaluated tours, a priority queue of promising tours, a stack of free
// pool slots, and the current shortest tour.
//
// get_tour removes the most promising path from the priority queue; if it
// is long enough it is handed to recursive_solve, which tries all
// permutations of the remaining cities; otherwise get_tour extends it by
// one city, pushes the promising children, and repeats.
//
// In the TreadMarks version all four structures live in shared memory:
// get_tour runs under one lock and shortest-tour updates under another,
// so the pool, queue, and stack migrate from processor to processor —
// the access pattern behind the paper's observation that TreadMarks sends
// an order of magnitude more messages than PVM here (diff accumulation on
// migratory data, several page faults per get_tour).
//
// In the PVM version a master process (co-located with slave 0, as in the
// paper) keeps everything in private memory; slaves message the master to
// request solvable tours and to report improved shortest tours.
package tsp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
)

// Config describes one TSP instance.
type Config struct {
	Cities    int // number of cities
	Threshold int // recursive_solve handles suffixes up to this length
	Seed      uint64

	NodeCost  sim.Time // per search-tree node in recursive_solve
	BoundCost sim.Time // per lower-bound computation in get_tour
	QueueCost sim.Time // per priority-queue operation
}

// Paper returns the paper-like instance.  The paper's exact city count
// is unrecoverable from the source text; 14 cities with a recursive-solve
// threshold of 10 (the suffix length handed to the solver) gives the same
// coarse-grained branch-and-bound structure — few, large solver chunks
// behind a lock-protected queue — at a tractable search size.
func Paper() Config {
	return Config{Cities: 14, Threshold: 10, Seed: 16180,
		NodeCost: 900 * sim.Nanosecond, BoundCost: 3 * sim.Microsecond,
		QueueCost: 1500 * sim.Nanosecond}
}

// Small returns a CI-sized instance.
func Small() Config {
	return Config{Cities: 11, Threshold: 7, Seed: 16180,
		NodeCost: 900 * sim.Nanosecond, BoundCost: 3 * sim.Microsecond,
		QueueCost: 1500 * sim.Nanosecond}
}

// dist builds the deterministic distance matrix: cities on a seeded
// pseudo-random grid, Euclidean distances rounded to integers.
func (c Config) dist() [][]int32 {
	sm := func(x uint64) uint64 {
		x += 0x9E3779B97F4A7C15
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		return x ^ (x >> 31)
	}
	xs := make([]float64, c.Cities)
	ys := make([]float64, c.Cities)
	for i := 0; i < c.Cities; i++ {
		xs[i] = float64(sm(c.Seed+uint64(2*i))%1000) / 10
		ys[i] = float64(sm(c.Seed+uint64(2*i+1))%1000) / 10
	}
	d := make([][]int32, c.Cities)
	for i := range d {
		d[i] = make([]int32, c.Cities)
		for j := range d[i] {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			d[i][j] = int32(math.Round(math.Sqrt(dx*dx + dy*dy)))
		}
	}
	return d
}

// Output is the optimal tour length.
type Output struct {
	Best int32
}

// Check compares outputs exactly: branch and bound always finds the
// optimum regardless of exploration order.
func (o Output) Check(other Output) error {
	if o != other {
		return fmt.Errorf("tsp: best %d vs %d", o.Best, other.Best)
	}
	return nil
}

// solver carries the per-run search machinery shared by all versions.
type solver struct {
	cfg  Config
	d    [][]int32
	minE []int32 // cheapest incident edge per city
	min2 []int32 // second-cheapest incident edge per city
}

func newSolver(cfg Config) *solver {
	s := &solver{cfg: cfg, d: cfg.dist()}
	s.minE = make([]int32, cfg.Cities)
	s.min2 = make([]int32, cfg.Cities)
	for i := range s.minE {
		m1, m2 := int32(math.MaxInt32), int32(math.MaxInt32)
		for j := range s.d[i] {
			if j == i {
				continue
			}
			switch v := s.d[i][j]; {
			case v < m1:
				m1, m2 = v, m1
			case v < m2:
				m2 = v
			}
		}
		s.minE[i] = m1
		s.min2[i] = m2
	}
	return s
}

// lowerBound estimates the cheapest completion of a partial path.  The
// completion must leave the last city once, enter and leave every
// unvisited city, and re-enter the start city; the standard bound charges
// each unvisited city half the sum of its two cheapest incident edges,
// plus half a cheapest edge each for the path's two endpoints.
func (s *solver) lowerBound(path []int32, length int32) int32 {
	visited := uint32(0)
	for _, c := range path {
		visited |= 1 << uint(c)
	}
	est := int32(0)
	for c := 0; c < s.cfg.Cities; c++ {
		if visited&(1<<uint(c)) == 0 {
			est += s.minE[c] + s.min2[c]
		}
	}
	est += s.minE[path[len(path)-1]] + s.minE[path[0]]
	return length + est/2
}

// pathLen sums the edges of a path.
func (s *solver) pathLen(path []int32) int32 {
	var l int32
	for i := 1; i < len(path); i++ {
		l += s.d[path[i-1]][path[i]]
	}
	return l
}

// greedy returns the length of the nearest-neighbor tour from city 0:
// the deterministic initial bound every version seeds the search with,
// so pruning is effective from the first expansion.
func (s *solver) greedy() int32 {
	n := s.cfg.Cities
	visited := uint32(1)
	cur := int32(0)
	var length int32
	for count := 1; count < n; count++ {
		best := int32(-1)
		for c := int32(0); c < int32(n); c++ {
			if visited&(1<<uint(c)) != 0 {
				continue
			}
			if best < 0 || s.d[cur][c] < s.d[cur][best] {
				best = c
			}
		}
		length += s.d[cur][best]
		visited |= 1 << uint(best)
		cur = best
	}
	return length + s.d[cur][0]
}

// recursiveSolve tries all permutations of the cities missing from path,
// pruning against best, and returns the best complete-cycle length found
// (or best unchanged).  nodes counts visited search nodes for costing.
func (s *solver) recursiveSolve(path []int32, length int32, best int32, nodes *int64) int32 {
	n := s.cfg.Cities
	visited := uint32(0)
	for _, c := range path {
		visited |= 1 << uint(c)
	}
	var rec func(last int32, length int32)
	buf := append([]int32(nil), path...)
	rec = func(last int32, length int32) {
		*nodes++
		if len(buf) == n {
			total := length + s.d[last][buf[0]]
			if total < best {
				best = total
			}
			return
		}
		for c := int32(0); c < int32(n); c++ {
			if visited&(1<<uint(c)) != 0 {
				continue
			}
			nl := length + s.d[last][c]
			if nl+s.minE[c] >= best {
				continue
			}
			visited |= 1 << uint(c)
			buf = append(buf, c)
			rec(c, nl)
			buf = buf[:len(buf)-1]
			visited &^= 1 << uint(c)
		}
	}
	rec(path[len(path)-1], length)
	return best
}

// returnLen is the path length at which get_tour stops extending:
// paths with at most Threshold cities remaining are solvable.
func (c Config) returnLen() int { return c.Cities - c.Threshold }

// RunSeq runs the sequential branch and bound (a single worker with a
// private queue).
func RunSeq(cfg Config) (core.Result, Output, error) {
	a := newApp(cfg)
	res, err := core.Seq.Run(a, core.Base(1))
	return res, a.seqOut, err
}

// Seq is the sequential body.
func (a *app) Seq(ctx *sim.Ctx) {
	cfg := a.cfg
	{
		s := newSolver(cfg)
		best := s.greedy()
		// Priority queue of (bound, path) — local heap.
		type item struct {
			bound  int32
			length int32
			path   []int32
		}
		var heap []item
		push := func(it item) {
			heap = append(heap, it)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if heap[p].bound <= heap[i].bound {
					break
				}
				heap[p], heap[i] = heap[i], heap[p]
				i = p
			}
			ctx.Compute(cfg.QueueCost)
		}
		pop := func() item {
			top := heap[0]
			last := len(heap) - 1
			heap[0] = heap[last]
			heap = heap[:last]
			for i := 0; ; {
				l, r := 2*i+1, 2*i+2
				m := i
				if l < last && heap[l].bound < heap[m].bound {
					m = l
				}
				if r < last && heap[r].bound < heap[m].bound {
					m = r
				}
				if m == i {
					break
				}
				heap[i], heap[m] = heap[m], heap[i]
				i = m
			}
			ctx.Compute(cfg.QueueCost)
			return top
		}
		push(item{0, 0, []int32{0}})
		for len(heap) > 0 {
			it := pop()
			if it.bound >= best {
				continue
			}
			if len(it.path) >= cfg.returnLen() {
				var nodes int64
				best = s.recursiveSolve(it.path, it.length, best, &nodes)
				ctx.Compute(sim.Time(nodes) * cfg.NodeCost)
				continue
			}
			visited := uint32(0)
			for _, c := range it.path {
				visited |= 1 << uint(c)
			}
			last := it.path[len(it.path)-1]
			for c := int32(0); c < int32(cfg.Cities); c++ {
				if visited&(1<<uint(c)) != 0 {
					continue
				}
				nl := it.length + s.d[last][c]
				np := append(append([]int32(nil), it.path...), c)
				nb := s.lowerBound(np, nl)
				ctx.Compute(cfg.BoundCost)
				if nb < best {
					push(item{nb, nl, np})
				}
			}
		}
		a.seqOut.Best = best
		a.hasSeq = true
	}
}
