package tsp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
)

// app implements core.App.  TSP is a master/slave app under PVM: Master
// returns the body of the extra master process, which owns all tour
// structures privately, as in the paper.
type app struct {
	cfg Config

	// Per-run machinery, rebuilt by the Setup hooks.
	s    *solver
	l    tmkLayout
	best int32 // improvement collector (verification, outside accounting)

	seqOut Output
	hasSeq bool
	hasPar bool
}

// NewApp wraps a TSP instance as a registrable experiment.
func NewApp(cfg Config) core.App { return newApp(cfg) }

func newApp(cfg Config) *app { return &app{cfg: cfg} }

// Clone returns a fresh instance with the same configuration and no run
// state, so grid workers can run copies concurrently (core.Cloneable).
func (a *app) Clone() core.App { return newApp(a.cfg) }

// Apps returns this package's registry entry (Figure 6) at the given
// workload scale.  The branch-and-bound search does not shrink linearly;
// quick mode swaps in a smaller instance with the same structure.
func Apps(scale float64) []core.App {
	cfg := Paper()
	if scale < 1 {
		cfg.Cities = 12
		cfg.Threshold = 8
	}
	return []core.App{newApp(cfg)}
}

// BigApps returns the registry entry for the bigp scenario family: a
// lower recursion threshold than the paper input, so the task queue
// holds thousands of subtours and P=256 workers all find work.
func BigApps(scale float64) []core.App {
	cfg := Paper()
	cfg.Cities, cfg.Threshold = 12, 8
	if scale < 1 {
		cfg.Cities, cfg.Threshold = 11, 7
	}
	return []core.App{newApp(cfg)}
}

func (a *app) Name() string { return "TSP" }
func (a *app) Figure() int  { return 6 }

func (a *app) Problem() string {
	return fmt.Sprintf("%d cities, threshold %d", a.cfg.Cities, a.cfg.Threshold)
}

func (a *app) Check() error {
	if !a.hasSeq || !a.hasPar {
		return fmt.Errorf("tsp: Check needs a sequential and a parallel run")
	}
	return a.seqOut.Check(Output{Best: a.best})
}

func (a *app) SetupTMK(sys *tmk.System) {
	a.s = newSolver(a.cfg)
	a.best = a.s.greedy()
	a.hasPar = false
	a.l = layoutTMK(sys, a.cfg)
}

func (a *app) TMK(p *tmk.Proc) {
	cfg := a.cfg
	w := &tmkWorker{p: p, cfg: cfg, s: a.s, l: a.l,
		q:  p.I64Array(a.l.queue, maxPool),
		st: p.I32Array(a.l.stack, maxPool),
		pl: p.I32Array(a.l.pool, maxPool*cfg.recInts()),
	}
	for {
		path, length := w.getTour()
		if path == nil {
			break
		}
		localBest := p.ReadI32(a.l.best)
		var nodes int64
		found := a.s.recursiveSolve(path, length, localBest, &nodes)
		p.Compute(sim.Time(nodes) * cfg.NodeCost)
		if found < localBest {
			// Update the shortest tour under its lock.
			p.LockAcquire(lockBest)
			if cur := p.ReadI32(a.l.best); found < cur {
				p.WriteI32(a.l.best, found)
				if found < a.best {
					a.best = found
				}
			}
			p.LockRelease(lockBest)
		}
	}
	p.Barrier(0)
	if p.ID() == 0 {
		a.hasPar = true
	}
}

func (a *app) SetupPVM(sys *pvm.System) {
	a.s = newSolver(a.cfg)
	a.best = a.s.greedy()
	a.hasPar = false
}

// PVM is the slave body: request solvable tours from the master, solve
// them, and report improved shortest tours.
func (a *app) PVM(p *pvm.Proc) {
	cfg := a.cfg
	master := p.N() // the extra process id
	for {
		b := p.InitSend()
		b.PackOneInt32(int32(p.ID()))
		p.Send(master, tagWorkReq)
		r := p.Recv(master, tagWork)
		ln := int(r.UnpackOneInt32())
		if ln == 0 {
			return // done
		}
		path := make([]int32, ln)
		r.UnpackInt32(path, ln, 1)
		length := r.UnpackOneInt32()
		best := r.UnpackOneInt32()
		var nodes int64
		found := a.s.recursiveSolve(path, length, best, &nodes)
		p.Compute(sim.Time(nodes) * cfg.NodeCost)
		if found < best {
			b := p.InitSend()
			b.PackOneInt32(found)
			p.Send(master, tagUpdate)
		}
	}
}

func (a *app) Master() func(*pvm.Proc) { return a.master }

// master keeps all tour structures in private memory; slaves message it
// to request solvable tours and to report improved shortest tours.
func (a *app) master(p *pvm.Proc) {
	cfg := a.cfg
	s := a.s
	n := p.N()
	type item struct {
		bound  int32
		length int32
		path   []int32
	}
	var heap []item
	push := func(it item) {
		heap = append(heap, it)
		for i := len(heap) - 1; i > 0; {
			par := (i - 1) / 2
			if heap[par].bound <= heap[i].bound {
				break
			}
			heap[par], heap[i] = heap[i], heap[par]
			i = par
		}
		p.Compute(cfg.QueueCost)
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < last && heap[l].bound < heap[m].bound {
				m = l
			}
			if r < last && heap[r].bound < heap[m].bound {
				m = r
			}
			if m == i {
				break
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
		p.Compute(cfg.QueueCost)
		return top
	}
	best := s.greedy()
	push(item{0, 0, []int32{0}})
	// getTour: pop and extend until a solvable path emerges.
	getTour := func() (item, bool) {
		for len(heap) > 0 {
			it := pop()
			if it.bound >= best {
				continue
			}
			if len(it.path) >= cfg.returnLen() {
				return it, true
			}
			visited := uint32(0)
			for _, c := range it.path {
				visited |= 1 << uint(c)
			}
			lastC := it.path[len(it.path)-1]
			for c := int32(0); c < int32(cfg.Cities); c++ {
				if visited&(1<<uint(c)) != 0 {
					continue
				}
				nl := it.length + s.d[lastC][c]
				np := append(append([]int32(nil), it.path...), c)
				nb := s.lowerBound(np, nl)
				p.Compute(cfg.BoundCost)
				if nb < best {
					push(item{nb, nl, np})
				}
			}
		}
		return item{}, false
	}
	done := 0
	for done < n {
		r := p.Recv(-1, -1)
		switch r.Tag() {
		case tagUpdate:
			if v := r.UnpackOneInt32(); v < best {
				best = v
			}
		case tagWorkReq:
			slave := int(r.UnpackOneInt32())
			it, ok := getTour()
			b := p.InitSend()
			if !ok {
				b.PackOneInt32(0)
				done++
			} else {
				b.PackOneInt32(int32(len(it.path)))
				b.PackInt32(it.path, len(it.path), 1)
				b.PackOneInt32(it.length)
				b.PackOneInt32(best)
			}
			p.Send(slave, tagWork)
		}
	}
	a.best = best
	a.hasPar = true
}
