package fft

import (
	"repro/internal/core"
)

// RunTMK runs the TreadMarks version: both array buffers are shared.
// Each iteration a processor reads the source planes it needs (remote
// pages fault in diff by diff), writes its own planes of the destination,
// runs the local FFT passes in the same interval, and waits at the
// barrier.
func RunTMK(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := &app{cfg: cfg}
	res, err := core.TMK.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, a.parOut, err
}

// PVM message tag.
const tagBlock = 1

// RunPVM runs the PVM version: the transpose is performed by explicitly
// sending each processor the block of planes it will own.
func RunPVM(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := &app{cfg: cfg}
	res, err := core.PVM.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, a.parOut, err
}
