package fft

import (
	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/tmk"
)

// sumSink collects per-processor plane checksums out of band.
var sumSink int64

// RunTMK runs the TreadMarks version: both array buffers are shared.
// Each iteration a processor reads the source planes it needs (remote
// pages fault in diff by diff), writes its own planes of the destination,
// runs the local FFT passes in the same interval, and waits at the
// barrier.
func RunTMK(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	n := cfg.N
	var aA, bA tmk.Addr
	sumSink = 0
	res, err := core.RunTMK(ccfg,
		func(sys *tmk.System) {
			aA = sys.MallocPageAligned(16 * cfg.points())
			bA = sys.MallocPageAligned(16 * cfg.points())
			sys.InitF64(aA, cfg.initData())
		},
		func(p *tmk.Proc) {
			nprocs := p.N()
			lo, hi := span(n, nprocs, p.ID())
			av := p.F64Array(aA, 2*cfg.points())
			bv := p.F64Array(bA, 2*cfg.points())
			plane := 2 * n * n
			local := make([]float64, (hi-lo)*plane)
			row := make([]float64, 2*n)
			for it := 0; it < cfg.Iters; it++ {
				src, dst := av, bv
				if it%2 == 1 {
					src, dst = bv, av
				}
				// Transpose own destination planes: local[x][y][z] =
				// src[z][x][y].  Row (z,x,*) is contiguous in src.
				for x := lo; x < hi; x++ {
					for z := 0; z < n; z++ {
						src.Load(row, 2*((z*n+x)*n), 2*((z*n+x)*n)+2*n)
						for y := 0; y < n; y++ {
							di := (x-lo)*plane + 2*((y*n)+z)
							local[di], local[di+1] = row[2*y], row[2*y+1]
						}
					}
				}
				p.Compute(passes(cfg, local, lo, hi, it))
				dst.Store(local, lo*plane)
				p.Barrier(it)
			}
			// Verification: checksum own planes of the final buffer.
			fl := av
			if cfg.Iters%2 == 1 {
				fl = bv
			}
			fl.Load(local, lo*plane, hi*plane)
			sumSink += chunkChecksum(local, lo*plane)
		})
	return res, Output{Sum: sumSink}, err
}

// PVM message tag.
const tagBlock = 1

// RunPVM runs the PVM version: the transpose is performed by explicitly
// sending each processor the block of planes it will own.
func RunPVM(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	n := cfg.N
	sumSink = 0
	res, err := core.RunPVM(ccfg, func(p *pvm.Proc) {
		nprocs := p.N()
		lo, hi := span(n, nprocs, p.ID())
		plane := 2 * n * n
		// Own planes of the previous layout (z is the old first dim).
		prev := make([]float64, (hi-lo)*plane)
		copy(prev, cfg.initData()[lo*plane:hi*plane])
		cur := make([]float64, (hi-lo)*plane)
		for it := 0; it < cfg.Iters; it++ {
			// Send each destination owner the block src[z][x][y] for z in
			// my planes, x in theirs, all y.
			for q := 0; q < nprocs; q++ {
				if q == p.ID() {
					continue
				}
				qlo, qhi := span(n, nprocs, q)
				blk := make([]float64, 0, 2*(hi-lo)*(qhi-qlo)*n)
				for z := lo; z < hi; z++ {
					for x := qlo; x < qhi; x++ {
						base := (z-lo)*plane + 2*(x*n)
						blk = append(blk, prev[base:base+2*n]...)
					}
				}
				b := p.InitSend()
				b.PackFloat64(blk, len(blk), 1)
				p.Send(q, tagBlock)
			}
			// Scatter my own contribution: cur[x][y][z] = prev[z][x][y].
			for z := lo; z < hi; z++ {
				for x := lo; x < hi; x++ {
					for y := 0; y < n; y++ {
						si := (z-lo)*plane + 2*((x*n)+y)
						di := (x-lo)*plane + 2*((y*n)+z)
						cur[di], cur[di+1] = prev[si], prev[si+1]
					}
				}
			}
			// Receive and scatter the other blocks.
			for recvd := 0; recvd < nprocs-1; recvd++ {
				r := p.Recv(-1, tagBlock)
				qlo, qhi := span(n, nprocs, r.Src())
				blk := make([]float64, 2*(qhi-qlo)*(hi-lo)*n)
				r.UnpackFloat64(blk, len(blk), 1)
				bi := 0
				for z := qlo; z < qhi; z++ {
					for x := lo; x < hi; x++ {
						for y := 0; y < n; y++ {
							di := (x-lo)*plane + 2*((y*n)+z)
							cur[di], cur[di+1] = blk[bi], blk[bi+1]
							bi += 2
						}
					}
				}
			}
			p.Compute(passes(cfg, cur, lo, hi, it))
			prev, cur = cur, prev
		}
		sumSink += chunkChecksum(prev, lo*plane)
	}, nil)
	return res, Output{Sum: sumSink}, err
}
