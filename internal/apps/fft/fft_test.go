package fft

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// TestFFT1DKnownValues: FFT of a constant signal is an impulse.
func TestFFT1DImpulse(t *testing.T) {
	n := 8
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = 1
	}
	fft1d(re, im)
	if math.Abs(re[0]-8) > 1e-12 {
		t.Fatalf("re[0] = %v, want 8", re[0])
	}
	for i := 1; i < n; i++ {
		if math.Abs(re[i]) > 1e-12 || math.Abs(im[i]) > 1e-12 {
			t.Fatalf("bin %d = (%v,%v), want 0", i, re[i], im[i])
		}
	}
}

// Property: Parseval's theorem — energy is preserved up to the factor n.
func TestFFT1DParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 << (2 + r.Intn(5)) // 4..64
		re := make([]float64, n)
		im := make([]float64, n)
		var e1 float64
		for i := range re {
			re[i] = r.NormFloat64()
			im[i] = r.NormFloat64()
			e1 += re[i]*re[i] + im[i]*im[i]
		}
		fft1d(re, im)
		var e2 float64
		for i := range re {
			e2 += re[i]*re[i] + im[i]*im[i]
		}
		return math.Abs(e2-float64(n)*e1) < 1e-6*(1+e2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqDeterministic(t *testing.T) {
	cfg := Small()
	_, a, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Check(b); err != nil {
		t.Fatal(err)
	}
	if a.Sum == 0 {
		t.Fatal("degenerate checksum")
	}
}

func TestTMKMatchesSequential(t *testing.T) {
	cfg := Small()
	_, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		_, got, err := RunTMK(cfg, core.Default(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := want.Check(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestPVMMatchesSequential(t *testing.T) {
	cfg := Small()
	_, want, err := RunSeq(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		_, got, err := RunPVM(cfg, core.Default(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := want.Check(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// Release consistency means TreadMarks moves about the same amount of
// data as PVM in the transpose, but through many more (page-sized diff)
// messages — the paper's FFT observation.
func TestSimilarDataManyMoreMessages(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	cfg := Paper()
	cfg.Iters = 4 // the first iteration reads preloaded data (no traffic)
	const n = 8
	pvmRes, _, err := RunPVM(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	tmkRes, _, err := RunTMK(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	dataRatio := float64(tmkRes.Net.Bytes) / float64(pvmRes.Net.Bytes)
	// TreadMarks pays no traffic on the first (preloaded) iteration, so
	// over 4 iterations the expected ratio is ~3/4.
	if dataRatio < 0.5 || dataRatio > 2.0 {
		t.Errorf("data ratio %.2f, want ~1 (release consistency)", dataRatio)
	}
	msgRatio := float64(tmkRes.Net.Messages) / float64(pvmRes.Net.Messages)
	if msgRatio < 5 {
		t.Errorf("message ratio %.1f, want many more in TreadMarks", msgRatio)
	}
}

// Paper-scale: TreadMarks reaches ~80% of PVM's speedup at 8 processors.
func TestPaperScaleGap(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	cfg := Paper()
	cfg.Iters = 3
	pvmRes, pvmOut, err := RunPVM(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	tmkRes, tmkOut, err := RunTMK(cfg, core.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := pvmOut.Check(tmkOut); err != nil {
		t.Fatal(err)
	}
	gap := tmkRes.Time.Seconds() / pvmRes.Time.Seconds()
	if gap < 1.02 || gap > 1.6 {
		t.Fatalf("gap %.3f (tmk %.2fs pvm %.2fs), want ~1.25",
			gap, tmkRes.Time.Seconds(), pvmRes.Time.Seconds())
	}
}
