package fft

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
	"sync"
)

// app implements core.App.
type app struct {
	cfg Config

	aA, bA tmk.Addr // shared array buffers of the current TreadMarks run

	mu     sync.Mutex // guards parOut: procs fold partials concurrently
	parOut Output     // accumulated per-processor plane checksums
	seqOut Output
	hasSeq bool
	hasPar bool
}

// NewApp wraps a 3D-FFT configuration as a registrable experiment.
func NewApp(cfg Config) core.App { return &app{cfg: cfg} }

// Clone returns a fresh instance with the same configuration and no run
// state, so grid workers can run copies concurrently (core.Cloneable).
func (a *app) Clone() core.App { return &app{cfg: a.cfg} }

// Apps returns this package's registry entry (Figure 11) at the given
// workload scale.  The cube edge does not shrink linearly; quick mode
// swaps in a smaller power-of-two edge.
func Apps(scale float64) []core.App {
	cfg := Paper()
	if scale < 1 {
		cfg.N = 16
	}
	cfg.Iters = core.Scaled(cfg.Iters, scale, 2)
	return []core.App{&app{cfg: cfg}}
}

// BigApps returns the registry entry for the bigp scenario family: a
// 32^3 cube over two iterations.  The plane distribution hands out 32
// planes, so processors beyond 32 idle — the honest answer for an app
// whose decomposition axis is a cube edge.
func BigApps(scale float64) []core.App {
	cfg := Paper()
	cfg.N, cfg.Iters = 32, 2
	if scale < 1 {
		cfg.N = 16
	}
	return []core.App{&app{cfg: cfg}}
}

func (a *app) Name() string { return "3D-FFT" }
func (a *app) Figure() int  { return 11 }

func (a *app) Problem() string {
	return fmt.Sprintf("%d^3 complex, %d iters", a.cfg.N, a.cfg.Iters)
}

// addSum folds one processor's partial checksum into the collector;
// integer addition commutes, so any accumulation order — including the
// parallel engine's concurrent compute phases — gives the same output.
func (a *app) addSum(v int64) {
	a.mu.Lock()
	a.parOut.Sum += v
	a.mu.Unlock()
}

func (a *app) Check() error {
	if !a.hasSeq || !a.hasPar {
		return fmt.Errorf("fft: Check needs a sequential and a parallel run")
	}
	return a.seqOut.Check(a.parOut)
}

func (a *app) Seq(ctx *sim.Ctx) {
	cfg := a.cfg
	n := cfg.N
	prev := cfg.initData()
	cur := make([]float64, len(prev))
	for it := 0; it < cfg.Iters; it++ {
		// Transpose by rotation: cur[x][y][z] = prev[z][x][y].
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				for z := 0; z < n; z++ {
					si := 2 * ((z*n+x)*n + y)
					di := 2 * ((x*n+y)*n + z)
					cur[di], cur[di+1] = prev[si], prev[si+1]
				}
			}
		}
		ctx.Compute(passes(cfg, cur, 0, n, it))
		prev, cur = cur, prev
	}
	a.seqOut.Sum = chunkChecksum(prev, 0)
	a.hasSeq = true
}

func (a *app) SetupTMK(sys *tmk.System) {
	a.parOut, a.hasPar = Output{}, true
	cfg := a.cfg
	a.aA = sys.MallocPageAligned(16 * cfg.points())
	a.bA = sys.MallocPageAligned(16 * cfg.points())
	sys.InitF64(a.aA, cfg.initData())
}

func (a *app) TMK(p *tmk.Proc) {
	cfg := a.cfg
	n := cfg.N
	nprocs := p.N()
	lo, hi := span(n, nprocs, p.ID())
	av := p.F64Array(a.aA, 2*cfg.points())
	bv := p.F64Array(a.bA, 2*cfg.points())
	plane := 2 * n * n
	local := make([]float64, (hi-lo)*plane)
	row := make([]float64, 2*n)
	for it := 0; it < cfg.Iters; it++ {
		src, dst := av, bv
		if it%2 == 1 {
			src, dst = bv, av
		}
		// Transpose own destination planes: local[x][y][z] =
		// src[z][x][y].  Row (z,x,*) is contiguous in src.
		for x := lo; x < hi; x++ {
			for z := 0; z < n; z++ {
				src.Load(row, 2*((z*n+x)*n), 2*((z*n+x)*n)+2*n)
				for y := 0; y < n; y++ {
					di := (x-lo)*plane + 2*((y*n)+z)
					local[di], local[di+1] = row[2*y], row[2*y+1]
				}
			}
		}
		p.Compute(passes(cfg, local, lo, hi, it))
		dst.Store(local, lo*plane)
		p.Barrier(it)
	}
	// Verification: checksum own planes of the final buffer.
	fl := av
	if cfg.Iters%2 == 1 {
		fl = bv
	}
	fl.Load(local, lo*plane, hi*plane)
	a.addSum(chunkChecksum(local, lo*plane))
}

func (a *app) SetupPVM(sys *pvm.System) {
	a.parOut, a.hasPar = Output{}, true
}

func (a *app) PVM(p *pvm.Proc) {
	cfg := a.cfg
	n := cfg.N
	nprocs := p.N()
	lo, hi := span(n, nprocs, p.ID())
	plane := 2 * n * n
	// Own planes of the previous layout (z is the old first dim).
	prev := make([]float64, (hi-lo)*plane)
	copy(prev, cfg.initData()[lo*plane:hi*plane])
	cur := make([]float64, (hi-lo)*plane)
	for it := 0; it < cfg.Iters; it++ {
		// Iteration-distinct tag: the wildcard receive must not conflate
		// a delayed peer's block with a faster peer's next-iteration one.
		tag := tagBlock + it
		// Send each destination owner the block src[z][x][y] for z in
		// my planes, x in theirs, all y.
		for q := 0; q < nprocs; q++ {
			if q == p.ID() {
				continue
			}
			qlo, qhi := span(n, nprocs, q)
			blk := make([]float64, 0, 2*(hi-lo)*(qhi-qlo)*n)
			for z := lo; z < hi; z++ {
				for x := qlo; x < qhi; x++ {
					base := (z-lo)*plane + 2*(x*n)
					blk = append(blk, prev[base:base+2*n]...)
				}
			}
			b := p.InitSend()
			b.PackFloat64(blk, len(blk), 1)
			p.Send(q, tag)
		}
		// Scatter my own contribution: cur[x][y][z] = prev[z][x][y].
		for z := lo; z < hi; z++ {
			for x := lo; x < hi; x++ {
				for y := 0; y < n; y++ {
					si := (z-lo)*plane + 2*((x*n)+y)
					di := (x-lo)*plane + 2*((y*n)+z)
					cur[di], cur[di+1] = prev[si], prev[si+1]
				}
			}
		}
		// Receive and scatter the other blocks.
		for recvd := 0; recvd < nprocs-1; recvd++ {
			r := p.Recv(-1, tag)
			qlo, qhi := span(n, nprocs, r.Src())
			blk := make([]float64, 2*(qhi-qlo)*(hi-lo)*n)
			r.UnpackFloat64(blk, len(blk), 1)
			bi := 0
			for z := qlo; z < qhi; z++ {
				for x := lo; x < hi; x++ {
					for y := 0; y < n; y++ {
						di := (x-lo)*plane + 2*((y*n)+z)
						cur[di], cur[di+1] = blk[bi], blk[bi+1]
						bi += 2
					}
				}
			}
		}
		p.Compute(passes(cfg, cur, lo, hi, it))
		prev, cur = cur, prev
	}
	a.addSum(chunkChecksum(prev, lo*plane))
}

func (a *app) Master() func(*pvm.Proc) { return nil }
