// Package fft implements the NAS 3-D FFT kernel (paper §3.10): repeated
// Fourier transform passes over a three-dimensional complex array
// distributed along its first dimension.  FFTs along the second and third
// dimensions are local to a processor's planes; covering the first
// dimension requires a transpose, which is where all the communication
// happens.
//
// Each iteration transposes the array by rotating its dimensions —
// dst[x][y][z] = src[z][x][y] — and then runs FFT passes along the two
// innermost dimensions of the new layout plus a deterministic evolution
// factor.  Rotating (rather than swapping) the dimensions means each
// source page is read by essentially one remote processor, so the
// TreadMarks version moves almost the same amount of data as PVM (the
// paper's release-consistency observation for FFT) while sending many
// more messages (one diff request/response pair per page).
//
// In the TreadMarks version both array buffers are shared and a barrier
// separates iterations.  In the PVM version each processor explicitly
// sends every other processor the block it will own — index arithmetic
// the paper calls "much more error-prone than simply swapping the
// indices", which made the message-passing version significantly harder
// to write.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/core"
	"repro/internal/sim"
)

// Config describes one 3-D FFT problem.  Layout dimensions rotate each
// iteration, so N1, N2, N3 must be equal for the plane distribution to
// stay aligned; the cube requirement is checked at run time.
type Config struct {
	N     int // cube edge (power of two)
	Iters int
	Seed  uint64

	PointCost sim.Time // per point per butterfly level
}

// Paper returns the paper-like problem.  The paper ran a scaled-down
// class A (limited swap space); we scale to 64^3 and keep the modeled
// per-point cost at the 99 MHz machine's level, preserving the
// compute-to-transpose ratio.
func Paper() Config {
	return Config{N: 64, Iters: 6, Seed: 299792, PointCost: 1500 * sim.Nanosecond}
}

// Small returns a CI-sized problem.
func Small() Config {
	return Config{N: 8, Iters: 3, Seed: 299792, PointCost: 1500 * sim.Nanosecond}
}

func (c Config) points() int { return c.N * c.N * c.N }

func ilog2(n int) int {
	l := 0
	for 1<<uint(l) < n {
		l++
	}
	return l
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// initData builds the deterministic initial array (interleaved re/im
// float64, row-major).
func (c Config) initData() []float64 {
	v := make([]float64, 2*c.points())
	for i := range v {
		v[i] = float64(splitmix64(c.Seed+uint64(i))>>11)/(1<<53) - 0.5
	}
	return v
}

// fft1d performs an in-place radix-2 complex FFT on re/im pairs of
// length n (a power of two).
func fft1d(re, im []float64) {
	n := len(re)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wr, wi := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			cwr, cwi := 1.0, 0.0
			for k := 0; k < length/2; k++ {
				i0, i1 := start+k, start+k+length/2
				xr := re[i1]*cwr - im[i1]*cwi
				xi := re[i1]*cwi + im[i1]*cwr
				re[i1], im[i1] = re[i0]-xr, im[i0]-xi
				re[i0], im[i0] = re[i0]+xr, im[i0]+xi
				cwr, cwi = cwr*wr-cwi*wi, cwr*wi+cwi*wr
			}
		}
	}
}

// evolve applies the deterministic per-point phase factor of iteration it.
func evolve(re, im *float64, it, idx int) {
	ph := cmplx.Rect(1, float64((it*31+idx)%64)/64*2*math.Pi)
	r, i := *re, *im
	*re = r*real(ph) - i*imag(ph)
	*im = r*imag(ph) + i*real(ph)
}

// Output is the verification checksum.
type Output struct {
	Sum int64
}

// Check compares outputs exactly: every version runs the same 1-D FFTs on
// the same vectors in the same element order, so results are bit-equal.
func (o Output) Check(other Output) error {
	if o != other {
		return fmt.Errorf("fft: checksum %d vs %d", o.Sum, other.Sum)
	}
	return nil
}

// chunkChecksum folds a slice into an integer checksum using global
// element indices (bit-exact and partition-independent).
func chunkChecksum(v []float64, base int) int64 {
	var s int64
	for i, x := range v {
		s += int64(math.Round(x*1e9)) % 1000003 * int64((base+i)%97+1)
	}
	return s
}

// passes runs the iteration's local work on a buffer holding planes
// [lo,hi) of an n x n x n layout (data[0] is the start of plane lo,
// interleaved re/im): FFT along the third dimension (contiguous), FFT
// along the second dimension (strided), and the evolution factor, whose
// phase depends on the global element index.  Returns the modeled cost.
func passes(cfg Config, data []float64, lo, hi, it int) sim.Time {
	n := cfg.N
	re := make([]float64, n)
	im := make([]float64, n)
	for x := 0; x < hi-lo; x++ {
		for y := 0; y < n; y++ {
			base := 2 * ((x*n + y) * n)
			for z := 0; z < n; z++ {
				re[z], im[z] = data[base+2*z], data[base+2*z+1]
			}
			fft1d(re, im)
			for z := 0; z < n; z++ {
				data[base+2*z], data[base+2*z+1] = re[z], im[z]
			}
		}
	}
	for x := 0; x < hi-lo; x++ {
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				idx := 2 * ((x*n+y)*n + z)
				re[y], im[y] = data[idx], data[idx+1]
			}
			fft1d(re, im)
			for y := 0; y < n; y++ {
				idx := 2 * ((x*n+y)*n + z)
				data[idx], data[idx+1] = re[y], im[y]
			}
		}
	}
	for x := 0; x < hi-lo; x++ {
		for yz := 0; yz < n*n; yz++ {
			idx := 2 * (x*n*n + yz)
			evolve(&data[idx], &data[idx+1], it, (lo+x)*n*n+yz)
		}
	}
	levels := 2*ilog2(n) + 1
	return sim.Time((hi-lo)*n*n*levels) * cfg.PointCost
}

func span(total, nprocs, id int) (int, int) {
	return id * total / nprocs, (id + 1) * total / nprocs
}

// RunSeq runs the sequential program.
func RunSeq(cfg Config) (core.Result, Output, error) {
	a := &app{cfg: cfg}
	res, err := core.Seq.Run(a, core.Base(1))
	return res, a.seqOut, err
}
