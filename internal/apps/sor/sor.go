// Package sor implements red-black successive over-relaxation
// (paper §3.4): a five-point stencil over a matrix of floats, with the
// red and black elements stored as two separate arrays divided into
// contiguous bands of rows, one band per processor.  Communication occurs
// only across the boundary rows between bands.
//
// One "iteration" is one color sweep (red and black alternate), matching
// the paper's accounting: the PVM version sends 2*(n-1) messages per
// iteration (each processor ships the just-updated boundary row to its
// neighbors), while TreadMarks pays 2*(n-1) barrier messages plus 8*(n-1)
// messages to page in the boundary-row diffs — each boundary row spans
// one and a half pages, so two diff request/response exchanges per row.
//
// The two input modes reproduce the paper's load-imbalance observation:
// with zero-initialized interiors (SOR-Zero), elements that remain zero
// model the slow denormalized/underflow arithmetic of the era's FPUs, so
// processors in the middle of the array run slower than those near the
// nonzero edges.  With nonzero initialization (SOR-Nonzero) the load is
// balanced and per-element cost lower.
package sor

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
)

// Config describes one SOR problem.
type Config struct {
	M, N     int      // matrix rows and columns (N split into red/black halves)
	Sweeps   int      // color sweeps (2 sweeps = 1 full red+black iteration)
	Zero     bool     // zero-initialized interior (SOR-Zero) or nonzero
	CostFast sim.Time // per-element update cost, nonzero operands
	CostSlow sim.Time // per-element update cost when the result underflows
}

// Paper returns the paper-scale problem.  The paper runs 2048 x 3072
// single-precision floats (each red or black row is 1536 float32 = 6 KB =
// 1.5 pages); we store float64 at half the column count, which preserves
// the page geometry exactly, and double the per-element cost so each
// float64 element stands for two float32 elements of computation.
func Paper(zero bool) Config {
	return Config{
		M: 2048, N: 1536, Sweeps: 20, Zero: zero,
		CostFast: 800 * sim.Nanosecond,
		CostSlow: 2400 * sim.Nanosecond,
	}
}

// Small returns a CI-sized problem that keeps the 1.5-page row geometry.
func Small(zero bool) Config {
	return Config{
		M: 64, N: 1536, Sweeps: 6, Zero: zero,
		CostFast: 800 * sim.Nanosecond,
		CostSlow: 2400 * sim.Nanosecond,
	}
}

func (c Config) half() int { return c.N / 2 }

// initValue gives the starting contents of matrix element (i,j).
func (c Config) initValue(i, j int) float64 {
	if i == 0 || i == c.M-1 || j == 0 || j == c.N-1 {
		return 1.0
	}
	if c.Zero {
		return 0.0
	}
	// Deterministic nonzero interior.
	return 1.0 + 0.5*math.Sin(float64(i*31+j*17))
}

// grids builds the initial red and black arrays (row-major, M x N/2).
// Red holds matrix elements with (i+j) even, black the odd ones.
func (c Config) grids() (red, black []float64) {
	h := c.half()
	red = make([]float64, c.M*h)
	black = make([]float64, c.M*h)
	for i := 0; i < c.M; i++ {
		for k := 0; k < h; k++ {
			red[i*h+k] = c.initValue(i, 2*k+(i%2))
			black[i*h+k] = c.initValue(i, 2*k+((i+1)%2))
		}
	}
	return red, black
}

// Output carries the verification checksum: per-row sums reduced in a
// fixed global row order, so the result is independent of the band
// partition (bit-exact across sequential, TreadMarks, and PVM versions).
type Output struct {
	Checksum float64
}

// Check compares outputs exactly.
func (o Output) Check(other Output) error {
	if o.Checksum != other.Checksum {
		return fmt.Errorf("sor: checksum %g vs %g", o.Checksum, other.Checksum)
	}
	return nil
}

// sweepRow updates one row of the target color and returns the modeled
// cost.  target[k] corresponds to matrix column 2k+colPar; its stencil
// neighbors live in the other-color rows above, at, and below.
//
// Row geometry (h = N/2): for a target element at matrix (i, cj):
// vertical neighbors are other[i-1][k'] and other[i+1][k'] with the same
// column index mapping, horizontal neighbors are other[i][k-?]..  With
// red/black split storage, the other-color row i holds columns of parity
// 1-colPar; the element to the left of cj is at index k-1+colPar? — the
// arithmetic is easier stated directly: for row parity p = i%2, a red
// element (i,k) sits at column 2k+p, its horizontal other-color
// neighbors sit at indices k-1+p and k+p of the other array's row i.
func sweepRow(cfg Config, i int, target, up, same, down []float64, colPar int) sim.Time {
	h := cfg.half()
	var fast, slow int
	for k := 0; k < h; k++ {
		cj := 2*k + colPar
		if i == 0 || i == cfg.M-1 || cj == 0 || cj == cfg.N-1 {
			continue // fixed boundary
		}
		left := same[k-1+colPar]
		right := same[k+colPar]
		sum := up[k] + down[k] + left + right
		v := 0.25 * sum
		target[k] = v
		if v == 0 {
			slow++
		} else {
			fast++
		}
	}
	return sim.Time(fast)*cfg.CostFast + sim.Time(slow)*cfg.CostSlow
}

// colParity returns the column parity of the color stored in arr index k
// of row i: red rows have parity i%2, black rows 1-(i%2).
func colParity(i int, red bool) int {
	if red {
		return i % 2
	}
	return 1 - i%2
}

// rowSum sums a row in index order (fixed fp order for verification).
func rowSum(row []float64) float64 {
	s := 0.0
	for _, v := range row {
		s += v
	}
	return s
}

// checksum reduces per-row sums of both arrays in global row order.
func checksum(rowSums []float64) float64 {
	s := 0.0
	for _, v := range rowSums {
		s += v
	}
	return s
}

// band returns processor id's row range [lo,hi).
func band(m, nprocs, id int) (int, int) {
	return id * m / nprocs, (id + 1) * m / nprocs
}

// RunSeq runs the sequential program.
func RunSeq(cfg Config) (core.Result, Output, error) {
	a := newApp(cfg)
	res, err := core.Seq.Run(a, core.Base(1))
	return res, a.seqOut, err
}

// RunTMK runs the TreadMarks version: both arrays live in shared memory,
// processors synchronize with one barrier per color sweep.
func RunTMK(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := newApp(cfg)
	res, err := core.TMK.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, a.parOut, err
}

// Message tags for the PVM version.
const (
	tagRowDown = 1 // boundary row sent to the lower neighbor
	tagRowUp   = 2 // boundary row sent to the upper neighbor
	tagSums    = 3
)

// RunPVM runs the PVM version: each processor holds its band plus ghost
// rows and explicitly sends the just-updated boundary rows to neighbors.
func RunPVM(cfg Config, ccfg core.Config) (core.Result, Output, error) {
	a := newApp(cfg)
	res, err := core.PVM.Run(a, core.Scenario{Name: "custom", Config: ccfg})
	return res, a.parOut, err
}
