package sor

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
)

// app implements core.App for one SOR input mode (zero or nonzero).
type app struct {
	cfg Config

	// Shared-memory layout of the current TreadMarks run.
	redA, blackA, sumsA tmk.Addr

	seqOut Output
	parOut Output
	hasSeq bool
	hasPar bool
}

// NewApp wraps a SOR configuration as a registrable experiment; the input
// mode (cfg.Zero) selects between the paper's SOR-Zero and SOR-Nonzero.
func NewApp(cfg Config) core.App { return newApp(cfg) }

func newApp(cfg Config) *app { return &app{cfg: cfg} }

// Clone returns a fresh instance with the same configuration and no run
// state, so grid workers can run copies concurrently (core.Cloneable).
func (a *app) Clone() core.App { return newApp(a.cfg) }

// Apps returns this package's registry entries (Figures 2 and 3) at the
// given workload scale.
func Apps(scale float64) []core.App {
	var out []core.App
	for _, zero := range []bool{true, false} {
		cfg := Paper(zero)
		cfg.M = core.Scaled(cfg.M, scale, 32)
		cfg.Sweeps = core.Scaled(cfg.Sweeps, scale, 4)
		out = append(out, newApp(cfg))
	}
	return out
}

// BigApps returns the registry entries for the bigp scenario family:
// enough rows that every processor keeps a band at P=256, with the
// sweep count cut so the simulation stays CI-sized.
func BigApps(scale float64) []core.App {
	var out []core.App
	for _, zero := range []bool{true, false} {
		cfg := Paper(zero)
		cfg.M, cfg.N, cfg.Sweeps = 1024, 512, 8
		cfg.M = core.Scaled(cfg.M, scale, 512)
		cfg.Sweeps = core.Scaled(cfg.Sweeps, scale, 4)
		out = append(out, newApp(cfg))
	}
	return out
}

func (a *app) Name() string {
	if a.cfg.Zero {
		return "SOR-Zero"
	}
	return "SOR-Nonzero"
}

func (a *app) Figure() int {
	if a.cfg.Zero {
		return 2
	}
	return 3
}

func (a *app) Problem() string {
	mode := "nonzero"
	if a.cfg.Zero {
		mode = "zero"
	}
	return fmt.Sprintf("%dx%d f64, %d sweeps, %s", a.cfg.M, a.cfg.N, a.cfg.Sweeps, mode)
}

func (a *app) Check() error {
	if !a.hasSeq || !a.hasPar {
		return fmt.Errorf("sor: Check needs a sequential and a parallel run")
	}
	return a.seqOut.Check(a.parOut)
}

func (a *app) Seq(ctx *sim.Ctx) {
	cfg := a.cfg
	red, black := cfg.grids()
	h := cfg.half()
	row := func(arr []float64, i int) []float64 { return arr[i*h : (i+1)*h] }
	for s := 0; s < cfg.Sweeps; s++ {
		tgt, oth := red, black
		isRed := s%2 == 0
		if !isRed {
			tgt, oth = black, red
		}
		for i := 1; i < cfg.M-1; i++ {
			cost := sweepRow(cfg, i, row(tgt, i), row(oth, i-1), row(oth, i), row(oth, i+1),
				colParity(i, isRed))
			ctx.Compute(cost)
		}
	}
	sums := make([]float64, 2*cfg.M)
	for i := 0; i < cfg.M; i++ {
		sums[2*i] = rowSum(row(red, i))
		sums[2*i+1] = rowSum(row(black, i))
	}
	a.seqOut.Checksum = checksum(sums)
	a.hasSeq = true
}

func (a *app) SetupTMK(sys *tmk.System) {
	a.parOut, a.hasPar = Output{}, false
	cfg := a.cfg
	h := cfg.half()
	a.redA = sys.Malloc(8 * cfg.M * h)
	a.blackA = sys.Malloc(8 * cfg.M * h)
	a.sumsA = sys.Malloc(8 * 2 * cfg.M)
	red, black := cfg.grids()
	sys.InitF64(a.redA, red)
	sys.InitF64(a.blackA, black)
}

func (a *app) TMK(p *tmk.Proc) {
	cfg := a.cfg
	h := cfg.half()
	lo, hi := band(cfg.M, p.N(), p.ID())
	red := p.F64Array(a.redA, cfg.M*h)
	black := p.F64Array(a.blackA, cfg.M*h)
	// Local scratch rows.
	up := make([]float64, h)
	same := make([]float64, h)
	down := make([]float64, h)
	tgt := make([]float64, h)
	for s := 0; s < cfg.Sweeps; s++ {
		isRed := s%2 == 0
		tArr, oArr := red, black
		if !isRed {
			tArr, oArr = black, red
		}
		for i := lo; i < hi; i++ {
			if i == 0 || i == cfg.M-1 {
				continue
			}
			oArr.Load(up, (i-1)*h, i*h)
			oArr.Load(same, i*h, (i+1)*h)
			oArr.Load(down, (i+1)*h, (i+2)*h)
			tArr.Load(tgt, i*h, (i+1)*h)
			cost := sweepRow(cfg, i, tgt, up, same, down, colParity(i, isRed))
			p.Compute(cost)
			tArr.Store(tgt, i*h)
		}
		p.Barrier(s)
	}
	// Residual: per-row sums in shared memory, reduced by proc 0.
	sums := p.F64Array(a.sumsA, 2*cfg.M)
	buf := make([]float64, h)
	for i := lo; i < hi; i++ {
		red.Load(buf, i*h, (i+1)*h)
		sums.Set(2*i, rowSum(buf))
		black.Load(buf, i*h, (i+1)*h)
		sums.Set(2*i+1, rowSum(buf))
	}
	p.Barrier(cfg.Sweeps)
	if p.ID() == 0 {
		all := make([]float64, 2*cfg.M)
		sums.Load(all, 0, 2*cfg.M)
		a.parOut.Checksum = checksum(all)
		a.hasPar = true
	}
}

func (a *app) SetupPVM(sys *pvm.System) {
	a.parOut, a.hasPar = Output{}, false
}

func (a *app) PVM(p *pvm.Proc) {
	cfg := a.cfg
	h := cfg.half()
	lo, hi := band(cfg.M, p.N(), p.ID())
	// Local storage only for the band plus ghost rows: the data is
	// initialized in a distributed manner in the PVM version.
	glo := lo - 1
	if glo < 0 {
		glo = 0
	}
	ghi := hi + 1
	if ghi > cfg.M {
		ghi = cfg.M
	}
	red := make([]float64, (ghi-glo)*h)
	black := make([]float64, (ghi-glo)*h)
	for i := glo; i < ghi; i++ {
		for k := 0; k < h; k++ {
			red[(i-glo)*h+k] = cfg.initValue(i, 2*k+(i%2))
			black[(i-glo)*h+k] = cfg.initValue(i, 2*k+((i+1)%2))
		}
	}
	row := func(arr []float64, i int) []float64 {
		if i < glo || i >= ghi {
			panic(fmt.Sprintf("sor: pvm proc %d touched row %d outside [%d,%d)", p.ID(), i, glo, ghi))
		}
		return arr[(i-glo)*h : (i-glo+1)*h]
	}
	for s := 0; s < cfg.Sweeps; s++ {
		isRed := s%2 == 0
		tgt, oth := red, black
		if !isRed {
			tgt, oth = black, red
		}
		for i := lo; i < hi; i++ {
			if i == 0 || i == cfg.M-1 {
				continue
			}
			cost := sweepRow(cfg, i, row(tgt, i), row(oth, i-1), row(oth, i), row(oth, i+1),
				colParity(i, isRed))
			p.Compute(cost)
		}
		// Exchange the just-updated color's boundary rows.
		if p.ID() > 0 {
			b := p.InitSend()
			b.PackFloat64(row(tgt, lo), h, 1)
			p.Send(p.ID()-1, tagRowUp)
		}
		if p.ID() < p.N()-1 {
			b := p.InitSend()
			b.PackFloat64(row(tgt, hi-1), h, 1)
			p.Send(p.ID()+1, tagRowDown)
		}
		if p.ID() < p.N()-1 {
			r := p.Recv(p.ID()+1, tagRowUp)
			r.UnpackFloat64(row(tgt, hi), h, 1)
		}
		if p.ID() > 0 {
			r := p.Recv(p.ID()-1, tagRowDown)
			r.UnpackFloat64(row(tgt, lo-1), h, 1)
		}
	}
	// Residual: ship per-row sums to processor 0.
	mySums := make([]float64, 2*(hi-lo))
	for i := lo; i < hi; i++ {
		mySums[2*(i-lo)] = rowSum(row(red, i))
		mySums[2*(i-lo)+1] = rowSum(row(black, i))
	}
	if p.ID() != 0 {
		b := p.InitSend()
		b.PackFloat64(mySums, len(mySums), 1)
		p.Send(0, tagSums)
		return
	}
	all := make([]float64, 2*cfg.M)
	copy(all, mySums)
	for src := 1; src < p.N(); src++ {
		slo, shi := band(cfg.M, p.N(), src)
		r := p.Recv(src, tagSums)
		r.UnpackFloat64(all[2*slo:2*shi], 2*(shi-slo), 1)
	}
	a.parOut.Checksum = checksum(all)
	a.hasPar = true
}

func (a *app) Master() func(*pvm.Proc) { return nil }
