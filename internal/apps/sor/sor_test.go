package sor

import (
	"testing"

	"repro/internal/core"
)

func TestSeqDeterministic(t *testing.T) {
	for _, zero := range []bool{true, false} {
		cfg := Small(zero)
		_, a, err := RunSeq(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, b, err := RunSeq(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Check(b); err != nil {
			t.Fatalf("zero=%v: %v", zero, err)
		}
		if a.Checksum == 0 {
			t.Fatalf("zero=%v: degenerate checksum", zero)
		}
	}
}

func TestTMKMatchesSequential(t *testing.T) {
	for _, zero := range []bool{true, false} {
		cfg := Small(zero)
		_, want, err := RunSeq(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 2, 4, 8} {
			_, got, err := RunTMK(cfg, core.Default(n))
			if err != nil {
				t.Fatalf("zero=%v n=%d: %v", zero, n, err)
			}
			if err := want.Check(got); err != nil {
				t.Fatalf("zero=%v n=%d: %v", zero, n, err)
			}
		}
	}
}

func TestPVMMatchesSequential(t *testing.T) {
	for _, zero := range []bool{true, false} {
		cfg := Small(zero)
		_, want, err := RunSeq(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 2, 4, 8} {
			_, got, err := RunPVM(cfg, core.Default(n))
			if err != nil {
				t.Fatalf("zero=%v n=%d: %v", zero, n, err)
			}
			if err := want.Check(got); err != nil {
				t.Fatalf("zero=%v n=%d: %v", zero, n, err)
			}
		}
	}
}

// The paper's message accounting: per color sweep, PVM sends 2*(n-1)
// messages; TreadMarks sends 2*(n-1) for the barrier plus ~8*(n-1) to
// page in the boundary-row diffs, about 5x more.
func TestMessageRatioNearFive(t *testing.T) {
	cfg := Small(false)
	cfg.Sweeps = 10
	const n = 8
	pvmRes, _, err := RunPVM(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	tmkRes, _, err := RunTMK(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	// PVM: 2*(n-1) per sweep plus n-1 residual messages.
	wantPVM := int64(cfg.Sweeps*2*(n-1) + (n - 1))
	if pvmRes.Net.Messages != wantPVM {
		t.Errorf("pvm messages = %d, want %d", pvmRes.Net.Messages, wantPVM)
	}
	ratio := float64(tmkRes.Net.Messages) / float64(pvmRes.Net.Messages)
	if ratio < 3.5 || ratio > 7 {
		t.Errorf("tmk/pvm message ratio = %.2f (tmk=%d pvm=%d), want ~5",
			ratio, tmkRes.Net.Messages, pvmRes.Net.Messages)
	}
}

// SOR-Zero: most of the matrix stays zero, so TreadMarks diffs are tiny
// and it ships *less* data than PVM (which sends whole rows regardless).
func TestZeroCaseTMKSendsLessData(t *testing.T) {
	cfg := Small(true)
	const n = 4
	pvmRes, _, err := RunPVM(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	tmkRes, _, err := RunTMK(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	if tmkRes.Net.Bytes >= pvmRes.Net.Bytes {
		t.Fatalf("tmk bytes = %d, pvm bytes = %d: TreadMarks should send less on SOR-Zero",
			tmkRes.Net.Bytes, pvmRes.Net.Bytes)
	}
}

// SOR-Zero runs slower sequentially than SOR-Nonzero (underflow traps),
// and exhibits load imbalance that hurts both systems' speedups.
func TestZeroSlowerThanNonzero(t *testing.T) {
	zRes, _, err := RunSeq(Small(true))
	if err != nil {
		t.Fatal(err)
	}
	nzRes, _, err := RunSeq(Small(false))
	if err != nil {
		t.Fatal(err)
	}
	if zRes.Time <= nzRes.Time {
		t.Fatalf("zero %v should be slower than nonzero %v", zRes.Time, nzRes.Time)
	}
}

// TreadMarks stays close to PVM on SOR at paper-like scale (the paper
// reports within ~10%); at 8 processors the gap must not blow up.
func TestTMKWithinReasonOfPVM(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	cfg := Paper(false)
	cfg.Sweeps = 10 // half the sweeps to keep the test quick; ratio per sweep unchanged
	const n = 8
	pvmRes, _, err := RunPVM(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	tmkRes, _, err := RunTMK(cfg, core.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	gap := tmkRes.Time.Seconds() / pvmRes.Time.Seconds()
	if gap > 1.25 {
		t.Fatalf("tmk %.3fs vs pvm %.3fs: gap %.2fx too large", tmkRes.Time.Seconds(), pvmRes.Time.Seconds(), gap)
	}
}
