package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestSameInstantBatchDrain pins the run-queue commit order at one
// virtual instant.  Five procs arm at the same time T; the scheduler
// must pop the smallest id from the heap and drain the rest into the
// run queue, committing them back-to-back in ascending id order.  The
// first proc's turn also arms a *smaller*-id proc at the same T (a late
// same-instant arrival, via Notify): it lands in the heap after the
// drain, and the head-vs-heap compare must schedule it before the
// higher-id procs already queued.  Expected order each round:
// p1 (heap pop), p0 (late arrival beats queued p2), p2..p5 (queue).
func TestSameInstantBatchDrain(t *testing.T) {
	const rounds = 3
	e := NewEngine()
	var src Source
	round := 0
	var at Time
	var trace []string
	e.Spawn("p0", false, func(c *Ctx) {
		for seen := 0; seen < rounds; seen++ {
			c.WaitOn(&src, "round", func() (Time, bool) {
				if round <= seen {
					return 0, false
				}
				return at, true
			})
			trace = append(trace, fmt.Sprintf("p0@%d", c.Now()))
		}
	})
	for i := 1; i <= 5; i++ {
		id := i
		e.Spawn(fmt.Sprintf("p%d", id), false, func(c *Ctx) {
			for r := 0; r < rounds; r++ {
				c.Compute(Millisecond)
				c.Yield() // scheduling point: the batch forms at the new clock
				if id == 1 {
					round++
					at = c.Now()
					src.Notify()
				}
				trace = append(trace, fmt.Sprintf("p%d@%d", id, c.Now()))
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var want []string
	for r := 1; r <= rounds; r++ {
		now := Time(r) * Millisecond
		for _, id := range []int{1, 0, 2, 3, 4, 5} {
			want = append(want, fmt.Sprintf("p%d@%d", id, now))
		}
	}
	if len(trace) != len(want) {
		t.Fatalf("trace length %d, want %d\ngot %v", len(trace), len(want), trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("commit order diverges at %d: got %q, want %q\ntrace: %v", i, trace[i], want[i], trace)
		}
	}
}

// stableBox is a mailbox whose source declares the Stable contract: the
// box is single-consumer, deliveries only append, and the head's arrival
// time never moves — so once the wait condition holds, it keeps holding
// with the same wake time.  The parallel engine may therefore release
// the blocked receiver speculatively with its same-time batch; the
// receiver gates before consuming, and the engine re-verifies the
// condition when the commit token arrives.
type stableBox struct {
	src  Source
	msgs []Time
}

func newStableBox() *stableBox {
	b := &stableBox{}
	b.src.Stable = true
	return b
}

func (b *stableBox) send(c *Ctx, arrival Time) {
	c.Gate()
	c.Sync(func() {
		b.msgs = append(b.msgs, arrival)
		b.src.Notify()
	})
}

func (b *stableBox) recv(c *Ctx) {
	c.WaitOn(&b.src, "mail", func() (Time, bool) {
		if len(b.msgs) == 0 {
			return 0, false
		}
		return b.msgs[0], true
	})
	// The release may have been speculative: consuming is a shared
	// mutation, so it waits for the commit token.
	c.Gate()
	c.Sync(func() { b.msgs = b.msgs[1:] })
}

// stableRingTrace is ringTrace with Stable mailboxes and every event on
// the millisecond grid, so receiver wake times collide with computing
// procs' arrival times and same-time batches routinely contain
// stable-condition procs — the widened release path.  The returned
// trace is the committed send order.
func stableRingTrace(t *testing.T, parallel bool, procs, rounds int, seed int64) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	work := make([][]Time, procs)
	for i := range work {
		work[i] = make([]Time, rounds)
		for r := range work[i] {
			if i%2 == 0 {
				work[i][r] = Time(1+r%3) * Millisecond
			} else {
				work[i][r] = Time(1+rng.Intn(3)) * Millisecond
			}
		}
	}
	e := NewEngineOpts(Options{Parallel: parallel})
	boxes := make([]*stableBox, procs)
	for i := range boxes {
		boxes[i] = newStableBox()
	}
	var trace []string
	for i := 0; i < procs; i++ {
		id := i
		e.Spawn(fmt.Sprintf("p%d", id), false, func(c *Ctx) {
			for r := 0; r < rounds; r++ {
				c.Compute(work[id][r])
				dst := (id + 1) % procs
				c.Gate()
				c.Sync(func() {
					boxes[dst].msgs = append(boxes[dst].msgs, c.Now()+Millisecond)
					boxes[dst].src.Notify()
				})
				trace = append(trace, fmt.Sprintf("p%d@%d->%d", id, c.Now(), dst))
				boxes[id].recv(c)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestStableEarlyReleaseMatchesSerial pins the speculative-release
// determinism claim: widening parallel batches with provably-stable
// blocked procs must not change the committed event sequence.  The
// seeded schedules are adversarial by construction — all wake times and
// compute arrivals share the millisecond grid, so stable receivers are
// constantly eligible for early release inside mixed batches.
func TestStableEarlyReleaseMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		procs := 2 + int(seed)%5
		serial := stableRingTrace(t, false, procs, 6, seed)
		par := stableRingTrace(t, true, procs, 6, seed)
		if len(serial) != len(par) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(serial), len(par))
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("seed %d: traces diverge at %d: %q vs %q\nserial: %v\npar:    %v",
					seed, i, serial[i], par[i], serial, par)
			}
		}
	}
}

// TestWaiterIndexSurvivesExit is a regression test for waiter-list
// maintenance: three procs register on one source, the middle one wakes
// and exits, and a later notify must still reach both survivors through
// the index.  A removal bug that drops or strands the wrong waiter
// shows up as a deadlock; a bug that lets removal perturb commit order
// shows up in the wake sequence (same-instant wakes stay in id order no
// matter how the index was compacted).
func TestWaiterIndexSurvivesExit(t *testing.T) {
	e := NewEngine()
	var src Source
	stage := 0
	var at Time
	var woke []string
	waiter := func(name string, need int) {
		e.Spawn(name, false, func(c *Ctx) {
			c.WaitOn(&src, name, func() (Time, bool) {
				if stage < need {
					return 0, false
				}
				return at, true
			})
			woke = append(woke, name)
		})
	}
	waiter("w0", 2)
	waiter("w1", 1) // middle registrant: wakes first, then exits
	waiter("w2", 2)
	e.Spawn("driver", false, func(c *Ctx) {
		c.Compute(Millisecond)
		c.Yield()
		stage, at = 1, c.Now()
		src.Notify() // wakes only w1
		c.Compute(Millisecond)
		c.Yield()
		stage, at = 2, c.Now()
		src.Notify() // must reach w0 and w2 despite w1's removal
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w1", "w0", "w2"}
	if len(woke) != len(want) {
		t.Fatalf("woke %v, want %v", woke, want)
	}
	for i := range want {
		if woke[i] != want[i] {
			t.Fatalf("wake order %v, want %v", woke, want)
		}
	}
}
