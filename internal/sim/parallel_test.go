package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// mailbox is a minimal WaitOn/Notify/Gate-disciplined channel for engine
// tests: sends gate (they are shared operations) and mutate under Sync;
// receives block on the source and consume while holding the token.
type mailbox struct {
	src  Source
	msgs []Time // arrival times, append order
}

func (b *mailbox) send(c *Ctx, arrival Time) {
	c.Gate()
	c.Sync(func() {
		b.msgs = append(b.msgs, arrival)
		b.src.Notify()
	})
}

func (b *mailbox) recv(c *Ctx) {
	c.WaitOn(&b.src, "mail", func() (Time, bool) {
		if len(b.msgs) == 0 {
			return 0, false
		}
		return b.msgs[0], true
	})
	b.msgs = b.msgs[1:]
}

// ringTrace runs a token-ring workload — compute, send, trace, receive —
// and returns the committed event order.  Several procs share compute
// durations, so same-time batches form; the trace is appended inside the
// gated send, i.e. in commit order.
func ringTrace(t *testing.T, parallel bool, procs, rounds int, seed int64) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	work := make([][]Time, procs)
	for i := range work {
		work[i] = make([]Time, rounds)
		for r := range work[i] {
			if i%2 == 0 {
				// Half the ring computes a per-round (not per-proc)
				// duration: these procs stay clock-aligned and batch.
				work[i][r] = Time(1+r%3) * Millisecond
			} else {
				work[i][r] = Time(rng.Intn(4000)) * Microsecond
			}
		}
	}
	e := NewEngineOpts(Options{Parallel: parallel})
	boxes := make([]*mailbox, procs)
	for i := range boxes {
		boxes[i] = &mailbox{}
	}
	var trace []string
	for i := 0; i < procs; i++ {
		id := i
		e.Spawn(fmt.Sprintf("p%d", id), false, func(c *Ctx) {
			for r := 0; r < rounds; r++ {
				c.Compute(work[id][r])
				dst := (id + 1) % procs
				c.Gate()
				c.Sync(func() {
					boxes[dst].msgs = append(boxes[dst].msgs, c.Now()+100*Microsecond)
					boxes[dst].src.Notify()
				})
				trace = append(trace, fmt.Sprintf("p%d@%d->%d", id, c.Now(), dst))
				boxes[id].recv(c)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestParallelMatchesSerialTrace pins the core determinism claim: the
// parallel engine commits the exact event sequence of the serial engine,
// over a spread of seeds and ring sizes (including same-time batches).
func TestParallelMatchesSerialTrace(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		procs := 2 + int(seed)%5
		serial := ringTrace(t, false, procs, 6, seed)
		par := ringTrace(t, true, procs, 6, seed)
		if len(serial) != len(par) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(serial), len(par))
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("seed %d: traces diverge at %d: %q vs %q\nserial: %v\npar:    %v",
					seed, i, serial[i], par[i], serial, par)
			}
		}
	}
}

// TestParallelBatchConcurrency verifies same-time compute phases really
// are released together: every proc spawns at t=0 (one batch) and spins
// until it has seen all its peers mid-compute.  The spin can only
// terminate if the engine released the whole batch concurrently; an
// engine that serialized the steps would hang the test (caught by the
// test timeout).
func TestParallelBatchConcurrency(t *testing.T) {
	const procs = 8
	e := NewEngineOpts(Options{Parallel: true})
	var released atomic.Int32
	for i := 0; i < procs; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), false, func(c *Ctx) {
			released.Add(1)
			for released.Load() < procs {
				runtime.Gosched()
			}
			c.Compute(Millisecond)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelGroupExclusion: procs sharing a SpawnGroup mutate unshared-
// unprotected state in their compute phases; the group contract says they
// are never released concurrently, so the plain counter stays exact (and
// the race detector stays quiet).
func TestParallelGroupExclusion(t *testing.T) {
	const rounds = 50
	e := NewEngineOpts(Options{Parallel: true})
	shared := 0 // group-shared, deliberately unsynchronized
	var overlap atomic.Int32
	var bad atomic.Bool
	member := func(c *Ctx) {
		for r := 0; r < rounds; r++ {
			if overlap.Add(1) != 1 {
				bad.Store(true)
			}
			shared++
			overlap.Add(-1)
			c.Yield()
		}
	}
	e.SpawnGroup("a", false, 7, member)
	e.SpawnGroup("b", false, 7, member)
	// An ungrouped bystander keeps real batching alive at the same times.
	e.Spawn("c", false, func(c *Ctx) {
		for r := 0; r < rounds; r++ {
			c.Yield()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if bad.Load() {
		t.Error("group members observed running concurrently")
	}
	if shared != 2*rounds {
		t.Errorf("group-shared counter = %d, want %d", shared, 2*rounds)
	}
}

// TestParallelDeadlockDetected mirrors the serial deadlock test on the
// parallel engine.
func TestParallelDeadlockDetected(t *testing.T) {
	e := NewEngineOpts(Options{Parallel: true})
	e.Spawn("stuck", false, func(c *Ctx) {
		c.Wait("never", func() (Time, bool) { return 0, false })
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

// TestParallelPanicPropagates mirrors the serial panic test, with other
// procs mid-batch when the panic hits.
func TestParallelPanicPropagates(t *testing.T) {
	e := NewEngineOpts(Options{Parallel: true})
	e.Spawn("stuck", false, func(c *Ctx) {
		c.Wait("never", func() (Time, bool) { return 0, false })
	})
	e.Spawn("busy", false, func(c *Ctx) {
		for i := 0; i < 1000; i++ {
			c.Compute(Microsecond)
			c.Yield()
		}
	})
	e.Spawn("bad", false, func(c *Ctx) {
		c.Compute(Millisecond)
		panic("late boom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "late boom") {
		t.Fatalf("err = %v, want panic propagation", err)
	}
}

// TestParallelDaemonAbandoned: daemons blocked (or mid-batch) when the
// last primary returns must unwind cleanly, and Run must not return
// before every released goroutine has quiesced.
func TestParallelDaemonAbandoned(t *testing.T) {
	e := NewEngineOpts(Options{Parallel: true})
	box := &mailbox{}
	e.Spawn("daemon", true, func(c *Ctx) {
		for {
			box.recv(c)
		}
	})
	e.Spawn("worker", false, func(c *Ctx) {
		c.Compute(Millisecond)
		box.send(c, c.Now()+Microsecond)
		c.Compute(Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.MaxPrimaryClock() != 2*Millisecond {
		t.Errorf("MaxPrimaryClock = %v, want 2ms", e.MaxPrimaryClock())
	}
}
