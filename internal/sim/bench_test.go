package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkWakeupStorm measures the cost of one notify releasing k
// waiters at the same virtual instant — the barrier-release shape.  All
// waiters block on one Stable source; each round the notifier publishes
// a new round number and notifies, arming every waiter at the same wake
// time, and the engine must commit the whole batch through the
// same-instant run queue (one heap pop plus k-1 queue pops) instead of
// k independent scheduling decisions.  The ns/wake metric is the cost of
// waking and running one waiter.
func BenchmarkWakeupStorm(b *testing.B) {
	for _, k := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("waiters=%d", k), func(b *testing.B) {
			e := NewEngine()
			var src Source
			src.Stable = true // monotone: round only grows, wake time fixed per round
			var quorum Source
			round := 0
			var at Time // wake instant of the current round
			done := 0   // waiters that have seen the current round
			rounds := b.N
			for i := 0; i < k; i++ {
				e.Spawn(fmt.Sprintf("w%d", i), false, func(c *Ctx) {
					seen := 0
					for seen < rounds {
						c.WaitOn(&src, "round", func() (Time, bool) {
							if round <= seen {
								return 0, false
							}
							return at, true
						})
						seen++
						done++
						if done == k {
							quorum.Notify()
						}
					}
				})
			}
			e.Spawn("notifier", false, func(c *Ctx) {
				for r := 0; r < rounds; r++ {
					c.Compute(Microsecond)
					round++
					at = c.Now()
					done = 0
					src.Notify()
					c.WaitOn(&quorum, "quorum", func() (Time, bool) {
						if done < k {
							return 0, false
						}
						return at, true
					})
				}
			})
			runtime.GC()
			b.ResetTimer()
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/wake")
		})
	}
}
