package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestComputeAdvancesClock(t *testing.T) {
	e := NewEngine()
	var final Time
	e.Spawn("p0", false, func(c *Ctx) {
		c.Compute(3 * Millisecond)
		c.Compute(2 * Millisecond)
		final = c.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if final != 5*Millisecond {
		t.Fatalf("clock = %v, want 5ms", final)
	}
	if e.MaxPrimaryClock() != 5*Millisecond {
		t.Fatalf("MaxPrimaryClock = %v", e.MaxPrimaryClock())
	}
}

func TestNegativeComputeIgnored(t *testing.T) {
	e := NewEngine()
	e.Spawn("p0", false, func(c *Ctx) {
		c.Compute(-Second)
		if c.Now() != 0 {
			t.Errorf("clock moved backwards: %v", c.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestLowestClockFirst verifies the min-clock scheduling discipline: events
// recorded by procs interleave in virtual-time order.
func TestLowestClockFirst(t *testing.T) {
	e := NewEngine()
	var order []string
	// Yield first: the engine resumes procs in min-clock order at
	// scheduling points, so appends after a Yield are virtual-time ordered.
	record := func(c *Ctx, tag string) {
		c.Yield()
		order = append(order, tag)
	}
	e.Spawn("slow", false, func(c *Ctx) {
		c.Compute(10 * Millisecond)
		record(c, "slow@10")
		c.Compute(10 * Millisecond)
		record(c, "slow@20")
	})
	e.Spawn("fast", false, func(c *Ctx) {
		c.Compute(1 * Millisecond)
		record(c, "fast@1")
		c.Compute(1 * Millisecond)
		record(c, "fast@2")
		c.Compute(14 * Millisecond)
		record(c, "fast@16")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"fast@1", "fast@2", "slow@10", "fast@16", "slow@20"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestWaitWakesAtEventTime verifies a blocked proc's clock jumps to the
// wake time supplied by the condition.
func TestWaitWakesAtEventTime(t *testing.T) {
	e := NewEngine()
	var arrival Time
	ready := false
	e.Spawn("producer", false, func(c *Ctx) {
		c.Compute(7 * Millisecond)
		arrival = c.Now() + 500*Microsecond
		ready = true
	})
	var woke Time
	e.Spawn("consumer", false, func(c *Ctx) {
		c.Wait("event", func() (Time, bool) {
			if !ready {
				return 0, false
			}
			return arrival, true
		})
		woke = c.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 7*Millisecond+500*Microsecond {
		t.Fatalf("woke at %v, want 7.5ms", woke)
	}
}

// TestWaitDoesNotRewindClock: if the waiter's clock is already past the
// wake time, the clock must not move backwards.
func TestWaitDoesNotRewindClock(t *testing.T) {
	e := NewEngine()
	e.Spawn("p0", false, func(c *Ctx) {
		c.Compute(10 * Millisecond)
		c.Wait("past-event", func() (Time, bool) { return 1 * Millisecond, true })
		if c.Now() != 10*Millisecond {
			t.Errorf("clock = %v, want 10ms", c.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", false, func(c *Ctx) {
		c.Wait("never", func() (Time, bool) { return 0, false })
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("error = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "never") {
		t.Fatalf("deadlock dump should name the blocked condition: %v", err)
	}
}

// TestDaemonAbandoned: a run with a forever-blocked daemon finishes once
// primaries are done.
func TestDaemonAbandoned(t *testing.T) {
	e := NewEngine()
	e.Spawn("daemon", true, func(c *Ctx) {
		c.Wait("request", func() (Time, bool) { return 0, false })
		t.Error("daemon should never wake")
	})
	e.Spawn("worker", false, func(c *Ctx) {
		c.Compute(Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", false, func(c *Ctx) {
		panic("boom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic propagation", err)
	}
}

// TestPanicUnblocksOthers: a panic in one proc must not hang the run even
// when other procs are blocked forever.
func TestPanicUnblocksOthers(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", false, func(c *Ctx) {
		c.Wait("never", func() (Time, bool) { return 0, false })
	})
	e.Spawn("bad", false, func(c *Ctx) {
		c.Compute(Millisecond)
		panic("late boom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "late boom") {
		t.Fatalf("err = %v, want panic propagation", err)
	}
}

// TestDeterminism runs an exchange pattern twice and compares traces.
func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		var trace []Time
		box := make(map[int][]Time) // naive mailbox: proc -> arrival times
		n := 4
		for i := 0; i < n; i++ {
			id := i
			e.Spawn("p", false, func(c *Ctx) {
				for round := 0; round < 3; round++ {
					c.Compute(Time(id+1) * Millisecond)
					dst := (id + 1) % n
					box[dst] = append(box[dst], c.Now()+100*Microsecond)
					c.Wait("msg", func() (Time, bool) {
						if len(box[id]) == 0 {
							return 0, false
						}
						min := box[id][0]
						for _, a := range box[id] {
							if a < min {
								min = a
							}
						}
						return min, true
					})
					// Consume the earliest message.
					mi := 0
					for j, a := range box[id] {
						if a < box[id][mi] {
							mi = j
						}
					}
					box[id] = append(box[id][:mi], box[id][mi+1:]...)
					trace = append(trace, c.Now())
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSpawnAfterRunPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("p0", false, func(c *Ctx) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from Spawn after Run")
		}
	}()
	e.Spawn("late", false, func(c *Ctx) {})
}

func TestRunTwiceFails(t *testing.T) {
	e := NewEngine()
	e.Spawn("p0", false, func(c *Ctx) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestTimeString(t *testing.T) {
	if got := (1500 * Millisecond).String(); got != "1.500000s" {
		t.Fatalf("String = %q", got)
	}
	if s := (2 * Second).Seconds(); s != 2.0 {
		t.Fatalf("Seconds = %v", s)
	}
}

// TestRandomWorkloadsConvergeProperty: random compute/message workloads
// terminate, never deadlock, and give every proc a final clock at least
// as large as its total charged compute.
func TestRandomWorkloadsConvergeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		rounds := 1 + rng.Intn(4)
		// mailboxes[i] counts tokens sent to proc i (arrival at sender
		// clock + fixed delay).
		type msg struct{ at Time }
		boxes := make([][]msg, n)
		charged := make([]Time, n)
		finals := make([]Time, n)
		// Precompute per-round compute amounts (deterministic per proc).
		work := make([][]Time, n)
		for i := range work {
			work[i] = make([]Time, rounds)
			for r := range work[i] {
				work[i][r] = Time(rng.Intn(5000)) * Microsecond
			}
		}
		e := NewEngine()
		for i := 0; i < n; i++ {
			id := i
			e.Spawn("p", false, func(c *Ctx) {
				for r := 0; r < rounds; r++ {
					c.Compute(work[id][r])
					charged[id] += work[id][r]
					dst := (id + r + 1) % n
					boxes[dst] = append(boxes[dst], msg{c.Now() + 100*Microsecond})
					if dst == id {
						continue
					}
					// Wait for any token addressed to us this round.
					c.Wait("token", func() (Time, bool) {
						if len(boxes[id]) == 0 {
							return 0, false
						}
						return boxes[id][0].at, true
					})
					boxes[id] = boxes[id][1:]
				}
				finals[id] = c.Now()
			})
		}
		if err := e.Run(); err != nil {
			// Random token patterns may legitimately deadlock (a proc can
			// wait for a token that was consumed); that's a pass for the
			// detector, not a liveness bug.
			return strings.Contains(err.Error(), "deadlock")
		}
		for i := 0; i < n; i++ {
			if finals[i] < charged[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
