// Package sim implements a deterministic discrete-event simulator for a
// cluster of workstations.
//
// Each simulated processor ("proc") runs real Go code, but the engine
// enforces strictly sequential execution: exactly one proc runs at a
// time, and the engine always resumes the resumable proc with the
// smallest effective virtual time (ties broken by proc id).  Procs
// advance their virtual clocks explicitly via Compute and block on
// conditions via Wait/WaitOn.  Because all cross-proc interaction happens
// through conditions evaluated at scheduling points, runs are bit-for-bit
// reproducible: message counts, byte counts and virtual times are exact.
//
// # Scheduling architecture
//
// The scheduler is event-indexed rather than scan-based.  Every resumable
// proc sits in a binary min-heap keyed by (effective resume time, proc id):
// ready procs at their own clock, and blocked procs whose condition is
// currently satisfiable at the condition's wake time.  Blocked procs whose
// condition is not yet satisfiable are parked against the Source they wait
// on (e.g. a network endpoint's inbox); mutating the state a condition
// examines must call Source.Notify, which re-polls only the parked and
// armed waiters of that source.  Pure time-based waits (Yield) go straight
// into the heap.  Conditions passed to plain Wait, with no Source, fall
// back to being re-polled at every scheduling step; that legacy path is
// O(waiters) per step, is kept for tests and ad-hoc conditions only, and
// is counted by PolledWaits so tests can prove hot paths never take it.
//
// In the serial engine every proc body runs inside a coroutine
// (iter.Pull) and Run's goroutine is the driver.  A blocking proc makes
// the scheduling decision inline in its own stack frame: if it is itself
// still the minimum it just continues — zero switches — and otherwise it
// records the chosen successor and suspends, after which the driver
// resumes the successor's coroutine directly.  A scheduling hop therefore
// costs two user-space coroutine switches and no channel operations,
// never waking the Go runtime scheduler.
//
// On top of the heap sits a same-instant run queue: when the popped heap
// minimum leaves further procs runnable at the same virtual time, the
// scheduler drains them — in id order, exactly the serial order — into a
// local run list and feeds subsequent steps from the list head, falling
// back to the heap only when virtual time must advance or a smaller-id
// proc arms at the same instant (each pop compares the list head against
// the heap minimum, so late arrivals keep their serial position).  Only
// procs whose wake-up cannot be withdrawn are drained: pure time waits
// (cond == nil) and conditions registered on a Source marked Stable.  The
// run queue makes a k-waiter wakeup storm k back-to-back steps instead of
// k heap pops, and it is the serial twin of the parallel engine's batch.
//
// # Determinism invariant
//
// The engine always resumes the proc with the smallest effective time
// max(clock, wake), breaking ties by smallest proc id.  This is the
// invariant every optimization must preserve: given the same spawned
// bodies, two runs execute the identical sequence of (proc, time) steps,
// so modeled times, message counts and byte counts never drift.  For the
// event-indexed fast path this requires the Notify discipline: a blocked
// proc's condition outcome may only change when its Source is notified,
// and an armed proc's wake time may only move earlier, never later.
//
// # Stable sources and early commit
//
// A Source may be marked Stable, which asserts a one-way contract for
// every condition registered against it: once the condition reports ok
// with wake time w, every later evaluation — up to the moment the waiter
// resumes at its scheduled turn — still reports ok with a wake time
// w' <= w, and w' never drops below the virtual time at which the engine
// committed the wake-up.  Single-consumer queues satisfy this contract:
// only the blocked owner can consume the state that satisfied the
// condition, and other procs' mutations only add wake-ups (the vnet
// endpoint inbox is the canonical case).
//
// The engine exploits stability twice.  The serial run queue commits
// same-instant stable wake-ups in advance (above), and the parallel
// engine releases stable condition-blocked procs speculatively at
// batch-formation time instead of waiting for their serial turn.  Both
// re-verify the condition at the proc's serial turn — in the serial
// engine when the run-queue entry is popped, in the parallel engine at
// the commit-token grant, in either case before the proc performs any
// observable effect — and panic if the condition was withdrawn or its
// wake time moved past the committed key.  A source wrongly marked
// Stable therefore fails loudly instead of silently reordering steps;
// no rollback is ever needed because verification precedes effects.
//
// # Deterministic parallelism (Options.Parallel)
//
// The serial engine runs exactly one proc at a time.  With
// Options{Parallel: true} the engine additionally exploits host
// parallelism without changing a single modeled result: when several
// procs are runnable at the same virtual timestamp, it releases them as
// a batch and lets their compute phases run on concurrent goroutines
// between synchronization points.  Correctness rests on a commit-token
// discipline that keeps every *observable* event in exactly the serial
// (time, id) order:
//
//   - Only procs whose effective resume time equals the current batch
//     time run concurrently.  Steps at distinct virtual times never
//     overlap in host time.
//   - Within a batch, exactly one proc at a time — the serial-minimal
//     unfinished one — holds the commit token.  Any cross-proc
//     ("shared") operation must call Ctx.Gate first, which blocks until
//     the caller holds the token.  Sends, non-blocking receives, probes
//     and proc exit are shared operations; the vnet layer gates them.
//     Everything a proc does before its first shared operation must
//     touch only proc-private or immutable state, so it commutes with
//     the other batch members and may run speculatively.
//   - Procs released while condition-blocked (Stable sources only) have
//     their condition re-verified at the token grant, before the gate
//     returns — see "Stable sources" above.  A proc resuming from a
//     stable wait must Gate before its first observable effect; the
//     vnet receive path does so immediately on waking.
//   - Procs spawned with the same group id (SpawnGroup) share mutable
//     state outside the gated operations — e.g. a DSM processor's
//     application thread and its service daemon share the page table —
//     and are never released concurrently.
//   - Mutations of state that a blocked proc's condition examines (an
//     inbox, a queue) must additionally run inside Ctx.Sync, which makes
//     them atomic with respect to condition evaluation and Notify; in
//     parallel mode Source.Notify must only be called within Sync.
//
// Why modeled metrics cannot change: virtual clocks are proc-private;
// message timing and accounting are computed inside gated sections whose
// global order is forced to the serial schedule; and a step that never
// performs a shared operation has, by construction, no effect any other
// proc can observe, so its host-time position is free.  The serial mode
// remains the differential oracle — the pinned golden grid is verified
// in both modes.
//
// The engine distinguishes primary procs (application processes) from
// daemon procs (protocol service threads).  A run completes when every
// primary proc has returned; daemons may still be blocked at that point.
// If no proc can make progress while primaries remain, Run reports a
// deadlock with a per-proc state dump.
package sim

import (
	"fmt"
	"iter"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Time is virtual time in nanoseconds.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time in seconds with microsecond resolution.
func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

type procState int

const (
	stateNew procState = iota
	stateReady
	stateRunning
	stateQueued // committed to the serial run queue, not yet resumed
	stateBlocked
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateQueued:
		return "queued"
	case stateBlocked:
		return "blocked"
	case stateDone:
		return "done"
	}
	return "?"
}

// Cond is a blocking condition.  It must be a pure function of simulator
// state: it reports whether the proc may resume and, if so, the earliest
// virtual time at which the wake-up event (e.g. a message arrival) occurs.
// The proc's clock is advanced to max(clock, wake time) when it resumes.
type Cond func() (wake Time, ok bool)

// Source is a wake-up source: a piece of simulator state (an endpoint's
// inbox, a lock's queue) that blocked procs wait on via WaitOn.  Code that
// mutates state a registered condition examines must call Notify, which
// re-polls exactly the procs waiting on this source.  The zero value is
// ready to use.
type Source struct {
	waiters []*proc

	// Stable asserts the one-way condition contract described in the
	// package comment ("Stable sources and early commit"): once a
	// condition registered on this source reports ok with wake time w,
	// later evaluations keep reporting ok with wake times <= w until the
	// waiter resumes.  Single-consumer state (only the blocked owner can
	// consume what satisfied the condition) is the canonical qualifying
	// shape.  The engine commits stable wake-ups early — same-instant
	// run-queue drain in serial mode, speculative batch release in
	// parallel mode — re-verifying the condition at the proc's serial
	// turn and panicking if the contract was broken.
	Stable bool
}

func (s *Source) add(p *proc) {
	p.widx = len(s.waiters)
	s.waiters = append(s.waiters, p)
}

func (s *Source) remove(p *proc) {
	i := p.widx
	last := len(s.waiters) - 1
	s.waiters[i] = s.waiters[last]
	s.waiters[i].widx = i
	s.waiters[last] = nil
	s.waiters = s.waiters[:last]
	p.widx = -1
}

// Notify re-polls the condition of every proc waiting on s, arming in the
// scheduler's wake-time heap those that became (or remain) resumable.
// Call it after any mutation that could satisfy a waiter's condition or
// move its wake time earlier.  In parallel mode, the mutation and the
// Notify must together run inside Ctx.Sync.
func (s *Source) Notify() {
	for _, p := range s.waiters {
		p.eng.repoll(p)
	}
}

// HasWaiter reports whether a proc is currently blocked on s.  Callers
// that reuse per-source condition state (e.g. a single-consumer inbox)
// can use it to turn concurrent-waiter misuse into an immediate error.
func (s *Source) HasWaiter() bool { return len(s.waiters) > 0 }

// polledWaits counts block registrations that fell back to the legacy
// source-less path (plain Wait): conditions with no Source are re-polled
// at every scheduling step, O(waiters) per step.  The production stack
// must never take this path; harness tests assert the counter stays flat
// across the full golden grid.
var polledWaits atomic.Int64

// PolledWaits returns the process-wide count of source-less Wait
// registrations (the per-step re-polled legacy path).  Tests use deltas
// of this counter to prove hot paths are fully event-indexed.
func PolledWaits() int64 { return polledWaits.Load() }

type proc struct {
	id     int
	name   string
	daemon bool
	group  int // procs sharing a group never run concurrently (-1: none)
	state  procState
	clock  Time
	cond   Cond          // valid when state == stateBlocked (nil: pure time wait)
	what   string        // human-readable reason for the block
	whatFn func() string // lazy variant of what (takes precedence in dumps)
	src    *Source       // source the proc is parked on, if any
	stable bool          // parked on a Stable source (early commit allowed)
	key    Time          // effective resume time while armed in the heap
	hidx   int           // heap index; -1 when not armed
	widx   int           // index in src.waiters; -1 when absent
	pidx   int           // index in eng.polled; -1 when absent
	ridx   int           // index in eng.released; -1 when absent (parallel)

	// Serial engine: the proc body runs inside an iter.Pull coroutine.
	// next resumes it, yield suspends it (false: engine shut down), stop
	// unwinds it.  All three are driven from Run's goroutine only.
	next  func() (struct{}, bool)
	stop  func()
	yield func(struct{}) bool

	// Parallel engine: scheduler -> proc clock handoff; the proc runs on
	// its own goroutine and parks on this channel between steps.
	resume chan Time

	// specCond holds, between a parallel-mode release and the commit-token
	// grant, the condition the proc was blocked on when released early:
	// advanceLocked re-verifies it at the grant (see Stable sources).
	specCond Cond

	body func(*Ctx)
	eng  *Engine
	err  error // panic captured from the proc body
}

// Options selects engine behavior; the zero value is the serial engine.
type Options struct {
	// Parallel enables deterministic same-time step batching: procs
	// runnable at the same virtual timestamp run their compute phases on
	// concurrent goroutines, with all observable events forced into the
	// serial (time, id) order by the commit-token discipline described in
	// the package comment.  Modeled results are byte-identical to the
	// serial engine; the proc bodies must follow the Gate/Sync/SpawnGroup
	// contract (the vnet/tmk/pvm stack does).
	Parallel bool
}

// Engine coordinates a set of procs over virtual time.
type Engine struct {
	procs    []*proc
	heap     []*proc // min-heap by (key, id): armed/ready procs
	polled   []*proc // blocked procs with source-less conds, re-polled each step
	primLeft int     // primary procs that have not yet returned
	runErr   error   // first proc failure or deadlock
	finished bool    // a termination signal has been sent
	runDone  chan struct{}
	started  bool

	// Serial engine: same-instant run queue and driver handoff.  runq
	// holds procs committed to run back-to-back at the current instant
	// (id order); handP/handT carry the successor chosen by a yielding
	// proc to the driver (handP == nil reports a deadlock).
	runq     []*proc
	runqHead int
	handP    *proc
	handT    Time

	// Parallel mode (Options.Parallel).  mu protects every scheduling
	// structure above plus the fields below; turn is broadcast when the
	// commit token moves, quiet when a released goroutine parks.
	par      bool
	mu       sync.Mutex
	turn     *sync.Cond
	quiet    *sync.Cond
	batchT   Time    // virtual time of the current batch
	released []*proc // released, unfinished procs (running concurrently)
	holder   *proc   // commit-token holder: the serial-minimal released proc
	stopped  bool    // run over: released procs must unwind
	liveRun  int     // goroutines currently executing a released step

	// Scratch buffers for eagerLocked (avoid per-decision allocation).
	eagerCands []*proc
	eagerHeld  []int
}

// NewEngine returns an empty serial engine.  All procs must be spawned
// before Run.
func NewEngine() *Engine {
	return NewEngineOpts(Options{})
}

// NewEngineOpts returns an empty engine with the given options.
func NewEngineOpts(o Options) *Engine {
	e := &Engine{runDone: make(chan struct{}, 1), par: o.Parallel}
	e.turn = sync.NewCond(&e.mu)
	e.quiet = sync.NewCond(&e.mu)
	return e
}

// Parallel reports whether the engine batches same-time steps.
func (e *Engine) Parallel() bool { return e.par }

// Spawn registers a new proc.  Primary procs (daemon=false) must all return
// for Run to complete; daemon procs service requests and may be abandoned
// while blocked.  Spawn must not be called after Run has started.
func (e *Engine) Spawn(name string, daemon bool, body func(*Ctx)) {
	e.SpawnGroup(name, daemon, -1, body)
}

// SpawnGroup is Spawn with a concurrency group: in parallel mode, procs
// sharing a group id (>= 0) are never released concurrently, because they
// share mutable state outside the gated operations (e.g. a DSM
// processor's application thread and its service daemon share the page
// table).  Group -1 means no such sharing.
func (e *Engine) SpawnGroup(name string, daemon bool, group int, body func(*Ctx)) {
	if e.started {
		panic("sim: Spawn after Run")
	}
	p := &proc{
		id:     len(e.procs),
		name:   name,
		daemon: daemon,
		group:  group,
		state:  stateNew,
		hidx:   -1,
		widx:   -1,
		pidx:   -1,
		ridx:   -1,
		body:   body,
		eng:    e,
	}
	if e.par {
		p.resume = make(chan Time, 1)
	}
	e.procs = append(e.procs, p)
}

// NumPrimary reports the number of non-daemon procs.
func (e *Engine) NumPrimary() int {
	n := 0
	for _, p := range e.procs {
		if !p.daemon {
			n++
		}
	}
	return n
}

// Run executes the simulation until every primary proc has returned.
// It returns a deadlock error if primaries remain but no proc can resume,
// and propagates the first panic raised inside any proc body.
func (e *Engine) Run() error {
	if e.started {
		return fmt.Errorf("sim: engine already ran")
	}
	e.started = true
	if e.par {
		return e.runParallel()
	}
	return e.runSerial()
}

// ---------------------------------------------------------------------
// Serial engine: coroutine driver.
//
// Run's goroutine drives every proc coroutine.  The yielding proc makes
// the scheduling decision inline (waitOn), so the driver's loop only
// transfers control: set the successor's clock, resume its coroutine,
// repeat.  Proc exit and deadlock detection happen here because the
// departing coroutine cannot resume anyone itself.

func (e *Engine) runSerial() error {
	for _, p := range e.procs {
		p.state = stateReady
		e.arm(p, p.clock)
		if !p.daemon {
			e.primLeft++
		}
		p.start()
	}
	if e.primLeft > 0 {
		e.driveSerial()
	}
	e.stopAll()
	return e.runErr
}

// driveSerial is the serial driver loop: transfer control to the chosen
// proc's coroutine, read back the successor it picked, repeat.  A panic
// propagating out of a coroutine (a real body panic, or a stable-contract
// violation raised at a scheduling point) is recovered once here — not
// per step — recorded against the proc being driven, and ends the run.
func (e *Engine) driveSerial() {
	var cur *proc
	defer func() {
		if r := recover(); r != nil {
			cur.err = fmt.Errorf("sim: proc %q panicked: %v", cur.name, r)
			cur.state = stateDone
			if e.runErr == nil {
				e.runErr = cur.err
			}
		}
	}()
	next, t := e.schedule()
	for next != nil {
		cur = next
		cur.clock = t
		_, ok := cur.next()
		if ok {
			// cur suspended at a block; it already chose the successor.
			next, t = e.handP, e.handT
			if next == nil {
				e.runErr = fmt.Errorf("sim: deadlock\n%s", e.dump())
				return
			}
			continue
		}
		// cur's body returned.
		cur.state = stateDone
		if !cur.daemon {
			e.primLeft--
			if e.primLeft == 0 {
				return
			}
		}
		next, t = e.schedule()
		if next == nil {
			e.runErr = fmt.Errorf("sim: deadlock\n%s", e.dump())
			return
		}
	}
}

// start wraps p's body in a coroutine.  The wrapper swallows the
// abandoned{} unwind signal (engine shutdown) and lets real panics
// propagate out of next into resumeSerial's recover.
func (p *proc) start() {
	p.next, p.stop = iter.Pull(func(yield func(struct{}) bool) {
		p.yield = yield
		defer func() {
			if r := recover(); r != nil && !IsAbandoned(r) {
				panic(r)
			}
		}()
		p.body(&Ctx{p: p})
	})
}

// stopAll unwinds every live coroutine once the run is over.  Suspended
// procs observe yield() == false and panic(abandoned{}), which their
// wrapper swallows; never-started bodies simply never run.  Panics thrown
// by user defers during the unwind are discarded — the run's outcome is
// already decided.
func (e *Engine) stopAll() {
	for _, p := range e.procs {
		if p.state == stateDone || p.stop == nil {
			continue
		}
		p.state = stateDone
		func() {
			defer func() { recover() }()
			p.stop()
		}()
	}
}

// ---------------------------------------------------------------------
// Parallel mode: same-time batch release with in-order commit.
//
// advanceLocked is the scheduling decision.  It replicates the serial
// scheduler's pick — the minimum (key, id) over everything armed — but
// over two populations: released procs still running their step (all at
// the batch time) and the heap.  The pick becomes the commit-token
// holder; armed heap procs at the batch time whose wake-up cannot be
// withdrawn (no condition, or a condition on a Stable source) are
// additionally released speculatively.

// less orders procs by (key, id), the serial scheduling order.
func (e *Engine) less(a, b *proc) bool {
	return a.key < b.key || (a.key == b.key && a.id < b.id)
}

// advanceLocked recomputes the token holder after a scheduling event: a
// step completing, a proc exiting, or run start.  Caller holds mu.
func (e *Engine) advanceLocked() {
	if e.finished || e.stopped {
		return
	}
	if e.holder != nil {
		// The current serial step is still in progress; only widen the
		// speculative batch.
		e.eagerLocked()
		return
	}
	// Legacy source-less conditions are re-polled at every decision,
	// matching the serial scheduler's per-step re-poll.
	for _, q := range e.polled {
		e.repoll(q)
	}
	for {
		var cand *proc // serial-minimal released-unfinished proc
		for _, q := range e.released {
			if cand == nil || e.less(q, cand) {
				cand = q
			}
		}
		pick := cand
		if len(e.heap) > 0 && (pick == nil || e.less(e.heap[0], pick)) {
			pick = e.heap[0]
		}
		if pick == nil {
			if len(e.released) == 0 && e.primLeft > 0 {
				e.finishLocked(fmt.Errorf("sim: deadlock\n%s", e.dump()))
			}
			return
		}
		if pick == cand {
			if cand.specCond != nil {
				// The proc was released while condition-blocked (stable
				// source) and now reaches its serial turn: re-verify the
				// condition before it can commit any observable effect.
				if wake, ok := cand.specCond(); !ok || wake > cand.key {
					panic(fmt.Sprintf("sim: stable condition withdrawn on %q (ok=%v wake=%v key=%v)",
						cand.name, ok, wake, cand.key))
				}
				cand.specCond = nil
			}
			e.holder = cand
			e.turn.Broadcast()
			e.eagerLocked()
			return
		}
		// The pick is armed in the heap: it starts the next serial step
		// (and, when nothing is released, the next batch time).
		if len(e.released) == 0 && pick.key > e.batchT {
			e.batchT = pick.key
		}
		if e.groupBusyLocked(pick) {
			// A speculatively released group-mate is still mid-step (e.g. a
			// service daemon registering its first receive while its
			// application thread re-armed at the batch time).  The pick
			// must wait for the mate's memory to quiesce; nobody may
			// commit shared work before the pick, so the token stays
			// unassigned until the mate's step end re-runs this decision.
			// The mate's speculative step cannot itself need the token: it
			// was released with the pick not yet armed, i.e. ordered after
			// nothing — a shared operation would have made it the pick.
			return
		}
		e.releaseLocked(pick, false)
		// Loop: the released pick is now the minimal candidate.
	}
}

// eagerLocked widens the speculative batch: it releases, in serial (id)
// order, every armed heap proc at the batch time whose wake-up cannot be
// withdrawn — no blocking condition, or a condition on a Stable source —
// skipping procs whose group already has a released member or an
// unreleased serial-earlier member at the batch time.  The id order
// matters: releasing a later group member ahead of an earlier armed mate
// would let the late proc park at its gate while group exclusion keeps
// the serial-earlier mate from ever being released — a deadlock the
// serial order cannot produce.  Caller holds mu.
func (e *Engine) eagerLocked() {
	cands := e.eagerCands[:0]
	for _, q := range e.heap {
		if q.key == e.batchT {
			cands = append(cands, q)
		}
	}
	if len(cands) > 0 {
		// Insertion sort by id: candidate sets are small and almost sorted.
		for i := 1; i < len(cands); i++ {
			q := cands[i]
			j := i - 1
			for j >= 0 && cands[j].id > q.id {
				cands[j+1] = cands[j]
				j--
			}
			cands[j+1] = q
		}
		held := e.eagerHeld[:0]
		for _, q := range cands {
			ok := q.cond == nil || q.stable
			if ok && q.group >= 0 {
				for _, g := range held {
					if g == q.group {
						ok = false
						break
					}
				}
			}
			if ok && !e.groupBusyLocked(q) {
				e.releaseLocked(q, true)
				continue
			}
			if q.group >= 0 {
				held = append(held, q.group)
			}
		}
		e.eagerHeld = held[:0]
	}
	e.eagerCands = cands[:0]
}

// groupBusyLocked reports whether a released proc shares p's group.
func (e *Engine) groupBusyLocked(p *proc) bool {
	if p.group < 0 {
		return false
	}
	for _, q := range e.released {
		if q.group == p.group {
			return true
		}
	}
	return false
}

// releaseLocked detaches an armed proc and starts its step on its own
// goroutine.  Caller holds mu; p must be armed at the batch time.  For a
// speculative release (ahead of the proc's serial turn, stable sources
// only) a condition is kept in specCond for re-verification at the token
// grant; a release at the serial turn must NOT keep it — the proc starts
// running immediately and may mutate the state its condition reads, so a
// later evaluation would race (and the armed key was already current).
func (e *Engine) releaseLocked(p *proc, speculative bool) {
	if p.key != e.batchT {
		panic(fmt.Sprintf("sim: releasing %q at %v off batch time %v", p.name, p.key, e.batchT))
	}
	if e.groupBusyLocked(p) {
		// Unreachable under positive-cost models: a group-mate can only be
		// armed at the batch time when the batch formed, and the serial
		// order then releases the lower id first.  Surface violations
		// instead of racing on group-shared state.
		panic(fmt.Sprintf("sim: proc %q released while group %d is running", p.name, p.group))
	}
	e.heapRemove(p)
	if p.src != nil {
		p.src.remove(p)
		p.src = nil
	}
	if p.pidx >= 0 {
		e.polledRemove(p)
	}
	if speculative {
		p.specCond = p.cond
	} else {
		p.specCond = nil
	}
	p.cond, p.what, p.whatFn = nil, "", nil
	p.stable = false
	p.state = stateRunning
	p.ridx = len(e.released)
	e.released = append(e.released, p)
	e.liveRun++
	p.resume <- p.key
}

func (e *Engine) releasedRemove(p *proc) {
	i := p.ridx
	last := len(e.released) - 1
	e.released[i] = e.released[last]
	e.released[i].ridx = i
	e.released[last] = nil
	e.released = e.released[:last]
	p.ridx = -1
}

// finishLocked records the run outcome and signals Run.  Caller holds mu.
func (e *Engine) finishLocked(err error) {
	if e.finished {
		return
	}
	e.finished = true
	if e.runErr == nil {
		e.runErr = err
	}
	e.turn.Broadcast() // wake token waiters so they observe the end
	e.runDone <- struct{}{}
}

// abandonLocked unwinds a released proc once the run is over.  Caller
// holds mu and must release it via defer: the abandoned panic unwinds
// through the caller, and the proc's goroutine exits in proc.exit.
func (e *Engine) abandonLocked(p *proc) {
	if p.ridx >= 0 {
		e.releasedRemove(p)
	}
	e.liveRun--
	e.quiet.Broadcast()
	panic(abandoned{})
}

// gate blocks until p holds the commit token (parallel mode only).
func (e *Engine) gate(p *proc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.holder != p && !e.stopped {
		e.turn.Wait()
	}
	if e.stopped {
		e.abandonLocked(p)
	}
}

// parWait is the parallel-mode step end: register the block, hand the
// token on, and park.  The registration itself needs no token — a step
// that reaches its end without a shared operation had no observable
// effects, so its serial position is free, and registering early only
// arms the proc in keyed structures whose content, not insertion order,
// drives every decision.
func (e *Engine) parWait(p *proc, src *Source, what string, whatFn func() string, cond Cond) {
	func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.stopped {
			e.abandonLocked(p)
		}
		p.state = stateBlocked
		p.cond = cond
		p.what = what
		p.whatFn = whatFn
		if cond == nil {
			e.arm(p, p.clock)
		} else {
			p.src = src
			if src != nil {
				p.stable = src.Stable
				src.add(p)
			} else {
				e.polledAdd(p)
			}
			if wake, ok := cond(); ok {
				key := p.clock
				if wake > key {
					key = wake
				}
				e.arm(p, key)
			}
		}
		e.releasedRemove(p)
		e.liveRun--
		if e.holder == p {
			e.holder = nil
		}
		e.advanceLocked()
		e.quiet.Broadcast()
	}()
	t, ok := <-p.resume
	if !ok {
		panic(abandoned{})
	}
	p.clock = t
}

// parExit commits a proc's exit in serial order: returning decrements the
// primary count and can end the run, both globally observable, so the
// exit waits for the commit token like any shared operation.
func (p *proc) parExit(r any) {
	e := p.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if r != nil {
		// A real panic ends the run immediately; serial order is moot.
		p.err = fmt.Errorf("sim: proc %q panicked: %v", p.name, r)
		p.state = stateDone
		if p.ridx >= 0 {
			e.releasedRemove(p)
		}
		e.liveRun--
		if e.holder == p {
			e.holder = nil
		}
		e.finishLocked(p.err)
		e.quiet.Broadcast()
		return
	}
	for e.holder != p && !e.stopped && !e.finished {
		e.turn.Wait()
	}
	if e.stopped || e.finished {
		if p.ridx >= 0 {
			e.releasedRemove(p)
		}
		e.liveRun--
		e.quiet.Broadcast()
		return
	}
	p.state = stateDone
	e.releasedRemove(p)
	e.liveRun--
	e.holder = nil
	if !p.daemon {
		e.primLeft--
		if e.primLeft == 0 {
			e.finishLocked(nil)
			e.quiet.Broadcast()
			return
		}
	}
	e.advanceLocked()
	e.quiet.Broadcast()
}

func (e *Engine) runParallel() error {
	for _, p := range e.procs {
		p.state = stateReady
		e.arm(p, p.clock)
		if !p.daemon {
			e.primLeft++
		}
		go p.loop()
	}
	if e.primLeft == 0 {
		e.drain()
		return nil
	}
	e.mu.Lock()
	e.advanceLocked()
	e.mu.Unlock()
	<-e.runDone
	// Quiesce: speculatively running procs unwind at their next gate
	// or block; only then is engine and application state safe to read.
	e.mu.Lock()
	e.stopped = true
	e.turn.Broadcast()
	for e.liveRun > 0 {
		e.quiet.Wait()
	}
	e.mu.Unlock()
	e.drain()
	return e.runErr
}

// ---------------------------------------------------------------------
// Wake-time heap: a binary min-heap over (key, id), hand-rolled so the
// hot path pays no interface indirection.  p.hidx tracks each armed
// proc's position for decrease-key and removal.

func (e *Engine) heapLess(a, b *proc) bool {
	return a.key < b.key || (a.key == b.key && a.id < b.id)
}

func (e *Engine) heapSwap(i, j int) {
	h := e.heap
	h[i], h[j] = h[j], h[i]
	h[i].hidx = i
	h[j].hidx = j
}

func (e *Engine) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heapLess(e.heap[i], e.heap[parent]) {
			break
		}
		e.heapSwap(i, parent)
		i = parent
	}
}

func (e *Engine) heapDown(i int) {
	n := len(e.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && e.heapLess(e.heap[r], e.heap[l]) {
			least = r
		}
		if !e.heapLess(e.heap[least], e.heap[i]) {
			return
		}
		e.heapSwap(i, least)
		i = least
	}
}

func (e *Engine) heapPush(p *proc) {
	p.hidx = len(e.heap)
	e.heap = append(e.heap, p)
	e.heapUp(p.hidx)
}

func (e *Engine) heapRemove(p *proc) {
	i := p.hidx
	last := len(e.heap) - 1
	if i != last {
		e.heapSwap(i, last)
	}
	e.heap[last] = nil
	e.heap = e.heap[:last]
	p.hidx = -1
	if i < last {
		e.heapDown(i)
		e.heapUp(i)
	}
}

// arm places p in the heap at the given effective resume time, or moves
// it if already armed at a different time.
func (e *Engine) arm(p *proc, key Time) {
	if p.hidx >= 0 {
		if key != p.key {
			p.key = key
			e.heapDown(p.hidx)
			e.heapUp(p.hidx)
		}
		return
	}
	p.key = key
	e.heapPush(p)
}

// repoll re-evaluates a blocked proc's condition, arming or disarming it.
func (e *Engine) repoll(p *proc) {
	wake, ok := p.cond()
	if !ok {
		if p.hidx >= 0 {
			e.heapRemove(p)
		}
		return
	}
	key := p.clock
	if wake > key {
		key = wake
	}
	e.arm(p, key)
}

// schedule picks the next proc to run in serial order: the head of the
// same-instant run queue, unless the heap minimum precedes it (a proc may
// arm at the current instant with a smaller id after the queue was
// drained).  Popping the heap when further procs are runnable at the same
// instant drains them into the run queue — id order, the serial order —
// so a k-waiter wakeup costs one heap pop plus k-1 queue pops.  The
// chosen proc is detached from every wait structure and marked running.
// Returns (nil, 0) when nothing can make progress.
func (e *Engine) schedule() (*proc, Time) {
	if len(e.polled) > 0 {
		for _, p := range e.polled {
			e.repoll(p)
		}
	}
	if e.runqHead < len(e.runq) {
		q := e.runq[e.runqHead]
		if len(e.heap) == 0 || !e.heapLess(e.heap[0], q) {
			e.runq[e.runqHead] = nil
			e.runqHead++
			if e.runqHead == len(e.runq) {
				e.runq = e.runq[:0]
				e.runqHead = 0
			}
			if q.cond != nil {
				// Early-committed stable wake-up: re-verify at the turn,
				// before the proc resumes (see Stable sources).
				if wake, ok := q.cond(); !ok || wake > q.key {
					panic(fmt.Sprintf("sim: stable condition withdrawn on %q (ok=%v wake=%v key=%v)",
						q.name, ok, wake, q.key))
				}
			}
			q.cond, q.what, q.whatFn = nil, "", nil
			q.stable = false
			q.state = stateRunning
			return q, q.key
		}
	}
	if len(e.heap) == 0 {
		return nil, 0
	}
	p := e.heap[0]
	e.heapRemove(p)
	if p.src != nil {
		p.src.remove(p)
		p.src = nil
	}
	if p.pidx >= 0 {
		e.polledRemove(p)
	}
	p.cond = nil
	p.what = ""
	p.whatFn = nil
	p.stable = false
	p.state = stateRunning
	// Same-instant batch drain: commit the runnable procs behind p at the
	// same virtual time to the run queue.  Only when the queue is empty —
	// appending behind older entries could break id order — and only
	// procs whose wake-up cannot be withdrawn (no condition, or stable).
	if e.runqHead == len(e.runq) && len(e.heap) > 0 && e.heap[0].key == p.key {
		for len(e.heap) > 0 {
			q := e.heap[0]
			if q.key != p.key || (q.cond != nil && !q.stable) {
				break
			}
			e.heapRemove(q)
			if q.src != nil {
				q.src.remove(q)
				q.src = nil
			}
			if q.pidx >= 0 {
				e.polledRemove(q)
			}
			q.state = stateQueued
			e.runq = append(e.runq, q)
		}
	}
	return p, p.key
}

func (e *Engine) polledAdd(p *proc) {
	polledWaits.Add(1)
	p.pidx = len(e.polled)
	e.polled = append(e.polled, p)
}

func (e *Engine) polledRemove(p *proc) {
	i := p.pidx
	last := len(e.polled) - 1
	e.polled[i] = e.polled[last]
	e.polled[i].pidx = i
	e.polled[last] = nil
	e.polled = e.polled[:last]
	p.pidx = -1
}

// drain abandons all blocked/ready procs so their goroutines exit
// (parallel mode; the serial engine unwinds coroutines via stopAll).
func (e *Engine) drain() {
	for _, p := range e.procs {
		if p.state == stateReady || p.state == stateBlocked {
			p.state = stateDone
			close(p.resume)
		}
	}
}

// dump renders a state table for deadlock diagnostics.
func (e *Engine) dump() string {
	var b strings.Builder
	ps := append([]*proc(nil), e.procs...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].id < ps[j].id })
	for _, p := range ps {
		kind := "proc"
		if p.daemon {
			kind = "daemon"
		}
		fmt.Fprintf(&b, "  %-6s %-20s state=%-8s clock=%v", kind, p.name, p.state, p.clock)
		what := p.what
		if p.whatFn != nil {
			what = p.whatFn()
		}
		if what != "" {
			fmt.Fprintf(&b, " waiting-for=%s", what)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MaxPrimaryClock reports the largest final clock among primary procs:
// the modeled parallel execution time of the run.
func (e *Engine) MaxPrimaryClock() Time {
	var max Time
	for _, p := range e.procs {
		if !p.daemon && p.clock > max {
			max = p.clock
		}
	}
	return max
}

// loop is a proc's goroutine in parallel mode.
func (p *proc) loop() {
	t, ok := <-p.resume
	if !ok {
		return
	}
	p.clock = t
	defer p.exit()
	p.body(&Ctx{p: p, par: true})
}

// exit runs when a parallel-mode proc body returns or panics: it records
// the outcome and commits the exit in serial order.
func (p *proc) exit() {
	r := recover()
	if r != nil && IsAbandoned(r) {
		// The engine shut this proc down after the run ended (or
		// after another proc failed); exit without reporting.
		return
	}
	p.parExit(r)
}

// Ctx is the handle a proc body uses to interact with virtual time.
type Ctx struct {
	p   *proc
	par bool // cached Engine.par: keeps Gate/Sync branch-only in serial mode
}

// ID returns the proc's engine-wide id (spawn order).
func (c *Ctx) ID() int { return c.p.id }

// Name returns the proc's name.
func (c *Ctx) Name() string { return c.p.name }

// Now returns the proc's current virtual clock.
func (c *Ctx) Now() Time { return c.p.clock }

// Compute advances the proc's virtual clock by d, modeling local
// computation.  Negative durations are ignored.
func (c *Ctx) Compute(d Time) {
	if d > 0 {
		c.p.clock += d
	}
}

// Wait blocks the proc until cond reports ok.  The proc's clock becomes
// max(clock, wake).  what describes the blockage for deadlock dumps.
//
// A plain Wait has no wake source, so its condition is re-polled at every
// scheduling step.  Hot paths must use WaitOn with a Source instead; the
// PolledWaits counter exposes how often this fallback is taken.
func (c *Ctx) Wait(what string, cond Cond) {
	c.waitOn(nil, what, nil, cond)
}

// WaitOn blocks like Wait, but registers the proc with src: the condition
// is re-evaluated only when src.Notify is called, not at every scheduling
// step.  The caller must guarantee that any state change that could
// satisfy cond (or move its wake time earlier) notifies src.
func (c *Ctx) WaitOn(src *Source, what string, cond Cond) {
	c.waitOn(src, what, nil, cond)
}

// WaitOnLazy is WaitOn with a deferred description: whatFn is only
// invoked if the block ends up in a deadlock dump, keeping message
// formatting off the scheduling fast path.
func (c *Ctx) WaitOnLazy(src *Source, whatFn func() string, cond Cond) {
	c.waitOn(src, "", whatFn, cond)
}

func (c *Ctx) waitOn(src *Source, what string, whatFn func() string, cond Cond) {
	p := c.p
	e := p.eng
	if c.par {
		e.parWait(p, src, what, whatFn, cond)
		return
	}
	p.state = stateBlocked
	p.cond = cond
	p.what = what
	p.whatFn = whatFn
	if cond == nil {
		// Pure time-based wait: wake at the proc's own clock.
		e.arm(p, p.clock)
	} else {
		p.src = src
		if src != nil {
			p.stable = src.Stable
			src.add(p)
		} else {
			e.polledAdd(p)
		}
		if wake, ok := cond(); ok {
			key := p.clock
			if wake > key {
				key = wake
			}
			e.arm(p, key)
		}
	}
	next, t := e.schedule()
	if next == p {
		// Fast path: this proc is still the minimum and its condition
		// holds — continue inline with zero coroutine switches.
		p.clock = t
		return
	}
	// Hand the decision to the driver and suspend this coroutine; the
	// driver resumes next (or reports the deadlock when next is nil).
	e.handP, e.handT = next, t
	if !p.yield(struct{}{}) {
		// Engine abandoned the run (e.g. another proc panicked or all
		// primaries finished while this daemon was blocked).  Unwind.
		panic(abandoned{})
	}
	// The driver set p.clock before resuming.
}

// Yield gives the engine a scheduling point without blocking: procs with
// earlier clocks run before this proc continues.
func (c *Ctx) Yield() {
	c.waitOn(nil, "yield", nil, nil)
}

// Gate marks a cross-proc ("shared") operation: in parallel mode it
// blocks until the calling proc holds the commit token, forcing every
// observable event into the serial (time, id) order.  Once acquired, the
// token is held until the proc's step ends (its next Wait/WaitOn/Yield
// or return), so a single Gate covers all subsequent shared work in the
// step.  In serial mode Gate is free.  The vnet layer gates sends,
// non-blocking receives and probes; code that mutates other cross-proc
// state mid-step must gate likewise.
func (c *Ctx) Gate() {
	if c.par {
		c.p.eng.gate(c.p)
	}
}

// Sync runs fn atomically with respect to the scheduler in parallel
// mode.  It is required around mutations of state that a blocked proc's
// condition examines (an inbox, a queue) together with the Source.Notify
// that publishes them: condition evaluation happens under the same lock
// at block-registration and Notify time, so Sync is what keeps a
// speculatively registering proc from reading the state mid-mutation.
// In serial mode Sync just calls fn.  Notify must only be called inside
// Sync when the engine is parallel.
func (c *Ctx) Sync(fn func()) {
	if !c.par {
		fn()
		return
	}
	e := c.p.eng
	e.mu.Lock()
	fn()
	e.mu.Unlock()
}

// SyncLock and SyncUnlock bracket a Sync region without the closure:
// hot paths that would otherwise allocate a capture per call (the vnet
// delivery path) use the pair directly.  The contract is identical to
// Sync; the region must not block or re-enter the scheduler.
func (c *Ctx) SyncLock() {
	if c.par {
		c.p.eng.mu.Lock()
	}
}

// SyncUnlock ends a region opened by SyncLock.
func (c *Ctx) SyncUnlock() {
	if c.par {
		c.p.eng.mu.Unlock()
	}
}

// abandoned is panicked through a proc body when the engine shuts it down.
type abandoned struct{}

// IsAbandoned reports whether a recovered panic value is the engine's
// shutdown signal.  Proc bodies that install their own recover handlers
// must re-panic these.
func IsAbandoned(r any) bool {
	_, ok := r.(abandoned)
	return ok
}
