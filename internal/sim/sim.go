// Package sim implements a deterministic discrete-event simulator for a
// cluster of workstations.
//
// Each simulated processor ("proc") runs real Go code in its own goroutine,
// but the engine enforces strictly sequential execution: exactly one proc
// runs at a time, and the engine always resumes the runnable proc with the
// smallest virtual clock (ties broken by proc id).  Procs advance their
// virtual clocks explicitly via Compute and block on arbitrary conditions
// via Wait.  Because all cross-proc interaction happens through conditions
// evaluated at scheduling points, runs are bit-for-bit reproducible:
// message counts, byte counts and virtual times are exact.
//
// The engine distinguishes primary procs (application processes) from
// daemon procs (protocol service threads).  A run completes when every
// primary proc has returned; daemons may still be blocked at that point.
// If no proc can make progress while primaries remain, Run reports a
// deadlock with a per-proc state dump.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Time is virtual time in nanoseconds.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time in seconds with microsecond resolution.
func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

type procState int

const (
	stateNew procState = iota
	stateReady
	stateRunning
	stateBlocked
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateBlocked:
		return "blocked"
	case stateDone:
		return "done"
	}
	return "?"
}

// Cond is a blocking condition.  It must be a pure function of simulator
// state: it reports whether the proc may resume and, if so, the earliest
// virtual time at which the wake-up event (e.g. a message arrival) occurs.
// The proc's clock is advanced to max(clock, wake time) when it resumes.
type Cond func() (wake Time, ok bool)

type proc struct {
	id     int
	name   string
	daemon bool
	state  procState
	clock  Time
	cond   Cond      // valid when state == stateBlocked
	what   string    // human-readable reason for the block
	resume chan Time // engine -> proc: new clock value
	body   func(*Ctx)
	eng    *Engine
	err    error // panic captured from the proc body
}

// Engine coordinates a set of procs over virtual time.
type Engine struct {
	procs   []*proc
	yieldCh chan *proc
	started bool
}

// NewEngine returns an empty engine.  All procs must be spawned before Run.
func NewEngine() *Engine {
	return &Engine{yieldCh: make(chan *proc)}
}

// Spawn registers a new proc.  Primary procs (daemon=false) must all return
// for Run to complete; daemon procs service requests and may be abandoned
// while blocked.  Spawn must not be called after Run has started.
func (e *Engine) Spawn(name string, daemon bool, body func(*Ctx)) {
	if e.started {
		panic("sim: Spawn after Run")
	}
	p := &proc{
		id:     len(e.procs),
		name:   name,
		daemon: daemon,
		state:  stateNew,
		resume: make(chan Time),
		body:   body,
		eng:    e,
	}
	e.procs = append(e.procs, p)
}

// NumPrimary reports the number of non-daemon procs.
func (e *Engine) NumPrimary() int {
	n := 0
	for _, p := range e.procs {
		if !p.daemon {
			n++
		}
	}
	return n
}

// Run executes the simulation until every primary proc has returned.
// It returns a deadlock error if primaries remain but no proc can resume,
// and propagates the first panic raised inside any proc body.
func (e *Engine) Run() error {
	if e.started {
		return fmt.Errorf("sim: engine already ran")
	}
	e.started = true
	for _, p := range e.procs {
		p.state = stateReady
		go p.loop()
	}
	for {
		if e.primariesDone() {
			e.drain()
			return e.firstErr()
		}
		best := e.pick()
		if best == nil {
			e.drain()
			if err := e.firstErr(); err != nil {
				return err
			}
			return fmt.Errorf("sim: deadlock\n%s", e.dump())
		}
		t := best.clock
		if best.state == stateBlocked {
			if wake, ok := best.cond(); ok && wake > t {
				t = wake
			}
			best.cond = nil
			best.what = ""
		}
		best.state = stateRunning
		best.resume <- t
		<-e.yieldCh
		if err := e.firstErr(); err != nil {
			e.drain()
			return err
		}
	}
}

// pick selects the resumable proc with the smallest effective time.
func (e *Engine) pick() *proc {
	var best *proc
	var bestT Time
	for _, p := range e.procs {
		var t Time
		switch p.state {
		case stateReady:
			t = p.clock
		case stateBlocked:
			wake, ok := p.cond()
			if !ok {
				continue
			}
			t = p.clock
			if wake > t {
				t = wake
			}
		default:
			continue
		}
		if best == nil || t < bestT || (t == bestT && p.id < best.id) {
			best = p
			bestT = t
		}
	}
	return best
}

func (e *Engine) primariesDone() bool {
	for _, p := range e.procs {
		if !p.daemon && p.state != stateDone {
			return false
		}
	}
	return true
}

func (e *Engine) firstErr() error {
	for _, p := range e.procs {
		if p.err != nil {
			return p.err
		}
	}
	return nil
}

// drain abandons all blocked/ready procs so their goroutines exit.  Called
// once the run is over; abandoned procs never resume.
func (e *Engine) drain() {
	for _, p := range e.procs {
		if p.state == stateReady || p.state == stateBlocked {
			p.state = stateDone
			close(p.resume)
		}
	}
}

// dump renders a state table for deadlock diagnostics.
func (e *Engine) dump() string {
	var b strings.Builder
	ps := append([]*proc(nil), e.procs...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].id < ps[j].id })
	for _, p := range ps {
		kind := "proc"
		if p.daemon {
			kind = "daemon"
		}
		fmt.Fprintf(&b, "  %-6s %-20s state=%-8s clock=%v", kind, p.name, p.state, p.clock)
		if p.what != "" {
			fmt.Fprintf(&b, " waiting-for=%s", p.what)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MaxPrimaryClock reports the largest final clock among primary procs:
// the modeled parallel execution time of the run.
func (e *Engine) MaxPrimaryClock() Time {
	var max Time
	for _, p := range e.procs {
		if !p.daemon && p.clock > max {
			max = p.clock
		}
	}
	return max
}

func (p *proc) loop() {
	t, ok := <-p.resume
	if !ok {
		return
	}
	p.clock = t
	defer func() {
		if r := recover(); r != nil {
			if IsAbandoned(r) {
				// The engine shut this proc down after the run ended (or
				// after another proc failed); exit without reporting.
				return
			}
			p.err = fmt.Errorf("sim: proc %q panicked: %v", p.name, r)
		}
		p.state = stateDone
		p.eng.yieldCh <- p
	}()
	p.body(&Ctx{p: p})
}

// Ctx is the handle a proc body uses to interact with virtual time.
type Ctx struct {
	p *proc
}

// ID returns the proc's engine-wide id (spawn order).
func (c *Ctx) ID() int { return c.p.id }

// Name returns the proc's name.
func (c *Ctx) Name() string { return c.p.name }

// Now returns the proc's current virtual clock.
func (c *Ctx) Now() Time { return c.p.clock }

// Compute advances the proc's virtual clock by d, modeling local
// computation.  Negative durations are ignored.
func (c *Ctx) Compute(d Time) {
	if d > 0 {
		c.p.clock += d
	}
}

// Wait blocks the proc until cond reports ok.  The proc's clock becomes
// max(clock, wake).  what describes the blockage for deadlock dumps.
func (c *Ctx) Wait(what string, cond Cond) {
	p := c.p
	// Fast path: condition already satisfied; still advance to wake time.
	// A scheduling round-trip is required regardless so that other procs
	// with earlier clocks run first.
	p.cond = cond
	p.what = what
	p.state = stateBlocked
	p.eng.yieldCh <- p
	t, ok := <-p.resume
	if !ok {
		// Engine abandoned the run (e.g. another proc panicked or all
		// primaries finished while this daemon was blocked).  Unwind.
		panic(abandoned{})
	}
	p.clock = t
}

// Yield gives the engine a scheduling point without blocking: procs with
// earlier clocks run before this proc continues.
func (c *Ctx) Yield() {
	c.Wait("yield", func() (Time, bool) { return 0, true })
}

// abandoned is panicked through a proc body when the engine shuts it down.
type abandoned struct{}

// IsAbandoned reports whether a recovered panic value is the engine's
// shutdown signal.  Proc bodies that install their own recover handlers
// must re-panic these.
func IsAbandoned(r any) bool {
	_, ok := r.(abandoned)
	return ok
}
