// Package sim implements a deterministic discrete-event simulator for a
// cluster of workstations.
//
// Each simulated processor ("proc") runs real Go code in its own goroutine,
// but the engine enforces strictly sequential execution: exactly one proc
// runs at a time, and the engine always resumes the resumable proc with the
// smallest effective virtual time (ties broken by proc id).  Procs advance
// their virtual clocks explicitly via Compute and block on conditions via
// Wait/WaitOn.  Because all cross-proc interaction happens through
// conditions evaluated at scheduling points, runs are bit-for-bit
// reproducible: message counts, byte counts and virtual times are exact.
//
// # Scheduling architecture
//
// The scheduler is event-indexed rather than scan-based.  Every resumable
// proc sits in a binary min-heap keyed by (effective resume time, proc id):
// ready procs at their own clock, and blocked procs whose condition is
// currently satisfiable at the condition's wake time.  Blocked procs whose
// condition is not yet satisfiable are parked against the Source they wait
// on (e.g. a network endpoint's inbox); mutating the state a condition
// examines must call Source.Notify, which re-polls only the parked and
// armed waiters of that source.  Pure time-based waits (Yield) go straight
// into the heap.  Conditions passed to plain Wait, with no Source, fall
// back to being re-polled at every scheduling step; that legacy path is
// O(waiters) per step and is kept for tests and ad-hoc conditions.
//
// Scheduling decisions execute inline in the yielding proc's goroutine:
// when a proc blocks or finishes it pops the next proc from the heap and
// hands control to it directly, so a scheduling step costs one goroutine
// switch (zero when the yielding proc is itself still the minimum).  There
// is no separate scheduler goroutine in steady state; Run merely starts
// the first proc and waits for termination.
//
// # Determinism invariant
//
// The engine always resumes the proc with the smallest effective time
// max(clock, wake), breaking ties by smallest proc id.  This is the
// invariant every optimization must preserve: given the same spawned
// bodies, two runs execute the identical sequence of (proc, time) steps,
// so modeled times, message counts and byte counts never drift.  For the
// event-indexed fast path this requires the Notify discipline: a blocked
// proc's condition outcome may only change when its Source is notified,
// and an armed proc's wake time may only move earlier, never later.
//
// The engine distinguishes primary procs (application processes) from
// daemon procs (protocol service threads).  A run completes when every
// primary proc has returned; daemons may still be blocked at that point.
// If no proc can make progress while primaries remain, Run reports a
// deadlock with a per-proc state dump.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Time is virtual time in nanoseconds.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time in seconds with microsecond resolution.
func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

type procState int

const (
	stateNew procState = iota
	stateReady
	stateRunning
	stateBlocked
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateBlocked:
		return "blocked"
	case stateDone:
		return "done"
	}
	return "?"
}

// Cond is a blocking condition.  It must be a pure function of simulator
// state: it reports whether the proc may resume and, if so, the earliest
// virtual time at which the wake-up event (e.g. a message arrival) occurs.
// The proc's clock is advanced to max(clock, wake time) when it resumes.
type Cond func() (wake Time, ok bool)

// Source is a wake-up source: a piece of simulator state (an endpoint's
// inbox, a lock's queue) that blocked procs wait on via WaitOn.  Code that
// mutates state a registered condition examines must call Notify, which
// re-polls exactly the procs waiting on this source.  The zero value is
// ready to use.
type Source struct {
	waiters []*proc
}

func (s *Source) add(p *proc) {
	p.widx = len(s.waiters)
	s.waiters = append(s.waiters, p)
}

func (s *Source) remove(p *proc) {
	i := p.widx
	last := len(s.waiters) - 1
	s.waiters[i] = s.waiters[last]
	s.waiters[i].widx = i
	s.waiters[last] = nil
	s.waiters = s.waiters[:last]
	p.widx = -1
}

// Notify re-polls the condition of every proc waiting on s, arming in the
// scheduler's wake-time heap those that became (or remain) resumable.
// Call it after any mutation that could satisfy a waiter's condition or
// move its wake time earlier.
func (s *Source) Notify() {
	for _, p := range s.waiters {
		p.eng.repoll(p)
	}
}

// HasWaiter reports whether a proc is currently blocked on s.  Callers
// that reuse per-source condition state (e.g. a single-consumer inbox)
// can use it to turn concurrent-waiter misuse into an immediate error.
func (s *Source) HasWaiter() bool { return len(s.waiters) > 0 }

type proc struct {
	id     int
	name   string
	daemon bool
	state  procState
	clock  Time
	cond   Cond          // valid when state == stateBlocked (nil: pure time wait)
	what   string        // human-readable reason for the block
	whatFn func() string // lazy variant of what (takes precedence in dumps)
	src    *Source       // source the proc is parked on, if any
	key    Time          // effective resume time while armed in the heap
	hidx   int           // heap index; -1 when not armed
	widx   int           // index in src.waiters; -1 when absent
	pidx   int           // index in eng.polled; -1 when absent
	resume chan Time     // scheduler -> proc: new clock value
	body   func(*Ctx)
	eng    *Engine
	err    error // panic captured from the proc body
}

// Engine coordinates a set of procs over virtual time.
type Engine struct {
	procs    []*proc
	heap     []*proc // min-heap by (key, id): armed/ready procs
	polled   []*proc // blocked procs with source-less conds, re-polled each step
	primLeft int     // primary procs that have not yet returned
	runErr   error   // first proc failure or deadlock
	finished bool    // a termination signal has been sent
	runDone  chan struct{}
	started  bool
}

// NewEngine returns an empty engine.  All procs must be spawned before Run.
func NewEngine() *Engine {
	return &Engine{runDone: make(chan struct{}, 1)}
}

// Spawn registers a new proc.  Primary procs (daemon=false) must all return
// for Run to complete; daemon procs service requests and may be abandoned
// while blocked.  Spawn must not be called after Run has started.
func (e *Engine) Spawn(name string, daemon bool, body func(*Ctx)) {
	if e.started {
		panic("sim: Spawn after Run")
	}
	p := &proc{
		id:     len(e.procs),
		name:   name,
		daemon: daemon,
		state:  stateNew,
		hidx:   -1,
		widx:   -1,
		pidx:   -1,
		resume: make(chan Time, 1),
		body:   body,
		eng:    e,
	}
	e.procs = append(e.procs, p)
}

// NumPrimary reports the number of non-daemon procs.
func (e *Engine) NumPrimary() int {
	n := 0
	for _, p := range e.procs {
		if !p.daemon {
			n++
		}
	}
	return n
}

// Run executes the simulation until every primary proc has returned.
// It returns a deadlock error if primaries remain but no proc can resume,
// and propagates the first panic raised inside any proc body.
func (e *Engine) Run() error {
	if e.started {
		return fmt.Errorf("sim: engine already ran")
	}
	e.started = true
	for _, p := range e.procs {
		p.state = stateReady
		e.arm(p, p.clock)
		if !p.daemon {
			e.primLeft++
		}
		go p.loop()
	}
	if e.primLeft == 0 {
		e.drain()
		return nil
	}
	next, t := e.schedule()
	e.handoff(next, t)
	<-e.runDone
	e.drain()
	return e.runErr
}

// ---------------------------------------------------------------------
// Wake-time heap: a binary min-heap over (key, id), hand-rolled so the
// hot path pays no interface indirection.  p.hidx tracks each armed
// proc's position for decrease-key and removal.

func (e *Engine) heapLess(a, b *proc) bool {
	return a.key < b.key || (a.key == b.key && a.id < b.id)
}

func (e *Engine) heapSwap(i, j int) {
	h := e.heap
	h[i], h[j] = h[j], h[i]
	h[i].hidx = i
	h[j].hidx = j
}

func (e *Engine) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heapLess(e.heap[i], e.heap[parent]) {
			break
		}
		e.heapSwap(i, parent)
		i = parent
	}
}

func (e *Engine) heapDown(i int) {
	n := len(e.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && e.heapLess(e.heap[r], e.heap[l]) {
			least = r
		}
		if !e.heapLess(e.heap[least], e.heap[i]) {
			return
		}
		e.heapSwap(i, least)
		i = least
	}
}

func (e *Engine) heapPush(p *proc) {
	p.hidx = len(e.heap)
	e.heap = append(e.heap, p)
	e.heapUp(p.hidx)
}

func (e *Engine) heapRemove(p *proc) {
	i := p.hidx
	last := len(e.heap) - 1
	if i != last {
		e.heapSwap(i, last)
	}
	e.heap[last] = nil
	e.heap = e.heap[:last]
	p.hidx = -1
	if i < last {
		e.heapDown(i)
		e.heapUp(i)
	}
}

// arm places p in the heap at the given effective resume time, or moves
// it if already armed at a different time.
func (e *Engine) arm(p *proc, key Time) {
	if p.hidx >= 0 {
		if key != p.key {
			p.key = key
			e.heapDown(p.hidx)
			e.heapUp(p.hidx)
		}
		return
	}
	p.key = key
	e.heapPush(p)
}

// repoll re-evaluates a blocked proc's condition, arming or disarming it.
func (e *Engine) repoll(p *proc) {
	wake, ok := p.cond()
	if !ok {
		if p.hidx >= 0 {
			e.heapRemove(p)
		}
		return
	}
	key := p.clock
	if wake > key {
		key = wake
	}
	e.arm(p, key)
}

// schedule picks the next proc to run: the heap minimum after re-polling
// the legacy source-less waiters.  It detaches the chosen proc from every
// wait structure and marks it running.  Returns (nil, 0) when nothing can
// make progress.
func (e *Engine) schedule() (*proc, Time) {
	for _, p := range e.polled {
		e.repoll(p)
	}
	if len(e.heap) == 0 {
		return nil, 0
	}
	p := e.heap[0]
	e.heapRemove(p)
	if p.src != nil {
		p.src.remove(p)
		p.src = nil
	}
	if p.pidx >= 0 {
		e.polledRemove(p)
	}
	p.cond = nil
	p.what = ""
	p.whatFn = nil
	p.state = stateRunning
	return p, p.key
}

func (e *Engine) polledAdd(p *proc) {
	p.pidx = len(e.polled)
	e.polled = append(e.polled, p)
}

func (e *Engine) polledRemove(p *proc) {
	i := p.pidx
	last := len(e.polled) - 1
	e.polled[i] = e.polled[last]
	e.polled[i].pidx = i
	e.polled[last] = nil
	e.polled = e.polled[:last]
	p.pidx = -1
}

// handoff transfers control to p at clock t.  The resume channel is
// buffered, so the caller proceeds straight to its own park (or exit)
// without waiting for p to wake: one goroutine switch per step.
func (e *Engine) handoff(p *proc, t Time) {
	p.resume <- t
}

// finish signals Run that the simulation is over.  Called exactly once
// per run, by whichever proc observes completion, deadlock or a panic.
func (e *Engine) finish(err error) {
	if e.finished {
		return
	}
	e.finished = true
	if e.runErr == nil {
		e.runErr = err
	}
	e.runDone <- struct{}{}
}

// drain abandons all blocked/ready procs so their goroutines exit.  Called
// once the run is over; abandoned procs never resume.
func (e *Engine) drain() {
	for _, p := range e.procs {
		if p.state == stateReady || p.state == stateBlocked {
			p.state = stateDone
			close(p.resume)
		}
	}
}

// dump renders a state table for deadlock diagnostics.
func (e *Engine) dump() string {
	var b strings.Builder
	ps := append([]*proc(nil), e.procs...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].id < ps[j].id })
	for _, p := range ps {
		kind := "proc"
		if p.daemon {
			kind = "daemon"
		}
		fmt.Fprintf(&b, "  %-6s %-20s state=%-8s clock=%v", kind, p.name, p.state, p.clock)
		what := p.what
		if p.whatFn != nil {
			what = p.whatFn()
		}
		if what != "" {
			fmt.Fprintf(&b, " waiting-for=%s", what)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MaxPrimaryClock reports the largest final clock among primary procs:
// the modeled parallel execution time of the run.
func (e *Engine) MaxPrimaryClock() Time {
	var max Time
	for _, p := range e.procs {
		if !p.daemon && p.clock > max {
			max = p.clock
		}
	}
	return max
}

func (p *proc) loop() {
	t, ok := <-p.resume
	if !ok {
		return
	}
	p.clock = t
	defer p.exit()
	p.body(&Ctx{p: p})
}

// exit runs when a proc body returns or panics: it records the outcome
// and performs the final scheduling step on the departing goroutine.
func (p *proc) exit() {
	e := p.eng
	if r := recover(); r != nil {
		if IsAbandoned(r) {
			// The engine shut this proc down after the run ended (or
			// after another proc failed); exit without reporting.
			return
		}
		p.err = fmt.Errorf("sim: proc %q panicked: %v", p.name, r)
		p.state = stateDone
		e.finish(p.err)
		return
	}
	p.state = stateDone
	if !p.daemon {
		e.primLeft--
		if e.primLeft == 0 {
			e.finish(nil)
			return
		}
	}
	next, t := e.schedule()
	if next == nil {
		e.finish(fmt.Errorf("sim: deadlock\n%s", e.dump()))
		return
	}
	e.handoff(next, t)
}

// Ctx is the handle a proc body uses to interact with virtual time.
type Ctx struct {
	p *proc
}

// ID returns the proc's engine-wide id (spawn order).
func (c *Ctx) ID() int { return c.p.id }

// Name returns the proc's name.
func (c *Ctx) Name() string { return c.p.name }

// Now returns the proc's current virtual clock.
func (c *Ctx) Now() Time { return c.p.clock }

// Compute advances the proc's virtual clock by d, modeling local
// computation.  Negative durations are ignored.
func (c *Ctx) Compute(d Time) {
	if d > 0 {
		c.p.clock += d
	}
}

// Wait blocks the proc until cond reports ok.  The proc's clock becomes
// max(clock, wake).  what describes the blockage for deadlock dumps.
//
// A plain Wait has no wake source, so its condition is re-polled at every
// scheduling step.  Hot paths should use WaitOn with a Source instead.
func (c *Ctx) Wait(what string, cond Cond) {
	c.waitOn(nil, what, nil, cond)
}

// WaitOn blocks like Wait, but registers the proc with src: the condition
// is re-evaluated only when src.Notify is called, not at every scheduling
// step.  The caller must guarantee that any state change that could
// satisfy cond (or move its wake time earlier) notifies src.
func (c *Ctx) WaitOn(src *Source, what string, cond Cond) {
	c.waitOn(src, what, nil, cond)
}

// WaitOnLazy is WaitOn with a deferred description: whatFn is only
// invoked if the block ends up in a deadlock dump, keeping message
// formatting off the scheduling fast path.
func (c *Ctx) WaitOnLazy(src *Source, whatFn func() string, cond Cond) {
	c.waitOn(src, "", whatFn, cond)
}

func (c *Ctx) waitOn(src *Source, what string, whatFn func() string, cond Cond) {
	p := c.p
	e := p.eng
	p.state = stateBlocked
	p.cond = cond
	p.what = what
	p.whatFn = whatFn
	if cond == nil {
		// Pure time-based wait: wake at the proc's own clock.
		e.arm(p, p.clock)
	} else {
		p.src = src
		if src != nil {
			src.add(p)
		} else {
			e.polledAdd(p)
		}
		if wake, ok := cond(); ok {
			key := p.clock
			if wake > key {
				key = wake
			}
			e.arm(p, key)
		}
	}
	next, t := e.schedule()
	if next == p {
		// Fast path: this proc is still the minimum and its condition
		// holds — continue inline with zero goroutine switches.
		p.clock = t
		return
	}
	if next == nil {
		e.finish(fmt.Errorf("sim: deadlock\n%s", e.dump()))
	} else {
		e.handoff(next, t)
	}
	t, ok := <-p.resume
	if !ok {
		// Engine abandoned the run (e.g. another proc panicked or all
		// primaries finished while this daemon was blocked).  Unwind.
		panic(abandoned{})
	}
	p.clock = t
}

// Yield gives the engine a scheduling point without blocking: procs with
// earlier clocks run before this proc continues.
func (c *Ctx) Yield() {
	c.waitOn(nil, "yield", nil, nil)
}

// abandoned is panicked through a proc body when the engine shuts it down.
type abandoned struct{}

// IsAbandoned reports whether a recovered panic value is the engine's
// shutdown signal.  Proc bodies that install their own recover handlers
// must re-panic these.
func IsAbandoned(r any) bool {
	_, ok := r.(abandoned)
	return ok
}
