package vnet

import (
	"testing"

	"repro/internal/sim"
)

// faultPattern runs one lossy datagram exchange — 200 sends from node 0
// to node 1 — and returns the wire stats plus the delivered arrival
// sequence, the observable fingerprint of the fault pattern.
func faultPattern(t *testing.T, fc FaultConfig) (Stats, []sim.Time) {
	t.Helper()
	cfg := testConfig()
	cfg.Faults = fc
	n := New(cfg)
	e := sim.NewEngine()
	a := n.NewEndpoint(0, true)
	b := n.NewEndpoint(1, true)
	e.Spawn("a", false, func(c *sim.Ctx) {
		for i := 0; i < 200; i++ {
			a.Send(c, b, 5, make([]byte, 100))
		}
	})
	var arrivals []sim.Time
	e.Spawn("b", false, func(c *sim.Ctx) {
		for {
			m := b.RecvDeadline(c, -1, 5, c.Now()+sim.Second)
			if m == nil {
				return
			}
			arrivals = append(arrivals, m.Arrival)
			b.Free(c, m)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return n.WireStats(), arrivals
}

func TestFaultSeededDeterminism(t *testing.T) {
	fc := FaultConfig{
		Seed:    42,
		Loss:    0.2,
		Dup:     0.1,
		Reorder: 0.15,
		Jitter:  30 * sim.Microsecond,
	}
	st1, arr1 := faultPattern(t, fc)
	st2, arr2 := faultPattern(t, fc)
	if st1 != st2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", st1, st2)
	}
	if len(arr1) != len(arr2) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(arr1), len(arr2))
	}
	for i := range arr1 {
		if arr1[i] != arr2[i] {
			t.Fatalf("same seed, arrival %d differs: %v vs %v", i, arr1[i], arr2[i])
		}
	}
	// The pattern actually exercised every knob.
	if st1.Dropped == 0 || st1.Retrans == 0 {
		t.Fatalf("fault knobs inert: %+v", st1)
	}
	// Accounting is disjoint: every first transmission is either
	// delivered (Messages) or killed (Dropped); duplicates are Retrans.
	if st1.Messages+st1.Dropped != 200 {
		t.Fatalf("messages %d + dropped %d != 200 sends", st1.Messages, st1.Dropped)
	}
	if int64(len(arr1)) != st1.Messages+st1.Retrans {
		t.Fatalf("delivered %d, want Messages+Retrans = %d", len(arr1), st1.Messages+st1.Retrans)
	}

	fc.Seed = 43
	st3, _ := faultPattern(t, fc)
	if st1 == st3 {
		t.Fatalf("different seeds produced identical stats %+v", st1)
	}
}

func TestDuplicationCountsRetrans(t *testing.T) {
	st, arrivals := faultPattern(t, FaultConfig{Seed: 7, Dup: 0.999999})
	if st.Dropped != 0 {
		t.Fatalf("dropped = %d with no loss", st.Dropped)
	}
	if st.Messages != 200 {
		t.Fatalf("messages = %d, want 200", st.Messages)
	}
	if st.Retrans != 200 {
		t.Fatalf("retrans = %d, want 200 duplicate deliveries", st.Retrans)
	}
	if len(arrivals) != 400 {
		t.Fatalf("delivered = %d, want 400", len(arrivals))
	}
	// Bytes counts first transmissions only.
	if st.Bytes != 200*(100+40) {
		t.Fatalf("bytes = %d, want %d", st.Bytes, 200*(100+40))
	}
}

func TestPartitionWindow(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = FaultConfig{
		Partitions: []Partition{{Start: 1 * sim.Millisecond, Heal: 2 * sim.Millisecond, Nodes: []int{1}}},
	}
	n := New(cfg)
	e := sim.NewEngine()
	a := n.NewEndpoint(0, true)
	b := n.NewEndpoint(1, true)
	e.Spawn("a", false, func(c *sim.Ctx) {
		a.Send(c, b, 1, make([]byte, 100)) // before the window: delivered
		c.Compute(1200 * sim.Microsecond)  // inside [1ms, 2ms)
		a.Send(c, b, 1, make([]byte, 100)) // severed: dropped
		c.Compute(1 * sim.Millisecond)     // past the heal
		a.Send(c, b, 1, make([]byte, 100)) // healed: delivered
	})
	e.Spawn("b", false, func(c *sim.Ctx) {
		for i := 0; i < 2; i++ {
			b.Free(c, b.Recv(c, 0, 1))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.WireStats()
	if st.Messages != 2 || st.Dropped != 1 {
		t.Fatalf("stats = %+v, want 2 delivered / 1 dropped", st)
	}
}

func TestStreamARQInOrderExactlyOnce(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = FaultConfig{Seed: 99, Loss: 0.4}
	n := New(cfg)
	e := sim.NewEngine()
	a := n.NewEndpoint(0, false)
	b := n.NewEndpoint(1, false)
	const N = 100
	e.Spawn("a", false, func(c *sim.Ctx) {
		for i := 0; i < N; i++ {
			a.SendObj(c, b, 3, i, 64)
		}
	})
	e.Spawn("b", false, func(c *sim.Ctx) {
		last := sim.Time(-1)
		for i := 0; i < N; i++ {
			m := b.Recv(c, 0, 3)
			if got := m.Obj.(int); got != i {
				t.Errorf("recv %d: got payload %d (stream reordered or dropped)", i, got)
			}
			if m.Arrival < last {
				t.Errorf("recv %d: arrival %v before predecessor %v", i, m.Arrival, last)
			}
			last = m.Arrival
			b.Free(c, m)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.WireStats()
	// The user-level send always counts once; ARQ losses and retries are
	// side columns and pair up exactly (every killed attempt is retried).
	if st.Messages != N {
		t.Fatalf("messages = %d, want %d", st.Messages, N)
	}
	if st.Dropped == 0 || st.Dropped != st.Retrans {
		t.Fatalf("ARQ accounting: dropped=%d retrans=%d, want equal and nonzero", st.Dropped, st.Retrans)
	}
}

func TestRecvDeadline(t *testing.T) {
	n := New(testConfig())
	e := sim.NewEngine()
	a := n.NewEndpoint(0, true)
	b := n.NewEndpoint(1, true)
	e.Spawn("a", false, func(c *sim.Ctx) {
		c.Compute(5 * sim.Millisecond)
		a.Send(c, b, 1, make([]byte, 100))
	})
	e.Spawn("b", false, func(c *sim.Ctx) {
		// Deadline fires with nothing in flight.
		if m := b.RecvDeadline(c, 0, 1, 1*sim.Millisecond); m != nil {
			t.Errorf("expected timeout, got %+v", m)
		}
		if c.Now() != 1*sim.Millisecond {
			t.Errorf("timeout woke at %v, want 1ms", c.Now())
		}
		// Deadline fires while the message is still in flight (arrival
		// past the deadline); the message must stay queued for later.
		if m := b.RecvDeadline(c, 0, 1, 5100*sim.Microsecond); m != nil {
			t.Errorf("expected timeout before arrival, got %+v", m)
		}
		// Now the message is receivable.
		m := b.RecvDeadline(c, 0, 1, c.Now()+sim.Second)
		if m == nil {
			t.Fatal("expected delivery before deadline")
		}
		b.Free(c, m)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSlowdownScalesSendCost(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = FaultConfig{Slowdown: []float64{1, 2}}
	n := New(cfg)
	e := sim.NewEngine()
	a := n.NewEndpoint(1, true) // the slow node
	b := n.NewEndpoint(0, true)
	e.Spawn("a", false, func(c *sim.Ctx) {
		a.Send(c, b, 1, make([]byte, 960)) // 960+40 hdr = 1000 B wire
		// Normal cost: 100µs overhead + 100µs transmit; slowed 2x.
		if c.Now() != 400*sim.Microsecond {
			t.Errorf("slowed sender clock = %v, want 400µs", c.Now())
		}
	})
	e.Spawn("b", false, func(c *sim.Ctx) {
		b.Free(c, b.Recv(c, 1, 1))
		// Arrival 400+50 latency; recv overhead 100µs at full speed.
		if c.Now() != 550*sim.Microsecond {
			t.Errorf("receiver clock = %v, want 550µs", c.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDropsSkipPool exercises the message pool across a drop burst: a
// killed transmission never allocates a Message, so a partition-window
// barrage followed by normal recycled traffic must deliver cleanly.
func TestDropsSkipPool(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = FaultConfig{
		Partitions: []Partition{{Start: 0, Heal: 10 * sim.Millisecond, Nodes: []int{1}}},
	}
	n := New(cfg)
	e := sim.NewEngine()
	a := n.NewEndpoint(0, true)
	b := n.NewEndpoint(1, true)
	e.Spawn("a", false, func(c *sim.Ctx) {
		for i := 0; i < 50; i++ {
			a.SendObj(c, b, 1, i, 100) // all severed
		}
		if b.Pending() != 0 {
			t.Errorf("pending = %d after pure drops, want 0", b.Pending())
		}
		if c.Now() < 10*sim.Millisecond {
			c.Compute(10*sim.Millisecond - c.Now())
		}
		for i := 0; i < 50; i++ {
			a.SendObj(c, b, 1, 1000+i, 100)
		}
	})
	e.Spawn("b", false, func(c *sim.Ctx) {
		for i := 0; i < 50; i++ {
			m := b.Recv(c, 0, 1)
			if got := m.Obj.(int); got != 1000+i {
				t.Errorf("recv %d: payload %d, want %d", i, got, 1000+i)
			}
			b.Free(c, m)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.WireStats()
	if st.Dropped != 50 || st.Messages != 50 {
		t.Fatalf("stats = %+v, want 50 dropped / 50 delivered", st)
	}
}

func TestZeroFaultConfigIdentical(t *testing.T) {
	// A FaultConfig with only a seed set is not Enabled: the run must be
	// byte-identical to a fault-free network.
	st1, arr1 := faultPattern(t, FaultConfig{})
	st2, arr2 := faultPattern(t, FaultConfig{Seed: 12345})
	if st1 != st2 || len(arr1) != len(arr2) {
		t.Fatalf("seed-only fault config perturbed the run: %+v vs %+v", st1, st2)
	}
	for i := range arr1 {
		if arr1[i] != arr2[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, arr1[i], arr2[i])
		}
	}
	if st1.Dropped != 0 || st1.Retrans != 0 {
		t.Fatalf("fault counters moved on a fault-free run: %+v", st1)
	}
}

func TestDrawProperties(t *testing.T) {
	fc := FaultConfig{Seed: 1}
	for seq := uint64(1); seq < 1000; seq++ {
		for _, kind := range []uint64{kLoss, kDup, kReorder, kJitter, kDupDelay, kStream} {
			v := fc.draw(seq, kind)
			if v < 0 || v >= 1 {
				t.Fatalf("draw(%d,%d) = %v out of [0,1)", seq, kind, v)
			}
		}
		if fc.draw(seq, kLoss) == fc.draw(seq, kDup) {
			t.Fatalf("seq %d: loss and dup sub-streams collide", seq)
		}
	}
}
