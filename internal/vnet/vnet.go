// Package vnet models the interconnect of a 1995-era workstation cluster:
// a 100 Mbit/s FDDI ring carrying UDP datagrams (used by TreadMarks) and
// direct TCP connections (used by PVM).
//
// The model is a LogP-style cost model layered on the sim engine:
//
//   - the sender's clock advances by SendOverhead plus the transmit
//     serialization time (bytes at the link bandwidth) per fragment;
//   - the message arrives Latency after it has been fully transmitted;
//   - the receiver's clock advances by RecvOverhead plus a per-byte copy
//     cost when it consumes the message.
//
// Datagram (UDP) endpoints fragment payloads larger than the MTU and count
// every fragment as a wire message, reproducing the accounting the paper
// uses for TreadMarks ("total number of UDP messages and total amount of
// data").  Stream (TCP) endpoints count one message per user send with no
// header bytes, matching the paper's user-level accounting for PVM.
//
// # Inbox layout
//
// Each endpoint's inbox is indexed by (from, tag): queued messages live in
// per-pair buckets kept in (Arrival, seq) order, so an exact-filter receive
// peeks one bucket head and a wildcard receive scans only the bucket heads
// — never the full inbox.  Consuming a message pops a bucket head in O(1)
// instead of splicing a flat queue.  Selection semantics are unchanged:
// among matching messages, the one with the earliest arrival wins, ties
// broken by global send order (seq).
//
// # Structured messages
//
// Send ships bytes; SendObj ships a structured object with a
// caller-declared modeled wire size.  Timing, fragmentation and
// accounting are computed from that size exactly as they would be for an
// equal-length payload, but nothing is serialized — the receiver shares
// the object with the sender and must treat it as immutable.  Protocols
// whose message volume dominates host time (TreadMarks diff traffic) use
// this path; their byte encodings remain the documented wire format,
// test-pinned to produce exactly the declared sizes.
//
// # Message recycling and the parallel engine
//
// Message structs are pooled: a receiver that has fully extracted a
// message's Payload/Obj hands the struct back with Endpoint.Free, and
// the next send reuses it — in steady state a send allocates nothing.
// The layer is also the engine's shared-operation boundary in parallel
// mode (sim.Options{Parallel}): sends, non-blocking receives, probes
// and frees gate into the serial commit order via Ctx.Gate, and inbox
// delivery runs inside Ctx.Sync so a blocked receiver's wake condition
// never observes a half-filed inbox.
//
// # Fault injection
//
// Config.Faults arms a deterministic fault layer — seeded per-message
// loss, duplication, reordering, latency jitter, timed partitions and
// per-node slowdown; see FaultConfig in fault.go for the determinism
// and accounting contracts.  Datagram endpoints expose raw faults to
// their users, who recover with their own sequence numbers and
// timeout/retransmit (built from RecvDeadline and SendObjRetrans);
// stream endpoints emulate TCP's ARQ below the user, so stream sends
// are delayed by recovery but never lost, duplicated or reordered.
// With the zero FaultConfig the fault path is skipped entirely and all
// modeled results are byte-identical to a fault-free build.
package vnet

import (
	"fmt"

	"repro/internal/sim"
)

// Config holds the network cost model.
type Config struct {
	SendOverhead sim.Time // per-fragment CPU cost at the sender
	RecvOverhead sim.Time // per-fragment CPU cost at the receiver
	Latency      sim.Time // wire latency after full transmission
	BytesPerSec  int64    // link bandwidth
	RecvPerByte  sim.Time // per-byte copy cost at the receiver
	MTU          int      // datagram fragmentation threshold (payload bytes)
	HeaderBytes  int      // per-fragment wire header (datagram endpoints)

	// Same-node delivery (e.g. a process messaging its own protocol
	// daemon) goes through loopback: cheap, and never counted as wire
	// traffic.
	LocalOverhead sim.Time
	LocalDelay    sim.Time

	// Faults configures deterministic fault injection (see fault.go).
	// The zero value disables it.
	Faults FaultConfig
}

// FDDI returns the default cost model: 100 Mbit/s FDDI with early-1990s
// kernel UDP/TCP stacks.  A minimal one-way message costs roughly 300 µs
// and a 4 KB page transfer roughly 700 µs, consistent with the ~1-2 ms
// page-fault round trips reported for TreadMarks on this class of hardware.
func FDDI() Config {
	return Config{
		SendOverhead: 120 * sim.Microsecond,
		RecvOverhead: 120 * sim.Microsecond,
		Latency:      60 * sim.Microsecond,
		BytesPerSec:  100 * 1000 * 1000 / 8, // 100 Mbit/s
		RecvPerByte:  8 * sim.Nanosecond,
		MTU:          16 * 1024,
		HeaderBytes:  40, // IP + UDP + protocol header

		LocalOverhead: 15 * sim.Microsecond,
		LocalDelay:    5 * sim.Microsecond,
	}
}

// Ethernet10 returns a slower-link cost model: shared 10 Mbit/s Ethernet
// with the same kernel stacks.  Per-message software overheads are
// unchanged; serialization is ten times slower and the datagram MTU drops
// to the Ethernet frame payload, so page-size transfers fragment.  Used
// by the link-bandwidth sensitivity scenarios — the paper's FDDI numbers
// are the Config returned by FDDI.
func Ethernet10() Config {
	c := FDDI()
	c.BytesPerSec = 10 * 1000 * 1000 / 8 // 10 Mbit/s
	c.MTU = 1500
	return c
}

// transmit returns the serialization time for n bytes.  Pointer receiver:
// Config (with its embedded FaultConfig) is ~200 bytes, and the send path
// calls this per fragment batch.
func (c *Config) transmit(n int) sim.Time {
	if c.BytesPerSec <= 0 {
		return 0
	}
	return sim.Time(int64(n) * int64(sim.Second) / c.BytesPerSec)
}

// Message is a delivered payload plus metadata.  A message carries either
// serialized bytes (Payload) or a structured object (Obj) sent through
// SendObj; in the latter case the wire size is modeled from the size the
// sender declared.  Receivers of an Obj share it with the sender and must
// treat it as immutable.
type Message struct {
	From    int // sender's logical endpoint id (its node unless NewEndpointID)
	To      int
	Tag     int
	Payload []byte
	Obj     any
	Arrival sim.Time
	size    int // modeled payload bytes (== len(Payload) when byte-carried)
	seq     uint64
	local   bool // loopback delivery: cheap receive, no wire accounting
}

// Stats counts traffic through one accounting domain.  Messages/Bytes
// are the paper's columns: delivered useful traffic (datagram first
// transmissions, stream user-level sends).  Fault injection accounts
// separately — Dropped counts wire transmissions the fault layer
// killed, Retrans counts duplicated and retransmitted ones — so the
// delivered columns never silently absorb recovery traffic.
type Stats struct {
	Messages int64
	Bytes    int64
	Dropped  int64 // transmissions killed by fault injection
	Retrans  int64 // duplicated or retransmitted transmissions
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Messages += other.Messages
	s.Bytes += other.Bytes
	s.Dropped += other.Dropped
	s.Retrans += other.Retrans
}

// Kilobytes reports Bytes in units of 1000 bytes (the paper's "Kilobytes").
func (s Stats) Kilobytes() float64 { return float64(s.Bytes) / 1000 }

// Network is a cluster interconnect shared by a set of endpoints.
type Network struct {
	cfg   Config
	seq   uint64
	stats Stats // wire-level totals across all endpoints

	// Fault layer state, derived once in New: faultsOn short-circuits the
	// fault path in xmit, rto is the resolved base timeout of the stream
	// ARQ (Config.Faults.RTO, or a cost-model default).
	faultsOn bool
	rto      sim.Time

	// pool recycles Message structs between xmit and Free.  It is only
	// touched inside gated sections (xmit gates; Free gates), so one
	// plain slice serves both engine modes.
	pool []*Message
}

// msgChunk is the pool refill granularity: structs are carved from
// chunk-sized arrays so a burst of sends that outruns Free costs one
// allocation per chunk instead of one per message.
const msgChunk = 64

// alloc returns a Message struct, recycling freed ones.  Callers
// overwrite every field with a composite assignment (*m = Message{...}),
// so recycled structs are handed back without an extra zeroing pass.
func (n *Network) alloc() *Message {
	k := len(n.pool)
	if k == 0 {
		chunk := make([]Message, msgChunk)
		for i := range chunk {
			n.pool = append(n.pool, &chunk[i])
		}
		k = msgChunk
	}
	m := n.pool[k-1]
	n.pool[k-1] = nil
	n.pool = n.pool[:k-1]
	return m
}

// New creates a network with the given cost model.
func New(cfg Config) *Network {
	n := &Network{cfg: cfg}
	n.faultsOn = cfg.Faults.Enabled()
	if n.faultsOn {
		n.rto = cfg.Faults.RTO
		if n.rto == 0 {
			// Default stream-ARQ base timeout: 4x a minimal round trip,
			// floored at 2 ms (a kernel-granularity TCP timer of the era).
			rtt := 2 * (cfg.SendOverhead + cfg.Latency + cfg.RecvOverhead)
			n.rto = 4 * rtt
			if n.rto < 2*sim.Millisecond {
				n.rto = 2 * sim.Millisecond
			}
		}
	}
	return n
}

// Config returns the network's cost model.
func (n *Network) Config() Config { return n.cfg }

// WireStats returns wire-level totals (all endpoints, fragments counted).
func (n *Network) WireStats() Stats { return n.stats }

// bucket queues the messages of one (from, tag) pair in (Arrival, seq)
// order.  Senders to one pair emit almost always in arrival order (their
// clocks only move forward), so insertion is an append with a rare
// tail-walk; consumption pops the head.
type bucket struct {
	from, tag int
	msgs      []*Message
	head      int
}

func (b *bucket) empty() bool { return b.head == len(b.msgs) }

func (b *bucket) peek() *Message { return b.msgs[b.head] }

func (b *bucket) pop() *Message {
	m := b.msgs[b.head]
	b.msgs[b.head] = nil
	b.head++
	if b.head == len(b.msgs) {
		b.msgs = b.msgs[:0]
		b.head = 0
	} else if b.head >= 32 && b.head*2 >= len(b.msgs) {
		// Reclaim the consumed prefix once it dominates the backing array.
		n := copy(b.msgs, b.msgs[b.head:])
		for i := n; i < len(b.msgs); i++ {
			b.msgs[i] = nil
		}
		b.msgs = b.msgs[:n]
		b.head = 0
	}
	return m
}

func (b *bucket) put(m *Message) {
	b.msgs = append(b.msgs, m)
	// Restore (Arrival, seq) order if the new message arrives before the
	// previous tail (possible when two sender endpoints share a node id but
	// run at different clocks).  seq is globally increasing, so among equal
	// arrivals the existing message stays first.
	for i := len(b.msgs) - 1; i > b.head && b.msgs[i-1].Arrival > m.Arrival; i-- {
		b.msgs[i] = b.msgs[i-1]
		b.msgs[i-1] = m
	}
}

// Endpoint is one node's attachment point.  An endpoint is single-owner:
// exactly one sim proc consumes from it (others may send to it).
type Endpoint struct {
	net      *Network
	node     int
	id       int  // logical id carried in Message.From (== node unless NewEndpointID)
	datagram bool // true: UDP accounting (fragments, headers)
	stats    Stats

	// arqLast tracks, per destination endpoint, the arrival time of this
	// endpoint's most recent stream send there: the emulated TCP ARQ
	// delivers in order, so a later send can never arrive before an
	// earlier one even if its own loss draws resolve faster.  Allocated
	// lazily; only touched under Gate (stream sends gate in xmit).
	arqLast map[*Endpoint]sim.Time

	// Inbox index: one bucket per (from, tag) pair ever seen.  index is
	// the exact-match lookup; order is the deterministic scan list for
	// wildcard filters (creation order).  queued counts live messages.
	// lastKey/lastB memoize the most recent exact lookup: delivery and an
	// exact-filter receive hammer the same (from, tag) pair back to back,
	// so the common case skips the map hash entirely.  The cache is only
	// touched under the engine's Sync lock or the commit token, like the
	// index itself.
	index   map[[2]int]*bucket
	order   []*bucket
	queued  int
	lastKey [2]int
	lastB   *bucket

	// Scheduler integration: the owner blocks in Recv against wake, and
	// every Send into this inbox notifies it, so only this endpoint's
	// waiter is re-polled when a message arrives.  The condition closure
	// is allocated once and parameterized through wFrom/wTag; wArmed marks
	// the filter live — it is set for the duration of a Recv and cleared
	// when the message is consumed, so a stale filter from a finished Recv
	// can never satisfy the wake predicate.
	wake        sim.Source
	wFrom, wTag int
	wArmed      bool
	wDeadline   sim.Time // RecvDeadline's timeout instant
	wHasDL      bool     // a deadline is armed alongside the filter
	wCond       sim.Cond
	wWhat       func() string
}

// NewEndpoint attaches node to the network.  datagram selects UDP
// accounting (fragmentation, per-fragment headers); otherwise the endpoint
// behaves like a direct TCP connection (one message per send).  The
// endpoint's logical id equals its node.
func (n *Network) NewEndpoint(node int, datagram bool) *Endpoint {
	return n.NewEndpointID(node, node, datagram)
}

// NewEndpointID attaches an endpoint with a logical id distinct from its
// node: Message.From carries id, while node still governs loopback
// detection, cost charging, slowdown and partitions.  Several endpoints
// may share a node (co-located processes) as long as their ids differ.
func (n *Network) NewEndpointID(node, id int, datagram bool) *Endpoint {
	e := &Endpoint{net: n, node: node, id: id, datagram: datagram, index: map[[2]int]*bucket{}}
	// The inbox satisfies sim's stable-source contract: the endpoint is
	// single-consumer, so only the blocked owner can remove the message
	// that satisfied its receive condition, other procs' deliveries only
	// add candidates (the wake time — min of earliest matching arrival
	// and the optional deadline — can only move earlier), and causality
	// keeps new arrivals at or after the instant the wake-up committed.
	// Stability lets the engine commit same-instant wakeups through the
	// serial run queue and release blocked receivers speculatively in
	// parallel batches; both re-verify the condition at the serial turn.
	e.wake.Stable = true
	e.wCond = func() (sim.Time, bool) {
		if !e.wArmed {
			return 0, false
		}
		_, m := e.peek(e.wFrom, e.wTag)
		if m == nil {
			if e.wHasDL {
				return e.wDeadline, true
			}
			return 0, false
		}
		if e.wHasDL && e.wDeadline < m.Arrival {
			return e.wDeadline, true
		}
		return m.Arrival, true
	}
	e.wWhat = func() string {
		return fmt.Sprintf("recv(node=%d from=%d tag=%d)", e.node, e.wFrom, e.wTag)
	}
	return e
}

// Node returns the endpoint's node id.
func (e *Endpoint) Node() int { return e.node }

// ID returns the endpoint's logical id (carried in Message.From).
func (e *Endpoint) ID() int { return e.id }

// Stats returns the endpoint's accounting totals (its sends only).
func (e *Endpoint) Stats() Stats { return e.stats }

// Send transmits payload to dst with the given tag, charging the sender's
// clock and scheduling arrival.  The payload is not copied; callers must
// not mutate it after sending.  Returns the number of wire messages.
func (e *Endpoint) Send(ctx *sim.Ctx, dst *Endpoint, tag int, payload []byte) int {
	return e.xmit(ctx, dst, tag, payload, nil, len(payload), false)
}

// SendObj transmits a structured message of the given modeled wire size
// without serializing it: timing, fragmentation and accounting are
// computed exactly as for a size-byte payload, but the receiver gets obj
// itself.  The caller owns the proof that size equals the length its wire
// encoding would have, and both sides must treat obj (and everything
// reachable from it) as immutable once sent.
func (e *Endpoint) SendObj(ctx *sim.Ctx, dst *Endpoint, tag int, obj any, size int) int {
	return e.xmit(ctx, dst, tag, nil, obj, size, false)
}

// SendObjRetrans is SendObj for a protocol retransmission: identical
// timing, fragmentation and fault exposure, but the wire traffic is
// accounted under Stats.Retrans instead of Messages/Bytes, keeping the
// paper's delivered-traffic columns free of recovery overhead.
func (e *Endpoint) SendObjRetrans(ctx *sim.Ctx, dst *Endpoint, tag int, obj any, size int) int {
	return e.xmit(ctx, dst, tag, nil, obj, size, true)
}

func (e *Endpoint) xmit(ctx *sim.Ctx, dst *Endpoint, tag int, payload []byte, obj any, size int, retrans bool) int {
	if dst == nil {
		panic("vnet: send to nil endpoint")
	}
	// A send mutates cross-proc state (sequence counter, statistics, the
	// destination inbox): it is a shared operation in the engine's
	// parallel mode and must commit in serial order.
	ctx.Gate()
	cfg := &e.net.cfg
	fc := &cfg.Faults
	if dst.node == e.node {
		// Loopback: a process talking to another process (or daemon) on
		// its own node.  No wire traffic, no accounting, no faults.
		local := cfg.LocalOverhead
		if e.net.faultsOn {
			local = scaleTime(local, fc.slow(e.node))
		}
		ctx.Compute(local)
		e.net.seq++
		m := e.net.alloc()
		*m = Message{From: e.id, To: dst.id, Tag: tag, Payload: payload, Obj: obj,
			Arrival: ctx.Now() + cfg.LocalDelay, size: size, seq: e.net.seq, local: true}
		dst.deliver(ctx, m)
		return 1
	}
	frags := 1
	if e.datagram && cfg.MTU > 0 && size > cfg.MTU {
		frags = (size + cfg.MTU - 1) / cfg.MTU
	}
	// Charge the sender: per-fragment overhead plus serialization.
	wireBytes := int64(size)
	if e.datagram {
		wireBytes += int64(frags * cfg.HeaderBytes)
	}
	sendCost := sim.Time(frags)*cfg.SendOverhead + cfg.transmit(int(wireBytes))
	if e.net.faultsOn {
		sendCost = scaleTime(sendCost, fc.slow(e.node))
	}
	ctx.Compute(sendCost)
	arrival := ctx.Now() + cfg.Latency

	e.net.seq++
	seq := e.net.seq

	// Wire accounting units: datagram endpoints count fragments and
	// header bytes; stream endpoints count one user-level send.
	wn, wb := int64(1), int64(size)
	if e.datagram {
		wn = int64(frags)
		wb = wireBytes
	}

	// Fault layer.  Each decision hashes (seed, seq, kind), so the
	// outcome is independent of engine mode and of every other message.
	delivered := true
	if e.net.faultsOn {
		if e.datagram {
			if fc.Jitter > 0 {
				arrival += sim.Time(fc.draw(seq, kJitter) * float64(fc.Jitter))
			}
			if fc.Reorder > 0 && fc.draw(seq, kReorder) < fc.Reorder {
				d := fc.ReorderDelay
				if d == 0 {
					d = 4 * cfg.Latency
				}
				arrival += d
			}
			if fc.severed(e.node, dst.node, ctx.Now()) ||
				(fc.Loss > 0 && fc.draw(seq, kLoss) < fc.Loss) {
				delivered = false
			}
			if delivered && fc.Dup > 0 && fc.draw(seq, kDup) < fc.Dup {
				// Duplicate delivery: a second copy a short, seeded delay
				// after the first, with its own seq for tie-breaking.
				dupArrival := arrival + 1 +
					sim.Time(fc.draw(seq, kDupDelay)*float64(cfg.Latency))
				e.net.seq++
				d := e.net.alloc()
				*d = Message{From: e.id, To: dst.id, Tag: tag, Payload: payload, Obj: obj,
					Arrival: dupArrival, size: size, seq: e.net.seq}
				dst.deliver(ctx, d)
				e.stats.Retrans += wn
				e.net.stats.Retrans += wn
			}
		} else {
			arrival = e.streamArrival(ctx, dst, seq, arrival)
		}
	}

	if delivered {
		m := e.net.alloc()
		*m = Message{From: e.id, To: dst.id, Tag: tag, Payload: payload, Obj: obj,
			Arrival: arrival, size: size, seq: seq}
		dst.deliver(ctx, m)
	}

	// Accounting: delivered first transmissions land in Messages/Bytes,
	// killed ones in Dropped, protocol retransmissions in Retrans (and
	// also Dropped when killed).  The columns are disjoint.
	switch {
	case !delivered:
		e.stats.Dropped += wn
		e.net.stats.Dropped += wn
		if retrans {
			e.stats.Retrans += wn
			e.net.stats.Retrans += wn
		}
	case retrans:
		e.stats.Retrans += wn
		e.net.stats.Retrans += wn
	default:
		e.stats.Messages += wn
		e.stats.Bytes += wb
		e.net.stats.Messages += wn
		e.net.stats.Bytes += wb
	}
	return frags
}

// streamArrival emulates a TCP-like ARQ for one stream send: loss and
// partition draws kill individual attempts, each retry backs off with a
// doubling timeout (capped at 64x the base RTO), and delivery is
// guaranteed within 64 attempts.  Deliveries on one directed link stay in
// send order (TCP is a byte stream), so a send never arrives before its
// predecessor.  The user sees only added delay — never loss, duplication
// or reordering.
func (e *Endpoint) streamArrival(ctx *sim.Ctx, dst *Endpoint, seq uint64, arrival sim.Time) sim.Time {
	cfg := &e.net.cfg
	fc := &cfg.Faults
	sent := ctx.Now()
	for attempt := uint64(0); attempt < 64; attempt++ {
		lost := fc.severed(e.node, dst.node, sent) ||
			(fc.Loss > 0 && fc.draw(seq, kStream+attempt) < fc.Loss)
		if !lost {
			arrival = sent + cfg.Latency
			break
		}
		e.stats.Dropped++
		e.net.stats.Dropped++
		shift := attempt
		if shift > 6 {
			shift = 6
		}
		sent += e.net.rto << shift
		e.stats.Retrans++
		e.net.stats.Retrans++
		arrival = sent + cfg.Latency // 64-attempt delivery guard
	}
	if fc.Jitter > 0 {
		arrival += sim.Time(fc.draw(seq, kJitter) * float64(fc.Jitter))
	}
	// In-order clamp per directed link.
	if e.arqLast == nil {
		e.arqLast = map[*Endpoint]sim.Time{}
	}
	if last := e.arqLast[dst]; arrival < last {
		arrival = last
	}
	e.arqLast[dst] = arrival
	return arrival
}

// deliver files m into its (from, tag) bucket and wakes the endpoint's
// waiter, if any.  The inbox mutation and the Notify run inside a Sync
// region (SyncLock/SyncUnlock — the closure-free form): the owner's
// receive condition reads this inbox when it registers a block, which in
// parallel mode may happen concurrently with a sender's gated step.
func (e *Endpoint) deliver(ctx *sim.Ctx, m *Message) {
	ctx.SyncLock()
	b := e.lastB
	if b == nil || e.lastKey[0] != m.From || e.lastKey[1] != m.Tag {
		key := [2]int{m.From, m.Tag}
		b = e.index[key]
		if b == nil {
			b = &bucket{from: m.From, tag: m.Tag}
			e.index[key] = b
			e.order = append(e.order, b)
		}
		e.lastKey, e.lastB = key, b
	}
	b.put(m)
	e.queued++
	e.wake.Notify()
	ctx.SyncUnlock()
}

// peek returns the earliest message matching (from, tag) and the bucket
// holding it, without consuming.  Negative from/tag are wildcards.  Exact
// filters cost one memoized map lookup; wildcard filters scan bucket
// heads only.
func (e *Endpoint) peek(from, tag int) (*bucket, *Message) {
	if from >= 0 && tag >= 0 {
		b := e.lastB
		if b == nil || e.lastKey[0] != from || e.lastKey[1] != tag {
			b = e.index[[2]int{from, tag}]
			if b == nil {
				return nil, nil
			}
			e.lastKey, e.lastB = [2]int{from, tag}, b
		}
		if b.empty() {
			return nil, nil
		}
		return b, b.peek()
	}
	var bb *bucket
	var best *Message
	for _, b := range e.order {
		if b.empty() || (from >= 0 && b.from != from) || (tag >= 0 && b.tag != tag) {
			continue
		}
		m := b.peek()
		if best == nil || m.Arrival < best.Arrival ||
			(m.Arrival == best.Arrival && m.seq < best.seq) {
			bb, best = b, m
		}
	}
	return bb, best
}

// take consumes the head of b.
func (e *Endpoint) take(b *bucket) *Message {
	e.queued--
	return b.pop()
}

// Recv blocks until a message matching (from, tag) arrives, consumes it,
// and charges the receiver's clock.  Negative from/tag are wildcards.
//
// The returned message is owned by the caller.  Once its Payload/Obj has
// been fully extracted, the caller should hand the struct back with Free
// — in the same step that received it — so the next send reuses it
// instead of allocating; a message never freed is merely garbage.
func (e *Endpoint) Recv(ctx *sim.Ctx, from, tag int) *Message {
	if e.wake.HasWaiter() {
		panic(fmt.Sprintf("vnet: concurrent Recv on endpoint %d (endpoints are single-consumer)", e.node))
	}
	e.wFrom, e.wTag, e.wArmed, e.wHasDL = from, tag, true, false
	ctx.WaitOnLazy(&e.wake, e.wWhat, e.wCond)
	// Consuming mutates the inbox: a shared operation.  The wake source
	// is Stable, so in parallel mode the receiver may have been released
	// speculatively before its serial turn — this gate is what delays the
	// consume until the commit token arrives (the engine re-verifies the
	// wake condition at the grant, before the gate returns).
	ctx.Gate()
	// Consume: disarm the wake filter first so it is never evaluated
	// against this Recv's (now dead) parameters.
	e.wArmed = false
	b, m := e.peek(from, tag)
	if m == nil {
		panic("vnet: woke with no matching message")
	}
	e.take(b)
	e.chargeRecv(ctx, m)
	return m
}

// RecvDeadline is Recv with a timeout: it blocks until a matching message
// arrives or the caller's clock reaches deadline, whichever is first, and
// returns nil on timeout.  The timer needs no engine support — the wake
// condition is always satisfiable (min of the earliest matching arrival
// and the deadline), and deadlines only ever resolve the condition
// earlier, preserving the engine's monotonic-wake invariant.  Protocol
// retransmit loops are built from this plus SendObjRetrans.
func (e *Endpoint) RecvDeadline(ctx *sim.Ctx, from, tag int, deadline sim.Time) *Message {
	if e.wake.HasWaiter() {
		panic(fmt.Sprintf("vnet: concurrent Recv on endpoint %d (endpoints are single-consumer)", e.node))
	}
	e.wFrom, e.wTag, e.wArmed = from, tag, true
	e.wDeadline, e.wHasDL = deadline, true
	ctx.WaitOnLazy(&e.wake, e.wWhat, e.wCond)
	ctx.Gate()
	e.wArmed, e.wHasDL = false, false
	b, m := e.peek(from, tag)
	if m == nil || m.Arrival > ctx.Now() {
		// Woken by the deadline, not a message.
		return nil
	}
	e.take(b)
	e.chargeRecv(ctx, m)
	return m
}

// TryRecv consumes a matching message that has already arrived (arrival
// time not after the caller's clock) without blocking.  Returns nil if no
// such message is present.  The ownership/Free contract matches Recv.
func (e *Endpoint) TryRecv(ctx *sim.Ctx, from, tag int) *Message {
	ctx.Gate() // inbox read+consume: shared operation
	b, m := e.peek(from, tag)
	if m == nil || m.Arrival > ctx.Now() {
		return nil
	}
	e.take(b)
	e.chargeRecv(ctx, m)
	return m
}

// Probe reports whether a matching message has arrived by the caller's
// clock, without consuming it.
func (e *Endpoint) Probe(ctx *sim.Ctx, from, tag int) bool {
	ctx.Gate() // inbox read: shared operation
	_, m := e.peek(from, tag)
	return m != nil && m.Arrival <= ctx.Now()
}

// Free returns a consumed message struct to the network's recycling
// pool.  Contract: the caller received m from Recv/TryRecv on this
// endpoint, has extracted everything it needs (the Payload slice and Obj
// remain valid — only the struct is recycled), calls Free at most once,
// and does so in the step that consumed the message.  Freeing is what
// makes steady-state sends allocation-free.
func (e *Endpoint) Free(ctx *sim.Ctx, m *Message) {
	ctx.Gate() // pool access: shared operation
	m.Payload, m.Obj = nil, nil
	e.net.pool = append(e.net.pool, m)
}

// Pending reports the number of queued messages (any arrival time).
// Fault injection never skews the count: a dropped message is simply
// never enqueued, and a duplicate counts only while its copy is queued —
// Pending always reflects exactly the live inbox.
func (e *Endpoint) Pending() int { return e.queued }

func (e *Endpoint) chargeRecv(ctx *sim.Ctx, m *Message) {
	cfg := &e.net.cfg
	var cost sim.Time
	if m.local {
		cost = cfg.LocalOverhead
	} else {
		frags := 1
		if e.datagram && cfg.MTU > 0 && m.size > cfg.MTU {
			frags = (m.size + cfg.MTU - 1) / cfg.MTU
		}
		cost = sim.Time(frags)*cfg.RecvOverhead + sim.Time(m.size)*cfg.RecvPerByte
	}
	if e.net.faultsOn {
		cost = scaleTime(cost, cfg.Faults.slow(e.node))
	}
	ctx.Compute(cost)
}
