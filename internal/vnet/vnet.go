// Package vnet models the interconnect of a 1995-era workstation cluster:
// a 100 Mbit/s FDDI ring carrying UDP datagrams (used by TreadMarks) and
// direct TCP connections (used by PVM).
//
// The model is a LogP-style cost model layered on the sim engine:
//
//   - the sender's clock advances by SendOverhead plus the transmit
//     serialization time (bytes at the link bandwidth) per fragment;
//   - the message arrives Latency after it has been fully transmitted;
//   - the receiver's clock advances by RecvOverhead plus a per-byte copy
//     cost when it consumes the message.
//
// Datagram (UDP) endpoints fragment payloads larger than the MTU and count
// every fragment as a wire message, reproducing the accounting the paper
// uses for TreadMarks ("total number of UDP messages and total amount of
// data").  Stream (TCP) endpoints count one message per user send with no
// header bytes, matching the paper's user-level accounting for PVM.
package vnet

import (
	"fmt"

	"repro/internal/sim"
)

// Config holds the network cost model.
type Config struct {
	SendOverhead sim.Time // per-fragment CPU cost at the sender
	RecvOverhead sim.Time // per-fragment CPU cost at the receiver
	Latency      sim.Time // wire latency after full transmission
	BytesPerSec  int64    // link bandwidth
	RecvPerByte  sim.Time // per-byte copy cost at the receiver
	MTU          int      // datagram fragmentation threshold (payload bytes)
	HeaderBytes  int      // per-fragment wire header (datagram endpoints)

	// Same-node delivery (e.g. a process messaging its own protocol
	// daemon) goes through loopback: cheap, and never counted as wire
	// traffic.
	LocalOverhead sim.Time
	LocalDelay    sim.Time
}

// FDDI returns the default cost model: 100 Mbit/s FDDI with early-1990s
// kernel UDP/TCP stacks.  A minimal one-way message costs roughly 300 µs
// and a 4 KB page transfer roughly 700 µs, consistent with the ~1-2 ms
// page-fault round trips reported for TreadMarks on this class of hardware.
func FDDI() Config {
	return Config{
		SendOverhead: 120 * sim.Microsecond,
		RecvOverhead: 120 * sim.Microsecond,
		Latency:      60 * sim.Microsecond,
		BytesPerSec:  100 * 1000 * 1000 / 8, // 100 Mbit/s
		RecvPerByte:  8 * sim.Nanosecond,
		MTU:          16 * 1024,
		HeaderBytes:  40, // IP + UDP + protocol header

		LocalOverhead: 15 * sim.Microsecond,
		LocalDelay:    5 * sim.Microsecond,
	}
}

// transmit returns the serialization time for n bytes.
func (c Config) transmit(n int) sim.Time {
	if c.BytesPerSec <= 0 {
		return 0
	}
	return sim.Time(int64(n) * int64(sim.Second) / c.BytesPerSec)
}

// Message is a delivered payload plus metadata.
type Message struct {
	From    int
	To      int
	Tag     int
	Payload []byte
	Arrival sim.Time
	seq     uint64
	local   bool // loopback delivery: cheap receive, no wire accounting
}

// Stats counts traffic through one accounting domain.
type Stats struct {
	Messages int64
	Bytes    int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Messages += other.Messages
	s.Bytes += other.Bytes
}

// Kilobytes reports Bytes in units of 1000 bytes (the paper's "Kilobytes").
func (s Stats) Kilobytes() float64 { return float64(s.Bytes) / 1000 }

// Network is a cluster interconnect shared by a set of endpoints.
type Network struct {
	cfg   Config
	seq   uint64
	stats Stats // wire-level totals across all endpoints
}

// New creates a network with the given cost model.
func New(cfg Config) *Network {
	return &Network{cfg: cfg}
}

// Config returns the network's cost model.
func (n *Network) Config() Config { return n.cfg }

// WireStats returns wire-level totals (all endpoints, fragments counted).
func (n *Network) WireStats() Stats { return n.stats }

// Endpoint is one node's attachment point.  An endpoint is single-owner:
// exactly one sim proc consumes from it (others may send to it).
type Endpoint struct {
	net      *Network
	node     int
	inbox    []*Message
	datagram bool // true: UDP accounting (fragments, headers)
	stats    Stats

	// Scheduler integration: the owner blocks in Recv against wake, and
	// every Send into this inbox notifies it, so only this endpoint's
	// waiter is re-polled when a message arrives.  The condition closure
	// is allocated once and parameterized through wFrom/wTag (safe: the
	// endpoint has a single consumer).
	wake        sim.Source
	wFrom, wTag int
	wCond       sim.Cond
	wWhat       func() string
}

// NewEndpoint attaches node to the network.  datagram selects UDP
// accounting (fragmentation, per-fragment headers); otherwise the endpoint
// behaves like a direct TCP connection (one message per send).
func (n *Network) NewEndpoint(node int, datagram bool) *Endpoint {
	e := &Endpoint{net: n, node: node, datagram: datagram}
	e.wCond = func() (sim.Time, bool) {
		i := e.earliest(e.wFrom, e.wTag)
		if i < 0 {
			return 0, false
		}
		return e.inbox[i].Arrival, true
	}
	e.wWhat = func() string {
		return fmt.Sprintf("recv(node=%d from=%d tag=%d)", e.node, e.wFrom, e.wTag)
	}
	return e
}

// Node returns the endpoint's node id.
func (e *Endpoint) Node() int { return e.node }

// Stats returns the endpoint's accounting totals (its sends only).
func (e *Endpoint) Stats() Stats { return e.stats }

// Send transmits payload to dst with the given tag, charging the sender's
// clock and scheduling arrival.  The payload is not copied; callers must
// not mutate it after sending.  Returns the number of wire messages.
func (e *Endpoint) Send(ctx *sim.Ctx, dst *Endpoint, tag int, payload []byte) int {
	if dst == nil {
		panic("vnet: send to nil endpoint")
	}
	cfg := e.net.cfg
	if dst.node == e.node {
		// Loopback: a process talking to another process (or daemon) on
		// its own node.  No wire traffic, no accounting.
		ctx.Compute(cfg.LocalOverhead)
		e.net.seq++
		m := &Message{From: e.node, To: dst.node, Tag: tag, Payload: payload,
			Arrival: ctx.Now() + cfg.LocalDelay, seq: e.net.seq, local: true}
		dst.inbox = append(dst.inbox, m)
		dst.wake.Notify()
		return 1
	}
	frags := 1
	if e.datagram && cfg.MTU > 0 && len(payload) > cfg.MTU {
		frags = (len(payload) + cfg.MTU - 1) / cfg.MTU
	}
	// Charge the sender: per-fragment overhead plus serialization.
	wireBytes := int64(len(payload))
	if e.datagram {
		wireBytes += int64(frags * cfg.HeaderBytes)
	}
	ctx.Compute(sim.Time(frags)*cfg.SendOverhead + cfg.transmit(int(wireBytes)))
	arrival := ctx.Now() + cfg.Latency

	e.net.seq++
	m := &Message{From: e.node, To: dst.node, Tag: tag, Payload: payload, Arrival: arrival, seq: e.net.seq}
	dst.inbox = append(dst.inbox, m)
	dst.wake.Notify()

	// Accounting.
	if e.datagram {
		e.stats.Messages += int64(frags)
		e.stats.Bytes += wireBytes
		e.net.stats.Messages += int64(frags)
		e.net.stats.Bytes += wireBytes
	} else {
		e.stats.Messages++
		e.stats.Bytes += int64(len(payload))
		e.net.stats.Messages++
		e.net.stats.Bytes += int64(len(payload))
	}
	return frags
}

// match reports whether m satisfies the (from, tag) filter; negative
// values are wildcards.
func match(m *Message, from, tag int) bool {
	return (from < 0 || m.From == from) && (tag < 0 || m.Tag == tag)
}

// earliest returns the index of the earliest matching message, or -1.
func (e *Endpoint) earliest(from, tag int) int {
	best := -1
	for i, m := range e.inbox {
		if !match(m, from, tag) {
			continue
		}
		if best < 0 || m.Arrival < e.inbox[best].Arrival ||
			(m.Arrival == e.inbox[best].Arrival && m.seq < e.inbox[best].seq) {
			best = i
		}
	}
	return best
}

// Recv blocks until a message matching (from, tag) arrives, consumes it,
// and charges the receiver's clock.  Negative from/tag are wildcards.
func (e *Endpoint) Recv(ctx *sim.Ctx, from, tag int) *Message {
	if e.wake.HasWaiter() {
		panic(fmt.Sprintf("vnet: concurrent Recv on endpoint %d (endpoints are single-consumer)", e.node))
	}
	e.wFrom, e.wTag = from, tag
	ctx.WaitOnLazy(&e.wake, e.wWhat, e.wCond)
	i := e.earliest(from, tag)
	if i < 0 {
		panic("vnet: woke with no matching message")
	}
	m := e.inbox[i]
	e.inbox = append(e.inbox[:i], e.inbox[i+1:]...)
	e.chargeRecv(ctx, m)
	return m
}

// TryRecv consumes a matching message that has already arrived (arrival
// time not after the caller's clock) without blocking.  Returns nil if no
// such message is present.
func (e *Endpoint) TryRecv(ctx *sim.Ctx, from, tag int) *Message {
	i := e.earliest(from, tag)
	if i < 0 || e.inbox[i].Arrival > ctx.Now() {
		return nil
	}
	m := e.inbox[i]
	e.inbox = append(e.inbox[:i], e.inbox[i+1:]...)
	e.chargeRecv(ctx, m)
	return m
}

// Probe reports whether a matching message has arrived by the caller's
// clock, without consuming it.
func (e *Endpoint) Probe(ctx *sim.Ctx, from, tag int) bool {
	i := e.earliest(from, tag)
	return i >= 0 && e.inbox[i].Arrival <= ctx.Now()
}

// Pending reports the number of queued messages (any arrival time).
func (e *Endpoint) Pending() int { return len(e.inbox) }

func (e *Endpoint) chargeRecv(ctx *sim.Ctx, m *Message) {
	cfg := e.net.cfg
	if m.local {
		ctx.Compute(cfg.LocalOverhead)
		return
	}
	frags := 1
	if e.datagram && cfg.MTU > 0 && len(m.Payload) > cfg.MTU {
		frags = (len(m.Payload) + cfg.MTU - 1) / cfg.MTU
	}
	ctx.Compute(sim.Time(frags)*cfg.RecvOverhead + sim.Time(len(m.Payload))*cfg.RecvPerByte)
}
