package vnet

import "repro/internal/sim"

// Fault injection.
//
// The fault layer perturbs wire traffic between distinct nodes: loss,
// duplication, reordering, latency jitter, mid-run partitions that heal
// at a virtual time, and per-node slowdown.  Loopback delivery (same
// node) is never faulted — a host does not lose messages to itself.
//
// # Determinism contract
//
// Every fault decision is a pure function of (Seed, message identity,
// decision kind): the per-send sequence number assigned inside the
// engine's gated section is hashed with a splitmix64 mixer, so the same
// scenario produces bit-identical fault patterns in all execution modes
// (serial engine, parallel engine, grid worker pool) — there is no
// draw-order-dependent PRNG stream to perturb.
//
// # Accounting contract
//
// Fault outcomes never leak into the paper's Messages/Bytes columns;
// they land in Stats.Dropped and Stats.Retrans instead:
//
//   - a datagram transmission killed by loss or a partition counts in
//     Dropped (per fragment), not Messages/Bytes;
//   - a duplicated datagram's extra delivery counts in Retrans;
//   - a protocol retransmission (SendObjRetrans) counts in Retrans,
//     whether it is delivered or killed (a killed one also counts in
//     Dropped);
//   - a stream send always counts once in Messages/Bytes (the paper's
//     user-level TCP accounting); the emulated ARQ's lost attempts
//     count in Dropped and its retries in Retrans.
//
// Offered wire load is therefore Messages + Retrans, and the delivered
// fraction of it degrades exactly with the configured fault rates.
type FaultConfig struct {
	// Seed keys the deterministic fault PRNG.  Two runs of the same
	// scenario with the same seed see identical fault patterns.
	Seed uint64

	Loss    float64  // per-wire-message loss probability, [0, 1)
	Dup     float64  // per-wire-message duplication probability, [0, 1)
	Reorder float64  // probability a datagram is held back by ReorderDelay
	Jitter  sim.Time // extra uniform [0, Jitter) delivery delay

	// ReorderDelay is how long a reordered datagram is held back.
	// Zero selects 4x the configured wire latency.
	ReorderDelay sim.Time

	// RTO is the base retransmit timeout of the emulated TCP ARQ on
	// stream endpoints; it doubles per retry up to 64x.  Zero derives a
	// default from the network cost model (see Network.New).
	RTO sim.Time

	// Slowdown scales the per-node CPU costs the network model charges
	// (send/receive/loopback overheads), indexed by node.  Entries at or
	// below 1 (and nodes past the end) run at full speed.
	Slowdown []float64

	// Partitions are network splits active over half-open virtual-time
	// windows.  While a partition is active, traffic between its Nodes
	// group and the rest of the cluster is severed: datagrams are
	// dropped, stream (TCP) deliveries stall until the partition heals.
	Partitions []Partition
}

// Partition severs the Nodes group from all other nodes during
// [Start, Heal).  Traffic within the group, and among the outside
// nodes, is unaffected.
type Partition struct {
	Start sim.Time
	Heal  sim.Time
	Nodes []int
}

// covers reports whether the partition is active at t.
func (p *Partition) covers(t sim.Time) bool { return t >= p.Start && t < p.Heal }

// isolates reports whether node is in the partition's severed group.
func (p *Partition) isolates(node int) bool {
	for _, n := range p.Nodes {
		if n == node {
			return true
		}
	}
	return false
}

// Enabled reports whether any fault knob is set; the fault path in xmit
// is skipped entirely (and zero-fault runs stay byte-identical to a
// fault-free build) when it is false.
func (f *FaultConfig) Enabled() bool {
	return f.Loss > 0 || f.Dup > 0 || f.Reorder > 0 || f.Jitter > 0 ||
		len(f.Partitions) > 0 || len(f.Slowdown) > 0
}

// Lossy reports whether messages can be lost, duplicated or delayed past
// protocol timeouts — the condition under which transport users must arm
// their reliability machinery (sequence numbers, timeout/retransmit,
// duplicate suppression).  Pure slowdown or jitter is not lossy.
func (f *FaultConfig) Lossy() bool {
	return f.Loss > 0 || f.Dup > 0 || f.Reorder > 0 || len(f.Partitions) > 0
}

// severed reports whether an active partition separates nodes a and b
// at time t.
func (f *FaultConfig) severed(a, b int, t sim.Time) bool {
	for i := range f.Partitions {
		p := &f.Partitions[i]
		if p.covers(t) && p.isolates(a) != p.isolates(b) {
			return true
		}
	}
	return false
}

// slow returns the CPU slowdown factor of node (>= 1).
func (f *FaultConfig) slow(node int) float64 {
	if node < 0 || node >= len(f.Slowdown) {
		return 1
	}
	if s := f.Slowdown[node]; s > 1 {
		return s
	}
	return 1
}

// Decision kinds: distinct sub-streams of the per-message hash, so one
// message's loss, duplication, reorder and jitter draws are independent.
const (
	kLoss uint64 = iota + 1
	kDup
	kReorder
	kJitter
	kDupDelay
	// kStream + attempt draws the per-attempt loss of the stream ARQ.
	kStream uint64 = 16
)

// splitmix64 is the finalizing mixer of the splitmix64 generator: a
// bijective avalanche over 64 bits, used here as a stateless hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns a uniform [0, 1) variate for (message seq, decision kind),
// keyed by the scenario seed.
func (f *FaultConfig) draw(seq, kind uint64) float64 {
	h := splitmix64(splitmix64(f.Seed^seq) + kind)
	return float64(h>>11) / (1 << 53)
}

// scaleTime applies a slowdown factor to a modeled duration.
func scaleTime(t sim.Time, factor float64) sim.Time {
	if factor == 1 {
		return t
	}
	return sim.Time(float64(t) * factor)
}
