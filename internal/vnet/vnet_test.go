package vnet

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// testConfig is a round-number model for predictable arithmetic:
// 10 bytes/µs bandwidth, 100 µs overheads, 50 µs latency, 1000 B MTU.
func testConfig() Config {
	return Config{
		SendOverhead: 100 * sim.Microsecond,
		RecvOverhead: 100 * sim.Microsecond,
		Latency:      50 * sim.Microsecond,
		BytesPerSec:  10 * 1000 * 1000,
		RecvPerByte:  0,
		MTU:          1000,
		HeaderBytes:  40,
	}
}

func TestPointToPointTiming(t *testing.T) {
	n := New(testConfig())
	e := sim.NewEngine()
	a := n.NewEndpoint(0, false)
	b := n.NewEndpoint(1, false)
	var recvAt sim.Time
	e.Spawn("a", false, func(c *sim.Ctx) {
		a.Send(c, b, 7, make([]byte, 1000))
		// sender: 100µs overhead + 1000B / 10B/µs = 100µs transmit = 200µs
		if c.Now() != 200*sim.Microsecond {
			t.Errorf("sender clock = %v, want 200µs", c.Now())
		}
	})
	e.Spawn("b", false, func(c *sim.Ctx) {
		m := b.Recv(c, -1, 7)
		recvAt = c.Now()
		if len(m.Payload) != 1000 {
			t.Errorf("payload = %d bytes", len(m.Payload))
		}
		if m.From != 0 || m.To != 1 || m.Tag != 7 {
			t.Errorf("metadata = %+v", m)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// arrival 250µs + 100µs recv overhead = 350µs
	if recvAt != 350*sim.Microsecond {
		t.Fatalf("receiver clock = %v, want 350µs", recvAt)
	}
}

func TestDatagramFragmentAccounting(t *testing.T) {
	n := New(testConfig())
	e := sim.NewEngine()
	a := n.NewEndpoint(0, true)
	b := n.NewEndpoint(1, true)
	e.Spawn("a", false, func(c *sim.Ctx) {
		frags := a.Send(c, b, 1, make([]byte, 2500)) // 3 fragments at MTU 1000
		if frags != 3 {
			t.Errorf("frags = %d, want 3", frags)
		}
	})
	e.Spawn("b", false, func(c *sim.Ctx) {
		b.Recv(c, 0, 1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Messages != 3 {
		t.Fatalf("messages = %d, want 3", st.Messages)
	}
	if st.Bytes != 2500+3*40 {
		t.Fatalf("bytes = %d, want %d", st.Bytes, 2500+3*40)
	}
	if n.WireStats() != st {
		t.Fatalf("wire stats %+v != endpoint stats %+v", n.WireStats(), st)
	}
}

func TestStreamAccountingIsUserLevel(t *testing.T) {
	n := New(testConfig())
	e := sim.NewEngine()
	a := n.NewEndpoint(0, false)
	b := n.NewEndpoint(1, false)
	e.Spawn("a", false, func(c *sim.Ctx) {
		a.Send(c, b, 1, make([]byte, 2500)) // no fragmentation counting
	})
	e.Spawn("b", false, func(c *sim.Ctx) {
		b.Recv(c, -1, -1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Messages != 1 || st.Bytes != 2500 {
		t.Fatalf("stats = %+v, want 1 msg / 2500 B", st)
	}
}

func TestRecvFiltersByFromAndTag(t *testing.T) {
	n := New(testConfig())
	e := sim.NewEngine()
	a := n.NewEndpoint(0, false)
	b := n.NewEndpoint(1, false)
	c2 := n.NewEndpoint(2, false)
	e.Spawn("a", false, func(c *sim.Ctx) {
		a.Send(c, c2, 5, []byte("from-a"))
	})
	e.Spawn("b", false, func(c *sim.Ctx) {
		c.Compute(10 * sim.Microsecond)
		b.Send(c, c2, 5, []byte("from-b"))
		b.Send(c, c2, 9, []byte("tag-9"))
	})
	e.Spawn("c", false, func(c *sim.Ctx) {
		m := c2.Recv(c, 1, 9)
		if string(m.Payload) != "tag-9" {
			t.Errorf("got %q", m.Payload)
		}
		m = c2.Recv(c, 1, -1)
		if string(m.Payload) != "from-b" {
			t.Errorf("got %q", m.Payload)
		}
		m = c2.Recv(c, -1, 5)
		if string(m.Payload) != "from-a" {
			t.Errorf("got %q", m.Payload)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRecvTakesEarliestArrival: even if a later-arriving matching message
// was enqueued first, Recv must return the earliest arrival.
func TestRecvTakesEarliestArrival(t *testing.T) {
	n := New(testConfig())
	e := sim.NewEngine()
	a := n.NewEndpoint(0, false)
	b := n.NewEndpoint(1, false)
	dst := n.NewEndpoint(2, false)
	e.Spawn("a", false, func(c *sim.Ctx) {
		c.Compute(1000 * sim.Microsecond) // a sends late but runs first
		a.Send(c, dst, 1, []byte("late"))
	})
	e.Spawn("b", false, func(c *sim.Ctx) {
		c.Compute(100 * sim.Microsecond)
		b.Send(c, dst, 1, []byte("early"))
	})
	e.Spawn("dst", false, func(c *sim.Ctx) {
		if m := dst.Recv(c, -1, 1); string(m.Payload) != "early" {
			t.Errorf("first = %q, want early", m.Payload)
		}
		if m := dst.Recv(c, -1, 1); string(m.Payload) != "late" {
			t.Errorf("second = %q, want late", m.Payload)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTryRecvAndProbe(t *testing.T) {
	n := New(testConfig())
	e := sim.NewEngine()
	a := n.NewEndpoint(0, false)
	b := n.NewEndpoint(1, false)
	e.Spawn("a", false, func(c *sim.Ctx) {
		a.Send(c, b, 3, []byte("x"))
	})
	e.Spawn("b", false, func(c *sim.Ctx) {
		// Nothing has arrived at clock 0.
		if m := b.TryRecv(c, -1, 3); m != nil {
			t.Errorf("TryRecv before arrival returned %v", m)
		}
		if b.Probe(c, -1, 3) {
			t.Error("Probe before arrival")
		}
		c.Compute(sim.Second) // far past arrival
		c.Yield()
		if !b.Probe(c, -1, 3) {
			t.Error("Probe after arrival should succeed")
		}
		if m := b.TryRecv(c, -1, 3); m == nil || string(m.Payload) != "x" {
			t.Errorf("TryRecv after arrival = %v", m)
		}
		if b.Pending() != 0 {
			t.Errorf("pending = %d", b.Pending())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFDDIDefaultsSane(t *testing.T) {
	cfg := FDDI()
	if cfg.BytesPerSec != 12500000 {
		t.Fatalf("bandwidth = %d, want 12.5 MB/s", cfg.BytesPerSec)
	}
	// One-way small message: 120 + ~0 + 60 + 120 ≈ 300 µs.
	oneWay := cfg.SendOverhead + cfg.Latency + cfg.RecvOverhead
	if oneWay < 250*sim.Microsecond || oneWay > 400*sim.Microsecond {
		t.Fatalf("one-way small-message cost = %v, want ~300µs", oneWay)
	}
	// 4 KB transfer adds ~330 µs of serialization.
	if tx := cfg.transmit(4096); tx < 300*sim.Microsecond || tx > 400*sim.Microsecond {
		t.Fatalf("4KB transmit = %v", tx)
	}
}

func TestZeroBandwidthMeansFreeTransmit(t *testing.T) {
	cfg := testConfig()
	cfg.BytesPerSec = 0
	if cfg.transmit(1<<20) != 0 {
		t.Fatal("transmit should be free with zero bandwidth")
	}
}

func TestLoopbackIsFreeAndUncounted(t *testing.T) {
	cfg := testConfig()
	cfg.LocalOverhead = 10 * sim.Microsecond
	cfg.LocalDelay = 5 * sim.Microsecond
	n := New(cfg)
	e := sim.NewEngine()
	app := n.NewEndpoint(3, true)
	srv := n.NewEndpoint(3, true) // same node: loopback
	e.Spawn("app", false, func(c *sim.Ctx) {
		app.Send(c, srv, 1, make([]byte, 5000))
		if c.Now() != 10*sim.Microsecond {
			t.Errorf("local send cost = %v, want 10µs", c.Now())
		}
	})
	var recvAt sim.Time
	e.Spawn("srv", false, func(c *sim.Ctx) {
		srv.Recv(c, -1, -1)
		recvAt = c.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.WireStats().Messages != 0 || n.WireStats().Bytes != 0 {
		t.Fatalf("loopback counted on wire: %+v", n.WireStats())
	}
	// arrival 15µs + 10µs local recv overhead
	if recvAt != 25*sim.Microsecond {
		t.Fatalf("recv at %v, want 25µs", recvAt)
	}
}

// TestFIFOPerPair: messages between one (src,dst) pair arrive in send
// order when latencies are uniform.
func TestFIFOPerPair(t *testing.T) {
	n := New(testConfig())
	e := sim.NewEngine()
	a := n.NewEndpoint(0, false)
	b := n.NewEndpoint(1, false)
	const k = 20
	e.Spawn("a", false, func(c *sim.Ctx) {
		for i := 0; i < k; i++ {
			a.Send(c, b, 1, []byte{byte(i)})
		}
	})
	e.Spawn("b", false, func(c *sim.Ctx) {
		for i := 0; i < k; i++ {
			m := b.Recv(c, 0, 1)
			if m.Payload[0] != byte(i) {
				t.Fatalf("got %d, want %d", m.Payload[0], i)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestReusedEndpointFilterReset: a Recv's (from, tag) filter must die with
// the Recv.  The regression scenario: an endpoint is reused for a sequence
// of differently-filtered Recvs while senders keep delivering between
// them; a stale filter from a finished Recv must never satisfy the wake
// predicate or leak into a later receive.
func TestReusedEndpointFilterReset(t *testing.T) {
	n := New(testConfig())
	e := sim.NewEngine()
	a := n.NewEndpoint(0, false)
	b := n.NewEndpoint(1, false)
	dst := n.NewEndpoint(2, false)
	e.Spawn("a", false, func(c *sim.Ctx) {
		a.Send(c, dst, 1, []byte("a1"))
		c.Compute(500 * sim.Microsecond)
		// Delivered while dst sits between Recvs (no waiter armed); the
		// notify must be a no-op, not an evaluation of the dead (0, 1)
		// filter from dst's first Recv.
		a.Send(c, dst, 2, []byte("a2"))
		c.Compute(2000 * sim.Microsecond)
		a.Send(c, dst, 1, []byte("a3"))
	})
	e.Spawn("b", false, func(c *sim.Ctx) {
		c.Compute(100 * sim.Microsecond)
		b.Send(c, dst, 2, []byte("b1"))
	})
	e.Spawn("dst", false, func(c *sim.Ctx) {
		if m := dst.Recv(c, 0, 1); string(m.Payload) != "a1" {
			t.Errorf("recv 1 = %q, want a1", m.Payload)
		}
		c.Compute(1500 * sim.Microsecond) // a2 and b1 arrive while idle
		if m := dst.Recv(c, 1, -1); string(m.Payload) != "b1" {
			t.Errorf("recv 2 = %q, want b1", m.Payload)
		}
		if m := dst.Recv(c, -1, 2); string(m.Payload) != "a2" {
			t.Errorf("recv 3 = %q, want a2", m.Payload)
		}
		// Wildcard Recv must block for a3 (nothing else queued), not trip
		// over leftover filter state.
		if m := dst.Recv(c, -1, -1); string(m.Payload) != "a3" {
			t.Errorf("recv 4 = %q, want a3", m.Payload)
		}
		if dst.Pending() != 0 {
			t.Errorf("pending = %d, want 0", dst.Pending())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDeepInboxSelection: with many messages queued from many senders
// across several tags, filtered and wildcard receives must still pick the
// earliest (Arrival, seq) match.
func TestDeepInboxSelection(t *testing.T) {
	n := New(testConfig())
	e := sim.NewEngine()
	const senders = 8
	dst := n.NewEndpoint(senders, false)
	for i := 0; i < senders; i++ {
		id := i
		ep := n.NewEndpoint(id, false)
		e.Spawn(fmt.Sprintf("s%d", id), false, func(c *sim.Ctx) {
			// Stagger so arrival order is the reverse of spawn order.
			c.Compute(sim.Time(senders-id) * 10 * sim.Microsecond)
			ep.Send(c, dst, id%3, []byte{byte(id)})
			ep.Send(c, dst, 5, []byte{byte(100 + id)})
		})
	}
	e.Spawn("dst", false, func(c *sim.Ctx) {
		c.Compute(sim.Second)
		c.Yield()
		if dst.Pending() != 2*senders {
			t.Fatalf("pending = %d, want %d", dst.Pending(), 2*senders)
		}
		// Earliest tag-5 message is from the latest-spawned sender.
		if m := dst.Recv(c, -1, 5); m.Payload[0] != 100+senders-1 {
			t.Errorf("tag-5 = %d, want %d", m.Payload[0], 100+senders-1)
		}
		// Exact filter digs out one pair regardless of queue depth.
		if m := dst.Recv(c, 3, 0); m.Payload[0] != 3 {
			t.Errorf("(3,0) = %d, want 3", m.Payload[0])
		}
		// Wildcard drains the rest in global (Arrival, seq) order.
		last := struct {
			at  sim.Time
			seq uint64
		}{}
		for dst.Pending() > 0 {
			m := dst.TryRecv(c, -1, -1)
			if m == nil {
				t.Fatal("TryRecv returned nil with messages pending")
			}
			if m.Arrival < last.at || (m.Arrival == last.at && m.seq < last.seq) {
				t.Fatalf("out of order: %v/%d after %v/%d", m.Arrival, m.seq, last.at, last.seq)
			}
			last.at, last.seq = m.Arrival, m.seq
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsAdd exercises the accumulator arithmetic.
func TestStatsAdd(t *testing.T) {
	a := Stats{Messages: 3, Bytes: 1000}
	a.Add(Stats{Messages: 2, Bytes: 500})
	if a.Messages != 5 || a.Bytes != 1500 {
		t.Fatalf("add = %+v", a)
	}
	if a.Kilobytes() != 1.5 {
		t.Fatalf("KB = %v", a.Kilobytes())
	}
}

// TestMessageFreeListReuse pins the consume contract: a freed message
// struct is recycled by the next send, payload and object references
// survive the free, and the pool never hands out a struct with stale
// fields.
func TestMessageFreeListReuse(t *testing.T) {
	n := New(FDDI())
	e := sim.NewEngine()
	a := n.NewEndpoint(0, true)
	b := n.NewEndpoint(1, true)
	e.Spawn("pair", false, func(c *sim.Ctx) {
		payload := []byte{1, 2, 3}
		a.Send(c, b, 7, payload)
		c.Compute(sim.Second)
		m1 := b.TryRecv(c, 0, 7)
		if m1 == nil || &m1.Payload[0] != &payload[0] {
			t.Error("first receive lost its payload")
			return
		}
		keep := m1.Payload
		b.Free(c, m1)
		if m1.Payload != nil || m1.Obj != nil {
			t.Error("Free must clear the struct's references")
		}
		// The freed struct must back the next send...
		obj := &struct{ x int }{42}
		a.SendObj(c, b, 8, obj, 100)
		c.Compute(sim.Second)
		m2 := b.TryRecv(c, 0, 8)
		if m2 != m1 {
			t.Error("pool did not recycle the freed message struct")
		}
		if m2 == nil || m2.Obj != obj || m2.Tag != 8 || m2.Payload != nil {
			t.Errorf("recycled message carries stale fields: %+v", m2)
		}
		// ...while the earlier payload stays untouched.
		if keep[0] != 1 || keep[1] != 2 || keep[2] != 3 {
			t.Error("payload mutated by recycling")
		}
		b.Free(c, m2)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSteadyStateSendAllocFree: with the consume contract followed, a
// send/receive/free cycle in steady state allocates no message structs.
func TestSteadyStateSendAllocFree(t *testing.T) {
	n := New(FDDI())
	e := sim.NewEngine()
	a := n.NewEndpoint(0, true)
	b := n.NewEndpoint(1, true)
	payload := make([]byte, 64)
	var misses int
	e.Spawn("cycle", false, func(c *sim.Ctx) {
		// Warm the pool with round 0, then require every later round to
		// cycle the very same struct: a fresh pointer means the send
		// missed the pool and allocated.
		var reused *Message
		for i := 0; i < 100; i++ {
			a.Send(c, b, 1, payload)
			c.Compute(sim.Second)
			m := b.TryRecv(c, 0, 1)
			if m == nil {
				t.Error("lost message")
				return
			}
			if i == 0 {
				reused = m
			} else if m != reused {
				misses++
			}
			b.Free(c, m)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if misses != 0 {
		t.Errorf("steady-state cycle missed the pool %d times", misses)
	}
}
