package vnet

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// BenchmarkEngine measures the scheduler's per-message cost with a token
// circulating around a ring of procs, all blocked in Recv except the
// holder.  One benchmark iteration is one full circulation (procs hops);
// the hop/op metric is the per-scheduling-step cost.  Larger rings expose
// how the engine's step cost scales with the number of blocked procs.
func BenchmarkEngine(b *testing.B) {
	for _, procs := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			n := New(FDDI())
			e := sim.NewEngine()
			eps := make([]*Endpoint, procs)
			for i := range eps {
				eps[i] = n.NewEndpoint(i, true)
			}
			payload := make([]byte, 64)
			k := b.N
			for i := 0; i < procs; i++ {
				id := i
				e.Spawn(fmt.Sprintf("p%d", id), false, func(c *sim.Ctx) {
					prev := (id + procs - 1) % procs
					next := (id + 1) % procs
					if id == 0 {
						eps[0].Send(c, eps[next], 1, payload)
					}
					for r := 0; r < k; r++ {
						eps[id].Recv(c, prev, 1)
						if id == 0 && r == k-1 {
							break // final hop: stop the token
						}
						eps[id].Send(c, eps[next], 1, payload)
					}
				})
			}
			b.ResetTimer()
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*procs), "ns/hop")
		})
	}
}
