package vnet

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/sim"
)

// BenchmarkEngine measures the scheduler's per-message cost with a token
// circulating around a ring of procs, all blocked in Recv except the
// holder.  One benchmark iteration is one full circulation (procs hops);
// the hop/op metric is the per-scheduling-step cost.  Larger rings expose
// how the engine's step cost scales with the number of blocked procs.
func BenchmarkEngine(b *testing.B) {
	for _, procs := range []int{2, 8, 32, 64, 256} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			n := New(FDDI())
			e := sim.NewEngine()
			eps := make([]*Endpoint, procs)
			for i := range eps {
				eps[i] = n.NewEndpoint(i, true)
			}
			payload := make([]byte, 64)
			k := b.N
			for i := 0; i < procs; i++ {
				id := i
				e.Spawn(fmt.Sprintf("p%d", id), false, func(c *sim.Ctx) {
					prev := (id + procs - 1) % procs
					next := (id + 1) % procs
					if id == 0 {
						eps[0].Send(c, eps[next], 1, payload)
					}
					for r := 0; r < k; r++ {
						eps[id].Recv(c, prev, 1)
						if id == 0 && r == k-1 {
							break // final hop: stop the token
						}
						eps[id].Send(c, eps[next], 1, payload)
					}
				})
			}
			// Level the collector before timing: the ring retains every
			// message until the engine is discarded, so without this the
			// garbage inherited from earlier subbenchmarks skews GC pacing
			// run-to-run.
			runtime.GC()
			b.ResetTimer()
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*procs), "ns/hop")
		})
	}
}

// BenchmarkInboxDepth measures receive cost against a deep inbox: depth
// background messages stay queued at the endpoint while the hot pair
// sends and consumes b.N times.  "exact" filters by (from, tag) — the
// fault-path pattern — and must be O(1) in depth; "wildcard" consumes
// from a single backlogged stream with (-1, -1) — the service-daemon
// pattern — and must scan bucket heads, not queued messages.
func BenchmarkInboxDepth(b *testing.B) {
	for _, depth := range []int{0, 64, 1024} {
		b.Run(fmt.Sprintf("exact/depth=%d", depth), func(b *testing.B) {
			n := New(FDDI())
			e := sim.NewEngine()
			dst := n.NewEndpoint(0, true)
			hot := n.NewEndpoint(1, true)
			fill := make([]*Endpoint, depth)
			for i := range fill {
				fill[i] = n.NewEndpoint(2+i, true)
			}
			payload := make([]byte, 32)
			k := b.N
			miss := false
			e.Spawn("bench", false, func(c *sim.Ctx) {
				for _, f := range fill {
					f.Send(c, dst, 9, payload)
				}
				for i := 0; i < k; i++ {
					hot.Send(c, dst, 1, payload)
					c.Compute(sim.Second)
					if dst.TryRecv(c, 1, 1) == nil {
						miss = true
						return
					}
				}
			})
			b.ResetTimer()
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
			if miss {
				b.Fatal("TryRecv missed")
			}
		})
		b.Run(fmt.Sprintf("wildcard/depth=%d", depth), func(b *testing.B) {
			n := New(FDDI())
			e := sim.NewEngine()
			dst := n.NewEndpoint(0, true)
			hot := n.NewEndpoint(1, true)
			payload := make([]byte, 32)
			k := b.N
			miss := false
			e.Spawn("bench", false, func(c *sim.Ctx) {
				for i := 0; i < depth; i++ {
					hot.Send(c, dst, 9, payload) // one deep backlogged stream
				}
				for i := 0; i < k; i++ {
					hot.Send(c, dst, 1, payload)
					c.Compute(sim.Second)
					if dst.TryRecv(c, -1, 1) == nil {
						miss = true
						return
					}
				}
			})
			b.ResetTimer()
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
			if miss {
				b.Fatal("TryRecv missed")
			}
		})
	}
}
