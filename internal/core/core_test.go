package core

import (
	"testing"

	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
)

func TestRunSeq(t *testing.T) {
	res, err := RunSeq(func(ctx *sim.Ctx) {
		ctx.Compute(3 * sim.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != 3*sim.Second {
		t.Fatalf("time = %v, want 3s", res.Time)
	}
	if res.Net.Messages != 0 {
		t.Fatalf("sequential run counted traffic: %+v", res.Net)
	}
}

func TestRunTMKCollectsDetail(t *testing.T) {
	cfg := Default(2)
	var addr tmk.Addr
	res, err := RunTMK(cfg,
		func(sys *tmk.System) { addr = sys.Malloc(8) },
		func(p *tmk.Proc) {
			if p.ID() == 0 {
				p.WriteI64(addr, 42)
			}
			p.Barrier(0)
			if got := p.ReadI64(addr); got != 42 {
				t.Errorf("read %d", got)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Net.Messages == 0 {
		t.Fatal("expected barrier traffic")
	}
	if res.Faults != 1 || res.DiffRequests != 1 {
		t.Fatalf("faults=%d diffreqs=%d, want 1 each", res.Faults, res.DiffRequests)
	}
	if res.DiffBytes == 0 {
		t.Fatal("expected diff bytes")
	}
}

func TestRunPVMWithMaster(t *testing.T) {
	cfg := Default(2)
	heard := 0
	res, err := RunPVM(cfg, nil,
		func(p *pvm.Proc) {
			r := p.Recv(2, 1) // master has id N
			heard += int(r.UnpackOneInt32())
		},
		func(p *pvm.Proc) {
			for i := 0; i < 2; i++ {
				b := p.InitSend()
				b.PackOneInt32(1)
				p.Send(i, 1)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if heard != 2 {
		t.Fatalf("heard = %d, want 2", heard)
	}
	if res.Net.Messages != 2 {
		t.Fatalf("messages = %d, want 2", res.Net.Messages)
	}
}

func TestRunTMKErrorPropagates(t *testing.T) {
	cfg := Default(1)
	_, err := RunTMK(cfg,
		func(sys *tmk.System) { sys.Malloc(8) },
		func(p *tmk.Proc) { p.LockRelease(99) }) // release without hold
	if err == nil {
		t.Fatal("expected error from protocol violation")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := Default(8)
	if cfg.Procs != 8 || cfg.DSM.PageSize != 4096 || cfg.Net.BytesPerSec <= 0 {
		t.Fatalf("default config %+v", cfg)
	}
}
