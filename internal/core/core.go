// Package core is the experiment testbed: it wires a simulated cluster
// (engine + FDDI network) to either the TreadMarks DSM or the PVM
// message-passing library and runs an application on it, returning the
// modeled execution time and the traffic statistics the paper reports.
//
// The three entry points mirror the paper's three measurement modes:
//
//   - RunSeq: the sequential program, no communication library (Table 1);
//   - RunTMK: the TreadMarks version on n processors;
//   - RunPVM: the PVM version on n processors, optionally with an extra
//     co-located master process (the paper's TSP/QSORT arrangement).
//
// On top of these sits the scenario-first experiment surface
// (experiment.go): an App implemented once per application package, a
// Backend adapting it to one system (seq/tmk/pvm, plus Variant-derived
// ablations), and a Scenario value that fully determines a run.  New
// configurations are declared as data; the application bodies never
// change.
package core

import (
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
	"repro/internal/vnet"
)

// Config selects cluster size, cost models, process placement and
// cost-model overrides.  The zero values of the override fields reproduce
// the paper's testbed exactly.
type Config struct {
	Procs int
	Net   vnet.Config
	DSM   tmk.Config

	// XDRPerByte, when positive, enables PVM external-data-representation
	// conversion at this per-byte CPU cost (the paper disables XDR:
	// identical machines).  Modeling a heterogeneous cluster is a
	// one-line scenario override.
	XDRPerByte sim.Time

	// Parallel runs the simulation on the deterministically parallel
	// engine (sim.Options{Parallel}): same-virtual-time steps execute on
	// concurrent goroutines with all observable events forced into the
	// serial order, so modeled Time/Messages/Bytes are byte-identical to
	// the serial engine.  The default (false) keeps the serial engine,
	// which remains the differential oracle.
	Parallel bool

	// MasterColocated places the app's extra PVM master process (if any)
	// on node 0, sharing the workstation with slave 0 as in the paper's
	// physical arrangement: master/slave-0 traffic crosses loopback and
	// is not counted as user messages.  The default (false) keeps the
	// seed behavior of a master on its own node, where every master/slave
	// exchange is a real message.  Messages carry the sender's process
	// id, so receive filters and Buffer.Src() distinguish a co-located
	// master from slave 0; placement affects cost and accounting only.
	// See pvm.SpawnExtraAt.
	MasterColocated bool
}

// Default returns the paper's testbed: n HP workstations on 100 Mbit/s
// FDDI with 4 KB pages.
func Default(n int) Config {
	return Config{Procs: n, Net: vnet.FDDI(), DSM: tmk.DefaultConfig()}
}

// Result is one run's measurements.
type Result struct {
	Time sim.Time   // modeled wall-clock of the slowest process
	Net  vnet.Stats // traffic in the system's own accounting

	// TreadMarks behavioral detail (zero for PVM/sequential runs).
	Faults       int
	DiffRequests int
	DiffsApplied int
	DiffBytes    int64
	LockWait     sim.Time // total time blocked in remote lock acquires
	BarrierWait  sim.Time // total time blocked in barriers
	Timeouts     int      // RPC timeouts fired under fault injection
}

// RunSeq executes the sequential program body on a single simulated
// workstation with no communication library.
func RunSeq(body func(ctx *sim.Ctx)) (Result, error) {
	eng := sim.NewEngine()
	eng.Spawn("seq", false, body)
	if err := eng.Run(); err != nil {
		return Result{}, err
	}
	return Result{Time: eng.MaxPrimaryClock()}, nil
}

// RunTMK executes the TreadMarks version: setup allocates and preloads
// shared memory, then body runs on every processor.
func RunTMK(cfg Config, setup func(sys *tmk.System), body func(p *tmk.Proc)) (Result, error) {
	eng := sim.NewEngineOpts(sim.Options{Parallel: cfg.Parallel})
	net := vnet.New(cfg.Net)
	sys := tmk.NewSystem(eng, net, cfg.Procs, cfg.DSM)
	setup(sys)
	for i := 0; i < cfg.Procs; i++ {
		sys.Spawn(i, body)
	}
	if err := eng.Run(); err != nil {
		return Result{}, err
	}
	res := Result{Time: eng.MaxPrimaryClock(), Net: sys.Stats()}
	for i := 0; i < cfg.Procs; i++ {
		p := sys.Proc(i)
		res.Faults += p.Faults
		res.DiffRequests += p.DiffRequests
		res.DiffsApplied += p.DiffsApplied
		res.DiffBytes += p.DiffBytes
		res.LockWait += p.LockWait
		res.BarrierWait += p.BarrierWait
		res.Timeouts += p.Timeouts
	}
	return res, nil
}

// RunPVM executes the PVM version: setup (optional) configures the
// system and resets application run state, then body runs on each of the
// n regular processes; if master is non-nil it runs as an additional
// process (id n), as in the paper's master/slave TSP and QSORT.
func RunPVM(cfg Config, setup func(sys *pvm.System), body func(p *pvm.Proc), master func(p *pvm.Proc)) (Result, error) {
	eng := sim.NewEngineOpts(sim.Options{Parallel: cfg.Parallel})
	net := vnet.New(cfg.Net)
	sys := pvm.New(eng, net, cfg.Procs)
	if cfg.XDRPerByte > 0 {
		sys.EnableXDR(cfg.XDRPerByte)
	}
	if setup != nil {
		setup(sys)
	}
	for i := 0; i < cfg.Procs; i++ {
		sys.Spawn(i, body)
	}
	if master != nil {
		node := -1 // fresh node of its own (the seed arrangement)
		if cfg.MasterColocated {
			node = 0
		}
		sys.SpawnExtraAt("master", node, master)
	}
	if err := eng.Run(); err != nil {
		return Result{}, err
	}
	return Result{Time: eng.MaxPrimaryClock(), Net: sys.UserStats()}, nil
}
