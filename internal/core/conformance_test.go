package core

import (
	"fmt"
	"testing"

	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
)

// This file is the Backend conformance suite: a miniature App exercised
// against every adapter.  Each backend must run the app's bodies, honor
// the scenario, produce deterministic results, and leave the app in a
// state its Check accepts.  The real applications get the same treatment
// across the full registry in internal/harness.

// miniApp sums per-processor contributions: shared array + barrier under
// TreadMarks, a gather to process 0 under PVM, an optional master that
// collects and acknowledges (for placement tests).
type miniApp struct {
	withMaster bool

	addr tmk.Addr

	seqOut, parOut int64
	hasSeq, hasPar bool
}

func (a *miniApp) Name() string    { return "mini" }
func (a *miniApp) Figure() int     { return 0 }
func (a *miniApp) Problem() string { return "conformance kernel" }

func (a *miniApp) Check() error {
	if !a.hasSeq || !a.hasPar {
		return fmt.Errorf("mini: Check needs a sequential and a parallel run")
	}
	if a.seqOut != a.parOut {
		return fmt.Errorf("mini: output %d vs %d", a.parOut, a.seqOut)
	}
	return nil
}

const miniProcsModeled = 4 // contributions are identical per proc, so any count agrees

func (a *miniApp) contribution() int64 { return 7 }

func (a *miniApp) Seq(ctx *sim.Ctx) {
	ctx.Compute(time(1))
	a.seqOut = a.contribution()
	a.hasSeq = true
}

func time(ms int) sim.Time { return sim.Time(ms) * sim.Millisecond }

func (a *miniApp) SetupTMK(sys *tmk.System) {
	a.parOut, a.hasPar = 0, false
	a.addr = sys.Malloc(8)
}

func (a *miniApp) TMK(p *tmk.Proc) {
	p.Compute(time(1))
	if p.ID() == 0 {
		p.WriteI64(a.addr, a.contribution())
	}
	p.Barrier(0)
	if p.ID() == 0 {
		a.parOut = p.ReadI64(a.addr)
		a.hasPar = true
	} else {
		_ = p.ReadI64(a.addr) // remote read: forces diff traffic
	}
}

func (a *miniApp) SetupPVM(sys *pvm.System) {
	a.parOut, a.hasPar = 0, false
}

func (a *miniApp) PVM(p *pvm.Proc) {
	p.Compute(time(1))
	if a.withMaster {
		// Report to the master and await the acknowledged total.
		b := p.InitSend()
		b.PackOneInt64(a.contribution())
		p.Send(p.N(), 1)
		r := p.Recv(p.N(), 2)
		if p.ID() == 0 {
			a.parOut = r.UnpackOneInt64()
			a.hasPar = true
		}
		return
	}
	if p.ID() != 0 {
		b := p.InitSend()
		b.PackOneInt64(a.contribution())
		p.Send(0, 1)
		return
	}
	for src := 1; src < p.N(); src++ {
		p.Recv(src, 1)
	}
	a.parOut = a.contribution()
	a.hasPar = true
}

func (a *miniApp) Master() func(*pvm.Proc) {
	if !a.withMaster {
		return nil
	}
	return func(p *pvm.Proc) {
		var total int64
		for i := 0; i < p.N(); i++ {
			r := p.Recv(-1, 1)
			_ = r.UnpackOneInt64()
			total = a.contribution() // identical contributions: ack the value
		}
		for i := 0; i < p.N(); i++ {
			b := p.InitSend()
			b.PackOneInt64(total)
			p.Send(i, 2)
		}
	}
}

func TestBackendNames(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range StandardBackends() {
		if b.Name() == "" {
			t.Fatal("backend with empty name")
		}
		if seen[b.Name()] {
			t.Fatalf("duplicate backend name %q", b.Name())
		}
		seen[b.Name()] = true
	}
}

func TestBaselineDetection(t *testing.T) {
	if !IsBaseline(Seq) {
		t.Error("Seq must be a baseline")
	}
	if IsBaseline(TMK) || IsBaseline(PVM) {
		t.Error("TMK/PVM must not be baselines")
	}
	v := Variant("seq-v", Seq, func(sc Scenario) Scenario { return sc })
	if !IsBaseline(v) {
		t.Error("a variant of a baseline is a baseline")
	}
	if IsBaseline(Variant("pvm-v", PVM, func(sc Scenario) Scenario { return sc })) {
		t.Error("a variant of PVM is not a baseline")
	}
}

// TestBackendConformance runs the miniature app under every adapter and
// checks the adapter contract: successful run, deterministic repeat,
// plausible accounting, and an output the app's Check accepts.
func TestBackendConformance(t *testing.T) {
	app := &miniApp{}
	if _, err := Seq.Run(app, Base(1)); err != nil {
		t.Fatalf("seq: %v", err)
	}
	for _, b := range []Backend{Seq, TMK, PVM} {
		sc := Base(miniProcsModeled)
		r1, err := b.Run(app, sc)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if !IsBaseline(b) {
			if err := app.Check(); err != nil {
				t.Errorf("%s: %v", b.Name(), err)
			}
		}
		r2, err := b.Run(app, sc)
		if err != nil {
			t.Fatalf("%s rerun: %v", b.Name(), err)
		}
		if r1 != r2 {
			t.Errorf("%s: nondeterministic result:\n  %+v\n  %+v", b.Name(), r1, r2)
		}
		if r1.Time <= 0 {
			t.Errorf("%s: no modeled time", b.Name())
		}
		if IsBaseline(b) {
			if r1.Net.Messages != 0 {
				t.Errorf("seq counted traffic: %+v", r1.Net)
			}
		} else if r1.Net.Messages == 0 {
			t.Errorf("%s at %d procs sent no messages", b.Name(), sc.Procs)
		}
	}
}

// TestVariantScenarioOverride checks that a Variant's scenario rewrite
// reaches the run: XDR conversion costs CPU but moves no extra bytes.
func TestVariantScenarioOverride(t *testing.T) {
	app := &miniApp{}
	if _, err := Seq.Run(app, Base(1)); err != nil {
		t.Fatal(err)
	}
	plain, err := PVM.Run(app, Base(2))
	if err != nil {
		t.Fatal(err)
	}
	xdr := Variant("pvm-xdr-test", PVM, func(sc Scenario) Scenario {
		sc.XDRPerByte = 10 * sim.Microsecond
		return sc
	})
	conv, err := xdr.Run(app, Base(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Check(); err != nil {
		t.Fatal(err)
	}
	if conv.Net != plain.Net {
		t.Errorf("xdr changed traffic: %+v vs %+v", conv.Net, plain.Net)
	}
	if conv.Time <= plain.Time {
		t.Errorf("xdr should cost time: %v <= %v", conv.Time, plain.Time)
	}
}

// TestMasterPlacement checks the PVM placement axis: co-locating the
// master with slave 0 turns their exchanges into unaccounted loopback.
func TestMasterPlacement(t *testing.T) {
	app := &miniApp{withMaster: true}
	if _, err := Seq.Run(app, Base(1)); err != nil {
		t.Fatal(err)
	}
	apart, err := PVM.Run(app, Base(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Check(); err != nil {
		t.Fatal(err)
	}
	sc := Base(3)
	sc.Name = "colocated"
	sc.MasterColocated = true
	co, err := PVM.Run(app, sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Check(); err != nil {
		t.Fatal(err)
	}
	// Each of the 3 slaves exchanges 2 messages with the master; slave
	// 0's pair becomes loopback when co-located.
	if want := apart.Net.Messages - 2; co.Net.Messages != want {
		t.Errorf("colocated messages = %d, want %d (apart %d)",
			co.Net.Messages, want, apart.Net.Messages)
	}
}
