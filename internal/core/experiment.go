// Scenario-first experiment surface.
//
// Three first-class types turn the testbed into a declarative grid:
//
//   - A Scenario is one point in configuration space — processor count,
//     network cost model, DSM cost model, PVM process placement, and
//     cost-model overrides.  One Scenario value fully determines a run.
//   - An App is one application/input combination, registered once by its
//     package: the sequential body, the TreadMarks setup + body, the PVM
//     setup + body (+ optional master), and an output check.
//   - A Backend adapts an App to one system.  The three standard adapters
//     (Seq, TMK, PVM) mirror the paper's measurement modes; Variant
//     derives ablations (e.g. PVM with XDR conversion) as data, so a new
//     backend is one value — never a nine-application sweep.
//
// The harness crosses apps × backends × scenarios into structured result
// records; see internal/harness.
package core

import (
	"repro/internal/pvm"
	"repro/internal/sim"
	"repro/internal/tmk"
)

// Scenario names one fully specified run configuration: Config (cluster
// size, cost models, placement, overrides) plus an identifier that result
// records carry, so sweeps stay distinguishable after the fact.
type Scenario struct {
	Name string // short id, e.g. "base", "page=1024", "eth10"
	Config
}

// Base returns the paper's testbed configuration as a named scenario.
func Base(n int) Scenario {
	return Scenario{Name: "base", Config: Default(n)}
}

// Scaled shrinks a workload parameter by the quick-mode scale factor,
// bounded below by min: the common rule the app packages' Apps(scale)
// constructors apply.  scale 1.0 is paper scale.
func Scaled(n int, scale float64, min int) int {
	v := int(float64(n) * scale)
	if v < min {
		return min
	}
	return v
}

// App is one application/input combination.  Each package under
// internal/apps implements it once; backends supply the system the bodies
// run on.  Implementations carry their outputs between calls: a backend
// run records the parallel output, Seq records the reference, and Check
// compares the two, so correctness verification needs no extra plumbing.
type App interface {
	Name() string    // registry name, e.g. "SOR-Zero"
	Figure() int     // paper figure number (0 for custom apps)
	Problem() string // problem-size description (Table 1 column)

	// Seq is the sequential program body (no communication library).
	Seq(ctx *sim.Ctx)

	// SetupTMK allocates and preloads shared memory and resets the app's
	// run state; TMK is the per-processor body.
	SetupTMK(sys *tmk.System)
	TMK(p *tmk.Proc)

	// SetupPVM resets the app's run state before the processes spawn;
	// PVM is the per-process body.  Master returns the body of the extra
	// master process, or nil when the app has none (master/slave apps —
	// TSP, QSORT — follow the paper's arrangement).
	SetupPVM(sys *pvm.System)
	PVM(p *pvm.Proc)
	Master() func(*pvm.Proc)

	// Check compares the most recent parallel output against the most
	// recent sequential output; run the Seq backend first.
	Check() error
}

// Backend adapts an App to one system.  Run executes the app under the
// scenario and returns the modeled measurements.
type Backend interface {
	Name() string
	Run(app App, sc Scenario) (Result, error)
}

// Cloneable is implemented by Apps whose runs can be isolated: Clone
// returns a fresh instance with the same configuration and no run state,
// so two clones may run on concurrent goroutines.  Runs are
// deterministic functions of (configuration, scenario), so a clone's
// records are identical to the original's.  The harness grid uses
// clones for its worker pool; apps that do not implement Cloneable are
// still correct — their runs are serialized per instance.
type Cloneable interface {
	App
	Clone() App
}

// The standard adapters, mirroring the paper's three measurement modes.
var (
	Seq Backend = seqBackend{}
	TMK Backend = tmkBackend{}
	PVM Backend = pvmBackend{}
)

// StandardBackends returns the three paper adapters in reporting order.
func StandardBackends() []Backend { return []Backend{Seq, TMK, PVM} }

// baseliner marks backends whose result does not depend on the scenario;
// a grid runs them once per app instead of once per scenario.
type baseliner interface{ baseline() bool }

// IsBaseline reports whether b is scenario-independent (the sequential
// adapter, or a variant of it).
func IsBaseline(b Backend) bool {
	bb, ok := b.(baseliner)
	return ok && bb.baseline()
}

type seqBackend struct{}

func (seqBackend) Name() string   { return "seq" }
func (seqBackend) baseline() bool { return true }

func (seqBackend) Run(app App, sc Scenario) (Result, error) {
	return RunSeq(app.Seq)
}

type tmkBackend struct{}

func (tmkBackend) Name() string { return "tmk" }

func (tmkBackend) Run(app App, sc Scenario) (Result, error) {
	return RunTMK(sc.Config, app.SetupTMK, app.TMK)
}

type pvmBackend struct{}

func (pvmBackend) Name() string { return "pvm" }

func (pvmBackend) Run(app App, sc Scenario) (Result, error) {
	return RunPVM(sc.Config, app.SetupPVM, app.PVM, app.Master())
}

// variant is a backend derived from another by rewriting the scenario.
type variant struct {
	name   string
	base   Backend
	mutate func(Scenario) Scenario
}

// Variant derives a backend that transforms the scenario before running.
// An ablation — PVM with XDR conversion enabled, TreadMarks on small
// pages — is one Variant value registered with the harness; no
// application code changes.
func Variant(name string, base Backend, mutate func(Scenario) Scenario) Backend {
	return variant{name: name, base: base, mutate: mutate}
}

func (v variant) Name() string { return v.name }

func (v variant) Run(app App, sc Scenario) (Result, error) {
	return v.base.Run(app, v.mutate(sc))
}

func (v variant) baseline() bool { return IsBaseline(v.base) }
