// Package serve is the experiment service: an HTTP/JSON API over the
// harness Grid/Record machinery with a content-addressed result cache.
//
// Every run in this reproduction is deterministic (the pinned goldens
// prove bit-identical modeled metrics across four execution modes), so
// a Record is a pure function of (app, backend, scenario, nprocs,
// engine version) and therefore perfectly cacheable.  The server
// exploits that: each enumerated grid job is named by the canonical
// content hash of its full spec (harness.SpecHash — app name + problem
// size, backend name, the whole scenario config including fault and
// cost-model overrides, processor count, and harness.EngineVersion),
// warm requests answer straight from a memoizing store, a singleflight
// layer collapses concurrent identical cold requests into one
// computation, and cold sweeps can stream per-record progress so large
// grids render incrementally.  Heavy read traffic is served from the
// cache; only genuinely novel scenarios burn CPU.
//
// # Routes
//
//	GET  /healthz    liveness probe; "ok"
//	GET  /v1/grid    run (or recall) a grid, reply with the JSON record
//	                 array — byte-identical whether served cold or warm
//	POST /v1/grid    same, selection in a JSON body
//	GET  /v1/spec    enumerate a grid without running it: per-job
//	                 canonical spec hashes plus the engine version
//	POST /v1/spec    same, selection in a JSON body
//	GET  /v1/stats   service and cache counters (hits, misses, disk
//	                 hits, evictions, inflight, computed, records
//	                 served, requests)
//
// /v1/grid and /v1/spec take the msvdsm grid selection vocabulary —
// query parameters apps, backends, scenarios (scenario-set names),
// nprocs (comma-separated lists) and scale, or the same fields as a
// JSON object — and validate it with the same errors the CLI prints:
// a malformed selection is a structured 400 naming the offending field
// and the valid choices.  `stream=1` on /v1/grid switches the response
// to JSON lines: one {index, total, cached, record} object per
// completed job in completion order, then a {done, records, hits,
// computed} summary line.
//
// # Cache key and engine version
//
// The cache key is harness.SpecHash: the hex SHA-256 of the canonical
// spec rendering (harness.CanonicalSpec).  The key deliberately
// excludes execution-mode knobs (parallel engine, worker pool width)
// whose outputs are byte-identical by contract, and includes
// harness.EngineVersion, which must be bumped in lockstep with golden
// regeneration — any model-change PR invalidates every cached record
// simply by moving the hashes.  See internal/harness/spec.go.
//
// # Quickstart
//
//	msvdsm -scale 0.1 -j 4 serve -addr localhost:8177 -cache-dir /tmp/msvdsm-cache &
//
//	# cold: computes and caches; warm: identical bytes, no compute
//	curl -s 'localhost:8177/v1/grid?apps=sor-nonzero&backends=tmk,pvm&scenarios=base&nprocs=2,4'
//	curl -s 'localhost:8177/v1/grid?apps=sor-nonzero&backends=tmk,pvm&scenarios=base&nprocs=2,4'
//
//	# stream a big sweep as it computes
//	curl -sN 'localhost:8177/v1/grid?scenarios=page,lat&stream=1'
//
//	# what would run, and under which cache keys?
//	curl -s 'localhost:8177/v1/spec?apps=ep&scenarios=loss&nprocs=4'
//
//	curl -s localhost:8177/v1/stats
//
// The server composes with the planned coordinator/worker split: a
// coordinator would keep exactly this API and store, and dispatch cache
// misses to a worker fleet by job index instead of the local pool.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/harness"
)

// Options configures a Server.
type Options struct {
	// Scale is the workload scale factor the app registries resolve at
	// when a request does not carry its own (0 means 1.0, paper scale).
	Scale float64

	// Workers bounds the per-request cold-path worker pool (<= 1 runs
	// jobs serially).
	Workers int

	// Parallel runs each simulation on the deterministically parallel
	// engine.  Results are byte-identical to the serial engine, so the
	// cache key ignores this knob.
	Parallel bool

	// Store is the content-addressed record cache; required.
	Store *Store

	// Dispatcher, when non-nil, fronts a worker fleet: cold jobs are
	// leased to registered workers (internal/dispatch) and only fall
	// back to the local pool when no live worker exists, the
	// coordinator is draining, or a job exhausts its lease attempts.
	// The dispatcher's worker-facing routes mount under /v1/dispatch/.
	Dispatcher *dispatch.Dispatcher
}

// Server answers grid requests from the cache, computing only misses.
type Server struct {
	opts Options

	flights flightGroup

	requests      atomic.Int64
	badRequests   atomic.Int64
	recordsServed atomic.Int64
	computed      atomic.Int64
	inflight      atomic.Int64
	dispatched    atomic.Int64
	fallbacks     atomic.Int64
}

// New returns a server over the given options.
func New(opts Options) *Server {
	if opts.Scale == 0 {
		opts.Scale = 1.0
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Store == nil {
		store, err := NewStore(0, "")
		if err != nil {
			panic(err) // unreachable: no dir, no IO
		}
		opts.Store = store
	}
	return &Server{opts: opts}
}

// Handler returns the service's route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/grid", s.handleGrid)
	mux.HandleFunc("/v1/spec", s.handleSpec)
	mux.HandleFunc("/v1/stats", s.handleStats)
	if s.opts.Dispatcher != nil {
		mux.Handle("/v1/dispatch/", s.opts.Dispatcher.Handler())
	}
	return mux
}

// Stats is the /v1/stats document.
type Stats struct {
	Engine        string `json:"engine"`
	Requests      int64  `json:"requests"`
	BadRequests   int64  `json:"bad_requests"`
	RecordsServed int64  `json:"records_served"`
	Computed      int64  `json:"computed"`
	Inflight      int64  `json:"inflight"`
	Dispatched    int64  `json:"dispatched"`
	Fallbacks     int64  `json:"fallbacks"`
	StoreStats
	Dispatch *dispatch.Stats `json:"dispatch,omitempty"`
}

// Stats returns a snapshot of the service counters.  Computed counts
// actual local backend runs (the warm-path proof is this number
// standing still while records keep flowing), Dispatched the records
// obtained from the worker fleet, and Fallbacks the jobs that came
// back from the dispatcher unserved and ran locally instead.
func (s *Server) Stats() Stats {
	st := Stats{
		Engine:        harness.EngineVersion,
		Requests:      s.requests.Load(),
		BadRequests:   s.badRequests.Load(),
		RecordsServed: s.recordsServed.Load(),
		Computed:      s.computed.Load(),
		Inflight:      s.inflight.Load(),
		Dispatched:    s.dispatched.Load(),
		Fallbacks:     s.fallbacks.Load(),
		StoreStats:    s.opts.Store.Stats(),
	}
	if s.opts.Dispatcher != nil {
		ds := s.opts.Dispatcher.Stats()
		st.Dispatch = &ds
	}
	return st
}

// gridRequest is the selection schema shared by /v1/grid and /v1/spec:
// the msvdsm grid flag vocabulary as query parameters or a JSON body.
type gridRequest struct {
	Apps      []string `json:"apps,omitempty"`
	Backends  []string `json:"backends,omitempty"`
	Scenarios []string `json:"scenarios,omitempty"`
	NProcs    []int    `json:"nprocs,omitempty"`
	Scale     float64  `json:"scale,omitempty"`
	Stream    bool     `json:"stream,omitempty"`
}

// apiError is the structured 400/500 body.
type apiError struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseRequest decodes the selection from the query string (GET) or a
// JSON body (POST).  Errors are *harness.FieldError so the reply can
// name the offending field.
func parseRequest(r *http.Request) (gridRequest, error) {
	var req gridRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		req.Apps = splitList(q.Get("apps"))
		req.Backends = splitList(q.Get("backends"))
		req.Scenarios = splitList(q.Get("scenarios"))
		for _, part := range splitList(q.Get("nprocs")) {
			n, err := strconv.Atoi(part)
			if err != nil || n < 1 {
				return req, &harness.FieldError{Field: "nprocs",
					Err: fmt.Errorf("bad nprocs entry %q (want comma-separated positive counts, e.g. 2,4,8)", part)}
			}
			req.NProcs = append(req.NProcs, n)
		}
		if v := q.Get("scale"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 {
				return req, &harness.FieldError{Field: "scale",
					Err: fmt.Errorf("bad scale %q (want a positive workload scale factor, e.g. 0.1)", v)}
			}
			req.Scale = f
		}
		req.Stream = q.Get("stream") == "1" || strings.EqualFold(q.Get("stream"), "true")
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return req, &harness.FieldError{Field: "body", Err: fmt.Errorf("bad request body: %w", err)}
		}
		for _, n := range req.NProcs {
			if n < 1 {
				return req, &harness.FieldError{Field: "nprocs",
					Err: fmt.Errorf("bad nprocs entry %d (want positive counts, e.g. 2,4,8)", n)}
			}
		}
		if req.Scale < 0 {
			return req, &harness.FieldError{Field: "scale",
				Err: fmt.Errorf("bad scale %g (want a positive workload scale factor)", req.Scale)}
		}
	default:
		return req, &harness.FieldError{Field: "method",
			Err: fmt.Errorf("method %s not allowed (use GET or POST)", r.Method)}
	}
	return req, nil
}

// resolve turns a request into enumerated jobs plus their spec hashes,
// and reports the effective workload scale (the request's, or the
// server default) so the dispatch path can name it on the wire.
func (s *Server) resolve(req gridRequest) ([]harness.Job, []string, float64, error) {
	scale := req.Scale
	if scale == 0 {
		scale = s.opts.Scale
	}
	sel := harness.Selection{
		Apps:      req.Apps,
		Backends:  req.Backends,
		Scenarios: req.Scenarios,
		NProcs:    req.NProcs,
	}
	grid, err := sel.Resolve(scale)
	if err != nil {
		return nil, nil, scale, err
	}
	if s.opts.Parallel {
		for i := range grid.Scenarios {
			grid.Scenarios[i].Parallel = true
		}
	}
	jobs, err := grid.Jobs()
	if err != nil {
		return nil, nil, scale, &harness.FieldError{Field: "scenarios", Err: err}
	}
	hashes := make([]string, len(jobs))
	for i, j := range jobs {
		hashes[i] = harness.SpecHash(j)
	}
	return jobs, hashes, scale, nil
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusBadRequest {
		s.badRequests.Add(1)
	}
	body := apiError{Error: err.Error()}
	var fe *harness.FieldError
	if errors.As(err, &fe) {
		body.Field = fe.Field
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

// specJob is one /v1/spec entry.
type specJob struct {
	Index    int    `json:"index"`
	App      string `json:"app"`
	Problem  string `json:"problem,omitempty"`
	Backend  string `json:"backend"`
	Scenario string `json:"scenario"`
	Procs    int    `json:"procs"`
	Hash     string `json:"hash"`
}

func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	req, err := parseRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	jobs, hashes, _, err := s.resolve(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	out := struct {
		Engine string    `json:"engine"`
		Jobs   []specJob `json:"jobs"`
	}{Engine: harness.EngineVersion, Jobs: make([]specJob, len(jobs))}
	for i, j := range jobs {
		out.Jobs[i] = specJob{
			Index:    i,
			App:      j.App.Name(),
			Problem:  j.App.Problem(),
			Backend:  j.Backend.Name(),
			Scenario: j.Scenario.Name,
			Procs:    j.Scenario.Procs,
			Hash:     hashes[i],
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// streamLine is one JSON line of a streaming grid response.
type streamLine struct {
	Index  int             `json:"index"`
	Total  int             `json:"total"`
	Cached bool            `json:"cached"`
	Record *harness.Record `json:"record"`
}

// streamDone is the closing summary line.
type streamDone struct {
	Done     bool   `json:"done"`
	Records  int    `json:"records"`
	Hits     int    `json:"hits"`
	Computed int    `json:"computed"`
	Error    string `json:"error,omitempty"`
}

func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	req, err := parseRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	jobs, hashes, scale, err := s.resolve(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}

	// Partition warm and cold: warm jobs answer from the store without
	// touching any backend, cold indices go to the worker pool below.
	recs := make([]harness.Record, len(jobs))
	cached := make([]bool, len(jobs))
	var cold []int
	for i := range jobs {
		if rec, ok := s.opts.Store.Get(hashes[i]); ok {
			recs[i], cached[i] = rec, true
		} else {
			cold = append(cold, i)
		}
	}

	var emit func(line any) error
	if req.Stream {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Accel-Buffering", "no")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		var mu sync.Mutex
		emit = func(line any) error {
			mu.Lock()
			defer mu.Unlock()
			if err := enc.Encode(line); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		}
		for i := range jobs {
			if cached[i] {
				emit(streamLine{Index: i, Total: len(jobs), Cached: true, Record: &recs[i]})
			}
		}
	}

	if err := s.runCold(r.Context(), req, scale, jobs, hashes, recs, cold, emit); err != nil {
		if req.Stream {
			// Headers are long gone; report the failure in-band.
			emit(streamDone{Done: true, Records: len(jobs), Hits: len(jobs) - len(cold),
				Computed: len(cold), Error: err.Error()})
			return
		}
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}

	s.recordsServed.Add(int64(len(recs)))
	if req.Stream {
		emit(streamDone{Done: true, Records: len(jobs), Hits: len(jobs) - len(cold), Computed: len(cold)})
		return
	}
	// One JSON array in enumeration order: byte-identical whether every
	// record came from the store or from a fresh computation.
	w.Header().Set("Content-Type", "application/json")
	if err := harness.WriteJSON(w, recs); err != nil {
		return // broken client connection mid-stream; nothing to salvage
	}
}

// runCold executes the cold job indices, filling recs in place.  Each
// computation goes through the singleflight group keyed by spec hash,
// and re-checks the store inside the flight, so an identical job — in
// this request or a concurrent one — computes exactly once no matter
// how the flights interleave with completions.
//
// With a dispatcher attached and workers registered, cold jobs are
// leased to the fleet (all of them concurrently — the goroutines just
// wait on completions) and only fall back to the bounded local pool
// when the dispatcher cannot serve them (no workers left, coordinator
// draining, or a job that exhausted its lease attempts): local compute
// is always correct, just not scaled out.
//
// ctx is the request context: when the client disconnects mid-sweep,
// jobs not yet started are abandoned instead of burning CPU for a
// reply nobody reads.  A job already running completes (a simulation
// is not interruptible) and still lands in the store.
func (s *Server) runCold(ctx context.Context, req gridRequest, scale float64, jobs []harness.Job, hashes []string, recs []harness.Record, cold []int, emit func(any) error) error {
	if len(cold) == 0 {
		return nil
	}
	// Isolate per-job app state exactly as the grid pool does: cloneable
	// apps get a fresh clone per job, the rest serialize per instance.
	locks := map[core.App]*sync.Mutex{}
	work := make(map[int]harness.Job, len(cold))
	for _, i := range cold {
		j := jobs[i]
		if c, ok := j.App.(core.Cloneable); ok {
			j.App = c.Clone()
		} else if locks[j.App] == nil {
			locks[j.App] = &sync.Mutex{}
		}
		work[i] = j
	}
	local := s.opts.Workers
	if local < 1 {
		local = 1
	}
	fleet := s.opts.Dispatcher != nil && s.opts.Dispatcher.HasWorkers()
	workers := local
	if fleet {
		workers = len(cold)
	}
	if workers > len(cold) {
		workers = len(cold)
	}
	// localSlots bounds actual local computation to the configured pool
	// width even when the goroutine count was widened for dispatch
	// fan-out and jobs fall back local.
	localSlots := make(chan struct{}, local)
	errs := make([]error, len(jobs))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1))
				if k >= len(cold) {
					return
				}
				i := cold[k]
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				s.inflight.Add(1)
				rec, err, _ := s.flights.do(hashes[i], func() (harness.Record, error) {
					// Double-check the store: a flight for this hash may
					// have completed between our miss and now.  Quiet
					// lookup — this request already counted its miss.
					if rec, ok := s.opts.Store.lookup(hashes[i], false); ok {
						return rec, nil
					}
					if fleet {
						ref := dispatch.JobRef{
							Apps:      req.Apps,
							Backends:  req.Backends,
							Scenarios: req.Scenarios,
							NProcs:    req.NProcs,
							Scale:     scale,
							Index:     i,
						}
						rec, err := s.opts.Dispatcher.Do(ctx, ref, hashes[i])
						if err == nil {
							s.dispatched.Add(1)
							s.opts.Store.Put(hashes[i], rec)
							return rec, nil
						}
						if ctx.Err() != nil {
							return rec, ctx.Err()
						}
						// Unserved by the fleet — compute locally below.
						s.fallbacks.Add(1)
					}
					localSlots <- struct{}{}
					defer func() { <-localSlots }()
					s.computed.Add(1)
					j := work[i]
					if mu := locks[jobs[i].App]; mu != nil {
						mu.Lock()
						defer mu.Unlock()
					}
					rec, err := j.Run()
					if err == nil {
						s.opts.Store.Put(hashes[i], rec)
					}
					return rec, err
				})
				s.inflight.Add(-1)
				recs[i], errs[i] = rec, err
				if err == nil && emit != nil {
					emit(streamLine{Index: i, Total: len(jobs), Cached: false, Record: &recs[i]})
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
