package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
)

// testServer returns a server over a tiny workload scale and its
// httptest frontend.
func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Scale == 0 {
		opts.Scale = 0.01
	}
	if opts.Store == nil {
		store, err := NewStore(0, "")
		if err != nil {
			t.Fatal(err)
		}
		opts.Store = store
	}
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

const smallGrid = "/v1/grid?apps=ep&backends=tmk,pvm&scenarios=base&nprocs=2"

// TestServeColdThenWarm is the warm-path proof: the same grid request
// served twice returns byte-identical record bodies, and the second
// reply comes entirely from the store — the computed counter (actual
// backend runs) stands still while hits advance.
func TestServeColdThenWarm(t *testing.T) {
	srv, ts := testServer(t, Options{Workers: 2})

	status, cold := get(t, ts.URL+smallGrid)
	if status != http.StatusOK {
		t.Fatalf("cold request: status %d, body %s", status, cold)
	}
	var recs []harness.Record
	if err := json.Unmarshal(cold, &recs); err != nil {
		t.Fatalf("cold body does not decode: %v", err)
	}
	if len(recs) != 2 { // ep x {tmk,pvm} x base@2
		t.Fatalf("cold request returned %d records, want 2", len(recs))
	}
	st := srv.Stats()
	if st.Computed != 2 || st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("cold stats: computed=%d misses=%d hits=%d, want 2/2/0", st.Computed, st.Misses, st.Hits)
	}

	status, warm := get(t, ts.URL+smallGrid)
	if status != http.StatusOK {
		t.Fatalf("warm request: status %d", status)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm body differs from cold body:\ncold: %s\nwarm: %s", cold, warm)
	}
	st = srv.Stats()
	if st.Computed != 2 {
		t.Fatalf("warm request invoked a backend: computed=%d, want 2", st.Computed)
	}
	if st.Hits != 2 {
		t.Fatalf("warm request hits=%d, want 2", st.Hits)
	}
	if st.RecordsServed != 4 {
		t.Fatalf("records served=%d, want 4", st.RecordsServed)
	}
}

// TestServeConcurrentDuplicatesComputeOnce fires many identical cold
// requests at once: the store partition plus the singleflight layer
// (with its in-flight store re-check) must collapse them to exactly one
// computation per job no matter how the requests interleave.
func TestServeConcurrentDuplicatesComputeOnce(t *testing.T) {
	srv, ts := testServer(t, Options{Workers: 4})

	const clients = 6
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + smallGrid)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			bodies[c], _ = io.ReadAll(resp.Body)
		}(c)
	}
	wg.Wait()

	if st := srv.Stats(); st.Computed != 2 {
		t.Fatalf("%d concurrent duplicate requests computed %d jobs, want exactly 2", clients, st.Computed)
	}
	for c := 1; c < clients; c++ {
		if !bytes.Equal(bodies[0], bodies[c]) {
			t.Fatalf("client %d got a different body", c)
		}
	}
}

// TestServeStream checks the cold-sweep streaming surface: JSON lines,
// one per completed job with its enumeration index, closed by a done
// summary, and carrying exactly the records the array response carries.
func TestServeStream(t *testing.T) {
	srv, ts := testServer(t, Options{Workers: 2})
	_ = srv

	status, arr := get(t, ts.URL+smallGrid)
	if status != http.StatusOK {
		t.Fatalf("array request: status %d", status)
	}
	var want []harness.Record
	if err := json.Unmarshal(arr, &want); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + smallGrid + "&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	type line struct {
		Index  int             `json:"index"`
		Total  int             `json:"total"`
		Cached bool            `json:"cached"`
		Record *harness.Record `json:"record"`
		Done   bool            `json:"done"`
		Error  string          `json:"error"`
	}
	got := map[int]harness.Record{}
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if l.Done {
			sawDone = true
			if l.Error != "" {
				t.Fatalf("stream reported error: %s", l.Error)
			}
			continue
		}
		if l.Record == nil || l.Total != len(want) {
			t.Fatalf("malformed stream line %q", sc.Text())
		}
		if !l.Cached {
			t.Errorf("second serving of job %d not cached", l.Index)
		}
		got[l.Index] = *l.Record
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawDone {
		t.Fatal("stream did not end with a done line")
	}
	if len(got) != len(want) {
		t.Fatalf("stream carried %d records, want %d", len(got), len(want))
	}
	for i, rec := range want {
		if got[i] != rec {
			t.Fatalf("stream record %d differs from array record:\n  stream %+v\n  array  %+v", i, got[i], rec)
		}
	}
}

// TestServeBadRequests pins the structured 400 surface: malformed
// selections name the offending field and the valid choices, reusing
// the harness resolution errors the CLI prints.
func TestServeBadRequests(t *testing.T) {
	_, ts := testServer(t, Options{})

	cases := []struct {
		name, url  string
		wantField  string
		wantInBody []string
	}{
		{"unknown app", "/v1/grid?apps=nonesuch", "apps", []string{"unknown experiment", "EP"}},
		{"unknown backend", "/v1/grid?backends=mpi", "backends", []string{"unknown backend", "tmk", "pvm"}},
		{"unknown scenario set", "/v1/grid?scenarios=nonesuch", "scenarios", []string{"unknown scenario set", "base", "loss"}},
		{"unsupported bigp procs", "/v1/grid?scenarios=bigp&nprocs=8", "scenarios", []string{"does not run at 8", "16 64 256"}},
		{"bad nprocs", "/v1/grid?nprocs=zero", "nprocs", []string{"bad nprocs entry", "2,4,8"}},
		{"bad scale", "/v1/grid?scale=-1", "scale", []string{"bad scale"}},
		{"spec endpoint validates too", "/v1/spec?apps=nonesuch", "apps", []string{"unknown experiment"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := get(t, ts.URL+tc.url)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", status, body)
			}
			var ae struct {
				Error string `json:"error"`
				Field string `json:"field"`
			}
			if err := json.Unmarshal(body, &ae); err != nil {
				t.Fatalf("400 body is not structured JSON: %s", body)
			}
			if ae.Field != tc.wantField {
				t.Errorf("field %q, want %q (error: %s)", ae.Field, tc.wantField, ae.Error)
			}
			for _, want := range tc.wantInBody {
				if !strings.Contains(ae.Error, want) {
					t.Errorf("error %q does not mention %q", ae.Error, want)
				}
			}
		})
	}

	// Unknown JSON body fields are rejected, not silently ignored — a
	// typo like "nproc" must not run the full default grid.
	resp, err := http.Post(ts.URL+"/v1/grid", "application/json",
		strings.NewReader(`{"apps":["ep"],"nproc":[2]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown JSON field: status %d, want 400", resp.StatusCode)
	}
}

// TestServeSpecEndpoint checks /v1/spec enumerates without computing,
// reports stable hashes, and — the request-canonicalization half of the
// cache-key story — answers JSON bodies with permuted key order and the
// equivalent GET query identically.
func TestServeSpecEndpoint(t *testing.T) {
	srv, ts := testServer(t, Options{})

	status, viaGet := get(t, ts.URL+"/v1/spec?apps=ep&backends=tmk,pvm&scenarios=base&nprocs=2")
	if status != http.StatusOK {
		t.Fatalf("spec GET: status %d, body %s", status, viaGet)
	}
	bodies := []string{
		`{"apps":["ep"],"backends":["tmk","pvm"],"scenarios":["base"],"nprocs":[2]}`,
		`{"nprocs":[2],"scenarios":["base"],"backends":["tmk","pvm"],"apps":["ep"]}`,
	}
	for i, b := range bodies {
		resp, err := http.Post(ts.URL+"/v1/spec", "application/json", strings.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		viaPost, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("spec POST %d: status %d", i, resp.StatusCode)
		}
		if !bytes.Equal(viaGet, viaPost) {
			t.Fatalf("permuted body %d resolved differently:\nGET:  %s\nPOST: %s", i, viaGet, viaPost)
		}
	}

	var spec struct {
		Engine string `json:"engine"`
		Jobs   []struct {
			Index int    `json:"index"`
			App   string `json:"app"`
			Hash  string `json:"hash"`
			Procs int    `json:"procs"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(viaGet, &spec); err != nil {
		t.Fatal(err)
	}
	if spec.Engine != harness.EngineVersion {
		t.Fatalf("spec engine %q, want %q", spec.Engine, harness.EngineVersion)
	}
	if len(spec.Jobs) != 2 {
		t.Fatalf("spec enumerated %d jobs, want 2", len(spec.Jobs))
	}
	for i, j := range spec.Jobs {
		if j.Index != i || len(j.Hash) != 64 || j.Procs != 2 {
			t.Fatalf("malformed spec job %+v", j)
		}
	}
	if spec.Jobs[0].Hash == spec.Jobs[1].Hash {
		t.Fatal("distinct jobs share a hash")
	}
	if st := srv.Stats(); st.Computed != 0 {
		t.Fatalf("/v1/spec computed %d jobs; it must never run the engine", st.Computed)
	}
}

// TestServeStatsAndHealth covers the operational endpoints.
func TestServeStatsAndHealth(t *testing.T) {
	_, ts := testServer(t, Options{})

	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", status, body)
	}

	if _, err := http.Get(ts.URL + smallGrid); err != nil {
		t.Fatal(err)
	}
	status, body = get(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stats body does not decode: %v\n%s", err, body)
	}
	if st.Engine != harness.EngineVersion || st.Computed != 2 || st.Entries != 2 || st.Requests < 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

// TestServeScaleOverride checks a request-level scale resolves its own
// registry (distinct problem sizes => distinct cache keys => fresh
// computation), while equal-scale requests share entries.
func TestServeScaleOverride(t *testing.T) {
	srv, ts := testServer(t, Options{})

	if _, err := http.Get(ts.URL + smallGrid); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Computed; got != 2 {
		t.Fatalf("computed=%d, want 2", got)
	}
	// Same selection at another scale is a different workload: new keys.
	if _, err := http.Get(ts.URL + smallGrid + "&scale=0.02"); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Computed; got != 4 {
		t.Fatalf("after scale override computed=%d, want 4", got)
	}
	// Explicitly repeating the server's default scale hits the cache.
	if _, err := http.Get(ts.URL + smallGrid + "&scale=0.01"); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Computed; got != 4 {
		t.Fatalf("explicit default scale recomputed: computed=%d, want 4", got)
	}
}

// TestFlightGroupSharesInFlightResult drives the singleflight layer
// directly: a caller that joins while a computation is in flight blocks
// and shares the result instead of recomputing.
func TestFlightGroupSharesInFlightResult(t *testing.T) {
	var g flightGroup
	inFlight := make(chan struct{})
	release := make(chan struct{})
	done := make(chan harness.Record, 1)

	go func() {
		rec, _, _ := g.do("k", func() (harness.Record, error) {
			close(inFlight)
			<-release
			return harness.Record{App: "a", TimeNS: 42}, nil
		})
		done <- rec
	}()
	<-inFlight

	const joiners = 4
	results := make(chan harness.Record, joiners)
	shared := make(chan bool, joiners)
	for i := 0; i < joiners; i++ {
		go func() {
			rec, err, sh := g.do("k", func() (harness.Record, error) {
				// Every joiner provably overlaps the flight (see the
				// waiter barrier below), so this must never execute.
				return harness.Record{}, fmt.Errorf("duplicate computation")
			})
			if err != nil {
				t.Errorf("joiner got error: %v", err)
			}
			results <- rec
			shared <- sh
		}()
	}
	// Release the flight only once every joiner is registered against
	// it — the waiter count makes the overlap deterministic, not timed.
	for {
		g.mu.Lock()
		c := g.m["k"]
		g.mu.Unlock()
		if c != nil && c.waiters.Load() == joiners {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	first := <-done
	if first.TimeNS != 42 {
		t.Fatalf("flight returned %+v", first)
	}
	for i := 0; i < joiners; i++ {
		if rec := <-results; rec != first {
			t.Fatalf("joiner %d got %+v, want the flight's result", i, rec)
		}
		if !<-shared {
			t.Fatalf("joiner %d did not share the in-flight result", i)
		}
	}
}

// TestRunColdCanceledContext pins satellite request-cancellation
// behavior: a cold sweep whose request context is already canceled (a
// disconnected client) computes nothing and surfaces the cancellation
// instead of burning CPU for a reply nobody reads.
func TestRunColdCanceledContext(t *testing.T) {
	srv, _ := testServer(t, Options{Workers: 2})
	req := gridRequest{Apps: []string{"ep"}, Backends: []string{"tmk", "pvm"}, Scenarios: []string{"base"}, NProcs: []int{2}}
	jobs, hashes, scale, err := srv.resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	cold := make([]int, len(jobs))
	for i := range cold {
		cold[i] = i
	}
	recs := make([]harness.Record, len(jobs))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.runCold(ctx, req, scale, jobs, hashes, recs, cold, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("runCold with canceled ctx: %v, want context.Canceled", err)
	}
	if got := srv.Stats().Computed; got != 0 {
		t.Fatalf("canceled sweep computed %d jobs, want 0", got)
	}
}
