package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/harness"
)

// Store is the content-addressed record cache: an in-memory LRU over
// spec hashes (harness.SpecHash) with optional on-disk persistence.
// Records are immutable once computed — a hash fully determines its
// record — so the store needs no invalidation beyond capacity eviction:
// model changes arrive as new EngineVersion hashes, never as updates.
//
// The disk tier is strictly best-effort: a failed write (ENOSPC, a
// directory yanked from under the server, permissions) logs once and
// degrades the store to memory-only rather than failing requests —
// records are recomputable, so losing persistence costs warmth, never
// correctness.
type Store struct {
	// Logf receives the disk-degrade notice; nil means log.Printf.
	Logf func(format string, args ...any)

	mu    sync.Mutex
	cap   int // max in-memory entries; <= 0 means unbounded
	ll    *list.List
	byKey map[string]*list.Element

	dir          string // "" disables disk persistence
	diskDisabled bool   // a write failed; disk tier abandoned

	hits, diskHits, misses, evictions int64
}

type storeEntry struct {
	key string
	rec harness.Record
}

// StoreStats is a counter snapshot.  Hits counts every Get answered
// (DiskHits the subset that came off disk), Misses every Get that did
// not, Evictions the entries dropped by the in-memory capacity bound
// (evicted entries persisted to disk remain warm there).
type StoreStats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	DiskHits  int64 `json:"disk_hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`

	// DiskDisabled reports that a disk-tier write failed and the store
	// degraded itself to memory-only.
	DiskDisabled bool `json:"disk_disabled,omitempty"`
}

// NewStore returns a store holding up to capacity records in memory
// (capacity <= 0 means unbounded) and, when dir is non-empty, persisting
// every record as <dir>/<hash>.json so a restarted server stays warm.
func NewStore(capacity int, dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: cache dir: %w", err)
		}
	}
	return &Store{cap: capacity, ll: list.New(), byKey: map[string]*list.Element{}, dir: dir}, nil
}

// Get returns the cached record for key.  A memory miss falls through
// to the disk tier (when configured) and promotes its hit into memory.
func (s *Store) Get(key string) (harness.Record, bool) {
	return s.lookup(key, true)
}

// lookup is Get with optional counting: the server's singleflight
// double-check re-probes keys it already counted a miss for, and must
// not skew the hit-rate counters doing so.
func (s *Store) lookup(key string, count bool) (harness.Record, bool) {
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.ll.MoveToFront(el)
		rec := el.Value.(*storeEntry).rec
		if count {
			s.hits++
		}
		s.mu.Unlock()
		return rec, true
	}
	dir := s.dir
	s.mu.Unlock()
	if dir != "" {
		if rec, ok := s.load(dir, key); ok {
			s.mu.Lock()
			s.insert(key, rec)
			if count {
				s.hits++
				s.diskHits++
			}
			s.mu.Unlock()
			return rec, true
		}
	}
	if count {
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
	}
	return harness.Record{}, false
}

// Put caches the record under key in memory and, when persistence is
// configured, on disk.  A disk write failure degrades the store to
// memory-only (logged once) instead of surfacing to the caller.
func (s *Store) Put(key string, rec harness.Record) {
	s.mu.Lock()
	s.insert(key, rec)
	dir := s.dir
	s.mu.Unlock()
	if dir != "" {
		if err := s.save(dir, key, rec); err != nil {
			s.disableDisk(err)
		}
	}
}

// disableDisk abandons the disk tier after a failed write: later Puts
// and Gets skip it entirely.
func (s *Store) disableDisk(err error) {
	s.mu.Lock()
	if s.dir == "" {
		s.mu.Unlock()
		return
	}
	dir := s.dir
	s.dir = ""
	s.diskDisabled = true
	logf := s.Logf
	s.mu.Unlock()
	if logf == nil {
		logf = log.Printf
	}
	logf("serve: disk cache write under %s failed (%v); degrading to memory-only", dir, err)
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Entries:      s.ll.Len(),
		Hits:         s.hits,
		DiskHits:     s.diskHits,
		Misses:       s.misses,
		Evictions:    s.evictions,
		DiskDisabled: s.diskDisabled,
	}
}

// insert adds or refreshes an entry and enforces the capacity bound.
// Caller holds s.mu.
func (s *Store) insert(key string, rec harness.Record) {
	if el, ok := s.byKey[key]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*storeEntry).rec = rec
		return
	}
	s.byKey[key] = s.ll.PushFront(&storeEntry{key: key, rec: rec})
	if s.cap > 0 {
		for s.ll.Len() > s.cap {
			el := s.ll.Back()
			s.ll.Remove(el)
			delete(s.byKey, el.Value.(*storeEntry).key)
			s.evictions++
		}
	}
}

// cachePath maps a spec hash to its persistence file.  Hashes are
// lowercase hex by construction; anything else is rejected so a
// hand-crafted key can never escape the cache directory.
func cachePath(dir, key string) (string, bool) {
	if key == "" {
		return "", false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", false
		}
	}
	return filepath.Join(dir, key+".json"), true
}

func (s *Store) load(dir, key string) (harness.Record, bool) {
	p, ok := cachePath(dir, key)
	if !ok {
		return harness.Record{}, false
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return harness.Record{}, false
	}
	var rec harness.Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return harness.Record{}, false // corrupt file: treat as a miss
	}
	return rec, true
}

// save persists a record as a JSON file, written to a temp name and
// renamed so concurrent readers never observe a torn write.  The
// returned error is the caller's signal to degrade the disk tier.
func (s *Store) save(dir, key string, rec harness.Record) error {
	p, ok := cachePath(dir, key)
	if !ok {
		return nil // unhashlike key: nothing to persist, not a disk fault
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return nil // unserializable record is not a disk fault
	}
	tmp, err := os.CreateTemp(dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
