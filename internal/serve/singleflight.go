package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/harness"
)

// flightGroup collapses concurrent duplicate computations: while one
// caller is computing the record for a key, every other caller of the
// same key blocks and shares the one result instead of burning CPU on
// an identical deterministic run.  Completed flights are forgotten —
// durable memoization is the Store's job; the group only deduplicates
// work that is literally in flight.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	waiters atomic.Int32 // callers blocked on done (observability + tests)
	rec     harness.Record
	err     error
}

// do invokes fn once among concurrent callers of the same key and hands
// everyone the same (record, error).  shared reports whether this
// caller got another flight's result.  Callers that arrive after a
// flight completed start a new one — pair do with a store re-check
// inside fn to keep "compute exactly once" across that boundary.
func (g *flightGroup) do(key string, fn func() (harness.Record, error)) (rec harness.Record, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		c.waiters.Add(1)
		g.mu.Unlock()
		<-c.done
		return c.rec, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.rec, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.rec, c.err, false
}
