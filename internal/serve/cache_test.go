package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

func rec(n int64) harness.Record {
	return harness.Record{App: "app", Backend: "tmk", Scenario: "base", Procs: 8, TimeNS: n}
}

// key returns a syntactically valid (hex) test key.
func key(s string) string { return strings.Repeat("0", 8) + hexish(s) }

func hexish(s string) string {
	const digits = "0123456789abcdef"
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = digits[int(s[i])%16]
	}
	return string(out)
}

// TestStoreLRUEviction pins the capacity bound: least-recently-used
// entries fall out first, touched entries survive, and the eviction
// counter advances.
func TestStoreLRUEviction(t *testing.T) {
	s, err := NewStore(2, "")
	if err != nil {
		t.Fatal(err)
	}
	s.Put(key("a"), rec(1))
	s.Put(key("b"), rec(2))
	if _, ok := s.Get(key("a")); !ok { // touch a: b becomes LRU
		t.Fatal("a missing before capacity reached")
	}
	s.Put(key("c"), rec(3)) // evicts b
	if _, ok := s.Get(key("b")); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if r, ok := s.Get(key("a")); !ok || r != rec(1) {
		t.Fatalf("recently used entry a evicted (ok=%v rec=%+v)", ok, r)
	}
	if r, ok := s.Get(key("c")); !ok || r != rec(3) {
		t.Fatalf("newest entry c missing (ok=%v rec=%+v)", ok, r)
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

// TestStoreDiskPersistence checks the disk tier: a fresh store over the
// same directory answers from the persisted files (counted as disk
// hits), corrupt files degrade to misses, and keys that are not hex
// hashes never touch the filesystem.
func TestStoreDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(16, dir)
	if err != nil {
		t.Fatal(err)
	}
	s1.Put(key("a"), rec(7))

	s2, err := NewStore(16, dir)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := s2.Get(key("a"))
	if !ok || r != rec(7) {
		t.Fatalf("restarted store cold: ok=%v rec=%+v", ok, r)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.Hits != 1 {
		t.Fatalf("disk hit not counted: %+v", st)
	}
	// Promoted into memory: the second Get is a memory hit.
	if _, ok := s2.Get(key("a")); !ok {
		t.Fatal("promoted entry missing")
	}
	if st = s2.Stats(); st.DiskHits != 1 || st.Hits != 2 {
		t.Fatalf("promotion not effective: %+v", st)
	}

	// Eviction does not erase the disk tier: squeeze the entry out of a
	// tiny store and find it again on disk.
	s3, err := NewStore(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s3.Get(key("a")); !ok {
		t.Fatal("disk entry missing in tiny store")
	}
	s3.Put(key("b"), rec(8)) // evicts a from memory
	if _, ok := s3.Get(key("a")); !ok {
		t.Fatal("evicted entry lost from disk tier")
	}

	// Corrupt file: miss, not an error.
	bad := key("x")
	if err := os.WriteFile(filepath.Join(dir, bad+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(bad); ok {
		t.Fatal("corrupt persisted record served as a hit")
	}

	// Non-hex keys must not reach the filesystem.
	s2.Put("../escape", rec(9))
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape.json")); err == nil {
		t.Fatal("non-hex key escaped the cache directory")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), "escape") {
			t.Fatalf("non-hex key persisted as %q", e.Name())
		}
	}
}

// TestStoreDegradesOnDiskWriteFailure pins the disk-tier failure
// policy: when a write fails mid-flight (here the cache directory is
// replaced by a regular file, standing in for ENOSPC or a yanked
// mount), the store logs once, flags itself degraded, and keeps
// serving from memory — no error ever reaches a Put caller.
func TestStoreDegradesOnDiskWriteFailure(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s, err := NewStore(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	var logged []string
	s.Logf = func(format string, args ...any) {
		logged = append(logged, format)
	}

	s.Put(key("a"), rec(1))
	if _, err := os.Stat(filepath.Join(dir, key("a")+".json")); err != nil {
		t.Fatalf("healthy disk tier did not persist: %v", err)
	}

	// Yank the directory out from under the store.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	s.Put(key("b"), rec(2)) // write fails; store degrades
	if st := s.Stats(); !st.DiskDisabled {
		t.Fatal("store did not flag itself disk-disabled after a failed write")
	}
	if len(logged) != 1 {
		t.Fatalf("degrade logged %d times, want exactly once: %v", len(logged), logged)
	}
	if got, ok := s.Get(key("b")); !ok || got.TimeNS != 2 {
		t.Fatal("memory tier lost the record whose disk write failed")
	}
	if got, ok := s.Get(key("a")); !ok || got.TimeNS != 1 {
		t.Fatal("memory tier lost the pre-degrade record")
	}

	// Further writes stay memory-only and quiet.
	s.Put(key("c"), rec(3))
	if len(logged) != 1 {
		t.Fatalf("second failed write logged again: %v", logged)
	}
	if _, ok := s.Get(key("c")); !ok {
		t.Fatal("degraded store dropped a new record")
	}
}

// TestNewStoreUnwritableDir pins startup behavior: an unusable
// -cache-dir (a path under a regular file) is a hard error at
// construction, not a silent memory-only server.
func TestNewStoreUnwritableDir(t *testing.T) {
	base := t.TempDir()
	file := filepath.Join(base, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(0, filepath.Join(file, "cache")); err == nil {
		t.Fatal("NewStore accepted a cache dir under a regular file")
	}
}
