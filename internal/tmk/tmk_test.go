package tmk

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/vnet"
)

// world builds an engine + network + n-processor DSM for tests.
func world(n int) (*sim.Engine, *System) {
	eng := sim.NewEngine()
	net := vnet.New(vnet.FDDI())
	return eng, NewSystem(eng, net, n, DefaultConfig())
}

// runAll spawns the same body on every processor and runs to completion.
func runAll(t *testing.T, eng *sim.Engine, sys *System, body func(*Proc)) {
	t.Helper()
	for i := 0; i < sys.N(); i++ {
		sys.Spawn(i, body)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierPropagatesWrites(t *testing.T) {
	eng, sys := world(4)
	x := sys.Malloc(8)
	got := make([]float64, 4)
	runAll(t, eng, sys, func(p *Proc) {
		if p.ID() == 0 {
			p.WriteF64(x, 3.25)
		}
		p.Barrier(0)
		got[p.ID()] = p.ReadF64(x)
	})
	for i, v := range got {
		if v != 3.25 {
			t.Fatalf("proc %d read %v, want 3.25", i, v)
		}
	}
}

func TestBarrierMessageCount(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		eng, sys := world(n)
		sys.Malloc(8)
		runAll(t, eng, sys, func(p *Proc) {
			p.Barrier(0)
		})
		// Nothing was written, so the only traffic is the barrier itself:
		// (n-1) arrivals + (n-1) departures.
		want := int64(2 * (n - 1))
		if got := sys.Stats().Messages; got != want {
			t.Fatalf("n=%d: barrier cost %d messages, want %d", n, got, want)
		}
	}
}

func TestBarrierSequence(t *testing.T) {
	eng, sys := world(3)
	x := sys.Malloc(8)
	var sum float64
	runAll(t, eng, sys, func(p *Proc) {
		for round := 0; round < 5; round++ {
			if p.ID() == round%3 {
				p.WriteF64(x, p.ReadF64(x)+1)
			}
			p.Barrier(round)
		}
		if p.ID() == 1 {
			sum = p.ReadF64(x)
		}
	})
	if sum != 5 {
		t.Fatalf("sum = %v, want 5", sum)
	}
}

func TestLockMutualExclusionCounter(t *testing.T) {
	const n, rounds = 4, 10
	eng, sys := world(n)
	ctr := sys.Malloc(8)
	runAll(t, eng, sys, func(p *Proc) {
		for r := 0; r < rounds; r++ {
			p.LockAcquire(1)
			p.WriteI64(ctr, p.ReadI64(ctr)+1)
			p.LockRelease(1)
			p.Compute(sim.Millisecond) // stagger
		}
		p.Barrier(0)
		if got := p.ReadI64(ctr); got != n*rounds {
			t.Errorf("proc %d: counter = %d, want %d", p.ID(), got, n*rounds)
		}
	})
}

func TestLockLocalReacquireIsFree(t *testing.T) {
	eng, sys := world(2)
	x := sys.Malloc(8)
	runAll(t, eng, sys, func(p *Proc) {
		if p.ID() == 0 { // proc 0 manages lock 0 and owns it initially
			for i := 0; i < 5; i++ {
				p.LockAcquire(0)
				p.WriteI64(x, int64(i))
				p.LockRelease(0)
			}
		}
		p.Barrier(0)
	})
	// The whole run's wire traffic must be the single barrier (2 messages
	// for n=2): every lock acquire was a free local reacquire.
	if got := sys.Stats().Messages; got != 2 {
		t.Fatalf("run cost %d messages, want 2 (barrier only)", got)
	}
}

// TestLockForwardingChain: manager forwards to the last requester even
// when that processor has not finished with the lock yet.
func TestLockForwardingChain(t *testing.T) {
	const n = 3
	eng, sys := world(n)
	x := sys.Malloc(8)
	order := []int64{}
	runAll(t, eng, sys, func(p *Proc) {
		// Stagger so requests arrive in id order while the lock is busy.
		p.Compute(sim.Time(p.ID()) * 100 * sim.Microsecond)
		p.LockAcquire(5)
		order = append(order, int64(p.ID()))
		p.WriteI64(x, p.ReadI64(x)*10+int64(p.ID())+1)
		p.Compute(10 * sim.Millisecond) // hold while others queue
		p.LockRelease(5)
		p.Barrier(0)
		if p.ID() == 0 {
			got := p.ReadI64(x)
			// Each holder appended its digit: value encodes the sequence.
			var want int64
			for _, id := range order {
				want = want*10 + id + 1
			}
			if got != want {
				t.Errorf("x = %d, want %d (order %v)", got, want, order)
			}
		}
	})
	if len(order) != n {
		t.Fatalf("order = %v", order)
	}
}

// TestMultipleWriterFalseSharing: two processors write disjoint halves of
// the same page concurrently; after the barrier both see both halves.
func TestMultipleWriterFalseSharing(t *testing.T) {
	eng, sys := world(2)
	arr := sys.Malloc(16) // two int64s, same page
	a := arr
	b := arr + 8
	runAll(t, eng, sys, func(p *Proc) {
		if p.ID() == 0 {
			p.WriteI64(a, 111)
		} else {
			p.WriteI64(b, 222)
		}
		p.Barrier(0)
		if got := p.ReadI64(a); got != 111 {
			t.Errorf("proc %d: a = %d", p.ID(), got)
		}
		if got := p.ReadI64(b); got != 222 {
			t.Errorf("proc %d: b = %d", p.ID(), got)
		}
	})
}

// TestDiffAccumulation reproduces the IS pathology: a page rewritten under
// a lock by each processor in turn accumulates one diff per predecessor,
// all of which are shipped to the next acquirer.
func TestDiffAccumulation(t *testing.T) {
	const n = 4
	eng, sys := world(n)
	cfg := DefaultConfig()
	vals := sys.Malloc(cfg.PageSize) // one full page of data
	nvals := cfg.PageSize / 8
	var lastApplied int
	runAll(t, eng, sys, func(p *Proc) {
		p.Compute(sim.Time(p.ID()) * 10 * sim.Millisecond) // serialize acquires
		p.LockAcquire(1)
		arr := p.I64Array(vals, nvals)
		before := p.DiffsApplied
		// Overwrite the whole page.
		for i := 0; i < nvals; i++ {
			arr.Set(i, int64(p.ID()*1000+i))
		}
		applied := p.DiffsApplied - before
		if p.ID() == n-1 {
			lastApplied = applied
		}
		p.LockRelease(1)
		p.Barrier(0)
	})
	// The last acquirer must have applied one diff per preceding writer,
	// even though they completely overlap (diff accumulation).
	if lastApplied != n-1 {
		t.Fatalf("last acquirer applied %d diffs, want %d", lastApplied, n-1)
	}
}

// TestMinimalDiffRequestSet: with a causal chain of writers, the faulting
// processor asks only the most recent writer (whose interval dominates),
// not every writer.
func TestMinimalDiffRequestSet(t *testing.T) {
	const n = 4
	eng, sys := world(n)
	page := sys.Malloc(4096)
	reqs := make([]int, n)
	runAll(t, eng, sys, func(p *Proc) {
		p.Compute(sim.Time(p.ID()) * 10 * sim.Millisecond)
		p.LockAcquire(1)
		p.WriteI64(page+Addr(8*p.ID()), int64(p.ID()+1))
		p.LockRelease(1)
		p.Barrier(0)
		// Everyone reads the page: one fault each (except writers of the
		// final interval who are already valid... all were invalidated by
		// the barrier except the last writer).
		before := p.DiffRequests
		_ = p.ReadI64(page)
		reqs[p.ID()] = p.DiffRequests - before
		p.Barrier(1)
	})
	for i, r := range reqs {
		if i == n-1 {
			if r != 0 {
				t.Errorf("last writer should not fault on its own page: %d requests", r)
			}
			continue
		}
		if r != 1 {
			t.Errorf("proc %d sent %d diff requests, want 1 (chain dominance)", i, r)
		}
	}
}

func TestInitDataVisibleEverywhereFree(t *testing.T) {
	eng, sys := world(3)
	a := sys.Malloc(24)
	sys.InitF64(a, []float64{1.5, 2.5, 3.5})
	runAll(t, eng, sys, func(p *Proc) {
		arr := p.F64Array(a, 3)
		if arr.At(0) != 1.5 || arr.At(1) != 2.5 || arr.At(2) != 3.5 {
			t.Errorf("proc %d sees %v %v %v", p.ID(), arr.At(0), arr.At(1), arr.At(2))
		}
	})
	if sys.Stats().Messages != 0 {
		t.Fatalf("initial data should be preloaded, not fetched: %d msgs", sys.Stats().Messages)
	}
}

func TestReadYourOwnWritesNoTraffic(t *testing.T) {
	eng, sys := world(2)
	a := sys.Malloc(4096)
	runAll(t, eng, sys, func(p *Proc) {
		if p.ID() == 0 {
			arr := p.I64Array(a, 512)
			for i := 0; i < 512; i++ {
				arr.Set(i, int64(i))
			}
			if sys.Stats().Messages != 0 {
				t.Errorf("private-phase writes caused traffic")
			}
			for i := 0; i < 512; i++ {
				if arr.At(i) != int64(i) {
					t.Fatalf("read back %d", arr.At(i))
				}
			}
		}
		p.Barrier(0)
	})
}

// TestWriterKeepsPageValidAfterBarrier: the writer of the latest interval
// does not fault on its own data (no write notices against itself).
func TestWriterKeepsPageValidAfterBarrier(t *testing.T) {
	eng, sys := world(2)
	a := sys.Malloc(8)
	runAll(t, eng, sys, func(p *Proc) {
		if p.ID() == 0 {
			p.WriteI64(a, 7)
		}
		p.Barrier(0)
		if p.ID() == 0 {
			before := p.Faults
			if p.ReadI64(a) != 7 {
				t.Error("writer lost its own write")
			}
			if p.Faults != before {
				t.Error("writer faulted on its own page")
			}
		}
	})
}

func TestSORBoundaryExchangePattern(t *testing.T) {
	// One writer, one reader across a page boundary, several iterations:
	// per iteration the reader faults once and sends one diff request,
	// and barrier costs 2*(n-1) messages.
	const iters = 5
	eng, sys := world(2)
	row := sys.Malloc(4096)
	runAll(t, eng, sys, func(p *Proc) {
		for it := 0; it < iters; it++ {
			if p.ID() == 0 {
				p.WriteF64(row, float64(it+1))
			}
			p.Barrier(it)
			if p.ID() == 1 {
				if got := p.ReadF64(row); got != float64(it+1) {
					t.Errorf("iter %d: read %v", it, got)
				}
			}
		}
	})
	// Expected wire messages: iters * (2 barrier msgs for n=2) for sync
	// plus iters * 2 for diff request/response.
	want := int64(iters*2 + iters*2)
	if got := sys.Stats().Messages; got != want {
		t.Fatalf("messages = %d, want %d", got, want)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (vnet.Stats, sim.Time) {
		eng, sys := world(4)
		a := sys.Malloc(4096 * 2)
		for i := 0; i < 4; i++ {
			sys.Spawn(i, func(p *Proc) {
				arr := p.I64Array(a, 1024)
				for r := 0; r < 3; r++ {
					p.LockAcquire(0)
					arr.Set(p.ID(), arr.At(p.ID())+1)
					p.LockRelease(0)
					p.Barrier(r)
					_ = arr.At((p.ID() + 1) % 4)
					p.Barrier(100 + r)
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.Stats(), eng.MaxPrimaryClock()
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Fatalf("nondeterministic: %+v/%v vs %+v/%v", s1, t1, s2, t2)
	}
}

func TestViewBoundsPanics(t *testing.T) {
	eng, sys := world(1)
	a := sys.Malloc(16)
	sys.Spawn(0, func(p *Proc) {
		arr := p.I64Array(a, 2)
		defer func() {
			if recover() == nil {
				t.Error("expected bounds panic")
			}
		}()
		arr.At(2)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMisalignedAccessPanics(t *testing.T) {
	eng, sys := world(1)
	sys.Malloc(64)
	sys.Spawn(0, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected alignment panic")
			}
		}()
		p.ReadF64(Addr(4)) // 8-byte read at 4-byte offset
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfSpaceAccessPanics(t *testing.T) {
	eng, sys := world(1)
	sys.Malloc(8)
	sys.Spawn(0, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected out-of-space panic")
			}
		}()
		p.ReadI64(Addr(8))
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadStoreAcrossPages(t *testing.T) {
	eng, sys := world(2)
	const n = 1500 // spans ~3 pages of float64
	a := sys.Malloc(8 * n)
	runAll(t, eng, sys, func(p *Proc) {
		arr := p.F64Array(a, n)
		if p.ID() == 0 {
			src := make([]float64, n)
			for i := range src {
				src[i] = float64(i) * 0.5
			}
			arr.Store(src, 0)
		}
		p.Barrier(0)
		if p.ID() == 1 {
			dst := make([]float64, n)
			arr.Load(dst, 0, n)
			for i := range dst {
				if dst[i] != float64(i)*0.5 {
					t.Fatalf("dst[%d] = %v", i, dst[i])
				}
			}
		}
	})
}

func TestDoubleAcquirePanics(t *testing.T) {
	eng, sys := world(1)
	sys.Malloc(8)
	sys.Spawn(0, func(p *Proc) {
		p.LockAcquire(0)
		defer func() {
			if recover() == nil {
				t.Error("expected double-acquire panic")
			}
		}()
		p.LockAcquire(0)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseWithoutHoldPanics(t *testing.T) {
	eng, sys := world(1)
	sys.Malloc(8)
	sys.Spawn(0, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected release panic")
			}
		}()
		p.LockRelease(3)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestMallocAlignment checks 8-byte alignment and non-overlap.
func TestMallocAlignment(t *testing.T) {
	_, sys := world(1)
	a := sys.Malloc(3)
	b := sys.Malloc(5)
	c := sys.Malloc(8)
	if a%8 != 0 || b%8 != 0 || c%8 != 0 {
		t.Fatalf("alignment: %d %d %d", a, b, c)
	}
	if b < a+3 || c < b+5 {
		t.Fatalf("overlap: %d %d %d", a, b, c)
	}
}

// TestLazyDiffsOnlyOnRequest: a processor that never touches modified
// data receives no diffs (lazy release consistency), only write notices.
func TestLazyDiffsOnlyOnRequest(t *testing.T) {
	eng, sys := world(3)
	a := sys.Malloc(4096 * 4)
	runAll(t, eng, sys, func(p *Proc) {
		if p.ID() == 0 {
			arr := p.I64Array(a, 2048)
			for i := 0; i < 2048; i++ {
				arr.Set(i, int64(i))
			}
		}
		p.Barrier(0)
		if p.ID() == 1 {
			_ = p.ReadI64(a) // touches only the first page
		}
		// Proc 2 never reads: must receive zero diff bytes.
		p.Barrier(1)
		if p.ID() == 2 && p.DiffBytes != 0 {
			t.Errorf("idle proc received %d diff bytes", p.DiffBytes)
		}
		if p.ID() == 1 && p.DiffRequests != 1 {
			t.Errorf("reader sent %d diff requests, want 1 (one page)", p.DiffRequests)
		}
	})
}

// TestWaitTimeAccounting: lock contention shows up in LockWait; barrier
// stalls in BarrierWait.
func TestWaitTimeAccounting(t *testing.T) {
	eng, sys := world(2)
	x := sys.Malloc(8)
	var lockWait, barrWait sim.Time
	runAll(t, eng, sys, func(p *Proc) {
		if p.ID() == 1 {
			// Proc 1 acquires a lock proc 0 holds for 50ms.
			p.Ctx().Compute(time5ms)
			p.LockAcquire(0)
			p.WriteI64(x, 1)
			p.LockRelease(0)
			lockWait = p.LockWait
		} else {
			p.LockAcquire(0)
			p.Compute(50 * sim.Millisecond)
			p.LockRelease(0)
		}
		p.Barrier(0)
		if p.ID() == 0 {
			barrWait = p.BarrierWait
		}
	})
	if lockWait < 30*sim.Millisecond {
		t.Fatalf("lock wait = %v, want >= 30ms of contention", lockWait)
	}
	if barrWait == 0 {
		t.Fatal("expected nonzero barrier wait")
	}
}

const time5ms = 5 * sim.Millisecond
