// Package tmk reimplements the TreadMarks software distributed shared
// memory system (paper §2.2) on the simulated cluster.
//
// TreadMarks provides a shared paged address space over physically
// distributed memories.  Consistency follows the lazy invalidate version
// of release consistency: a processor's execution is divided into
// intervals delimited by synchronization operations; intervals carry
// vector timestamps and write notices; acquiring a lock (or departing a
// barrier) delivers the write notices of all causally preceding intervals
// and invalidates the named pages; the first access to an invalidated
// page faults, fetches the missing diffs from a minimal set of previous
// writers, and applies them in happens-before order.  Concurrent writers
// to disjoint parts of a page are merged through diffs (the multiple-
// writer protocol), mitigating false sharing.
//
// Where the original uses virtual-memory protection to detect accesses,
// this implementation uses software access checks on every typed access
// (see views.go): Go's garbage-collected runtime does not tolerate
// mprotect games on its heap.  The protocol actions triggered are
// identical; only the detection mechanism differs.
//
// Synchronization: Tmk_barrier(i) == (*Proc).Barrier(i),
// Tmk_lock_acquire(i) == (*Proc).LockAcquire(i), Tmk_lock_release(i) ==
// (*Proc).LockRelease(i), Tmk_malloc == (*System).Malloc.  Locks have a
// statically assigned manager (id mod nprocs) that forwards acquire
// requests to the last requester; a release sends no message.  Barriers
// have a centralized manager (processor 0); an n-processor barrier costs
// 2*(n-1) messages.
//
// Each processor runs two simulated threads: the application thread and a
// service daemon that answers lock and diff requests, standing in for the
// SIGIO-driven request handlers of the real system.
//
// # Fault-path layout
//
// The protocol state backing the fault path is fully indexed; nothing on
// it scans or hashes:
//
//   - Diffs live per page, per writer, densely indexed by interval idx
//     (writerDiffs): fault, handleDiffReq and applyPending look a diff up
//     in O(1).  A processor's interval idxs only grow, so each store is a
//     base-offset slice.
//   - applyPending orders pending write notices by merging per-writer
//     head cursors (notices of one writer are already totally ordered);
//     readiness is a single vector-clock component test.  Application is
//     linear in the common single-writer case.
//   - Protocol messages travel as structured objects with modeled wire
//     sizes (vnet.SendObj); the encoders in wire.go remain the documented
//     wire format and are pinned against the size functions by test.
//     Interval records and diffs are immutable once published and are
//     shared between processors rather than re-decoded.
//   - Per-fault scratch (missing-notice list, cover targets, request
//     objects, apply cursors) is recycled on the Proc; long-lived records
//     and diffs are carved from a per-processor memArena.
//
// # Fault model
//
// TreadMarks runs over UDP, so when the network's fault injection is
// lossy (vnet.FaultConfig.Lossy) the protocol arms an at-least-once RPC
// layer on every request/reply pair — lock acquire/grant, barrier
// arrive/depart, diff request/response:
//
//   - Every request carries a per-processor monotonic sequence number
//     (header-resident, see wire.go); replies echo it.
//   - The requester retransmits on timeout with exponential backoff:
//     Config.RetransBase doubling up to Config.RetransCap (defaults
//     derive from the network round trip).  Stale replies — duplicates
//     whose Seq does not match the outstanding request — are discarded.
//   - Servers suppress duplicate requests: the manager re-forwards a
//     retransmitted acquire to its original target, a grantor or the
//     barrier manager resends its cached reply when the retransmission
//     matches the request it last answered, and anything older is
//     dropped (the requester has provably moved on).
//
// The eager-invalidate broadcast (invMsg) has no reply and is not
// retransmitted: a lost notice is repaired at the next synchronization
// operation, whose grant or departure piggybacks every record the
// receiver's timestamp does not cover; a notice that arrives ahead of a
// lost predecessor is buffered until the gap fills (see admitRecord).
// Retransmitted traffic is charged to vnet Stats.Retrans, never the
// paper's message/byte columns, and the timeout count is surfaced as the
// Proc.Timeouts counter.  With a fault-free network none of this runs:
// sequence numbers stay zero and every receive is the plain blocking
// Recv, so results are byte-identical to the pre-fault protocol.
//
// # Large-P variants
//
// The paper's testbed stops at 8 processors; the procs=64/256 scenario
// family runs the same protocol at counts where its centralized pieces
// become the story.  Vector timestamps are stored sparsely (vc.go) so
// per-access protocol cost scales with the number of active writers a
// processor has heard from, not with P; the wire encoding stays dense,
// so modeled message sizes are unchanged (a sparse wire delta encoding
// is the documented follow-on, and a model change).  Two Config knobs
// restructure the message flow itself:
//
//   - TreeBarrier replaces the centralized barrier with a radix-k
//     combining tree: arrivals aggregate up it (merged timestamp,
//     pointwise-minimum timestamp, deduplicated record union) and
//     departures fan back down with per-subtree record filtering.  The
//     2(n-1) message floor of a barrier is inherent; the tree removes
//     the manager's O(n) serial work and, at large P, the MTU
//     fragmentation of full-union departures.
//   - TreeFanout routes the eager-invalidate broadcast through a
//     writer-rooted radix-k multicast tree, bounding any node's serial
//     send burst at k.  Relays break the one-hop uniform-latency
//     argument that made flat delivery causally ordered, so this knob
//     also arms causal admission buffering (System.causalAdmit).
//
// CentralLockMgr and SpreadBarrierMgr move the static manager
// placements (locks round-robin, barriers on processor 0 by default)
// to the extremes the `placement` scenario axis sweeps.
//
// All four are variants, not defaults: the paper's protocol is the
// centralized one, the pinned goldens certify the modeled metrics of
// exactly that protocol, and the variants exist to measure what each
// restructuring buys at processor counts the paper never reached
// (backends tmk-tree and tmk-sc-tree, scenario sets bigp and
// placement).
package tmk

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/vnet"
)

// Addr is an offset into the shared address space.
type Addr int

// Config carries the DSM cost model and layout parameters.
type Config struct {
	PageSize          int      // bytes per shared page
	FaultOverhead     sim.Time // trap + handler entry on an access fault
	TwinPerByte       sim.Time // copy cost when twinning a page
	DiffCreatePerByte sim.Time // page comparison cost at interval close
	DiffApplyPerByte  sim.Time // cost of applying received diff payload
	HandlerOverhead   sim.Time // service-side cost per handled request

	// EagerInvalidate switches the consistency protocol from the paper's
	// lazy release consistency to an eager-invalidate variant: every
	// interval close (lock release, barrier arrival) broadcasts its write
	// notices to all other processors immediately, instead of letting
	// them piggyback on the next grant or barrier departure.  Receivers
	// invalidate as soon as the notice arrives (deferred only while the
	// named page is mid-write locally, see handleInval), so reads see
	// remote updates at the earliest sequentially-consistent-like point
	// rather than at the next acquire.  This is the one-knob ablation for
	// the cost of eagerness: same applications, strictly more messages.
	EagerInvalidate bool

	// TreeBarrier selects the combining-tree barrier: arrivals aggregate
	// up a radix-k tree rooted at processor 0 (parent(i) = (i-1)/k) and
	// departures fan back down it, instead of every client exchanging
	// messages with the centralized manager.  Each upward edge carries
	// the subtree's merged timestamp, its pointwise-minimum timestamp,
	// and the deduplicated union of its write-notice batches; each
	// downward edge carries only the records some member of the target
	// subtree lacks, minus what the subtree itself announced.  The
	// barrier still costs 2(n-1) logical messages — that floor is
	// inherent, every non-root processor must sync once up and once down
	// — but large departures drop below the MTU fragmentation threshold,
	// so the wire message count falls at large P.  Zero keeps the
	// paper's centralized manager; k must be >= 2 otherwise.  This is a
	// protocol variant (tmk-tree), not a default: it legitimately
	// changes modeled message counts, which the pinned paper grid must
	// not.  Mutually exclusive with SpreadBarrierMgr, and unsupported on
	// a lossy network (the at-least-once layer covers only the
	// client/manager RPC shape).
	TreeBarrier int

	// TreeFanout routes the eager-invalidate broadcast through a
	// radix-k multicast tree rooted at the writer (position q relabels
	// to (q-writer) mod n) instead of the writer sending n-1 messages
	// itself: receivers forward the shared invMsg to their tree
	// children.  Total messages and bytes are unchanged — n-1 copies
	// still cross the wire — but the writer's serial send burst
	// collapses to k sends, so interval close stops being an O(P)
	// stall.  Zero keeps the flat loop; k must be >= 2 otherwise.
	// Only meaningful with EagerInvalidate (tmk-sc-tree).
	TreeFanout int

	// CentralLockMgr statically places every lock's manager on
	// processor 0 instead of the default spread assignment (id mod n) —
	// one half of the manager-placement scenario axis.  First acquires
	// all contact processor 0; steady-state forwarding is unchanged.
	CentralLockMgr bool

	// SpreadBarrierMgr assigns barrier id's manager to processor id mod
	// n instead of the default processor 0 — the other half of the
	// placement axis.  Distinct barrier ids then spread their arrival
	// bursts across processors.  Safe without overlap handling: a
	// client only arrives at its next barrier after receiving the
	// departure of the previous one, so two barriers managed by the
	// same processor cannot be simultaneously open.
	SpreadBarrierMgr bool

	// RetransBase and RetransCap tune the at-least-once RPC layer armed
	// when the network's fault injection is lossy: the first retransmit
	// fires RetransBase after a request, doubling per retry up to
	// RetransCap.  Zero values derive defaults from the network cost
	// model (4x a minimal round trip, capped at 16x that).
	RetransBase sim.Time
	RetransCap  sim.Time
}

// DefaultConfig models a mid-1990s HP PA-RISC workstation (4 KB pages).
func DefaultConfig() Config {
	return Config{
		PageSize:          4096,
		FaultOverhead:     50 * sim.Microsecond,
		TwinPerByte:       4 * sim.Nanosecond, // ~16 µs to twin a 4 KB page
		DiffCreatePerByte: 4 * sim.Nanosecond,
		DiffApplyPerByte:  4 * sim.Nanosecond,
		HandlerOverhead:   30 * sim.Microsecond,
	}
}

// System is one TreadMarks cluster: a shared address space layout plus n
// processors.  Allocate shared memory with Malloc and optionally preload
// it with Init* before spawning processor bodies.
type System struct {
	eng     *sim.Engine
	net     *vnet.Network
	cfg     Config
	n       int
	brk     Addr
	procs   []*Proc
	started bool
	initial map[int][]byte // page -> preloaded contents

	// At-least-once RPC layer, armed only when the network can lose,
	// duplicate or reorder messages (see the package fault-model doc).
	reliable bool
	// causalAdmit buffers eager notices that arrive ahead of records
	// their timestamp covers (admitRecord).  Armed with reliable (loss
	// reorders notices) and with TreeFanout: a relayed notice crosses
	// several hops while a causally-earlier notice from a different
	// writer may still be mid-relay in its own tree, so one-hop
	// uniform-latency delivery no longer implies causal delivery.
	causalAdmit bool
	rBase, rCap sim.Time // retransmit timeout: base, doubling cap
}

// NewSystem creates a TreadMarks system with n processors on net.
func NewSystem(eng *sim.Engine, net *vnet.Network, n int, cfg Config) *System {
	if n < 1 {
		panic("tmk: need at least one processor")
	}
	if cfg.PageSize <= 0 || cfg.PageSize%8 != 0 {
		panic("tmk: page size must be a positive multiple of 8")
	}
	if cfg.TreeBarrier != 0 && cfg.TreeBarrier < 2 {
		panic("tmk: TreeBarrier radix must be >= 2")
	}
	if cfg.TreeFanout != 0 && cfg.TreeFanout < 2 {
		panic("tmk: TreeFanout radix must be >= 2")
	}
	if cfg.TreeBarrier != 0 && cfg.SpreadBarrierMgr {
		panic("tmk: TreeBarrier and SpreadBarrierMgr are mutually exclusive")
	}
	s := &System{eng: eng, net: net, cfg: cfg, n: n, initial: map[int][]byte{}}
	nc := net.Config()
	s.reliable = nc.Faults.Lossy()
	s.causalAdmit = s.reliable || cfg.TreeFanout != 0
	if cfg.TreeBarrier != 0 && s.reliable {
		// The at-least-once layer retransmits the client/manager RPC
		// shape; the tree's hop-by-hop aggregation has no reply per
		// edge to time out on.  Keep the variant honest instead of
		// silently unreliable.
		panic("tmk: TreeBarrier requires a fault-free network")
	}
	if s.reliable {
		s.rBase = cfg.RetransBase
		if s.rBase == 0 {
			rtt := 2 * (nc.SendOverhead + nc.Latency + nc.RecvOverhead)
			s.rBase = 4 * rtt
			if s.rBase < 4*sim.Millisecond {
				s.rBase = 4 * sim.Millisecond
			}
		}
		s.rCap = cfg.RetransCap
		if s.rCap == 0 {
			s.rCap = 16 * s.rBase
		}
	}
	for i := 0; i < n; i++ {
		p := &Proc{
			sys:       s,
			id:        i,
			ep:        net.NewEndpoint(i, true),
			srv:       net.NewEndpoint(i, true),
			vc:        NewVC(n),
			locks:     map[int]*plock{},
			recs:      make([][]*IntervalRec, n),
			lastMgrVC: NewVC(n),
			faultPg:   -1,
		}
		switch {
		case cfg.TreeBarrier != 0:
			// Tree mode: aggregation state lives on every processor
			// with children, and on the root even when childless (n=1).
			if kids := s.treeKids(i); kids > 0 || i == 0 {
				p.tree = &treeBarrState{id: -1, arr: make([]*treeArrMsg, 1+kids)}
			}
		case cfg.SpreadBarrierMgr:
			p.barrier = &barrierState{id: -1} // any proc can manage some barrier id
		case i == 0:
			p.barrier = &barrierState{id: -1}
		}
		s.procs = append(s.procs, p)
	}
	return s
}

// treeKids returns how many combining-tree children processor i has
// under the configured radix: the ids k*i+1 .. k*i+k that exist.
func (s *System) treeKids(i int) int {
	k := s.cfg.TreeBarrier
	lo := k*i + 1
	if lo >= s.n {
		return 0
	}
	hi := lo + k
	if hi > s.n {
		hi = s.n
	}
	return hi - lo
}

// barrierMgr returns the managing processor of barrier id under the
// configured placement (centralized barrier protocol only).
func (s *System) barrierMgr(id int) int {
	if s.cfg.SpreadBarrierMgr {
		return id % s.n
	}
	return 0
}

// N returns the number of processors.
func (s *System) N() int { return s.n }

// Proc returns processor id's state (behavioral counters, etc.).
func (s *System) Proc(id int) *Proc { return s.procs[id] }

// PageSize returns the configured page size.
func (s *System) PageSize() int { return s.cfg.PageSize }

// Malloc allocates size bytes of shared memory (Tmk_malloc).  Allocations
// are 8-byte aligned and must happen before Spawn bodies run; the layout
// is global, so every processor sees the same addresses.
func (s *System) Malloc(size int) Addr {
	if s.started {
		panic("tmk: Malloc after start")
	}
	if size < 0 {
		panic("tmk: negative allocation")
	}
	a := s.brk
	s.brk += Addr((size + 7) &^ 7)
	return a
}

// MallocPageAligned allocates size bytes starting on a fresh page, so the
// allocation shares no page with earlier ones (used by applications that
// isolate a hot structure, e.g. a counter, from bulk data).
func (s *System) MallocPageAligned(size int) Addr {
	ps := Addr(s.cfg.PageSize)
	if rem := s.brk % ps; rem != 0 {
		s.brk += ps - rem
	}
	return s.Malloc(size)
}

// Pages returns the number of pages spanned by the current allocations.
func (s *System) Pages() int {
	return (int(s.brk) + s.cfg.PageSize - 1) / s.cfg.PageSize
}

// InitBytes preloads shared memory with initial contents, replicated on
// every processor at no modeled cost.  The paper's measurements exclude
// initial data distribution (e.g. SOR's first iteration, FFT's initial
// value distribution); preloading models that exclusion.
func (s *System) InitBytes(a Addr, b []byte) {
	if s.started {
		panic("tmk: InitBytes after start")
	}
	ps := s.cfg.PageSize
	for i := 0; i < len(b); {
		pg := (int(a) + i) / ps
		off := (int(a) + i) % ps
		n := ps - off
		if n > len(b)-i {
			n = len(b) - i
		}
		dst := s.initial[pg]
		if dst == nil {
			dst = make([]byte, ps)
			s.initial[pg] = dst
		}
		copy(dst[off:], b[i:i+n])
		i += n
	}
}

// InitF64 preloads a float64 slice at address a.
func (s *System) InitF64(a Addr, vals []float64) {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		putF64(b[8*i:], v)
	}
	s.InitBytes(a, b)
}

// InitI32 preloads an int32 slice at address a.
func (s *System) InitI32(a Addr, vals []int32) {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		putU32(b[4*i:], uint32(v))
	}
	s.InitBytes(a, b)
}

// InitI64 preloads an int64 slice at address a.
func (s *System) InitI64(a Addr, vals []int64) {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		putU64(b[8*i:], uint64(v))
	}
	s.InitBytes(a, b)
}

// Spawn registers the application body for processor id and starts its
// service daemon.  Call once per processor, then eng.Run().
func (s *System) Spawn(id int, body func(*Proc)) {
	if id < 0 || id >= s.n {
		panic(fmt.Sprintf("tmk: spawn id %d out of range", id))
	}
	s.started = true
	p := s.procs[id]
	// The application thread and the service daemon share the processor's
	// state (page table, diff store, lock table): the same engine group
	// keeps them off concurrent goroutines in parallel mode.
	s.eng.SpawnGroup(fmt.Sprintf("tmk%d", id), false, id, func(c *sim.Ctx) {
		p.app = c
		p.initPages()
		body(p)
	})
	s.eng.SpawnGroup(fmt.Sprintf("tmk%d.srv", id), true, id, func(c *sim.Ctx) {
		p.serve(c)
	})
}

// Stats returns the wire-level traffic totals: the UDP message and data
// counts the paper reports for TreadMarks.
func (s *System) Stats() vnet.Stats { return s.net.WireStats() }

// page is one processor's copy of a shared page.
type page struct {
	data  []byte        // nil means all-zero (never written locally)
	valid bool          // false: must fetch missing diffs before access
	twin  []byte        // pre-modification copy; non-nil while dirty
	wn    []diffWant    // write notices not yet applied locally
	dw    []writerDiffs // held diffs, one slot per writer; nil until first store
}

// writerDiffs holds the diffs one processor stores for one page from one
// writer, indexed densely by interval idx.  Both producers insert with
// increasing idx per (page, writer) — closeInterval files own diffs as the
// interval counter advances, and fault files fetched diffs in write-notice
// order, which applyRecords keeps contiguous per writer — so the store is
// a base-offset slice with nil holes for intervals that left no diff here.
// Lookup is O(1), replacing the former global map keyed by
// (page, proc, idx).
type writerDiffs struct {
	base int32
	ds   []*Diff
}

func (w *writerDiffs) get(idx int) *Diff {
	i := idx - int(w.base)
	if i < 0 || i >= len(w.ds) {
		return nil
	}
	return w.ds[i]
}

func (w *writerDiffs) put(idx int, d *Diff, a *memArena) {
	if len(w.ds) == 0 {
		w.base = int32(idx)
		if w.ds == nil {
			w.ds = a.newDiffSlots(8)
		}
		w.ds = append(w.ds, d)
		return
	}
	i := idx - int(w.base)
	if i < 0 {
		// The protocol's insert paths only ever grow idx per (page,
		// writer); a lower idx means that invariant broke upstream.
		panic(fmt.Sprintf("tmk: diff store insert at idx %d below base %d", idx, w.base))
	}
	for len(w.ds) <= i {
		w.ds = append(w.ds, nil)
	}
	w.ds[i] = d
}

// diffOf returns the diff this processor holds for (pg, writer proc,
// interval idx), or nil.
func (p *Proc) diffOf(pg *page, proc, idx int) *Diff {
	if pg.dw == nil {
		return nil
	}
	return pg.dw[proc].get(idx)
}

// storeDiff files d as the diff of (writer proc, interval idx) for pg.
func (p *Proc) storeDiff(pg *page, proc, idx int, d *Diff) {
	if pg.dw == nil {
		pg.dw = make([]writerDiffs, p.sys.n)
	}
	pg.dw[proc].put(idx, d, &p.arena)
}

// memArena batches the allocations behind long-lived protocol state: Diff
// headers and Runs arrays (created locally or received in diff responses),
// run payload bytes, and the IntervalRec/VC/page-list triples decoded from
// grant and barrier messages.  All of it is (almost always) permanent —
// a processor holds every diff it has created or fetched and every
// interval record it has learned — so the arena only amortizes
// allocation; it never reclaims.  Carving always moves forward through a
// freshly allocated chunk, so carved memory starts zeroed and is never
// handed out twice.
type memArena struct {
	hdrs  []Diff
	runs  []Run
	bytes []byte
	recs  []IntervalRec
	vcs   []int32
	pages []int
	slots []*Diff
}

func (a *memArena) newDiff() *Diff {
	if len(a.hdrs) == 0 {
		a.hdrs = make([]Diff, 64)
	}
	d := &a.hdrs[0]
	a.hdrs = a.hdrs[1:]
	return d
}

// newRuns returns an empty capacity-n Run slice carved from the arena.
func (a *memArena) newRuns(n int) []Run {
	if n > len(a.runs) {
		a.runs = make([]Run, max(256, n))
	}
	s := a.runs[:n:n]
	a.runs = a.runs[n:]
	return s[:0]
}

// cloneBytes copies b into arena storage.
func (a *memArena) cloneBytes(b []byte) []byte {
	if len(b) > len(a.bytes) {
		a.bytes = make([]byte, max(1<<16, len(b)))
	}
	s := a.bytes[:len(b):len(b)]
	a.bytes = a.bytes[len(b):]
	copy(s, b)
	return s
}

func (a *memArena) newRec() *IntervalRec {
	if len(a.recs) == 0 {
		a.recs = make([]IntervalRec, 128)
	}
	r := &a.recs[0]
	a.recs = a.recs[1:]
	return r
}

// cloneVC copies v into arena storage: the sparse entry slices are
// carved as 2k int32s from the shared pool.  Carvings are exact-cap,
// so a later append on the clone reallocates instead of growing into
// pool memory.  Used for the immutable timestamp snapshots published
// in interval records and for the clones that reliable mode puts into
// retransmittable messages.
func (a *memArena) cloneVC(v VC) VC {
	k := len(v.ps)
	if k == 0 {
		return VC{n: v.n}
	}
	if 2*k > len(a.vcs) {
		a.vcs = make([]int32, max(4096, 2*k))
	}
	ps := a.vcs[:k:k]
	vs := a.vcs[k : 2*k : 2*k]
	a.vcs = a.vcs[2*k:]
	copy(ps, v.ps)
	copy(vs, v.vs)
	return VC{n: v.n, ps: ps, vs: vs}
}

// newPages returns an empty capacity-n page list carved from the arena.
func (a *memArena) newPages(n int) []int {
	if n > len(a.pages) {
		a.pages = make([]int, max(4096, n))
	}
	s := a.pages[:n:n]
	a.pages = a.pages[n:]
	return s[:0]
}

// newDiffSlots returns an empty capacity-n diff-pointer slice carved from
// the arena, seeding a writerDiffs store (growth past n falls back to the
// heap).
func (a *memArena) newDiffSlots(n int) []*Diff {
	if n > len(a.slots) {
		a.slots = make([]*Diff, max(1024, n))
	}
	s := a.slots[:n:n]
	a.slots = a.slots[n:]
	return s[:0]
}

// plock is a processor's view of one lock.
type plock struct {
	owned     bool     // this proc holds the token (may re-acquire locally)
	held      bool     // app thread is inside the critical section
	awaiting  bool     // acquire request outstanding
	releaseVC VC       // vc snapshot at the last release
	releaseAt sim.Time // virtual time of the last release
	nextGrant int      // queued requester (-1: none)
	nextVC    VC       // queued requester's vc
	mgrLast   int      // manager only: last processor to request the lock

	// Reliable-mode duplicate suppression (nil maps otherwise).
	nextSeq int         // queued requester's request Seq
	served  map[int]int // grantor: requester -> Seq of the last grant sent to it
	mgrSeen map[int]int // manager: requester -> latest request Seq handled
	mgrFwd  map[int]int // manager: requester -> target its latest request went to

	// Cache of the most recent grant this processor issued, for
	// resending when the retransmitted request matches it.  A single
	// slot suffices: ownership cannot advance past a requester until
	// that requester has received its grant, so a live retransmission
	// can only ever name the cached grantee.
	lastGrantee   int
	lastGrant     *grantMsg
	lastGrantSize int
}

type barrierState struct {
	id      int
	arrived []*barrMsg

	// Redistribution scratch, reused across barriers: the merged union of
	// the arrivals' record batches and the per-arrival merge cursors.
	// Valid only inside handleBarrArrive's final-arrival step.
	union []*IntervalRec
	heads []int

	// Reliable-mode duplicate suppression, indexed by client: Seq of the
	// last arrival answered and the cached departure sent for it (resent
	// when the client retransmits that arrival).
	lastSeq  []int
	lastDep  []*barrMsg
	lastSize []int

	// Centralized-mode batch scratch feeding mergeRecordBatches.
	batches [][]*IntervalRec
}

// treeBarrState is one internal node's (or the root's) aggregation
// state for the combining-tree barrier.  Slot 0 of arr holds the
// node's own arrival (sent loopback from its application thread);
// slot s >= 1 holds the arrival of child k*id+s.  The node's union
// scratch doubles as its upward Records batch and, at redistribution
// time, as the subtree-exclusion set: records the subtree announced
// itself never ride back down to it.
type treeBarrState struct {
	id   int // barrier in progress (-1: idle)
	got  int // arrivals so far; need == len(arr)
	arr  []*treeArrMsg
	aggr VC // scratch: subtree pointwise-max timestamp

	// Merge scratch, reused across barriers (see barrierState).
	union   []*IntervalRec
	heads   []int
	batches [][]*IntervalRec
	down    []*IntervalRec // internal nodes: merged departure set
}

// Proc is one TreadMarks processor.
type Proc struct {
	sys *System
	id  int
	app *sim.Ctx
	ep  *vnet.Endpoint // application endpoint (replies arrive here)
	srv *vnet.Endpoint // service endpoint (requests arrive here)

	pages     []*page
	vc        VC
	recs      [][]*IntervalRec // [proc][idx], contiguous
	recProcs  []int32          // writers with records filed here, ascending
	dirty     []int            // pages twinned in the current interval
	locks     map[int]*plock
	lastMgrVC VC // barrier manager's merged vc at the last departure
	barrier   *barrierState
	tree      *treeBarrState // combining-tree aggregation (TreeBarrier mode)
	pendInv   []*IntervalRec // eager notices deferred while a page was busy
	faultPg   int            // page mid-fault (service may not invalidate it); -1 otherwise

	// Reliable-mode state: the RPC sequence counter, records that arrived
	// ahead of a lost predecessor (eager mode; see admitRecord), and the
	// diff server's per-requester duplicate-suppression cache.
	rpcSeq       int
	futureRecs   []*IntervalRec
	diffLastSeq  map[int]int
	diffLastResp map[int]*diffRespMsg
	diffLastSize map[int]int

	// Access fast path (views.go): cached [lo,hi) address windows of the
	// last page hit by a scalar read (valid, data present) and write
	// (valid and twinned), so repeat accesses skip the page-table lookup
	// and the division in loc.  rc is cleared whenever a page can become
	// invalid (applyRecords); wc additionally whenever twins are dropped
	// (closeInterval).
	rc accCache
	wc accCache

	// Allocation recycling for protocol hot paths.
	twinFree [][]byte // page-size buffers returned by closeInterval

	// Fault-path scratch, reused across faults.  Everything here is valid
	// only while the owning fault runs: missBuf and cover from fault entry
	// until the last diff response is in, reqMsgs until every server has
	// read its request (guaranteed by then), the wr* group within one
	// applyPending call.  Arena carvings are the exception — they become
	// permanent protocol state.
	missBuf []diffWant
	reqMsgs []diffReqMsg // per-target request objects of the current fault
	arena   memArena
	cover   coverScratch
	wrCount []int32 // applyPending: per-writer pending count / scatter cursor
	wrPos   []int32 // applyPending: per-writer head cursor into wrIdx
	wrEnd   []int32 // applyPending: per-writer group end in wrIdx
	wrIdx   []int32 // applyPending: pending interval idxs grouped by writer
	wrList  []int32 // applyPending: writers with pending notices, ascending

	// Behavioral counters (not wire stats): useful for analysis output.
	Faults       int
	DiffRequests int
	DiffsApplied int
	DiffBytes    int64
	LockMsgs     int
	LockWait     sim.Time // time blocked in remote lock acquires
	BarrierWait  sim.Time // time blocked in barriers
	Timeouts     int      // RPC timeouts fired (retransmissions triggered)
}

// ID returns the processor id.
func (p *Proc) ID() int { return p.id }

// N returns the number of processors.
func (p *Proc) N() int { return p.sys.n }

// Ctx exposes the application thread's sim context.
func (p *Proc) Ctx() *sim.Ctx { return p.app }

// Compute charges local computation time to the application thread.
func (p *Proc) Compute(d sim.Time) { p.app.Compute(d) }

// Now returns the application thread's virtual clock.
func (p *Proc) Now() sim.Time { return p.app.Now() }

// PageSize returns the page size.
func (p *Proc) PageSize() int { return p.sys.cfg.PageSize }

func (p *Proc) initPages() {
	n := p.sys.Pages()
	p.pages = make([]*page, n)
	for i := 0; i < n; i++ {
		pg := &page{valid: true}
		if init, ok := p.sys.initial[i]; ok {
			pg.data = append([]byte(nil), init...)
		}
		p.pages[i] = pg
	}
}

func (p *Proc) lock(id int) *plock {
	lk, ok := p.locks[id]
	if !ok {
		lk = &plock{nextGrant: -1, releaseVC: NewVC(p.sys.n)}
		mgr := p.manager(id)
		if p.id == mgr {
			lk.owned = true // locks start out owned by their manager
			lk.mgrLast = mgr
		}
		if p.sys.reliable {
			lk.served = map[int]int{}
			lk.mgrSeen = map[int]int{}
			lk.mgrFwd = map[int]int{}
		}
		p.locks[id] = lk
	}
	return lk
}

// nextRPC returns a fresh nonzero RPC sequence number (reliable mode;
// zero marks an unsequenced message).
func (p *Proc) nextRPC() int {
	p.rpcSeq++
	return p.rpcSeq
}

// rpcRecv receives the reply of an at-least-once RPC.  Without the
// reliability layer it is the plain blocking Recv.  With it, the receive
// carries a deadline: on timeout the request is retransmitted (resend)
// and the deadline backs off exponentially up to the configured cap;
// replies whose sequence number (extracted by seqOf) does not match want
// are stale duplicates and are freed and ignored.
func (p *Proc) rpcRecv(ctx *sim.Ctx, from, tag, want int, resend func(), seqOf func(any) int) *vnet.Message {
	if !p.sys.reliable {
		return p.ep.Recv(ctx, from, tag)
	}
	to := p.sys.rBase
	for {
		m := p.ep.RecvDeadline(ctx, from, tag, ctx.Now()+to)
		if m == nil {
			p.Timeouts++
			resend()
			if to < p.sys.rCap {
				to *= 2
				if to > p.sys.rCap {
					to = p.sys.rCap
				}
			}
			continue
		}
		if seqOf(m.Obj) != want {
			p.ep.Free(ctx, m) // stale duplicate reply
			continue
		}
		return m
	}
}

func (p *Proc) manager(lockID int) int {
	if p.sys.cfg.CentralLockMgr {
		return 0
	}
	return lockID % p.sys.n
}

// ---------------------------------------------------------------------
// Intervals and write notices.

// closeInterval ends the current interval: every twinned page is diffed,
// the diff cached, and an interval record published (paper §2.2.2).
// No-op if nothing was written.  In eager-invalidate mode it also
// broadcasts the new record and applies any notices that were deferred
// while their pages were twinned (no page is twinned past this point).
func (p *Proc) closeInterval() {
	if len(p.dirty) == 0 {
		p.drainInvalidations()
		return
	}
	sort.Ints(p.dirty)
	idx := int(p.vc.Get(p.id))
	rec := p.arena.newRec()
	rec.Proc, rec.Idx = p.id, idx
	rec.Pages = append(p.arena.newPages(len(p.dirty)), p.dirty...)
	cfg := p.sys.cfg
	for _, pid := range p.dirty {
		pg := p.pages[pid]
		if pg.twin == nil {
			panic("tmk: dirty page without twin")
		}
		d := makeDiff(pid, pg.twin, pg.getData(cfg.PageSize), &p.arena)
		p.storeDiff(pg, p.id, idx, d)
		p.twinFree = append(p.twinFree, pg.twin) // recycle: diffs copy out of cur, never twin
		pg.twin = nil
		p.app.Compute(sim.Time(cfg.PageSize) * cfg.DiffCreatePerByte)
	}
	p.dirty = p.dirty[:0]
	p.wc = accCache{} // twins dropped: writes must re-twin via the slow path
	p.vc.SetMax(p.id, int32(idx+1))
	// Timestamp includes the interval itself.  The snapshot is taken
	// before draining deferred notices: a record may only claim coverage
	// of intervals whose diffs this processor has actually applied, or
	// the minimal-cover dominance argument would contact a writer for
	// diffs it never fetched.
	rec.VC = p.arena.cloneVC(p.vc)
	p.recs[p.id] = append(p.recs[p.id], rec)
	if len(p.recs[p.id]) == 1 {
		p.noteRecProc(p.id)
	}
	if p.sys.cfg.EagerInvalidate {
		p.broadcastInvalidation(rec)
		p.drainInvalidations()
	}
}

// broadcastInvalidation ships a freshly closed interval's write notices
// to every other processor's service daemon (eager-invalidate mode).
// With TreeFanout set, the writer only seeds its multicast-tree
// children; their service daemons relay onward (see serve), so the
// writer's serial send burst is O(k) instead of O(P).  Message and
// byte totals are identical either way: n-1 copies of the same notice.
func (p *Proc) broadcastInvalidation(rec *IntervalRec) {
	if p.sys.n == 1 {
		return
	}
	m := &invMsg{From: p.id, Records: []*IntervalRec{rec}}
	if p.sys.cfg.TreeFanout != 0 {
		p.sendInvalChildren(p.app, p.ep, m, 0)
		return
	}
	size := m.wireSize()
	for q := 0; q < p.sys.n; q++ {
		if q == p.id {
			continue
		}
		p.ep.SendObj(p.app, p.sys.procs[q].srv, tagInval, m, size)
	}
}

// sendInvalChildren forwards an eager notice to this node's children in
// the radix-k multicast tree rooted at the writer: position q in the
// tree is processor (writer+q) mod n, so every broadcast uses the same
// balanced shape regardless of who wrote.  The shared invMsg is
// immutable and travels by reference, each hop charged its full wire
// size.
func (p *Proc) sendInvalChildren(ctx *sim.Ctx, from *vnet.Endpoint, m *invMsg, pos int) {
	n, k := p.sys.n, p.sys.cfg.TreeFanout
	size := m.wireSize()
	for s := 1; s <= k; s++ {
		cpos := k*pos + s
		if cpos >= n {
			return
		}
		q := (m.From + cpos) % n
		from.SendObj(ctx, p.sys.procs[q].srv, tagInval, m, size)
	}
}

// handleInval runs in the service daemon on an eager invalidation.  A
// record is applied immediately unless one of its pages is busy — twinned
// (the application thread is mid-write: invalidating now would tear the
// interval) or mid-fault (the fault already chose which diffs to fetch;
// a new notice would be applied without its diff) — or earlier notices
// are already deferred (per-writer order must hold).  Deferred records
// wait for the next interval close, when no page is busy; a record that
// meanwhile arrives through a grant or departure is applied there and
// skipped as a duplicate at drain time.
func (p *Proc) handleInval(m *invMsg) {
	if len(p.pendInv) == 0 && !p.recsTouchBusy(m.Records) {
		p.applyRecords(m.Records)
		return
	}
	p.pendInv = append(p.pendInv, m.Records...)
}

// recsTouchBusy reports whether any record names a twinned or mid-fault
// page.
func (p *Proc) recsTouchBusy(recs []*IntervalRec) bool {
	for _, r := range recs {
		if p.recTouchesBusy(r) {
			return true
		}
	}
	return false
}

// drainInvalidations applies the deferred eager notices.  Callers
// guarantee no page is twinned (interval just closed, or none was open).
func (p *Proc) drainInvalidations() {
	if len(p.pendInv) == 0 {
		return
	}
	recs := p.pendInv
	p.pendInv = p.pendInv[:0]
	p.applyRecords(recs)
}

// recsByProcIdx orders interval records by (Proc, Idx).
type recsByProcIdx []*IntervalRec

func (s recsByProcIdx) Len() int      { return len(s) }
func (s recsByProcIdx) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s recsByProcIdx) Less(i, j int) bool {
	if s[i].Proc != s[j].Proc {
		return s[i].Proc < s[j].Proc
	}
	return s[i].Idx < s[j].Idx
}

// sortRecords puts a record batch in (Proc, Idx) order.  Senders build
// batches in exactly that order, so the usual outcome is the free
// already-sorted check (done with direct method calls — sort.IsSorted
// would box the slice into an interface on every call).
func sortRecords(recs []*IntervalRec) {
	s := recsByProcIdx(recs)
	for i := 1; i < len(s); i++ {
		if s.Less(i, i-1) {
			sort.Sort(s)
			return
		}
	}
}

// applyRecords merges incoming interval records: stores them, advances
// the vector clock, and invalidates pages written by other processors.
func (p *Proc) applyRecords(recs []*IntervalRec) {
	// Incoming write notices may invalidate any page, including a cached
	// one; drop the access fast path until the next slow-path fill.
	p.rc = accCache{}
	p.wc = accCache{}
	// Records may arrive batched out of order across processors; apply
	// each processor's records in index order.
	sortRecords(recs)
	for _, r := range recs {
		p.admitRecord(r)
	}
	if len(p.futureRecs) > 0 {
		p.drainFuture()
	}
}

// admitRecord files one interval record.  Sync-time batches (grants,
// departures) are gap-free per writer, so a record ahead of its
// predecessors can only be an eager notice whose predecessor was lost;
// with causal admission armed (System.causalAdmit) it is buffered in
// futureRecs until the gap fills (the predecessor piggybacks on the
// next grant or departure, or finishes its own multicast relay), and
// without it a gap is a protocol-invariant violation.
// The same buffering enforces causal admission across writers: an eager
// notice can outrun the loss of a different writer's notice that its
// timestamp covers, and admitting it early would advance this
// processor's clock past intervals it never saw — the next interval
// this processor closes would stamp a timestamp that is not
// transitively closed, breaking minimalCover's dominance argument at
// whatever processor later receives it.
func (p *Proc) admitRecord(r *IntervalRec) {
	have := len(p.recs[r.Proc])
	if r.Idx < have {
		return // duplicate
	}
	if r.Idx > have || (p.sys.causalAdmit && !p.recCausallyReady(r)) {
		if !p.sys.causalAdmit {
			panic(fmt.Sprintf("tmk: proc %d got interval %d/%d with only %d known",
				p.id, r.Proc, r.Idx, have))
		}
		for _, f := range p.futureRecs {
			if f.Proc == r.Proc && f.Idx == r.Idx {
				return // already buffered
			}
		}
		p.futureRecs = append(p.futureRecs, r)
		return
	}
	p.recs[r.Proc] = append(p.recs[r.Proc], r)
	if len(p.recs[r.Proc]) == 1 {
		p.noteRecProc(r.Proc)
	}
	p.vc.SetMax(r.Proc, int32(r.Idx+1))
	if r.Proc == p.id {
		return // own writes: page copies are already current
	}
	for _, pid := range r.Pages {
		pg := p.pages[pid]
		if pg.twin != nil {
			panic("tmk: write notice applied to a twinned page (interval not closed)")
		}
		pg.valid = false
		pg.wn = append(pg.wn, diffWant{Proc: r.Proc, Idx: r.Idx})
	}
}

// drainFuture admits buffered future records whose gaps have filled,
// iterating to a fixpoint (one admission can unblock the next).  A
// record naming a busy page — twinned, or mid-fault after the fault
// chose its diff set — stays buffered: invalidating it here would tear
// the local interval, exactly the hazard handleInval defers for.  Such
// a record retries at every applyRecords; if it never drains here, the
// same record arrives through a later grant or departure (the holder's
// timestamp does not cover it) and the buffered copy dies as a
// duplicate.
func (p *Proc) drainFuture() {
	for {
		progress := false
		kept := p.futureRecs[:0]
		for _, r := range p.futureRecs {
			have := len(p.recs[r.Proc])
			switch {
			case r.Idx < have:
				progress = true // arrived through another channel; drop
			case r.Idx > have || p.recTouchesBusy(r) || !p.recCausallyReady(r):
				kept = append(kept, r)
			default:
				p.admitRecord(r)
				progress = true
			}
		}
		p.futureRecs = kept
		if !progress || len(p.futureRecs) == 0 {
			return
		}
	}
}

// recCausallyReady reports whether every interval the record's timestamp
// covers — beyond the record's own writer — has been admitted locally,
// the causal-delivery condition admitRecord buffers on under fault
// injection.
func (p *Proc) recCausallyReady(r *IntervalRec) bool {
	for i, q := range r.VC.ps {
		if int(q) != r.Proc && p.vc.Get(int(q)) < r.VC.vs[i] {
			return false
		}
	}
	return true
}

// recTouchesBusy reports whether the record names a twinned or mid-fault
// page.
func (p *Proc) recTouchesBusy(r *IntervalRec) bool {
	if r.Proc == p.id {
		return false
	}
	for _, pid := range r.Pages {
		if pid == p.faultPg || p.pages[pid].twin != nil {
			return true
		}
	}
	return false
}

// noteRecProc adds writer q to the sorted active-writer list.  Callers
// invoke it on the 0→1 transition of len(p.recs[q]), so the list names
// exactly the writers with records filed locally; recordsNotCoveredBy
// iterates it instead of all P processors.
func (p *Proc) noteRecProc(q int) {
	i := 0
	for i < len(p.recProcs) && int(p.recProcs[i]) < q {
		i++
	}
	if i < len(p.recProcs) && int(p.recProcs[i]) == q {
		return
	}
	p.recProcs = append(p.recProcs, 0)
	copy(p.recProcs[i+1:], p.recProcs[i:])
	p.recProcs[i] = int32(q)
}

// recordsNotCoveredBy collects every known interval record the given
// timestamp has not seen, optionally bounded above by limit (records the
// sender knew by its release; the zero VC means unbounded).  The records
// themselves are shared, never copied: they are immutable once
// published.  The slice is freshly allocated at exact size — it travels
// inside a message object and lives until the receiver has applied it.
// Only active writers are scanned, so the cost is independent of the
// processor count.
func (p *Proc) recordsNotCoveredBy(from VC, limit VC) []*IntervalRec {
	bounded := limit.Len() != 0
	total := 0
	for _, q32 := range p.recProcs {
		q := int(q32)
		lo := int(from.Get(q))
		hi := len(p.recs[q])
		if bounded {
			if l := int(limit.Get(q)); l < hi {
				hi = l
			}
		}
		if hi > lo {
			total += hi - lo
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]*IntervalRec, 0, total)
	for _, q32 := range p.recProcs {
		q := int(q32)
		lo := int(from.Get(q))
		hi := len(p.recs[q])
		if bounded {
			if l := int(limit.Get(q)); l < hi {
				hi = l
			}
		}
		for i := lo; i < hi; i++ {
			out = append(out, p.recs[q][i])
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Locks (paper §2.2.2: static manager, request forwarding, silent release).

// LockAcquire acquires lock id (Tmk_lock_acquire).  If this processor was
// the last holder and nobody has requested the lock since, the acquire is
// local and costs no messages.
func (p *Proc) LockAcquire(id int) {
	// Scheduling point: let protocol events with earlier virtual times
	// (e.g. a pending ownership forward) settle before we examine state.
	p.app.Yield()
	lk := p.lock(id)
	if lk.held {
		panic(fmt.Sprintf("tmk: proc %d re-acquiring held lock %d", p.id, id))
	}
	if lk.owned {
		lk.held = true
		return
	}
	p.closeInterval()
	lk.awaiting = true
	// The live vector backs the request timestamp without a clone: this
	// processor blocks until the grant arrives, and every reader (manager,
	// owner) runs while it is blocked, so the vector cannot move under
	// them.  Under faults a stale duplicate of the request can outlive
	// the block, so the reliable path clones.
	req := &acqMsg{Lock: id, Requester: p.id, VC: p.vc}
	if p.sys.reliable {
		req.Seq = p.nextRPC()
		req.VC = p.arena.cloneVC(p.vc)
	}
	var resend func()
	mgr := p.manager(id)
	if mgr == p.id {
		// We are the manager: perform the manager step locally and
		// forward straight to the last requester.
		mlk := p.lock(id)
		prev := mlk.mgrLast
		mlk.mgrLast = p.id
		if prev == p.id {
			panic("tmk: manager re-requesting a lock it last requested but does not own")
		}
		p.ep.SendObj(p.app, p.sys.procs[prev].srv, tagAcqFwd, req, req.wireSize())
		p.LockMsgs++
		resend = func() {
			p.ep.SendObjRetrans(p.app, p.sys.procs[prev].srv, tagAcqFwd, req, req.wireSize())
		}
	} else {
		p.ep.SendObj(p.app, p.sys.procs[mgr].srv, tagAcqReq, req, req.wireSize())
		p.LockMsgs++
		resend = func() {
			p.ep.SendObjRetrans(p.app, p.sys.procs[mgr].srv, tagAcqReq, req, req.wireSize())
		}
	}
	t0 := p.app.Now()
	m := p.rpcRecv(p.app, -1, tagGrant, req.Seq, resend,
		func(o any) int { return o.(*grantMsg).Seq })
	p.LockWait += p.app.Now() - t0
	g := m.Obj.(*grantMsg)
	p.ep.Free(p.app, m) // grant extracted; recycle the envelope
	if g.Lock != id {
		panic(fmt.Sprintf("tmk: proc %d got grant for lock %d while acquiring %d", p.id, g.Lock, id))
	}
	p.applyRecords(g.Records)
	lk.awaiting = false
	lk.owned = true
	lk.held = true
}

// LockRelease releases lock id (Tmk_lock_release).  The release itself
// sends no message; if another processor's request is queued here,
// ownership transfers now.
func (p *Proc) LockRelease(id int) {
	lk := p.lock(id)
	if !lk.held {
		panic(fmt.Sprintf("tmk: proc %d releasing lock %d it does not hold", p.id, id))
	}
	p.closeInterval()
	lk.held = false
	lk.releaseVC = p.vc.Clone()
	lk.releaseAt = p.app.Now()
	if lk.nextGrant >= 0 {
		p.sendGrant(p.app, p.ep, id, lk.nextGrant, lk.nextSeq, lk.nextVC, lk.releaseVC)
		lk.owned = false
		lk.nextGrant = -1
		lk.nextVC = VC{}
		lk.nextSeq = 0
	}
	// Scheduling point so queued protocol work at earlier virtual times
	// (e.g. a forward racing this release) settles before we run on.
	p.app.Yield()
}

// sendGrant ships lock ownership and the write notices the requester
// lacks, bounded by what this processor knew at its release.  seq echoes
// the request's RPC id; in reliable mode the grant is cached for
// resending until ownership provably reached the requester.
func (p *Proc) sendGrant(ctx *sim.Ctx, from *vnet.Endpoint, lockID, requester, seq int, reqVC, limitVC VC) {
	g := &grantMsg{Lock: lockID, Seq: seq, Records: p.recordsNotCoveredBy(reqVC, limitVC)}
	size := g.wireSize()
	from.SendObj(ctx, p.sys.procs[requester].ep, tagGrant, g, size)
	p.LockMsgs++
	if p.sys.reliable && seq > 0 {
		lk := p.lock(lockID)
		lk.served[requester] = seq
		lk.lastGrantee, lk.lastGrant, lk.lastGrantSize = requester, g, size
	}
}

// ---------------------------------------------------------------------
// Barriers (centralized manager at processor 0; 2*(n-1) messages).

// Barrier stalls the calling processor until all processors have arrived
// at barrier id (Tmk_barrier).
func (p *Proc) Barrier(id int) {
	p.closeInterval()
	if p.sys.cfg.TreeBarrier != 0 {
		p.treeBarrier(id)
		return
	}
	arr := &barrMsg{
		Barrier: id,
		From:    p.id,
		// The live vector is safe to share: this processor blocks until
		// departure, and the manager reads arrival timestamps before any
		// departure is delivered.  Under faults a duplicate can outlive
		// the block, so the reliable path clones.
		VC:      p.vc,
		Records: p.recordsNotCoveredBy(p.lastMgrVC, VC{}),
	}
	if p.sys.reliable {
		arr.Seq = p.nextRPC()
		arr.VC = p.arena.cloneVC(p.vc)
	}
	mgr := p.sys.procs[p.sys.barrierMgr(id)]
	size := arr.wireSize()
	p.ep.SendObj(p.app, mgr.srv, tagBarrArrive, arr, size)
	t0 := p.app.Now()
	m := p.rpcRecv(p.app, mgr.id, tagBarrDepart, arr.Seq,
		func() { p.ep.SendObjRetrans(p.app, mgr.srv, tagBarrArrive, arr, size) },
		func(o any) int { return o.(*barrMsg).Seq })
	p.BarrierWait += p.app.Now() - t0
	dep := m.Obj.(*barrMsg)
	p.ep.Free(p.app, m) // departure extracted; recycle the envelope
	if dep.Barrier != id {
		panic(fmt.Sprintf("tmk: proc %d got departure for barrier %d while in %d", p.id, dep.Barrier, id))
	}
	p.applyRecords(dep.Records)
	p.vc.Merge(dep.VC)
	p.lastMgrVC = dep.VC.Clone()
}

// mergeRecordBatches head-merges record batches into a sorted,
// deduplicated union.  Each batch must be in (Proc, Idx) order; every
// head carrying the chosen key advances together, so a record announced
// by several batches appears once.  union and heads are caller-provided
// scratch (length zero) whose grown backing arrays are returned for
// reuse.
func mergeRecordBatches(batches [][]*IntervalRec, union []*IntervalRec, heads []int) ([]*IntervalRec, []int) {
	for range batches {
		heads = append(heads, 0)
	}
	for {
		var best *IntervalRec
		for i, b := range batches {
			if heads[i] == len(b) {
				continue
			}
			r := b[heads[i]]
			if best == nil || r.Proc < best.Proc || (r.Proc == best.Proc && r.Idx < best.Idx) {
				best = r
			}
		}
		if best == nil {
			return union, heads
		}
		union = append(union, best)
		for i, b := range batches {
			if heads[i] < len(b) {
				if r := b[heads[i]]; r.Proc == best.Proc && r.Idx == best.Idx {
					heads[i]++
				}
			}
		}
	}
}

// handleBarrArrive runs in processor 0's service daemon.
func (p *Proc) handleBarrArrive(ctx *sim.Ctx, m *barrMsg) {
	bs := p.barrier
	if p.sys.reliable && m.Seq > 0 {
		if bs.lastSeq == nil {
			bs.lastSeq = make([]int, p.sys.n)
			bs.lastDep = make([]*barrMsg, p.sys.n)
			bs.lastSize = make([]int, p.sys.n)
		}
		if m.Seq <= bs.lastSeq[m.From] {
			// Duplicate of an answered arrival: the departure may have
			// been lost, so resend the cached copy for the latest one;
			// older floating duplicates are dropped.
			if m.Seq == bs.lastSeq[m.From] && bs.lastDep[m.From] != nil {
				p.srv.SendObjRetrans(ctx, p.sys.procs[m.From].ep, tagBarrDepart,
					bs.lastDep[m.From], bs.lastSize[m.From])
			}
			return
		}
		for _, a := range bs.arrived {
			if a.From == m.From {
				return // retransmission of a current, not-yet-answered arrival
			}
		}
	}
	if len(bs.arrived) == 0 {
		bs.id = m.Barrier
	} else if bs.id != m.Barrier {
		panic(fmt.Sprintf("tmk: barrier mismatch: %d vs %d", bs.id, m.Barrier))
	}
	bs.arrived = append(bs.arrived, m)
	if len(bs.arrived) < p.sys.n {
		return
	}
	// All arrived: merge and redistribute.  Each arrival's record batch is
	// already in (Proc, Idx) order — recordsNotCoveredBy emits it that way
	// — so a head merge over the batches builds the sorted, deduplicated
	// union directly: no per-barrier map, no sort.  Duplicates across
	// batches are the same shared record (records are published once by
	// their writer and travel by reference) and every head carrying the
	// chosen key advances together.
	merged := NewVC(p.sys.n)
	bs.batches = bs.batches[:0]
	for _, a := range bs.arrived {
		merged.Merge(a.VC)
		bs.batches = append(bs.batches, a.Records)
	}
	bs.union, bs.heads = mergeRecordBatches(bs.batches, bs.union[:0], bs.heads[:0])
	union := bs.union
	// Departures: each client gets the union entries it has not seen, in
	// the union's (Proc, Idx) order.  The slice is counted first and
	// allocated at exact size — it travels inside the departure message
	// and lives until the receiver has applied it.
	for _, a := range bs.arrived {
		n := 0
		for _, r := range union {
			if int32(r.Idx) >= a.VC.Get(r.Proc) { // client has not seen it
				n++
			}
		}
		var out []*IntervalRec
		if n > 0 {
			out = make([]*IntervalRec, 0, n)
			for _, r := range union {
				if int32(r.Idx) >= a.VC.Get(r.Proc) {
					out = append(out, r)
				}
			}
		}
		dep := &barrMsg{Barrier: bs.id, From: p.id, Seq: a.Seq, VC: merged, Records: out}
		size := dep.wireSize()
		p.srv.SendObj(ctx, p.sys.procs[a.From].ep, tagBarrDepart, dep, size)
		if p.sys.reliable && a.Seq > 0 {
			bs.lastSeq[a.From] = a.Seq
			bs.lastDep[a.From] = dep
			bs.lastSize[a.From] = size
		}
	}
	bs.arrived = bs.arrived[:0]
	bs.id = -1
}

// ---------------------------------------------------------------------
// Combining-tree barrier (Config.TreeBarrier; the tmk-tree variant).
//
// Arrivals aggregate up a radix-k tree rooted at processor 0 and
// departures fan back down it.  An internal node's application thread
// sends its own arrival to its own service daemon — a free loopback hop
// — where it occupies slot 0 of the aggregation state; each child
// subtree's arrival occupies one further slot.  When all slots fill,
// the node forwards one merged arrival up (or, at the root, starts
// redistribution).  Departures reverse the path: each edge carries only
// the records some member of the target subtree lacks (filtered by the
// subtree's pointwise-minimum timestamp) minus the records that subtree
// announced itself, which the child re-adds from its own union before
// filtering further down.

// treeBarrier is the client side: send the arrival to the aggregation
// point — this processor's own service daemon if it is an internal
// node, its parent's otherwise — and block for the departure from the
// same place.
func (p *Proc) treeBarrier(id int) {
	arr := &treeArrMsg{
		Barrier: id,
		From:    p.id,
		// Live shares, like the centralized arrival: this processor
		// blocks until its departure, and every aggregation step that
		// reads the vector runs before that departure is sent.  (Tree
		// mode never runs reliable, so no duplicate outlives the block.)
		VC:      p.vc,
		MinVC:   p.vc,
		Records: p.recordsNotCoveredBy(p.lastMgrVC, VC{}),
	}
	dst := p
	if p.tree == nil {
		dst = p.sys.procs[(p.id-1)/p.sys.cfg.TreeBarrier]
	}
	p.ep.SendObj(p.app, dst.srv, tagTreeArrive, arr, arr.wireSize())
	t0 := p.app.Now()
	m := p.ep.Recv(p.app, dst.id, tagTreeDepart)
	p.BarrierWait += p.app.Now() - t0
	dep := m.Obj.(*treeDepMsg)
	p.ep.Free(p.app, m) // departure extracted; recycle the envelope
	if dep.Barrier != id {
		panic(fmt.Sprintf("tmk: proc %d got tree departure for barrier %d while in %d",
			p.id, dep.Barrier, id))
	}
	p.applyRecords(dep.Records)
	p.vc.Merge(dep.VC)
	p.lastMgrVC = dep.VC.Clone()
}

// handleTreeArrive files one arrival (own or a child subtree's) and,
// when the subtree is complete, aggregates: merged max/min timestamps
// and the deduplicated record union, forwarded up — or redistributed,
// at the root.
func (p *Proc) handleTreeArrive(ctx *sim.Ctx, m *treeArrMsg) {
	ts := p.tree
	if ts == nil {
		panic(fmt.Sprintf("tmk: tree arrival at leaf %d", p.id))
	}
	slot := 0
	if m.From != p.id {
		slot = m.From - p.sys.cfg.TreeBarrier*p.id
		if slot < 1 || slot >= len(ts.arr) {
			panic(fmt.Sprintf("tmk: proc %d got tree arrival from non-child %d", p.id, m.From))
		}
	}
	if ts.got == 0 {
		ts.id = m.Barrier
	} else if ts.id != m.Barrier {
		panic(fmt.Sprintf("tmk: tree barrier mismatch: %d vs %d", ts.id, m.Barrier))
	}
	if ts.arr[slot] != nil {
		panic(fmt.Sprintf("tmk: duplicate tree arrival in slot %d at proc %d", slot, p.id))
	}
	ts.arr[slot] = m
	ts.got++
	if ts.got < len(ts.arr) {
		return
	}
	// Subtree complete.  Aggregate in slot order (deterministic): the
	// pointwise max feeds the global timestamp, the pointwise min is the
	// filter bound for departures into this subtree, and the head-merged
	// union both rides up and — held here — later cancels records the
	// subtree already announced.
	agg := NewVC(p.sys.n)
	min := ts.arr[0].VC.Clone()
	ts.batches = ts.batches[:0]
	for _, a := range ts.arr {
		agg.Merge(a.VC)
		min.MergeMin(a.MinVC)
		ts.batches = append(ts.batches, a.Records)
	}
	ts.union, ts.heads = mergeRecordBatches(ts.batches, ts.union[:0], ts.heads[:0])
	if p.id == 0 {
		p.treeRedistribute(ctx, agg, ts.union)
		return
	}
	up := &treeArrMsg{Barrier: ts.id, From: p.id, VC: agg, MinVC: min, Records: ts.union}
	parent := p.sys.procs[(p.id-1)/p.sys.cfg.TreeBarrier]
	p.srv.SendObj(ctx, parent.srv, tagTreeArrive, up, up.wireSize())
	// State (arrivals, union) stays live: the departure coming back down
	// needs the per-child filters and the subtree-exclusion set.
}

// handleTreeDown merges an internal node's held union back into the
// departure set its parent sent (the parent excluded exactly those
// records) and redistributes into the subtree.
func (p *Proc) handleTreeDown(ctx *sim.Ctx, m *treeDepMsg) {
	ts := p.tree
	if ts == nil || ts.got != len(ts.arr) || ts.id != m.Barrier {
		panic(fmt.Sprintf("tmk: proc %d got tree departure in bad state", p.id))
	}
	ts.batches = ts.batches[:0]
	ts.batches = append(ts.batches, m.Records, ts.union)
	ts.down, ts.heads = mergeRecordBatches(ts.batches, ts.down[:0], ts.heads[:0])
	p.treeRedistribute(ctx, m.VC, ts.down)
}

// treeRedistribute sends the departure to every child subtree and to
// this node's own application thread, then resets the aggregation
// state.  needed is the set of records any member of this subtree might
// lack; each edge filters it by the target's minimum timestamp and
// subtracts what the target announced itself.
func (p *Proc) treeRedistribute(ctx *sim.Ctx, depVC VC, needed []*IntervalRec) {
	ts := p.tree
	k := p.sys.cfg.TreeBarrier
	for s := 1; s < len(ts.arr); s++ {
		a := ts.arr[s]
		c := k*p.id + s
		dep := &treeDepMsg{Barrier: ts.id, From: p.id, VC: depVC,
			Records: recordsLacked(needed, a.MinVC, a.Records)}
		if p.sys.treeKids(c) > 0 {
			p.srv.SendObj(ctx, p.sys.procs[c].srv, tagTreeDown, dep, dep.wireSize())
		} else {
			p.srv.SendObj(ctx, p.sys.procs[c].ep, tagTreeDepart, dep, dep.wireSize())
		}
	}
	self := &treeDepMsg{Barrier: ts.id, From: p.id, VC: depVC,
		Records: recordsLacked(needed, ts.arr[0].VC, nil)}
	p.srv.SendObj(ctx, p.ep, tagTreeDepart, self, self.wireSize()) // loopback
	for i := range ts.arr {
		ts.arr[i] = nil
	}
	ts.got = 0
	ts.id = -1
}

// recordsLacked returns the entries of union not covered by vc, minus
// the records in sub (both union and sub are in (Proc, Idx) order; nil
// sub skips the subtraction).  Freshly allocated at exact size — the
// slice travels inside a departure message.
func recordsLacked(union []*IntervalRec, vc VC, sub []*IntervalRec) []*IntervalRec {
	count := 0
	j := 0
	for _, r := range union {
		if vc.CoversInterval(r.Proc, r.Idx) {
			continue
		}
		for j < len(sub) && (sub[j].Proc < r.Proc || (sub[j].Proc == r.Proc && sub[j].Idx < r.Idx)) {
			j++
		}
		if j < len(sub) && sub[j].Proc == r.Proc && sub[j].Idx == r.Idx {
			continue
		}
		count++
	}
	if count == 0 {
		return nil
	}
	out := make([]*IntervalRec, 0, count)
	j = 0
	for _, r := range union {
		if vc.CoversInterval(r.Proc, r.Idx) {
			continue
		}
		for j < len(sub) && (sub[j].Proc < r.Proc || (sub[j].Proc == r.Proc && sub[j].Idx < r.Idx)) {
			j++
		}
		if j < len(sub) && sub[j].Proc == r.Proc && sub[j].Idx == r.Idx {
			continue
		}
		out = append(out, r)
	}
	return out
}

// ---------------------------------------------------------------------
// Service daemon: answers lock requests, forwards, and diff requests.
// It stands in for the real system's SIGIO handlers.

func (p *Proc) serve(ctx *sim.Ctx) {
	for {
		m := p.srv.Recv(ctx, -1, -1)
		ctx.Compute(p.sys.cfg.HandlerOverhead)
		tag, obj := m.Tag, m.Obj
		p.srv.Free(ctx, m) // handlers keep the Obj, never the envelope
		switch tag {
		case tagAcqReq:
			req := obj.(*acqMsg)
			lk := p.lock(req.Lock)
			if p.sys.reliable && req.Seq > 0 {
				if last, ok := lk.mgrSeen[req.Requester]; ok && req.Seq <= last {
					// Duplicate.  A retransmission of the requester's current
					// request re-forwards to the original target (the fwd or
					// grant may have been lost); anything older is a floating
					// copy of a completed acquire and is dropped.
					if req.Seq == last {
						if tgt := lk.mgrFwd[req.Requester]; tgt == p.id {
							p.grantOrQueue(ctx, req)
						} else {
							p.srv.SendObjRetrans(ctx, p.sys.procs[tgt].srv, tagAcqFwd, req, req.wireSize())
						}
					}
					continue
				}
				lk.mgrSeen[req.Requester] = req.Seq
			}
			prev := lk.mgrLast
			lk.mgrLast = req.Requester
			if p.sys.reliable && req.Seq > 0 {
				lk.mgrFwd[req.Requester] = prev
			}
			if prev == p.id {
				p.grantOrQueue(ctx, req)
			} else {
				p.srv.SendObj(ctx, p.sys.procs[prev].srv, tagAcqFwd, req, req.wireSize())
				p.LockMsgs++
			}
		case tagAcqFwd:
			p.grantOrQueue(ctx, obj.(*acqMsg))
		case tagBarrArrive:
			m := obj.(*barrMsg)
			if p.id != p.sys.barrierMgr(m.Barrier) {
				panic("tmk: barrier arrival at non-manager")
			}
			p.handleBarrArrive(ctx, m)
		case tagTreeArrive:
			p.handleTreeArrive(ctx, obj.(*treeArrMsg))
		case tagTreeDown:
			p.handleTreeDown(ctx, obj.(*treeDepMsg))
		case tagDiffReq:
			p.handleDiffReq(ctx, obj.(*diffReqMsg))
		case tagInval:
			im := obj.(*invMsg)
			if p.sys.cfg.TreeFanout != 0 {
				// Multicast relay: forward to this node's children in the
				// writer-rooted tree before applying locally.
				p.sendInvalChildren(ctx, p.srv, im,
					(p.id-im.From+p.sys.n)%p.sys.n)
			}
			p.handleInval(im)
		default:
			panic(fmt.Sprintf("tmk: service got unexpected tag %d", tag))
		}
	}
}

// grantOrQueue hands the lock to the requester if this processor is done
// with it, or queues the request for the next release.
func (p *Proc) grantOrQueue(ctx *sim.Ctx, req *acqMsg) {
	lk := p.lock(req.Lock)
	if p.sys.reliable && req.Seq > 0 {
		if s, ok := lk.served[req.Requester]; ok && req.Seq <= s {
			// Already granted.  If it is the most recent grant this
			// processor issued, the grant itself may have been lost:
			// resend the cached copy.  Otherwise the requester has
			// provably received it (ownership advanced past it) and the
			// duplicate is dropped.
			if req.Seq == s && lk.lastGrantee == req.Requester && lk.lastGrant != nil {
				p.srv.SendObjRetrans(ctx, p.sys.procs[req.Requester].ep, tagGrant,
					lk.lastGrant, lk.lastGrantSize)
			}
			return
		}
		if lk.nextGrant == req.Requester && lk.nextSeq == req.Seq {
			return // duplicate of the already-queued request
		}
	}
	if !lk.owned && !lk.awaiting {
		panic(fmt.Sprintf("tmk: proc %d got forward for lock %d it neither owns nor awaits",
			p.id, req.Lock))
	}
	if lk.held || lk.awaiting {
		if lk.nextGrant >= 0 {
			panic("tmk: second queued lock requester")
		}
		lk.nextGrant = req.Requester
		lk.nextVC = req.VC
		lk.nextSeq = req.Seq
		return
	}
	// Lock is free.  Its release happened at lk.releaseAt; a grant cannot
	// precede that release in virtual time.
	if lk.releaseAt > ctx.Now() {
		ctx.Compute(lk.releaseAt - ctx.Now())
	}
	p.sendGrant(ctx, p.srv, req.Lock, req.Requester, req.Seq, req.VC, lk.releaseVC)
	lk.owned = false
}

// handleDiffReq returns the requested diffs, which by the protocol's
// dominance argument this processor must hold (paper §2.2.2: a processor
// that modified a page in an interval holds the diffs of all intervals
// that precede it).
func (p *Proc) handleDiffReq(ctx *sim.Ctx, req *diffReqMsg) {
	if p.sys.reliable && req.Seq > 0 {
		// A requester's RPCs to one server are sequential, so a request
		// at or below the last answered Seq is a duplicate: resend the
		// cached response for the latest one, drop anything older.
		if last := p.diffLastSeq[req.Requester]; last > 0 && req.Seq <= last {
			if req.Seq == last {
				p.srv.SendObjRetrans(ctx, p.sys.procs[req.Requester].ep, tagDiffResp,
					p.diffLastResp[req.Requester], p.diffLastSize[req.Requester])
			}
			return
		}
	}
	pg := p.pages[req.Page]
	entries := make([]diffEntry, 0, len(req.Wants))
	for _, w := range req.Wants {
		d := p.diffOf(pg, w.Proc, w.Idx)
		if d == nil {
			panic(fmt.Sprintf("tmk: proc %d asked for diff (page %d, proc %d, idx %d) it does not hold",
				p.id, req.Page, w.Proc, w.Idx))
		}
		entries = append(entries, diffEntry{Proc: w.Proc, Idx: w.Idx, Diff: d})
	}
	resp := &diffRespMsg{Page: req.Page, Seq: req.Seq, Entries: entries}
	size := resp.wireSize()
	p.srv.SendObj(ctx, p.sys.procs[req.Requester].ep, tagDiffResp, resp, size)
	if p.sys.reliable && req.Seq > 0 {
		if p.diffLastSeq == nil {
			p.diffLastSeq = map[int]int{}
			p.diffLastResp = map[int]*diffRespMsg{}
			p.diffLastSize = map[int]int{}
		}
		p.diffLastSeq[req.Requester] = req.Seq
		p.diffLastResp[req.Requester] = resp
		p.diffLastSize[req.Requester] = size
	}
}

// ---------------------------------------------------------------------
// Access faults.

// fault brings a page up to date: it determines the missing diffs,
// requests them from a minimal set of previous writers, and applies all
// pending diffs in happens-before order (paper §2.2.2).
func (p *Proc) fault(pid int) {
	cfg := p.sys.cfg
	p.app.Compute(cfg.FaultOverhead)
	p.Faults++
	pg := p.pages[pid]
	// The fault spans service-daemon activity (it blocks for diff
	// responses): eager invalidations for this page must queue until the
	// pending-notice set chosen below has been applied.
	p.faultPg = pid

	// Which write notices lack local diffs?
	missing := p.missBuf[:0]
	for _, w := range pg.wn {
		if p.diffOf(pg, w.Proc, w.Idx) == nil {
			missing = append(missing, w)
		}
	}

	if len(missing) > 0 {
		targets := p.minimalCover(missing)
		// Send all requests, then collect all responses (the real system
		// overlaps them the same way).  The request objects live in a
		// per-fault scratch: every server reads its request before
		// answering, and all answers arrive before this fault ends, so
		// the scratch is provably quiescent when the next fault reuses it.
		// Under faults that proof dies — a duplicate or reordered request
		// can reach the server after this fault returned — so the
		// reliable path allocates fresh objects and clones the want lists
		// out of the cover scratch.
		var reqs []diffReqMsg
		if p.sys.reliable {
			reqs = make([]diffReqMsg, len(targets))
		} else {
			if cap(p.reqMsgs) < len(targets) {
				p.reqMsgs = make([]diffReqMsg, len(targets))
			}
			reqs = p.reqMsgs[:len(targets)]
		}
		for i := range targets {
			t := &targets[i]
			wants := t.wants
			seq := 0
			if p.sys.reliable {
				wants = append([]diffWant(nil), t.wants...)
				seq = p.nextRPC()
			}
			reqs[i] = diffReqMsg{Page: pid, Requester: p.id, Seq: seq, Wants: wants}
			p.ep.SendObj(p.app, p.sys.procs[t.proc].srv, tagDiffReq, &reqs[i], reqs[i].wireSize())
			p.DiffRequests++
		}
		for i := range targets {
			r := &reqs[i]
			tgt := targets[i].proc
			m := p.rpcRecv(p.app, tgt, tagDiffResp, r.Seq,
				func() { p.ep.SendObjRetrans(p.app, p.sys.procs[tgt].srv, tagDiffReq, r, r.wireSize()) },
				func(o any) int { return o.(*diffRespMsg).Seq })
			resp := m.Obj.(*diffRespMsg)
			p.ep.Free(p.app, m) // response extracted; recycle the envelope
			if resp.Page != pid {
				panic("tmk: diff response for wrong page")
			}
			for _, e := range resp.Entries {
				p.storeDiff(pg, e.Proc, e.Idx, e.Diff)
			}
		}
	}
	p.missBuf = missing[:0]

	// Apply every pending notice's diff in happens-before order.
	p.applyPending(pid)
	pg.valid = true
	p.faultPg = -1
}

// coverTarget is one processor to ask, and what to ask it for.
type coverTarget struct {
	proc  int
	wants []diffWant
}

// coverScratch is minimalCover's reusable state.  latest and cands are
// reset on entry, so a panic unwinding mid-cover leaves nothing that the
// next call could observe; targets — including the want lists inside —
// back the returned slice and stay valid only until this processor's next
// fault.
type coverScratch struct {
	latest  []*IntervalRec // per writer: latest missing interval (nil: none)
	cands   []int          // writers with missing diffs, ascending
	targets []coverTarget  // chosen writers; slice length is the high-water mark
}

// minimalCover picks the subset of writers to contact: a writer whose
// latest interval for the page has been seen by another candidate's latest
// interval need not be asked, because the dominating writer holds its
// diffs too (paper §2.2.2).  Interval timestamps are transitively closed
// (a record's VC covers the VC of every interval it has seen), so the
// O(1) CoversInterval component test is exactly the vector comparison.
// The returned targets alias the processor's cover scratch: valid only
// until the next fault.
func (p *Proc) minimalCover(missing []diffWant) []coverTarget {
	cs := &p.cover
	if cs.latest == nil {
		cs.latest = make([]*IntervalRec, p.sys.n)
	}
	for i := range cs.latest {
		cs.latest[i] = nil
	}
	cands := cs.cands[:0]
	for _, w := range missing {
		rec := p.recs[w.Proc][w.Idx]
		if cur := cs.latest[w.Proc]; cur == nil || rec.Idx > cur.Idx {
			if cur == nil {
				cands = append(cands, w.Proc)
			}
			cs.latest[w.Proc] = rec
		}
	}
	sort.Ints(cands)
	cs.cands = cands
	// Keep the non-dominated candidates, reusing target slots (and their
	// want-list backing arrays) from previous faults.
	nt := 0
	for _, q := range cands {
		dominated := false
		for _, r := range cands {
			if r != q && cs.latest[r].VC.CoversInterval(q, cs.latest[q].Idx) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		if nt < len(cs.targets) {
			cs.targets[nt].proc = q
			cs.targets[nt].wants = cs.targets[nt].wants[:0]
		} else {
			cs.targets = append(cs.targets, coverTarget{proc: q})
		}
		nt++
	}
	targets := cs.targets[:nt]
	// Assign each missing diff to the first chosen writer that has seen it.
	for _, w := range missing {
		placed := false
		for i := range targets {
			if cs.latest[targets[i].proc].VC.CoversInterval(w.Proc, w.Idx) {
				targets[i].wants = append(targets[i].wants, w)
				placed = true
				break
			}
		}
		if !placed {
			panic("tmk: missing diff not covered by any chosen writer")
		}
	}
	return targets
}

// applyPending applies every outstanding diff for a page in the protocol's
// happens-before linear order: repeatedly the lowest-numbered writer whose
// next pending interval is not preceded by another writer's pending
// interval.  Within one writer intervals are totally ordered, and an
// unapplied interval of writer r precedes (q, i) only if r's pending head
// does, so only per-writer heads need comparing; head (q, i) is ready iff
// no other head (r, j) satisfies rec(q,i).VC[r] > j — the component test
// again standing in for the full vector comparison.  This reproduces
// exactly the order of the former repeated-minimal-scan (lexicographically
// smallest topological extension by (proc, idx)) at O(k·W²) for k notices
// and W ≤ nprocs pending writers instead of O(k³).
func (p *Proc) applyPending(pid int) {
	pg := p.pages[pid]
	k := len(pg.wn)
	if k == 0 {
		return
	}
	cfg := p.sys.cfg
	data := pg.getData(cfg.PageSize)

	// Fast path: all notices from one writer, already in interval order.
	single := true
	for i := 1; i < k; i++ {
		if pg.wn[i].Proc != pg.wn[0].Proc {
			single = false
			break
		}
	}
	if single {
		for _, w := range pg.wn {
			p.applyOne(pg, data, w.Proc, w.Idx, cfg)
		}
		pg.wn = pg.wn[:0]
		return
	}

	// Group pending interval idxs by writer.  The grouping is stable, so
	// each group keeps the increasing idx order applyRecords established.
	n := p.sys.n
	if p.wrCount == nil {
		p.wrCount = make([]int32, n)
		p.wrPos = make([]int32, n)
		p.wrEnd = make([]int32, n)
	}
	count := p.wrCount
	for _, w := range pg.wn {
		count[w.Proc]++
	}
	writers := p.wrList[:0]
	off := int32(0)
	for q := 0; q < n; q++ {
		if count[q] == 0 {
			continue
		}
		writers = append(writers, int32(q))
		p.wrPos[q] = off
		off += count[q]
		p.wrEnd[q] = off
		count[q] = off - count[q] // scatter cursor: group start
	}
	p.wrList = writers
	if cap(p.wrIdx) < k {
		p.wrIdx = make([]int32, k)
	}
	idxs := p.wrIdx[:k]
	for _, w := range pg.wn {
		idxs[count[w.Proc]] = int32(w.Idx)
		count[w.Proc]++
	}
	for _, q := range writers {
		count[q] = 0 // leave the shared counter clean for the next call
	}

	// Merge: scan writers in ascending proc order, apply the first ready
	// head, restart.  W is at most nprocs, so the rescan is cheap.
	for remaining := k; remaining > 0; {
		progress := false
		for _, q := range writers {
			qi := int(q)
			if p.wrPos[qi] == p.wrEnd[qi] {
				continue
			}
			h := int(idxs[p.wrPos[qi]])
			vc := p.recs[qi][h].VC
			ready := true
			for _, r := range writers {
				ri := int(r)
				if ri == qi || p.wrPos[ri] == p.wrEnd[ri] {
					continue
				}
				if vc.Get(ri) > idxs[p.wrPos[ri]] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			p.applyOne(pg, data, qi, h, cfg)
			p.wrPos[qi]++
			remaining--
			progress = true
			break
		}
		if !progress {
			panic("tmk: cycle in happens-before order")
		}
	}
	pg.wn = pg.wn[:0]
}

// applyOne applies the stored diff of (writer proc, interval idx) to data,
// charging modeled time and behavioral counters.
func (p *Proc) applyOne(pg *page, data []byte, proc, idx int, cfg Config) {
	d := p.diffOf(pg, proc, idx)
	if d == nil {
		panic(fmt.Sprintf("tmk: proc %d applying diff (proc %d, idx %d) it does not hold",
			p.id, proc, idx))
	}
	d.Apply(data)
	p.DiffsApplied++
	p.DiffBytes += int64(d.Size())
	p.app.Compute(sim.Time(d.Size()) * cfg.DiffApplyPerByte)
}

func (pg *page) getData(pageSize int) []byte {
	if pg.data == nil {
		pg.data = make([]byte, pageSize)
	}
	return pg.data
}

// readable ensures the page is valid for reading.
func (p *Proc) readable(pid int) *page {
	pg := p.pages[pid]
	if !pg.valid {
		p.fault(pid)
	}
	return pg
}

// writable ensures the page is valid and twinned for writing; the first
// write in an interval saves a twin and records the page as dirty.
func (p *Proc) writable(pid int) *page {
	pg := p.pages[pid]
	if !pg.valid {
		p.fault(pid)
	}
	if pg.twin == nil {
		cfg := p.sys.cfg
		data := pg.getData(cfg.PageSize)
		if n := len(p.twinFree); n > 0 {
			pg.twin = p.twinFree[n-1]
			p.twinFree = p.twinFree[:n-1]
			copy(pg.twin, data)
		} else {
			pg.twin = append([]byte(nil), data...)
		}
		p.app.Compute(sim.Time(cfg.PageSize) * cfg.TwinPerByte)
		p.dirty = append(p.dirty, pid)
	}
	return pg
}
