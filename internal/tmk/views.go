package tmk

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file implements the access layer of the DSM: every read or write of
// shared memory goes through a software access check that stands in for
// the virtual-memory protection hardware of the original system.  An
// access to an invalidated page triggers the fault handler (the indexed
// diff fetch/apply path in tmk.go); the first write to a page in an
// interval creates a twin.  Valid-page accesses charge no virtual time:
// the real system's post-fault accesses are ordinary loads and stores.

func putU32(b []byte, v uint32)  { binary.LittleEndian.PutUint32(b, v) }
func putU64(b []byte, v uint64)  { binary.LittleEndian.PutUint64(b, v) }
func putF64(b []byte, v float64) { putU64(b, math.Float64bits(v)) }
func getU32(b []byte) uint32     { return binary.LittleEndian.Uint32(b) }
func getU64(b []byte) uint64     { return binary.LittleEndian.Uint64(b) }
func getF64(b []byte) float64    { return math.Float64frombits(getU64(b)) }

// loc validates an access of size bytes at address a and returns the page
// id and in-page offset.  Allocations are 8-byte aligned and the page size
// is a multiple of 8, so naturally aligned scalars never straddle pages.
func (p *Proc) loc(a Addr, size int) (int, int) {
	if a < 0 || int(a)+size > int(p.sys.brk) {
		panic(fmt.Sprintf("tmk: access of %d bytes at %d outside shared space [0,%d)", size, a, p.sys.brk))
	}
	if int(a)%size != 0 {
		panic(fmt.Sprintf("tmk: misaligned %d-byte access at %d", size, a))
	}
	ps := p.sys.cfg.PageSize
	return int(a) / ps, int(a) % ps
}

// accCache is the scalar-access fast path: the address window [lo,hi) of
// the last page hit, plus its backing bytes.  A hit needs two compares and
// a subtraction — no page-table lookup, no division, no fault check.  The
// zero value matches no address.  Cached windows never cross p.sys.brk,
// so the fast path preserves loc's bounds check.
type accCache struct {
	lo, hi Addr
	data   []byte
}

// cacheRead remembers a page just vetted by readable for scalar reads.
// Pages with nil data (all-zero, never written) are not cached: their
// reads return 0 through the slow path.
func (p *Proc) cacheRead(pid int, pg *page) {
	if pg.data == nil {
		return
	}
	p.rc = p.window(pid, pg)
}

// cacheWrite remembers a page just vetted by writable.  A writable page is
// also readable, so the read cache is filled too.
func (p *Proc) cacheWrite(pid int, pg *page) {
	p.wc = p.window(pid, pg)
	p.rc = p.wc
}

func (p *Proc) window(pid int, pg *page) accCache {
	ps := p.sys.cfg.PageSize
	lo := Addr(pid * ps)
	hi := lo + Addr(ps)
	if hi > p.sys.brk {
		hi = p.sys.brk
	}
	return accCache{lo: lo, hi: hi, data: pg.data}
}

// ReadF64 reads a shared float64.
func (p *Proc) ReadF64(a Addr) float64 {
	if c := &p.rc; a >= c.lo && a+8 <= c.hi && a&7 == 0 {
		return getF64(c.data[a-c.lo:])
	}
	return p.readF64Slow(a)
}

func (p *Proc) readF64Slow(a Addr) float64 {
	pid, off := p.loc(a, 8)
	pg := p.readable(pid)
	if pg.data == nil {
		return 0
	}
	p.cacheRead(pid, pg)
	return getF64(pg.data[off:])
}

// WriteF64 writes a shared float64.
func (p *Proc) WriteF64(a Addr, v float64) {
	if c := &p.wc; a >= c.lo && a+8 <= c.hi && a&7 == 0 {
		putF64(c.data[a-c.lo:], v)
		return
	}
	p.writeF64Slow(a, v)
}

func (p *Proc) writeF64Slow(a Addr, v float64) {
	pid, off := p.loc(a, 8)
	pg := p.writable(pid)
	p.cacheWrite(pid, pg)
	putF64(pg.data[off:], v)
}

// ReadI32 reads a shared int32.
func (p *Proc) ReadI32(a Addr) int32 {
	if c := &p.rc; a >= c.lo && a+4 <= c.hi && a&3 == 0 {
		return int32(getU32(c.data[a-c.lo:]))
	}
	return p.readI32Slow(a)
}

func (p *Proc) readI32Slow(a Addr) int32 {
	pid, off := p.loc(a, 4)
	pg := p.readable(pid)
	if pg.data == nil {
		return 0
	}
	p.cacheRead(pid, pg)
	return int32(getU32(pg.data[off:]))
}

// WriteI32 writes a shared int32.
func (p *Proc) WriteI32(a Addr, v int32) {
	if c := &p.wc; a >= c.lo && a+4 <= c.hi && a&3 == 0 {
		putU32(c.data[a-c.lo:], uint32(v))
		return
	}
	p.writeI32Slow(a, v)
}

func (p *Proc) writeI32Slow(a Addr, v int32) {
	pid, off := p.loc(a, 4)
	pg := p.writable(pid)
	p.cacheWrite(pid, pg)
	putU32(pg.data[off:], uint32(v))
}

// ReadI64 reads a shared int64.
func (p *Proc) ReadI64(a Addr) int64 {
	if c := &p.rc; a >= c.lo && a+8 <= c.hi && a&7 == 0 {
		return int64(getU64(c.data[a-c.lo:]))
	}
	return p.readI64Slow(a)
}

func (p *Proc) readI64Slow(a Addr) int64 {
	pid, off := p.loc(a, 8)
	pg := p.readable(pid)
	if pg.data == nil {
		return 0
	}
	p.cacheRead(pid, pg)
	return int64(getU64(pg.data[off:]))
}

// WriteI64 writes a shared int64.
func (p *Proc) WriteI64(a Addr, v int64) {
	if c := &p.wc; a >= c.lo && a+8 <= c.hi && a&7 == 0 {
		putU64(c.data[a-c.lo:], uint64(v))
		return
	}
	p.writeI64Slow(a, v)
}

func (p *Proc) writeI64Slow(a Addr, v int64) {
	pid, off := p.loc(a, 8)
	pg := p.writable(pid)
	p.cacheWrite(pid, pg)
	putU64(pg.data[off:], uint64(v))
}

// forPages walks [a, a+n) page by page, handing the callback each
// (page-id, in-page offset, byte count, running byte offset).
func (p *Proc) forPages(a Addr, n int, fn func(pid, off, cnt, done int)) {
	if a < 0 || int(a)+n > int(p.sys.brk) {
		panic(fmt.Sprintf("tmk: range [%d,%d) outside shared space", a, int(a)+n))
	}
	ps := p.sys.cfg.PageSize
	done := 0
	for done < n {
		pid := (int(a) + done) / ps
		off := (int(a) + done) % ps
		cnt := ps - off
		if cnt > n-done {
			cnt = n - done
		}
		fn(pid, off, cnt, done)
		done += cnt
	}
}

// F64Array is a typed window onto shared memory.
type F64Array struct {
	p    *Proc
	base Addr
	n    int
}

// F64Array views n float64 values starting at base.
func (p *Proc) F64Array(base Addr, n int) F64Array {
	p.loc(base, 8) // validate base alignment and start bound
	return F64Array{p: p, base: base, n: n}
}

// Len returns the element count.
func (a F64Array) Len() int { return a.n }

// Addr returns the address of element i.
func (a F64Array) Addr(i int) Addr { return a.base + Addr(8*i) }

func (a F64Array) check(i int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("tmk: index %d out of range [0,%d)", i, a.n))
	}
}

// At reads element i.
func (a F64Array) At(i int) float64 {
	a.check(i)
	return a.p.ReadF64(a.base + Addr(8*i))
}

// Set writes element i.
func (a F64Array) Set(i int, v float64) {
	a.check(i)
	a.p.WriteF64(a.base+Addr(8*i), v)
}

// Load copies elements [lo,hi) into dst (bulk read: one access check per
// page rather than per element).
func (a F64Array) Load(dst []float64, lo, hi int) {
	a.check(lo)
	if hi < lo || hi > a.n {
		panic("tmk: bad Load range")
	}
	if len(dst) < hi-lo {
		panic("tmk: Load dst too short")
	}
	a.p.forPages(a.base+Addr(8*lo), 8*(hi-lo), func(pid, off, cnt, done int) {
		pg := a.p.readable(pid)
		base := done / 8
		if pg.data == nil {
			for i := 0; i < cnt/8; i++ {
				dst[base+i] = 0
			}
			return
		}
		for i := 0; i < cnt/8; i++ {
			dst[base+i] = getF64(pg.data[off+8*i:])
		}
	})
}

// Store copies src into elements starting at lo (bulk write).
func (a F64Array) Store(src []float64, lo int) {
	if len(src) == 0 {
		return
	}
	a.check(lo)
	a.check(lo + len(src) - 1)
	a.p.forPages(a.base+Addr(8*lo), 8*len(src), func(pid, off, cnt, done int) {
		pg := a.p.writable(pid)
		base := done / 8
		for i := 0; i < cnt/8; i++ {
			putF64(pg.data[off+8*i:], src[base+i])
		}
	})
}

// I32Array is a typed int32 window onto shared memory.
type I32Array struct {
	p    *Proc
	base Addr
	n    int
}

// I32Array views n int32 values starting at base.
func (p *Proc) I32Array(base Addr, n int) I32Array {
	p.loc(base, 4)
	return I32Array{p: p, base: base, n: n}
}

// Len returns the element count.
func (a I32Array) Len() int { return a.n }

// Addr returns the address of element i.
func (a I32Array) Addr(i int) Addr { return a.base + Addr(4*i) }

func (a I32Array) check(i int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("tmk: index %d out of range [0,%d)", i, a.n))
	}
}

// At reads element i.
func (a I32Array) At(i int) int32 {
	a.check(i)
	return a.p.ReadI32(a.base + Addr(4*i))
}

// Set writes element i.
func (a I32Array) Set(i int, v int32) {
	a.check(i)
	a.p.WriteI32(a.base+Addr(4*i), v)
}

// Load copies elements [lo,hi) into dst.
func (a I32Array) Load(dst []int32, lo, hi int) {
	a.check(lo)
	if hi < lo || hi > a.n {
		panic("tmk: bad Load range")
	}
	if len(dst) < hi-lo {
		panic("tmk: Load dst too short")
	}
	a.p.forPages(a.base+Addr(4*lo), 4*(hi-lo), func(pid, off, cnt, done int) {
		pg := a.p.readable(pid)
		base := done / 4
		if pg.data == nil {
			for i := 0; i < cnt/4; i++ {
				dst[base+i] = 0
			}
			return
		}
		for i := 0; i < cnt/4; i++ {
			dst[base+i] = int32(getU32(pg.data[off+4*i:]))
		}
	})
}

// Store copies src into elements starting at lo.
func (a I32Array) Store(src []int32, lo int) {
	if len(src) == 0 {
		return
	}
	a.check(lo)
	a.check(lo + len(src) - 1)
	a.p.forPages(a.base+Addr(4*lo), 4*len(src), func(pid, off, cnt, done int) {
		pg := a.p.writable(pid)
		base := done / 4
		for i := 0; i < cnt/4; i++ {
			putU32(pg.data[off+4*i:], uint32(src[base+i]))
		}
	})
}

// I64Array is a typed int64 window onto shared memory.
type I64Array struct {
	p    *Proc
	base Addr
	n    int
}

// I64Array views n int64 values starting at base.
func (p *Proc) I64Array(base Addr, n int) I64Array {
	p.loc(base, 8)
	return I64Array{p: p, base: base, n: n}
}

// Len returns the element count.
func (a I64Array) Len() int { return a.n }

// Addr returns the address of element i.
func (a I64Array) Addr(i int) Addr { return a.base + Addr(8*i) }

func (a I64Array) check(i int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("tmk: index %d out of range [0,%d)", i, a.n))
	}
}

// At reads element i.
func (a I64Array) At(i int) int64 {
	a.check(i)
	return a.p.ReadI64(a.base + Addr(8*i))
}

// Set writes element i.
func (a I64Array) Set(i int, v int64) {
	a.check(i)
	a.p.WriteI64(a.base+Addr(8*i), v)
}
