package tmk

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/vnet"
)

// runEagerPair runs a two-processor producer/consumer program — proc 0
// writes a page region and crosses a barrier, proc 1 reads it back —
// and returns the values proc 1 observed plus the wire stats.
func runEagerPair(t *testing.T, eager bool, rounds int) ([]int64, vnet.Stats) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.EagerInvalidate = eager
	e := sim.NewEngine()
	n := vnet.New(vnet.FDDI())
	s := NewSystem(e, n, 2, cfg)
	base := s.MallocPageAligned(8 * rounds)
	got := make([]int64, rounds)
	s.Spawn(0, func(p *Proc) {
		for r := 0; r < rounds; r++ {
			p.WriteI64(base+Addr(8*r), int64(100+r))
			p.Barrier(2 * r)
			p.Barrier(2*r + 1)
		}
	})
	s.Spawn(1, func(p *Proc) {
		for r := 0; r < rounds; r++ {
			p.Barrier(2 * r)
			got[r] = p.ReadI64(base + Addr(8*r))
			p.Barrier(2*r + 1)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return got, s.Stats()
}

// TestEagerInvalidateConformance pins the eager-invalidate knob's
// contract: identical application-visible values, strictly more wire
// messages (every interval close broadcasts its notices instead of
// piggybacking them on synchronization replies).
func TestEagerInvalidateConformance(t *testing.T) {
	const rounds = 6
	lazyVals, lazyStats := runEagerPair(t, false, rounds)
	eagerVals, eagerStats := runEagerPair(t, true, rounds)
	for r := 0; r < rounds; r++ {
		want := int64(100 + r)
		if lazyVals[r] != want {
			t.Errorf("lazy round %d: got %d, want %d", r, lazyVals[r], want)
		}
		if eagerVals[r] != want {
			t.Errorf("eager round %d: got %d, want %d", r, eagerVals[r], want)
		}
	}
	if eagerStats.Messages <= lazyStats.Messages {
		t.Errorf("eager sent %d messages, lazy %d: eager mode must broadcast extra invalidations",
			eagerStats.Messages, lazyStats.Messages)
	}
}

// TestEagerInvalidateLockHandoff exercises the deferral paths: a
// lock-protected counter is incremented by both processors while eager
// broadcasts race the critical sections (twinned pages, mid-fault
// pages), and the final total must still be exact.
func TestEagerInvalidateLockHandoff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EagerInvalidate = true
	e := sim.NewEngine()
	n := vnet.New(vnet.FDDI())
	s := NewSystem(e, n, 2, cfg)
	cnt := s.MallocPageAligned(8)
	scratch := s.MallocPageAligned(8 * 64)
	const itersPer = 25
	var final int64
	body := func(p *Proc) {
		for i := 0; i < itersPer; i++ {
			p.LockAcquire(0)
			p.WriteI64(cnt, p.ReadI64(cnt)+1)
			p.LockRelease(0)
			// Off-lock writes keep pages twinned while remote broadcasts
			// arrive, exercising the busy-page deferral.
			p.WriteI64(scratch+Addr(8*((i+p.ID()*7)%64)), int64(i))
		}
		p.Barrier(0)
		if p.ID() == 0 {
			final = p.ReadI64(cnt)
		}
		p.Barrier(1)
	}
	s.Spawn(0, body)
	s.Spawn(1, body)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if final != 2*itersPer {
		t.Errorf("counter = %d, want %d", final, 2*itersPer)
	}
}
