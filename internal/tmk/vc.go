package tmk

// VC is a vector timestamp over the processors of a TreadMarks system.
// Entry p counts the intervals of processor p whose write notices the
// owner of the clock has seen (equivalently: the index of p's next
// unseen interval).  The happens-before-1 partial order of intervals
// (paper §2.2.2) is represented by pointwise comparison of these
// vectors.
//
// The representation is sparse: only nonzero entries are stored, as a
// pair of parallel slices (ps: ascending processor ids, vs: their
// values).  A processor's synchronization footprint therefore scales
// with the number of *active writers* it has heard from, not with the
// total processor count — the property that lets the procs=64/256
// scenario family run without every barrier paying O(P) per record.
// The canonical form (sorted ps, no zero values, nil slices when
// empty) is maintained by every mutator, so reflect.DeepEqual on two
// VCs built through the public API is a semantic equality test.
//
// The wire encoding (wire.go) stays dense — a u16 length followed by
// one u32 per processor — so modeled message sizes are unchanged from
// the dense representation and the pinned goldens never move.
type VC struct {
	n  int32   // vector width: total processors in the system
	ps []int32 // processors with nonzero entries, ascending
	vs []int32 // parallel values, all > 0
}

// NewVC returns a zero vector timestamp for n processors.
func NewVC(n int) VC { return VC{n: int32(n)} }

// Len returns the vector width (the processor count it ranges over).
func (v VC) Len() int { return int(v.n) }

// search returns the position of p in v.ps, or the insertion point if
// absent.  Short vectors scan linearly; long ones binary-search.
func (v VC) search(p int32) int {
	if len(v.ps) <= 8 {
		for i, q := range v.ps {
			if q >= p {
				return i
			}
		}
		return len(v.ps)
	}
	lo, hi := 0, len(v.ps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v.ps[mid] < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns entry p (zero when p has no stored entry).
func (v VC) Get(p int) int32 {
	i := v.search(int32(p))
	if i < len(v.ps) && v.ps[i] == int32(p) {
		return v.vs[i]
	}
	return 0
}

// SetMax raises entry p to x if x is larger; zero or smaller values
// are no-ops, preserving the no-stored-zeros canonical form.
//
// Raising an existing entry mutates in place — older struct copies of
// the vector (the protocol live-shares timestamps into messages while
// the sender blocks) observe the monotone growth, exactly as they did
// with the dense representation.  Inserting a new entry reallocates
// both slices instead of shifting: an in-place shift would scramble
// what those aliased copies see, so they keep a frozen-but-consistent
// pre-insert view instead.
func (v *VC) SetMax(p int, x int32) {
	if x <= 0 {
		return
	}
	i := v.search(int32(p))
	if i < len(v.ps) && v.ps[i] == int32(p) {
		if x > v.vs[i] {
			v.vs[i] = x
		}
		return
	}
	nps := make([]int32, len(v.ps)+1)
	nvs := make([]int32, len(v.vs)+1)
	copy(nps, v.ps[:i])
	copy(nvs, v.vs[:i])
	nps[i] = int32(p)
	nvs[i] = x
	copy(nps[i+1:], v.ps[i:])
	copy(nvs[i+1:], v.vs[i:])
	v.ps, v.vs = nps, nvs
}

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	c := VC{n: v.n}
	if len(v.ps) > 0 {
		c.ps = make([]int32, len(v.ps))
		copy(c.ps, v.ps)
		c.vs = make([]int32, len(v.vs))
		copy(c.vs, v.vs)
	}
	return c
}

// Covers reports whether v >= w pointwise: everything w has seen, v has.
func (v VC) Covers(w VC) bool {
	i := 0
	for j := range w.ps {
		for i < len(v.ps) && v.ps[i] < w.ps[j] {
			i++
		}
		if i == len(v.ps) || v.ps[i] != w.ps[j] || v.vs[i] < w.vs[j] {
			return false
		}
	}
	return true
}

// CoversInterval reports whether v has seen interval idx of processor p.
func (v VC) CoversInterval(p, idx int) bool { return v.Get(p) > int32(idx) }

// Merge sets v to the pointwise maximum of v and w.
func (v *VC) Merge(w VC) {
	if len(w.ps) == 0 {
		return
	}
	// First pass: raise entries v already stores; count the rest.
	missing := 0
	i := 0
	for j := range w.ps {
		for i < len(v.ps) && v.ps[i] < w.ps[j] {
			i++
		}
		if i < len(v.ps) && v.ps[i] == w.ps[j] {
			if w.vs[j] > v.vs[i] {
				v.vs[i] = w.vs[j]
			}
		} else {
			missing++
		}
	}
	if missing == 0 {
		return
	}
	nps := make([]int32, 0, len(v.ps)+missing)
	nvs := make([]int32, 0, len(v.ps)+missing)
	i, j := 0, 0
	for i < len(v.ps) || j < len(w.ps) {
		switch {
		case j == len(w.ps) || (i < len(v.ps) && v.ps[i] < w.ps[j]):
			nps = append(nps, v.ps[i])
			nvs = append(nvs, v.vs[i])
			i++
		case i == len(v.ps) || w.ps[j] < v.ps[i]:
			nps = append(nps, w.ps[j])
			nvs = append(nvs, w.vs[j])
			j++
		default:
			x := v.vs[i]
			if w.vs[j] > x {
				x = w.vs[j]
			}
			nps = append(nps, v.ps[i])
			nvs = append(nvs, x)
			i++
			j++
		}
	}
	v.ps, v.vs = nps, nvs
}

// MergeMin sets v to the pointwise minimum of v and w.  Entries absent
// from either vector are zero, so the result keeps only processors
// present in both, at the smaller value.  Compaction happens in place:
// the caller must own v outright (no aliased copies).  Used by the
// combining-tree barrier to summarize what *every* member of a subtree
// has seen.
func (v *VC) MergeMin(w VC) {
	if len(v.ps) == 0 {
		return
	}
	k := 0
	j := 0
	for i := range v.ps {
		for j < len(w.ps) && w.ps[j] < v.ps[i] {
			j++
		}
		if j == len(w.ps) {
			break
		}
		if w.ps[j] != v.ps[i] {
			continue
		}
		x := v.vs[i]
		if w.vs[j] < x {
			x = w.vs[j]
		}
		v.ps[k], v.vs[k] = v.ps[i], x
		k++
	}
	if k == 0 {
		v.ps, v.vs = nil, nil
		return
	}
	v.ps, v.vs = v.ps[:k], v.vs[:k]
}

// Before reports strict happens-before: v <= w pointwise and v != w.
func (v VC) Before(w VC) bool {
	strict := false
	j := 0
	for i := range v.ps {
		for j < len(w.ps) && w.ps[j] < v.ps[i] {
			strict = true // w has an entry v lacks
			j++
		}
		if j == len(w.ps) || w.ps[j] != v.ps[i] || v.vs[i] > w.vs[j] {
			return false // v exceeds w at this processor
		}
		if v.vs[i] < w.vs[j] {
			strict = true
		}
		j++
	}
	if j < len(w.ps) {
		strict = true
	}
	return strict
}

// Concurrent reports that neither vector covers the other.
func (v VC) Concurrent(w VC) bool { return !v.Covers(w) && !w.Covers(v) }
