package tmk

// VC is a vector timestamp over the processors of a TreadMarks system.
// vc[p] counts the intervals of processor p whose write notices the owner
// of the clock has seen (equivalently: the index of p's next unseen
// interval).  The happens-before-1 partial order of intervals (paper
// §2.2.2) is represented by pointwise comparison of these vectors.
type VC []int32

// NewVC returns a zero vector timestamp for n processors.
func NewVC(n int) VC { return make(VC, n) }

// Clone returns a copy of v.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Covers reports whether v >= w pointwise: everything w has seen, v has.
func (v VC) Covers(w VC) bool {
	for i := range v {
		if v[i] < w[i] {
			return false
		}
	}
	return true
}

// CoversInterval reports whether v has seen interval idx of processor p.
func (v VC) CoversInterval(p, idx int) bool { return v[p] > int32(idx) }

// Merge sets v to the pointwise maximum of v and w.
func (v VC) Merge(w VC) {
	for i := range v {
		if w[i] > v[i] {
			v[i] = w[i]
		}
	}
}

// Before reports strict happens-before: v <= w pointwise and v != w.
func (v VC) Before(w VC) bool {
	strict := false
	for i := range v {
		if v[i] > w[i] {
			return false
		}
		if v[i] < w[i] {
			strict = true
		}
	}
	return strict
}

// Concurrent reports that neither vector covers the other.
func (v VC) Concurrent(w VC) bool { return !v.Covers(w) && !w.Covers(v) }
