package tmk

import (
	"math/rand"
	"sort"
	"testing"
)

// TestMergeArrivalRecordsMatchesMapUnion proves the barrier manager's
// head merge equivalent to the former map-built union: for random sets of
// per-arrival record batches (each sorted by (Proc, Idx), duplicates
// shared across batches, as the protocol guarantees), the merge must
// yield exactly the deduplicated union in (Proc, Idx) order.
func TestMergeArrivalRecordsMatchesMapUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nprocs := 1 + rng.Intn(8)
		// A pool of published records: each (proc, idx) exists once and is
		// shared by reference, like real interval records.
		pool := map[[2]int]*IntervalRec{}
		rec := func(proc, idx int) *IntervalRec {
			key := [2]int{proc, idx}
			if r := pool[key]; r != nil {
				return r
			}
			r := &IntervalRec{Proc: proc, Idx: idx}
			pool[key] = r
			return r
		}
		arrived := make([][]*IntervalRec, nprocs)
		for i := range arrived {
			var batch []*IntervalRec
			for proc := 0; proc < nprocs; proc++ {
				// A contiguous idx range per writer keeps the batch
				// realistic (interval indices only grow).
				lo := rng.Intn(4)
				hi := lo + rng.Intn(4)
				if rng.Intn(3) == 0 {
					continue
				}
				for idx := lo; idx < hi; idx++ {
					batch = append(batch, rec(proc, idx))
				}
			}
			arrived[i] = batch
		}

		// Reference: the former implementation's map union plus sort.
		union := map[[2]int]*IntervalRec{}
		for _, a := range arrived {
			for _, r := range a {
				union[[2]int{r.Proc, r.Idx}] = r
			}
		}
		var want []*IntervalRec
		for _, r := range union {
			want = append(want, r)
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Proc != want[j].Proc {
				return want[i].Proc < want[j].Proc
			}
			return want[i].Idx < want[j].Idx
		})

		got, _ := mergeRecordBatches(arrived, nil, nil)
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d records, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: record %d = (%d,%d), want (%d,%d)",
					trial, i, got[i].Proc, got[i].Idx, want[i].Proc, want[i].Idx)
			}
		}
	}
}
