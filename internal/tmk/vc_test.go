package tmk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVCBasics(t *testing.T) {
	v := NewVC(3)
	w := NewVC(3)
	if !v.Covers(w) || !w.Covers(v) {
		t.Fatal("equal vectors must cover each other")
	}
	if v.Before(w) {
		t.Fatal("equal vectors are not strictly ordered")
	}
	w[1] = 2
	if !w.Covers(v) || v.Covers(w) {
		t.Fatal("covers after bump")
	}
	if !v.Before(w) || w.Before(v) {
		t.Fatal("before after bump")
	}
	v[0] = 1
	if !v.Concurrent(w) {
		t.Fatal("divergent vectors are concurrent")
	}
}

func TestVCMerge(t *testing.T) {
	v := VC{1, 5, 2}
	w := VC{3, 1, 2}
	v.Merge(w)
	if v[0] != 3 || v[1] != 5 || v[2] != 2 {
		t.Fatalf("merge = %v", v)
	}
}

func TestVCCoversInterval(t *testing.T) {
	v := VC{2, 0}
	if !v.CoversInterval(0, 1) {
		t.Fatal("should cover interval 1 of proc 0")
	}
	if v.CoversInterval(0, 2) {
		t.Fatal("should not cover interval 2 of proc 0")
	}
	if v.CoversInterval(1, 0) {
		t.Fatal("should not cover any interval of proc 1")
	}
}

func TestVCCloneIndependent(t *testing.T) {
	v := VC{1, 2}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Fatal("clone aliases original")
	}
}

// randVC generates small random vectors for property tests.
func randVC(r *rand.Rand, n int) VC {
	v := NewVC(n)
	for i := range v {
		v[i] = int32(r.Intn(4))
	}
	return v
}

// Property: Covers is a partial order — reflexive, antisymmetric (up to
// equality), transitive; Merge produces an upper bound.
func TestVCPartialOrderProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVC(r, 4), randVC(r, 4), randVC(r, 4)
		if !a.Covers(a) {
			return false
		}
		if a.Covers(b) && b.Covers(c) && !a.Covers(c) {
			return false
		}
		m := a.Clone()
		m.Merge(b)
		if !m.Covers(a) || !m.Covers(b) {
			return false
		}
		// Before is irreflexive and asymmetric.
		if a.Before(a) {
			return false
		}
		if a.Before(b) && b.Before(a) {
			return false
		}
		// Exactly one of: a==b, a<b, b<a, concurrent.
		eq := a.Covers(b) && b.Covers(a)
		states := 0
		if eq {
			states++
		}
		if a.Before(b) {
			states++
		}
		if b.Before(a) {
			states++
		}
		if a.Concurrent(b) {
			states++
		}
		return states == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
