package tmk

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// mkVC builds a width-len(vals) vector with the given dense entries —
// the test-side constructor replacing the dense composite literals.
func mkVC(vals ...int32) VC {
	v := NewVC(len(vals))
	for p, x := range vals {
		v.SetMax(p, x)
	}
	return v
}

// dense reads v back out as a flat vector, for comparison against the
// reference implementation.
func dense(v VC) []int32 {
	out := make([]int32, v.Len())
	for p := range out {
		out[p] = v.Get(p)
	}
	return out
}

func TestVCBasics(t *testing.T) {
	v := NewVC(3)
	w := NewVC(3)
	if !v.Covers(w) || !w.Covers(v) {
		t.Fatal("equal vectors must cover each other")
	}
	if v.Before(w) {
		t.Fatal("equal vectors are not strictly ordered")
	}
	w.SetMax(1, 2)
	if !w.Covers(v) || v.Covers(w) {
		t.Fatal("covers after bump")
	}
	if !v.Before(w) || w.Before(v) {
		t.Fatal("before after bump")
	}
	v.SetMax(0, 1)
	if !v.Concurrent(w) {
		t.Fatal("divergent vectors are concurrent")
	}
}

func TestVCMerge(t *testing.T) {
	v := mkVC(1, 5, 2)
	w := mkVC(3, 1, 2)
	v.Merge(w)
	if v.Get(0) != 3 || v.Get(1) != 5 || v.Get(2) != 2 {
		t.Fatalf("merge = %v", dense(v))
	}
}

func TestVCCoversInterval(t *testing.T) {
	v := mkVC(2, 0)
	if !v.CoversInterval(0, 1) {
		t.Fatal("should cover interval 1 of proc 0")
	}
	if v.CoversInterval(0, 2) {
		t.Fatal("should not cover interval 2 of proc 0")
	}
	if v.CoversInterval(1, 0) {
		t.Fatal("should not cover any interval of proc 1")
	}
}

func TestVCCloneIndependent(t *testing.T) {
	v := mkVC(1, 2)
	c := v.Clone()
	c.SetMax(0, 9)
	if v.Get(0) != 1 {
		t.Fatal("clone aliases original")
	}
}

// TestVCCanonicalForm pins the representation invariant DeepEqual
// comparisons rely on: no stored zeros, sorted entries, nil slices
// when empty — however the vector was built.
func TestVCCanonicalForm(t *testing.T) {
	v := NewVC(5)
	v.SetMax(2, 0) // zero writes must not create entries
	if v.ps != nil || v.vs != nil {
		t.Fatalf("zero SetMax stored an entry: %+v", v)
	}
	if !reflect.DeepEqual(v, NewVC(5)) {
		t.Fatal("empty vectors not DeepEqual")
	}
	v.SetMax(3, 1)
	v.SetMax(1, 4)
	v.SetMax(3, 2)
	w := mkVC(0, 4, 0, 2, 0)
	if !reflect.DeepEqual(v, w) {
		t.Fatalf("insertion order leaked into representation: %+v vs %+v", v, w)
	}
	// MergeMin down to empty must return to the canonical nil form.
	v.MergeMin(NewVC(5))
	if !reflect.DeepEqual(v, NewVC(5)) {
		t.Fatalf("MergeMin to empty is not canonical: %+v", v)
	}
}

// randVC generates small random vectors for property tests.  Entries
// are frequently zero, so sparse/dense disagreements on absent entries
// get exercised hard.
func randVC(r *rand.Rand, n int) VC {
	v := NewVC(n)
	for p := 0; p < n; p++ {
		v.SetMax(p, int32(r.Intn(4)))
	}
	return v
}

// Property: Covers is a partial order — reflexive, antisymmetric (up to
// equality), transitive; Merge produces an upper bound.
func TestVCPartialOrderProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVC(r, 4), randVC(r, 4), randVC(r, 4)
		if !a.Covers(a) {
			return false
		}
		if a.Covers(b) && b.Covers(c) && !a.Covers(c) {
			return false
		}
		m := a.Clone()
		m.Merge(b)
		if !m.Covers(a) || !m.Covers(b) {
			return false
		}
		// Before is irreflexive and asymmetric.
		if a.Before(a) {
			return false
		}
		if a.Before(b) && b.Before(a) {
			return false
		}
		// Exactly one of: a==b, a<b, b<a, concurrent.
		eq := a.Covers(b) && b.Covers(a)
		states := 0
		if eq {
			states++
		}
		if a.Before(b) {
			states++
		}
		if b.Before(a) {
			states++
		}
		if a.Concurrent(b) {
			states++
		}
		return states == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------
// Differential test: the sparse representation against a trivially
// correct dense reference, over randomized vectors.

type denseVC []int32

func (v denseVC) covers(w denseVC) bool {
	for i := range v {
		if v[i] < w[i] {
			return false
		}
	}
	return true
}

func (v denseVC) before(w denseVC) bool {
	strict := false
	for i := range v {
		if v[i] > w[i] {
			return false
		}
		if v[i] < w[i] {
			strict = true
		}
	}
	return strict
}

func (v denseVC) merge(w denseVC) {
	for i := range v {
		if w[i] > v[i] {
			v[i] = w[i]
		}
	}
}

func (v denseVC) mergeMin(w denseVC) {
	for i := range v {
		if w[i] < v[i] {
			v[i] = w[i]
		}
	}
}

// TestVCSparseMatchesDense drives random operation sequences through
// the sparse VC and the dense reference in lockstep and requires every
// observable — Get, Covers, CoversInterval, Before, Concurrent, and
// the vectors produced by Merge/MergeMin — to agree exactly.
func TestVCSparseMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		mk := func() (VC, denseVC) {
			s, d := NewVC(n), make(denseVC, n)
			// Bias toward sparse vectors: most entries stay zero.
			for k := r.Intn(n + 1); k > 0; k-- {
				p, x := r.Intn(n), int32(r.Intn(5))
				s.SetMax(p, x)
				if x > d[p] {
					d[p] = x
				}
			}
			return s, d
		}
		sa, da := mk()
		sb, db := mk()
		for p := 0; p < n; p++ {
			if sa.Get(p) != da[p] {
				return false
			}
		}
		if sa.Covers(sb) != da.covers(db) || sb.Covers(sa) != db.covers(da) {
			return false
		}
		if sa.Before(sb) != da.before(db) || sb.Before(sa) != db.before(da) {
			return false
		}
		if sa.Concurrent(sb) != (!da.covers(db) && !db.covers(da)) {
			return false
		}
		p, idx := r.Intn(n), r.Intn(5)
		if sa.CoversInterval(p, idx) != (da[p] > int32(idx)) {
			return false
		}
		sm, dm := sa.Clone(), append(denseVC(nil), da...)
		sm.Merge(sb)
		dm.merge(db)
		if !reflect.DeepEqual(dense(sm), []int32(dm)) {
			return false
		}
		// Merge must be canonical: equal to building the result directly.
		if !reflect.DeepEqual(sm, mkVCWidth(n, dm)) {
			return false
		}
		lo, dlo := sa.Clone(), append(denseVC(nil), da...)
		lo.MergeMin(sb)
		dlo.mergeMin(db)
		if !reflect.DeepEqual(dense(lo), []int32(dlo)) {
			return false
		}
		if !reflect.DeepEqual(lo, mkVCWidth(n, dlo)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// mkVCWidth builds a width-n vector from dense values.
func mkVCWidth(n int, vals []int32) VC {
	v := NewVC(n)
	for p, x := range vals {
		v.SetMax(p, x)
	}
	return v
}

// TestVCWideSparse exercises the binary-search path: wide vectors with
// a handful of scattered writers.
func TestVCWideSparse(t *testing.T) {
	const n = 256
	v := NewVC(n)
	writers := []int{3, 17, 64, 65, 120, 200, 201, 202, 240, 255}
	for i, p := range writers {
		v.SetMax(p, int32(i+1))
	}
	for i, p := range writers {
		if v.Get(p) != int32(i+1) {
			t.Fatalf("Get(%d) = %d, want %d", p, v.Get(p), i+1)
		}
	}
	if v.Get(0) != 0 || v.Get(100) != 0 || v.Get(254) != 0 {
		t.Fatal("absent entries must read zero")
	}
	if len(v.ps) != len(writers) {
		t.Fatalf("stored %d entries, want %d", len(v.ps), len(writers))
	}
	w := v.Clone()
	w.SetMax(100, 7)
	if !w.Covers(v) || v.Covers(w) {
		t.Fatal("cover after wide insert")
	}
	if !v.Before(w) {
		t.Fatal("before after wide insert")
	}
}
