package tmk

import (
	"bytes"
	"reflect"
	"testing"
)

func TestAcqMsgRoundTrip(t *testing.T) {
	m := &acqMsg{Lock: 7, Requester: 3, VC: mkVC(1, 0, 4)}
	got := decodeAcq(m.encode())
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("got %+v want %+v", got, m)
	}
}

func TestGrantMsgRoundTrip(t *testing.T) {
	m := &grantMsg{
		Lock: 2,
		Records: []*IntervalRec{
			{Proc: 0, Idx: 3, VC: mkVC(4, 1), Pages: []int{7, 9, 11}},
			{Proc: 1, Idx: 0, VC: mkVC(0, 1), Pages: nil},
		},
	}
	got := decodeGrant(m.encode())
	if got.Lock != 2 || len(got.Records) != 2 {
		t.Fatalf("got %+v", got)
	}
	r0 := got.Records[0]
	if r0.Proc != 0 || r0.Idx != 3 || !reflect.DeepEqual(r0.VC, mkVC(4, 1)) ||
		!reflect.DeepEqual(r0.Pages, []int{7, 9, 11}) {
		t.Fatalf("record 0 = %+v", r0)
	}
	if len(got.Records[1].Pages) != 0 {
		t.Fatalf("record 1 pages = %v", got.Records[1].Pages)
	}
}

func TestBarrMsgRoundTrip(t *testing.T) {
	m := &barrMsg{
		Barrier: 5, From: 2, VC: mkVC(9, 8, 7),
		Records: []*IntervalRec{{Proc: 2, Idx: 8, VC: mkVC(9, 8, 7), Pages: []int{1}}},
	}
	got := decodeBarr(m.encode())
	if got.Barrier != 5 || got.From != 2 || !reflect.DeepEqual(got.VC, mkVC(9, 8, 7)) {
		t.Fatalf("got %+v", got)
	}
	if len(got.Records) != 1 || got.Records[0].Pages[0] != 1 {
		t.Fatalf("records = %+v", got.Records)
	}
}

func TestDiffReqMsgRoundTrip(t *testing.T) {
	m := &diffReqMsg{Page: 42, Requester: 6,
		Wants: []diffWant{{Proc: 1, Idx: 9}, {Proc: 3, Idx: 0}}}
	got := decodeDiffReq(m.encode())
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("got %+v want %+v", got, m)
	}
}

func TestDiffRespMsgRoundTrip(t *testing.T) {
	d := &Diff{Page: 42, Runs: []Run{{Off: 16, Data: []byte{1, 2, 3}}, {Off: 100, Data: []byte{9}}}}
	m := &diffRespMsg{Page: 42, Entries: []diffEntry{{Proc: 2, Idx: 5, Diff: d}}}
	got := decodeDiffResp(m.encode())
	if got.Page != 42 || len(got.Entries) != 1 {
		t.Fatalf("got %+v", got)
	}
	e := got.Entries[0]
	if e.Proc != 2 || e.Idx != 5 {
		t.Fatalf("entry = %+v", e)
	}
	if len(e.Diff.Runs) != 2 || e.Diff.Runs[0].Off != 16 ||
		!bytes.Equal(e.Diff.Runs[0].Data, []byte{1, 2, 3}) ||
		e.Diff.Runs[1].Off != 100 || !bytes.Equal(e.Diff.Runs[1].Data, []byte{9}) {
		t.Fatalf("diff = %+v", e.Diff)
	}
}

// TestWireSizeMatchesEncoding pins the contract behind the protocol's
// zero-serialization fast path: the modeled size a message declares to
// vnet.SendObj must equal the length of its byte encoding, for every
// message type, or wire accounting would drift from the documented format.
func TestWireSizeMatchesEncoding(t *testing.T) {
	recs := []*IntervalRec{
		{Proc: 0, Idx: 3, VC: mkVC(4, 1, 0), Pages: []int{7, 8, 9, 30}},
		{Proc: 2, Idx: 0, VC: mkVC(0, 1, 1), Pages: nil},
		{Proc: 1, Idx: 7, VC: mkVC(9, 8, 7), Pages: []int{0, 2, 4, 6, 8}},
	}
	d1 := &Diff{Page: 3, Runs: []Run{{Off: 16, Data: make([]byte, 40)}, {Off: 100, Data: []byte{9}}}}
	d2 := &Diff{Page: 3}
	cases := []struct {
		name string
		size int
		enc  []byte
	}{
		{"acq", (&acqMsg{Lock: 7, Requester: 3, VC: mkVC(1, 0, 4)}).wireSize(),
			(&acqMsg{Lock: 7, Requester: 3, VC: mkVC(1, 0, 4)}).encode()},
		{"grant-empty", (&grantMsg{Lock: 2}).wireSize(), (&grantMsg{Lock: 2}).encode()},
		{"grant", (&grantMsg{Lock: 2, Records: recs}).wireSize(),
			(&grantMsg{Lock: 2, Records: recs}).encode()},
		{"barr", (&barrMsg{Barrier: 5, From: 2, VC: mkVC(9, 8, 7), Records: recs}).wireSize(),
			(&barrMsg{Barrier: 5, From: 2, VC: mkVC(9, 8, 7), Records: recs}).encode()},
		{"diffreq", (&diffReqMsg{Page: 42, Requester: 6, Wants: []diffWant{{1, 9}, {3, 0}}}).wireSize(),
			(&diffReqMsg{Page: 42, Requester: 6, Wants: []diffWant{{1, 9}, {3, 0}}}).encode()},
		{"diffresp", (&diffRespMsg{Page: 3, Entries: []diffEntry{{Proc: 1, Idx: 2, Diff: d1}, {Proc: 0, Idx: 0, Diff: d2}}}).wireSize(),
			(&diffRespMsg{Page: 3, Entries: []diffEntry{{Proc: 1, Idx: 2, Diff: d1}, {Proc: 0, Idx: 0, Diff: d2}}}).encode()},
		{"inval", (&invMsg{From: 2, Records: recs}).wireSize(),
			(&invMsg{From: 2, Records: recs}).encode()},
		{"treearr", (&treeArrMsg{Barrier: 4, From: 5, VC: mkVC(9, 8, 7), MinVC: mkVC(1, 0, 2), Records: recs}).wireSize(),
			(&treeArrMsg{Barrier: 4, From: 5, VC: mkVC(9, 8, 7), MinVC: mkVC(1, 0, 2), Records: recs}).encode()},
		{"treearr-empty", (&treeArrMsg{Barrier: 1, From: 0, VC: mkVC(0, 0), MinVC: mkVC(0, 0)}).wireSize(),
			(&treeArrMsg{Barrier: 1, From: 0, VC: mkVC(0, 0), MinVC: mkVC(0, 0)}).encode()},
		{"treedep", (&treeDepMsg{Barrier: 4, From: 0, VC: mkVC(9, 8, 7), Records: recs}).wireSize(),
			(&treeDepMsg{Barrier: 4, From: 0, VC: mkVC(9, 8, 7), Records: recs}).encode()},
	}
	for _, c := range cases {
		if c.size != len(c.enc) {
			t.Errorf("%s: wireSize %d != encoded length %d", c.name, c.size, len(c.enc))
		}
	}
}

func TestInvalMsgRoundTrip(t *testing.T) {
	m := &invMsg{From: 3, Records: []*IntervalRec{
		{Proc: 3, Idx: 11, VC: mkVC(1, 2, 3, 12), Pages: []int{5, 6, 7, 20}},
	}}
	got := decodeInval(m.encode())
	if got.From != 3 || len(got.Records) != 1 {
		t.Fatalf("got %+v", got)
	}
	r := got.Records[0]
	if r.Proc != 3 || r.Idx != 11 || !reflect.DeepEqual(r.VC, mkVC(1, 2, 3, 12)) ||
		!reflect.DeepEqual(r.Pages, []int{5, 6, 7, 20}) {
		t.Fatalf("record = %+v", r)
	}
}

func TestTreeArrMsgRoundTrip(t *testing.T) {
	m := &treeArrMsg{
		Barrier: 6, From: 9, VC: mkVC(4, 0, 7, 1), MinVC: mkVC(2, 0, 0, 1),
		Records: []*IntervalRec{{Proc: 2, Idx: 6, VC: mkVC(0, 0, 7, 1), Pages: []int{3, 4}}},
	}
	got := decodeTreeArr(m.encode())
	if got.Barrier != 6 || got.From != 9 ||
		!reflect.DeepEqual(got.VC, m.VC) || !reflect.DeepEqual(got.MinVC, m.MinVC) {
		t.Fatalf("got %+v", got)
	}
	if len(got.Records) != 1 || !reflect.DeepEqual(got.Records[0].VC, m.Records[0].VC) ||
		!reflect.DeepEqual(got.Records[0].Pages, []int{3, 4}) {
		t.Fatalf("records = %+v", got.Records)
	}
}

func TestTreeDepMsgRoundTrip(t *testing.T) {
	m := &treeDepMsg{
		Barrier: 6, From: 0, VC: mkVC(4, 5, 7, 2),
		Records: []*IntervalRec{{Proc: 1, Idx: 4, VC: mkVC(4, 5), Pages: []int{12}}},
	}
	got := decodeTreeDep(m.encode())
	if got.Barrier != 6 || got.From != 0 || !reflect.DeepEqual(got.VC, m.VC) {
		t.Fatalf("got %+v", got)
	}
	if len(got.Records) != 1 || got.Records[0].Pages[0] != 12 {
		t.Fatalf("records = %+v", got.Records)
	}
}

func TestWireSizeTracksPayload(t *testing.T) {
	small := (&grantMsg{Lock: 1}).encode()
	big := (&grantMsg{Lock: 1, Records: []*IntervalRec{
		{Proc: 0, Idx: 0, VC: mkVC(1, 0, 0, 0), Pages: make([]int, 100)},
	}}).encode()
	if len(big) <= len(small)+300 {
		t.Fatalf("100-page record should add >=400 bytes: %d vs %d", len(big), len(small))
	}
}

func TestDecodeTrailingBytesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on trailing bytes")
		}
	}()
	b := (&acqMsg{Lock: 1, Requester: 0, VC: mkVC(0)}).encode()
	decodeAcq(append(b, 0xFF))
}

func TestDecodeTruncatedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on truncation")
		}
	}()
	b := (&acqMsg{Lock: 1, Requester: 0, VC: mkVC(0, 0)}).encode()
	decodeAcq(b[:3])
}

// Contiguous page lists compress to ranges on the wire.
func TestRecordPageRangeCompression(t *testing.T) {
	pages := make([]int, 400)
	for i := range pages {
		pages[i] = 100 + i
	}
	big := (&grantMsg{Lock: 1, Records: []*IntervalRec{
		{Proc: 0, Idx: 0, VC: mkVC(1, 0), Pages: pages},
	}}).encode()
	if len(big) > 80 {
		t.Fatalf("contiguous 400-page record encodes to %d bytes, want small", len(big))
	}
	got := decodeGrant(big)
	if len(got.Records[0].Pages) != 400 || got.Records[0].Pages[399] != 499 {
		t.Fatalf("round trip lost pages: %d", len(got.Records[0].Pages))
	}
	scattered := []int{1, 5, 6, 7, 100}
	b := (&grantMsg{Lock: 1, Records: []*IntervalRec{
		{Proc: 1, Idx: 2, VC: mkVC(0, 3), Pages: scattered},
	}}).encode()
	got = decodeGrant(b)
	for i, pg := range scattered {
		if got.Records[0].Pages[i] != pg {
			t.Fatalf("scattered round trip: %v", got.Records[0].Pages)
		}
	}
}
