package tmk

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakeDiffEmpty(t *testing.T) {
	a := make([]byte, 128)
	d := MakeDiff(0, a, a)
	if !d.Empty() || d.Size() != 0 {
		t.Fatalf("identical pages should produce an empty diff: %+v", d)
	}
}

func TestMakeDiffSingleRun(t *testing.T) {
	twin := make([]byte, 64)
	cur := make([]byte, 64)
	copy(cur[10:], []byte{1, 2, 3})
	d := MakeDiff(3, twin, cur)
	if len(d.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(d.Runs))
	}
	if d.Runs[0].Off != 10 || len(d.Runs[0].Data) != 3 {
		t.Fatalf("run = %+v", d.Runs[0])
	}
	if d.Page != 3 {
		t.Fatalf("page = %d", d.Page)
	}
}

func TestMakeDiffCoalescesShortGaps(t *testing.T) {
	twin := make([]byte, 64)
	cur := make([]byte, 64)
	cur[0] = 1
	cur[6] = 1 // gap of 5 unchanged bytes <= 8: coalesce
	d := MakeDiff(0, twin, cur)
	if len(d.Runs) != 1 {
		t.Fatalf("short gaps should coalesce: %d runs", len(d.Runs))
	}
	cur2 := make([]byte, 64)
	cur2[0] = 1
	cur2[40] = 1 // long gap: separate runs
	d2 := MakeDiff(0, twin, cur2)
	if len(d2.Runs) != 2 {
		t.Fatalf("long gaps should split: %d runs", len(d2.Runs))
	}
}

func TestDiffApplyRoundTrip(t *testing.T) {
	twin := []byte("the quick brown fox jumps over the lazy dog....")
	cur := append([]byte(nil), twin...)
	copy(cur[4:], "slow!")
	copy(cur[30:], "XYZ")
	d := MakeDiff(0, twin, cur)
	got := append([]byte(nil), twin...)
	d.Apply(got)
	if !bytes.Equal(got, cur) {
		t.Fatalf("apply: got %q want %q", got, cur)
	}
}

func TestMakeDiffSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MakeDiff(0, make([]byte, 4), make([]byte, 8))
}

// Property: for random twin/current pairs, twin + diff == current.
func TestDiffRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 64 + r.Intn(512)
		twin := make([]byte, n)
		r.Read(twin)
		cur := append([]byte(nil), twin...)
		// Random sparse mutations.
		for k := r.Intn(10); k > 0; k-- {
			i := r.Intn(n)
			cur[i] = byte(r.Intn(256))
		}
		d := MakeDiff(0, twin, cur)
		got := append([]byte(nil), twin...)
		d.Apply(got)
		return bytes.Equal(got, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: diffs from disjoint writers merge regardless of order — the
// multiple-writer protocol's core invariant.
func TestDisjointDiffMergeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 256
		base := make([]byte, n)
		r.Read(base)
		// Writer A mutates the first half, writer B the second half.
		curA := append([]byte(nil), base...)
		curB := append([]byte(nil), base...)
		for k := 1 + r.Intn(8); k > 0; k-- {
			curA[r.Intn(n/2)] ^= byte(1 + r.Intn(255))
		}
		for k := 1 + r.Intn(8); k > 0; k-- {
			curB[n/2+r.Intn(n/2)] ^= byte(1 + r.Intn(255))
		}
		dA := MakeDiff(0, base, curA)
		dB := MakeDiff(0, base, curB)

		ab := append([]byte(nil), base...)
		dA.Apply(ab)
		dB.Apply(ab)
		ba := append([]byte(nil), base...)
		dB.Apply(ba)
		dA.Apply(ba)
		if !bytes.Equal(ab, ba) {
			return false
		}
		// Result must contain both writers' changes.
		want := append([]byte(nil), curA...)
		copy(want[n/2:], curB[n/2:])
		return bytes.Equal(ab, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Zero-initialized data that stays mostly zero produces tiny diffs: the
// reason TreadMarks ships less data than PVM on SOR-Zero.
func TestZeroPageDiffIsSmall(t *testing.T) {
	twin := make([]byte, 4096)
	cur := make([]byte, 4096)
	putF64(cur[128:], 0.25) // a single interior element became nonzero
	d := MakeDiff(0, twin, cur)
	if d.Size() > 32 {
		t.Fatalf("diff size = %d, want tiny", d.Size())
	}
}
