package tmk

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakeDiffEmpty(t *testing.T) {
	a := make([]byte, 128)
	d := MakeDiff(0, a, a)
	if !d.Empty() || d.Size() != 0 {
		t.Fatalf("identical pages should produce an empty diff: %+v", d)
	}
}

func TestMakeDiffSingleRun(t *testing.T) {
	twin := make([]byte, 64)
	cur := make([]byte, 64)
	copy(cur[10:], []byte{1, 2, 3})
	d := MakeDiff(3, twin, cur)
	if len(d.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(d.Runs))
	}
	if d.Runs[0].Off != 10 || len(d.Runs[0].Data) != 3 {
		t.Fatalf("run = %+v", d.Runs[0])
	}
	if d.Page != 3 {
		t.Fatalf("page = %d", d.Page)
	}
}

func TestMakeDiffCoalescesShortGaps(t *testing.T) {
	twin := make([]byte, 64)
	cur := make([]byte, 64)
	cur[0] = 1
	cur[6] = 1 // gap of 5 unchanged bytes <= 8: coalesce
	d := MakeDiff(0, twin, cur)
	if len(d.Runs) != 1 {
		t.Fatalf("short gaps should coalesce: %d runs", len(d.Runs))
	}
	cur2 := make([]byte, 64)
	cur2[0] = 1
	cur2[40] = 1 // long gap: separate runs
	d2 := MakeDiff(0, twin, cur2)
	if len(d2.Runs) != 2 {
		t.Fatalf("long gaps should split: %d runs", len(d2.Runs))
	}
}

func TestDiffApplyRoundTrip(t *testing.T) {
	twin := []byte("the quick brown fox jumps over the lazy dog....")
	cur := append([]byte(nil), twin...)
	copy(cur[4:], "slow!")
	copy(cur[30:], "XYZ")
	d := MakeDiff(0, twin, cur)
	got := append([]byte(nil), twin...)
	d.Apply(got)
	if !bytes.Equal(got, cur) {
		t.Fatalf("apply: got %q want %q", got, cur)
	}
}

func TestMakeDiffSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MakeDiff(0, make([]byte, 4), make([]byte, 8))
}

// Property: for random twin/current pairs, twin + diff == current.
func TestDiffRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 64 + r.Intn(512)
		twin := make([]byte, n)
		r.Read(twin)
		cur := append([]byte(nil), twin...)
		// Random sparse mutations.
		for k := r.Intn(10); k > 0; k-- {
			i := r.Intn(n)
			cur[i] = byte(r.Intn(256))
		}
		d := MakeDiff(0, twin, cur)
		got := append([]byte(nil), twin...)
		d.Apply(got)
		return bytes.Equal(got, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: diffs from disjoint writers merge regardless of order — the
// multiple-writer protocol's core invariant.
func TestDisjointDiffMergeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 256
		base := make([]byte, n)
		r.Read(base)
		// Writer A mutates the first half, writer B the second half.
		curA := append([]byte(nil), base...)
		curB := append([]byte(nil), base...)
		for k := 1 + r.Intn(8); k > 0; k-- {
			curA[r.Intn(n/2)] ^= byte(1 + r.Intn(255))
		}
		for k := 1 + r.Intn(8); k > 0; k-- {
			curB[n/2+r.Intn(n/2)] ^= byte(1 + r.Intn(255))
		}
		dA := MakeDiff(0, base, curA)
		dB := MakeDiff(0, base, curB)

		ab := append([]byte(nil), base...)
		dA.Apply(ab)
		dB.Apply(ab)
		ba := append([]byte(nil), base...)
		dB.Apply(ba)
		dA.Apply(ba)
		if !bytes.Equal(ab, ba) {
			return false
		}
		// Result must contain both writers' changes.
		want := append([]byte(nil), curA...)
		copy(want[n/2:], curB[n/2:])
		return bytes.Equal(ab, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// referenceMakeDiff is the original byte-at-a-time scan, kept as the
// specification for the word-at-a-time implementation.
func referenceMakeDiff(page int, twin, cur []byte) *Diff {
	d := &Diff{Page: page}
	i := 0
	for i < len(cur) {
		if twin[i] == cur[i] {
			i++
			continue
		}
		j := i + 1
		for j < len(cur) && twin[j] != cur[j] {
			j++
		}
		if n := len(d.Runs); n > 0 {
			last := &d.Runs[n-1]
			gap := i - (last.Off + len(last.Data))
			if gap <= 8 {
				last.Data = append(last.Data, cur[last.Off+len(last.Data):j]...)
				i = j
				continue
			}
		}
		d.Runs = append(d.Runs, Run{Off: i, Data: append([]byte(nil), cur[i:j]...)})
		i = j
	}
	return d
}

// Property: the word-at-a-time MakeDiff produces encodings identical to
// the byte-at-a-time reference — offsets, lengths, payloads and Size.
// Diff sizes feed modeled time and wire byte counts, so any divergence
// would break the determinism guarantee across implementations.
func TestMakeDiffMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Odd sizes exercise the non-word-aligned tail.
		n := 1 + r.Intn(600)
		twin := make([]byte, n)
		r.Read(twin)
		cur := append([]byte(nil), twin...)
		switch r.Intn(4) {
		case 0: // sparse byte flips
			for k := r.Intn(12); k > 0; k-- {
				cur[r.Intn(n)] ^= byte(1 + r.Intn(255))
			}
		case 1: // dense block rewrite
			lo := r.Intn(n)
			hi := lo + r.Intn(n-lo)
			for i := lo; i < hi; i++ {
				cur[i] ^= byte(1 + r.Intn(255))
			}
		case 2: // alternating short runs and short gaps
			for i := r.Intn(9); i < n; i += 1 + r.Intn(12) {
				cur[i] ^= 0x80
			}
		case 3: // everything changed
			for i := range cur {
				cur[i] ^= byte(1 + r.Intn(255))
			}
		}
		got := MakeDiff(0, twin, cur)
		want := referenceMakeDiff(0, twin, cur)
		if len(got.Runs) != len(want.Runs) || got.Size() != want.Size() {
			return false
		}
		for i := range got.Runs {
			if got.Runs[i].Off != want.Runs[i].Off || !bytes.Equal(got.Runs[i].Data, want.Runs[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkMakeDiff measures page comparison throughput on the three
// shapes that matter in practice: a clean page (barrier with no local
// writes to ship), a sparsely modified page (a few scalars changed), and
// a densely modified page (bulk overwrite).
func BenchmarkMakeDiff(b *testing.B) {
	const ps = 4096
	twin := make([]byte, ps)
	r := rand.New(rand.NewSource(1))
	r.Read(twin)

	bench := func(name string, cur []byte) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(ps)
			for i := 0; i < b.N; i++ {
				MakeDiff(0, twin, cur)
			}
		})
	}

	clean := append([]byte(nil), twin...)
	bench("clean", clean)

	sparse := append([]byte(nil), twin...)
	for i := 0; i < 8; i++ {
		sparse[i*512+128] ^= 0xff
	}
	bench("sparse", sparse)

	dense := make([]byte, ps)
	for i := range dense {
		dense[i] = twin[i] ^ 0x5a
	}
	bench("dense", dense)
}

// Zero-initialized data that stays mostly zero produces tiny diffs: the
// reason TreadMarks ships less data than PVM on SOR-Zero.
func TestZeroPageDiffIsSmall(t *testing.T) {
	twin := make([]byte, 4096)
	cur := make([]byte, 4096)
	putF64(cur[128:], 0.25) // a single interior element became nonzero
	d := MakeDiff(0, twin, cur)
	if d.Size() > 32 {
		t.Fatalf("diff size = %d, want tiny", d.Size())
	}
}
