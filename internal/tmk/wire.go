package tmk

import (
	"encoding/binary"
	"fmt"
)

// Protocol message tags.  Requests go to a processor's service endpoint;
// replies go to the requesting processor's application endpoint.
const (
	tagAcqReq     = 100 + iota // app -> lock manager service
	tagAcqFwd                  // manager service -> last owner's service
	tagGrant                   // owner -> requester app
	tagBarrArrive              // client app -> barrier manager service
	tagBarrDepart              // barrier manager service -> client app
	tagDiffReq                 // faulting app -> writer's service
	tagDiffResp                // writer's service -> faulting app
	tagInval                   // eager mode: writer app -> all other services
	tagTreeArrive              // tree barrier: subtree arrival -> parent (or own) service
	tagTreeDown                // tree barrier: aggregated departure -> internal child's service
	tagTreeDepart              // tree barrier: departure -> client app
)

// Reliability note: the Seq fields on request/reply messages (at-least-
// once RPC sequence numbers, armed only when the network is lossy) ride
// in the per-fragment protocol header already modeled by
// vnet.Config.HeaderBytes — like the real system's UDP request ids — so
// they intentionally appear in neither the encoders nor the wireSize
// functions below, and zero-fault runs stay byte-identical.

// wbuf is a little-endian wire encoder.  Encoders that know their final
// size presize b's capacity so a message costs one allocation.
type wbuf struct{ b []byte }

func newWbuf(capacity int) wbuf { return wbuf{b: make([]byte, 0, capacity)} }

func (w *wbuf) u8(v int)  { w.b = append(w.b, byte(v)) }
func (w *wbuf) u16(v int) { w.b = binary.LittleEndian.AppendUint16(w.b, uint16(v)) }
func (w *wbuf) u32(v int) { w.b = binary.LittleEndian.AppendUint32(w.b, uint32(v)) }
func (w *wbuf) i64(v int64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, uint64(v))
}
func (w *wbuf) bytes(p []byte) { w.b = append(w.b, p...) }

// vc writes the dense encoding of a vector timestamp: width, then one
// u32 per processor.  The in-memory representation is sparse (vc.go),
// but the wire format deliberately is not — it predates the sparse
// refactor, and keeping it pins modeled message sizes bit-identical.
// A sparse *wire* delta encoding is the planned follow-on (ROADMAP).
func (w *wbuf) vc(v VC) {
	w.u16(v.Len())
	i := 0
	for p := 0; p < v.Len(); p++ {
		x := int32(0)
		if i < len(v.ps) && v.ps[i] == int32(p) {
			x = v.vs[i]
			i++
		}
		w.u32(int(x))
	}
}

// rbuf is the matching decoder.
type rbuf struct {
	b   []byte
	pos int
}

func (r *rbuf) need(n int) {
	if r.pos+n > len(r.b) {
		panic(fmt.Sprintf("tmk: wire decode past end (pos %d + %d > %d)", r.pos, n, len(r.b)))
	}
}
func (r *rbuf) u8() int {
	r.need(1)
	v := int(r.b[r.pos])
	r.pos++
	return v
}
func (r *rbuf) u16() int {
	r.need(2)
	v := int(binary.LittleEndian.Uint16(r.b[r.pos:]))
	r.pos += 2
	return v
}
func (r *rbuf) u32() int {
	r.need(4)
	v := int(binary.LittleEndian.Uint32(r.b[r.pos:]))
	r.pos += 4
	return v
}
func (r *rbuf) i64() int64 {
	r.need(8)
	v := int64(binary.LittleEndian.Uint64(r.b[r.pos:]))
	r.pos += 8
	return v
}
func (r *rbuf) bytes(n int) []byte {
	r.need(n)
	v := append([]byte(nil), r.b[r.pos:r.pos+n]...)
	r.pos += n
	return v
}

// view returns n bytes without copying; the slice aliases the wire
// buffer, so callers must treat it as immutable.
func (r *rbuf) view(n int) []byte {
	r.need(n)
	v := r.b[r.pos : r.pos+n : r.pos+n]
	r.pos += n
	return v
}

func (r *rbuf) vc() VC {
	n := r.u16()
	v := NewVC(n)
	for p := 0; p < n; p++ {
		if x := int32(r.u32()); x > 0 {
			v.ps = append(v.ps, int32(p))
			v.vs = append(v.vs, x)
		}
	}
	return v
}
func (r *rbuf) done() {
	if r.pos != len(r.b) {
		panic(fmt.Sprintf("tmk: %d trailing wire bytes", len(r.b)-r.pos))
	}
}

// ---------------------------------------------------------------------
// Wire sizes.  Every message type knows the exact length its encoding
// would have.  The protocol ships structured messages over
// vnet.Endpoint.SendObj with these modeled sizes, so the encoders in this
// file are the documented wire format — exercised by the round-trip tests
// and pinned against the size functions by TestWireSizeMatchesEncoding —
// while the hot path never serializes a byte.

func vcSize(v VC) int { return 2 + 4*v.Len() }

func (m *acqMsg) wireSize() int   { return 2 + 2 + vcSize(m.VC) }
func (m *grantMsg) wireSize() int { return 2 + recordsSize(m.Records) }
func (m *barrMsg) wireSize() int {
	return 2 + 2 + vcSize(m.VC) + recordsSize(m.Records)
}
func (m *diffReqMsg) wireSize() int { return 4 + 2 + 2 + 6*len(m.Wants) }
func (m *diffRespMsg) wireSize() int {
	n := 4 + 2
	for _, e := range m.Entries {
		n += 8 + e.Diff.Size()
	}
	return n
}

// IntervalRec is a write-notice record: one interval of one processor,
// its vector timestamp, and the pages it modified (paper §2.2.2).
type IntervalRec struct {
	Proc  int
	Idx   int
	VC    VC
	Pages []int
}

// pageRuns counts the maximal contiguous runs in a sorted page list.
func pageRuns(pages []int) int {
	runs := 0
	next := -1
	for _, pg := range pages {
		if pg != next {
			runs++
		}
		next = pg + 1
	}
	return runs
}

// recordsSize returns the exact encoded size of a record batch, so
// callers can presize their buffers.
func recordsSize(recs []*IntervalRec) int {
	n := 4
	for _, r := range recs {
		n += 2 + 4 + vcSize(r.VC) + 4 + 8*pageRuns(r.Pages)
	}
	return n
}

// encodeRecords writes interval records; write-notice page lists are
// encoded as run-length ranges, since applications overwhelmingly write
// contiguous page runs (SOR bands, FFT planes, bucket arrays).  The lists
// are sorted by construction (closeInterval sorts the dirty set).
func encodeRecords(w *wbuf, recs []*IntervalRec) {
	w.u32(len(recs))
	for _, r := range recs {
		w.u16(r.Proc)
		w.u32(r.Idx)
		w.vc(r.VC)
		w.u32(pageRuns(r.Pages))
		for i := 0; i < len(r.Pages); {
			start := r.Pages[i]
			j := i + 1
			for j < len(r.Pages) && r.Pages[j] == r.Pages[j-1]+1 {
				j++
			}
			w.u32(start)
			w.u32(j - i)
			i = j
		}
	}
}

func decodeRecords(r *rbuf) []*IntervalRec {
	n := r.u32()
	recs := make([]*IntervalRec, n)
	for i := range recs {
		rec := &IntervalRec{Proc: r.u16(), Idx: r.u32(), VC: r.vc()}
		nr := r.u32()
		// Runs are fixed-size, so the page total is known up front.
		r.need(8 * nr)
		total := 0
		for j := 0; j < nr; j++ {
			total += int(binary.LittleEndian.Uint32(r.b[r.pos+8*j+4:]))
		}
		rec.Pages = make([]int, 0, total)
		for j := 0; j < nr; j++ {
			start := r.u32()
			cnt := r.u32()
			for k := 0; k < cnt; k++ {
				rec.Pages = append(rec.Pages, start+k)
			}
		}
		recs[i] = rec
	}
	return recs
}

// acqMsg is a lock acquire request or forward.
type acqMsg struct {
	Lock      int
	Requester int
	Seq       int // RPC id (header-resident, see the reliability note)
	VC        VC
}

func (m *acqMsg) encode() []byte {
	w := newWbuf(m.wireSize())
	w.u16(m.Lock)
	w.u16(m.Requester)
	w.vc(m.VC)
	return w.b
}

func decodeAcq(b []byte) *acqMsg {
	r := rbuf{b: b}
	m := &acqMsg{Lock: r.u16(), Requester: r.u16(), VC: r.vc()}
	r.done()
	return m
}

// grantMsg transfers lock ownership along with the write notices the
// requester has not yet seen.
type grantMsg struct {
	Lock    int
	Seq     int // echoes the acquire's Seq (header-resident)
	Records []*IntervalRec
}

func (m *grantMsg) encode() []byte {
	w := newWbuf(m.wireSize())
	w.u16(m.Lock)
	encodeRecords(&w, m.Records)
	return w.b
}

func decodeGrant(b []byte) *grantMsg {
	r := rbuf{b: b}
	m := &grantMsg{Lock: r.u16()}
	m.Records = decodeRecords(&r)
	r.done()
	return m
}

// barrMsg is a barrier arrival (client -> manager) or departure
// (manager -> client).
type barrMsg struct {
	Barrier int
	From    int
	Seq     int // arrival RPC id, echoed by the departure (header-resident)
	VC      VC
	Records []*IntervalRec
}

func (m *barrMsg) encode() []byte {
	w := newWbuf(m.wireSize())
	w.u16(m.Barrier)
	w.u16(m.From)
	w.vc(m.VC)
	encodeRecords(&w, m.Records)
	return w.b
}

func decodeBarr(b []byte) *barrMsg {
	r := rbuf{b: b}
	m := &barrMsg{Barrier: r.u16(), From: r.u16(), VC: r.vc()}
	m.Records = decodeRecords(&r)
	r.done()
	return m
}

// invMsg is an eager-invalidate broadcast: the write notices of one
// freshly closed interval (Config.EagerInvalidate).
type invMsg struct {
	From    int
	Records []*IntervalRec
}

func (m *invMsg) wireSize() int { return 2 + recordsSize(m.Records) }

func (m *invMsg) encode() []byte {
	w := newWbuf(m.wireSize())
	w.u16(m.From)
	encodeRecords(&w, m.Records)
	return w.b
}

func decodeInval(b []byte) *invMsg {
	r := rbuf{b: b}
	m := &invMsg{From: r.u16()}
	m.Records = decodeRecords(&r)
	r.done()
	return m
}

// treeArrMsg is a combining-tree barrier arrival: one subtree's
// aggregated state travelling one edge up the radix-k tree
// (Config.TreeBarrier).  VC is the pointwise maximum over the
// subtree's arrival timestamps, MinVC the pointwise minimum — the
// summary the root's departure filter needs, since a record must ride
// back down if *any* subtree member lacks it — and Records the
// deduplicated union of the subtree's write-notice batches.
type treeArrMsg struct {
	Barrier int
	From    int
	VC      VC
	MinVC   VC
	Records []*IntervalRec
}

func (m *treeArrMsg) wireSize() int {
	return 2 + 2 + vcSize(m.VC) + vcSize(m.MinVC) + recordsSize(m.Records)
}

func (m *treeArrMsg) encode() []byte {
	w := newWbuf(m.wireSize())
	w.u16(m.Barrier)
	w.u16(m.From)
	w.vc(m.VC)
	w.vc(m.MinVC)
	encodeRecords(&w, m.Records)
	return w.b
}

func decodeTreeArr(b []byte) *treeArrMsg {
	r := rbuf{b: b}
	m := &treeArrMsg{Barrier: r.u16(), From: r.u16(), VC: r.vc(), MinVC: r.vc()}
	m.Records = decodeRecords(&r)
	r.done()
	return m
}

// treeDepMsg is a combining-tree barrier departure: the globally
// merged timestamp plus the records the receiving subtree (or client)
// has not seen, travelling one edge down the tree.  The same shape
// serves both the internal-node hop (tagTreeDown) and the final
// client delivery (tagTreeDepart).
type treeDepMsg struct {
	Barrier int
	From    int
	VC      VC
	Records []*IntervalRec
}

func (m *treeDepMsg) wireSize() int {
	return 2 + 2 + vcSize(m.VC) + recordsSize(m.Records)
}

func (m *treeDepMsg) encode() []byte {
	w := newWbuf(m.wireSize())
	w.u16(m.Barrier)
	w.u16(m.From)
	w.vc(m.VC)
	encodeRecords(&w, m.Records)
	return w.b
}

func decodeTreeDep(b []byte) *treeDepMsg {
	r := rbuf{b: b}
	m := &treeDepMsg{Barrier: r.u16(), From: r.u16(), VC: r.vc()}
	m.Records = decodeRecords(&r)
	r.done()
	return m
}

// diffWant names one missing diff: interval Idx of processor Proc.
type diffWant struct {
	Proc int
	Idx  int
}

// diffReqMsg asks a processor for the named diffs of one page.
type diffReqMsg struct {
	Page      int
	Requester int
	Seq       int // RPC id (header-resident, see the reliability note)
	Wants     []diffWant
}

func (m *diffReqMsg) encode() []byte {
	w := newWbuf(m.wireSize())
	w.u32(m.Page)
	w.u16(m.Requester)
	w.u16(len(m.Wants))
	for _, d := range m.Wants {
		w.u16(d.Proc)
		w.u32(d.Idx)
	}
	return w.b
}

func decodeDiffReq(b []byte) *diffReqMsg {
	r := rbuf{b: b}
	m := &diffReqMsg{Page: r.u32(), Requester: r.u16()}
	n := r.u16()
	m.Wants = make([]diffWant, n)
	for i := range m.Wants {
		m.Wants[i] = diffWant{Proc: r.u16(), Idx: r.u32()}
	}
	r.done()
	return m
}

// diffEntry is one diff on the wire, tagged with its creating interval.
type diffEntry struct {
	Proc int
	Idx  int
	Diff *Diff
}

// diffRespMsg returns the requested diffs for one page.
type diffRespMsg struct {
	Page    int
	Seq     int // echoes the request's Seq (header-resident)
	Entries []diffEntry
}

func (m *diffRespMsg) encode() []byte {
	w := newWbuf(m.wireSize())
	w.u32(m.Page)
	w.u16(len(m.Entries))
	for _, e := range m.Entries {
		w.u16(e.Proc)
		w.u32(e.Idx)
		w.u16(len(e.Diff.Runs))
		for _, run := range e.Diff.Runs {
			w.u16(run.Off)
			w.u16(len(run.Data))
			w.bytes(run.Data)
		}
	}
	return w.b
}

func decodeDiffResp(b []byte) *diffRespMsg {
	r := rbuf{b: b}
	m := &diffRespMsg{Page: r.u32()}
	n := r.u16()
	m.Entries = make([]diffEntry, n)
	for i := range m.Entries {
		e := diffEntry{Proc: r.u16(), Idx: r.u32()}
		nr := r.u16()
		d := &Diff{Page: m.Page, Runs: make([]Run, 0, nr)}
		for j := 0; j < nr; j++ {
			off := r.u16()
			ln := r.u16()
			// Decoded run data aliases the arrived payload (read-only by
			// construction: diffs are only ever applied, never edited).
			d.Runs = append(d.Runs, Run{Off: off, Data: r.view(ln)})
		}
		e.Diff = d
		m.Entries[i] = e
	}
	r.done()
	return m
}
