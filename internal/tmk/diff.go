package tmk

import "fmt"

// A Diff is a run-length encoding of the modifications made to a page
// (paper §2.2.2): it records the byte ranges of a page that differ between
// the twin saved before the first write of an interval and the page
// contents at the end of the interval.  Applying a diff copies those
// ranges into another copy of the page; diffs from distinct writers to
// disjoint parts of a page merge without interference, which is the
// multiple-writer protocol's answer to false sharing.
type Diff struct {
	Page int
	Runs []Run
}

// Run is one modified byte range within a page.
type Run struct {
	Off  int
	Data []byte
}

// MakeDiff compares twin (the pre-modification copy) against cur and
// returns the run-length encoding of the changed ranges, or an empty diff
// if nothing changed.  len(twin) must equal len(cur).
func MakeDiff(page int, twin, cur []byte) *Diff {
	if len(twin) != len(cur) {
		panic(fmt.Sprintf("tmk: diff size mismatch %d vs %d", len(twin), len(cur)))
	}
	d := &Diff{Page: page}
	i := 0
	for i < len(cur) {
		if twin[i] == cur[i] {
			i++
			continue
		}
		j := i + 1
		for j < len(cur) && twin[j] != cur[j] {
			j++
		}
		// Coalesce runs separated by a short unchanged gap: real diff
		// implementations word-align and merge to cut per-run overhead.
		if n := len(d.Runs); n > 0 {
			last := &d.Runs[n-1]
			gap := i - (last.Off + len(last.Data))
			if gap <= 8 {
				last.Data = append(last.Data, cur[last.Off+len(last.Data):j]...)
				i = j
				continue
			}
		}
		d.Runs = append(d.Runs, Run{Off: i, Data: append([]byte(nil), cur[i:j]...)})
		i = j
	}
	return d
}

// Empty reports whether the diff carries no modifications.
func (d *Diff) Empty() bool { return len(d.Runs) == 0 }

// Apply copies the diff's runs into page data dst.
func (d *Diff) Apply(dst []byte) {
	for _, r := range d.Runs {
		copy(dst[r.Off:], r.Data)
	}
}

// Size returns the encoded size in bytes: 4 bytes of run metadata per run
// (u16 offset, u16 length) plus the run payloads.  This is what travels on
// the wire inside a diff response.
func (d *Diff) Size() int {
	n := 0
	for _, r := range d.Runs {
		n += 4 + len(r.Data)
	}
	return n
}
