package tmk

import "fmt"

// Bit tricks for the word-at-a-time page comparison in MakeDiff.
const (
	lsbMask = 0x0101010101010101
	msbMask = 0x8080808080808080
)

// hasZeroByte reports whether any byte of x is zero.
func hasZeroByte(x uint64) bool {
	return (x-lsbMask) & ^x & msbMask != 0
}

// A Diff is a run-length encoding of the modifications made to a page
// (paper §2.2.2): it records the byte ranges of a page that differ between
// the twin saved before the first write of an interval and the page
// contents at the end of the interval.  Applying a diff copies those
// ranges into another copy of the page; diffs from distinct writers to
// disjoint parts of a page merge without interference, which is the
// multiple-writer protocol's answer to false sharing.
type Diff struct {
	Page int
	Runs []Run
}

// Run is one modified byte range within a page.
type Run struct {
	Off  int
	Data []byte
}

// MakeDiff compares twin (the pre-modification copy) against cur and
// returns the run-length encoding of the changed ranges, or an empty diff
// if nothing changed.  len(twin) must equal len(cur).
//
// The scan is word-at-a-time: unchanged stretches advance eight bytes per
// uint64 compare, and fully modified stretches advance eight bytes per
// zero-byte test on the XOR of the two words.  Run boundaries are still
// resolved byte-exactly, so the encoding is identical to a byte-at-a-time
// scan — diff sizes feed modeled time and wire accounting, which must not
// drift.
func MakeDiff(page int, twin, cur []byte) *Diff {
	return makeDiff(page, twin, cur, nil)
}

// makeDiff is MakeDiff with an optional arena backing the Diff header and
// the run payload copies (both permanent once the diff is filed).  The
// encoding produced is identical either way.
func makeDiff(page int, twin, cur []byte, a *memArena) *Diff {
	if len(twin) != len(cur) {
		panic(fmt.Sprintf("tmk: diff size mismatch %d vs %d", len(twin), len(cur)))
	}
	var d *Diff
	if a != nil {
		d = a.newDiff()
		d.Page = page
	} else {
		d = &Diff{Page: page}
	}
	n := len(cur)
	i := 0
	for i < n {
		// Skip the unchanged stretch.
		for i+8 <= n && getU64(twin[i:]) == getU64(cur[i:]) {
			i += 8
		}
		for i < n && twin[i] == cur[i] {
			i++
		}
		if i >= n {
			break
		}
		// Scan the modified run: a word whose XOR has no zero byte is
		// modified throughout; the trailing boundary is found bytewise.
		j := i + 1
		for j+8 <= n && !hasZeroByte(getU64(twin[j:])^getU64(cur[j:])) {
			j += 8
		}
		for j < n && twin[j] != cur[j] {
			j++
		}
		// Coalesce runs separated by a short unchanged gap: real diff
		// implementations word-align and merge to cut per-run overhead.
		if nr := len(d.Runs); nr > 0 {
			last := &d.Runs[nr-1]
			gap := i - (last.Off + len(last.Data))
			if gap <= 8 {
				// May outgrow an arena-carved payload; append then falls
				// back to the heap, which is correct, just unpooled.
				last.Data = append(last.Data, cur[last.Off+len(last.Data):j]...)
				i = j
				continue
			}
		}
		var data []byte
		if a != nil {
			data = a.cloneBytes(cur[i:j])
			if d.Runs == nil {
				d.Runs = a.newRuns(4) // seed; growth past 4 goes to the heap
			}
		} else {
			data = append([]byte(nil), cur[i:j]...)
		}
		d.Runs = append(d.Runs, Run{Off: i, Data: data})
		i = j
	}
	return d
}

// Empty reports whether the diff carries no modifications.
func (d *Diff) Empty() bool { return len(d.Runs) == 0 }

// Apply copies the diff's runs into page data dst.
func (d *Diff) Apply(dst []byte) {
	for _, r := range d.Runs {
		copy(dst[r.Off:], r.Data)
	}
}

// Size returns the encoded size in bytes: 4 bytes of run metadata per run
// (u16 offset, u16 length) plus the run payloads.  This is what travels on
// the wire inside a diff response.
func (d *Diff) Size() int {
	n := 0
	for _, r := range d.Runs {
		n += 4 + len(r.Data)
	}
	return n
}
