package tmk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/vnet"
)

// TestConvergenceProperty: random seeded workloads — each processor
// writes a disjoint, pseudo-random set of slots between barriers — must
// leave every processor with an identical view of shared memory.
func TestConvergenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nprocs := 2 + rng.Intn(3) // 2..4
		slots := 256 + rng.Intn(1024)
		rounds := 1 + rng.Intn(3)
		// Precompute per-round, per-proc disjoint write sets.
		type write struct {
			slot int
			val  int64
		}
		plan := make([][][]write, rounds)
		for r := range plan {
			plan[r] = make([][]write, nprocs)
			perm := rng.Perm(slots)
			i := 0
			for p := 0; p < nprocs; p++ {
				cnt := rng.Intn(slots / nprocs)
				for k := 0; k < cnt; k++ {
					plan[r][p] = append(plan[r][p], write{perm[i], rng.Int63n(1 << 40)})
					i++
				}
			}
		}
		eng := sim.NewEngine()
		net := vnet.New(vnet.FDDI())
		sys := NewSystem(eng, net, nprocs, DefaultConfig())
		base := sys.Malloc(8 * slots)
		views := make([][]int64, nprocs)
		for p := 0; p < nprocs; p++ {
			id := p
			sys.Spawn(id, func(pr *Proc) {
				arr := pr.I64Array(base, slots)
				for r := 0; r < rounds; r++ {
					for _, w := range plan[r][id] {
						arr.Set(w.slot, w.val)
					}
					pr.Barrier(r)
				}
				// Read back the whole region.
				out := make([]int64, slots)
				for i := 0; i < slots; i++ {
					out[i] = arr.At(i)
				}
				views[id] = out
			})
		}
		if err := eng.Run(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for p := 1; p < nprocs; p++ {
			for i := 0; i < slots; i++ {
				if views[p][i] != views[0][i] {
					t.Logf("seed %d: proc %d slot %d: %d vs %d",
						seed, p, i, views[p][i], views[0][i])
					return false
				}
			}
		}
		// And the final content matches the last write per slot.
		want := make([]int64, slots)
		for r := 0; r < rounds; r++ {
			for p := 0; p < nprocs; p++ {
				for _, w := range plan[r][p] {
					want[w.slot] = w.val
				}
			}
		}
		for i := 0; i < slots; i++ {
			if views[0][i] != want[i] {
				t.Logf("seed %d: slot %d = %d, want %d", seed, i, views[0][i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestLockStressTotalOrder: many processors hammer several locks with
// staggered timing; per-lock counters must total exactly and the final
// values must be visible everywhere.
func TestLockStressTotalOrder(t *testing.T) {
	const nprocs, nlocks, rounds = 6, 3, 7
	eng, sys := world(nprocs)
	ctrs := sys.MallocPageAligned(8 * nlocks)
	runAll(t, eng, sys, func(p *Proc) {
		rng := rand.New(rand.NewSource(int64(p.ID()) + 1))
		for r := 0; r < rounds; r++ {
			lk := (p.ID() + r) % nlocks
			p.Compute(sim.Time(rng.Intn(500)) * sim.Microsecond)
			p.LockAcquire(lk)
			addr := ctrs + Addr(8*lk)
			p.WriteI64(addr, p.ReadI64(addr)+1)
			p.LockRelease(lk)
		}
		p.Barrier(0)
		for lk := 0; lk < nlocks; lk++ {
			want := int64(0)
			for q := 0; q < nprocs; q++ {
				for r := 0; r < rounds; r++ {
					if (q+r)%nlocks == lk {
						want++
					}
				}
			}
			if got := p.ReadI64(ctrs + Addr(8*lk)); got != want {
				t.Errorf("proc %d: lock %d counter = %d, want %d", p.ID(), lk, got, want)
			}
		}
	})
}

// TestInitBytesSpansPages: preloaded data crossing page boundaries is
// visible everywhere, including the tail page.
func TestInitBytesSpansPages(t *testing.T) {
	eng, sys := world(2)
	const n = 1500 // 12000 bytes: spans 3 pages
	a := sys.Malloc(8 * n)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i * 7)
	}
	sys.InitI64(a, vals)
	runAll(t, eng, sys, func(p *Proc) {
		arr := p.I64Array(a, n)
		for _, i := range []int{0, 511, 512, 1023, 1024, n - 1} {
			if got := arr.At(i); got != int64(i*7) {
				t.Errorf("proc %d: [%d] = %d, want %d", p.ID(), i, got, i*7)
			}
		}
	})
}

// TestInterleavedLocksAndBarriers: locks inside barrier rounds — write
// notices must flow through both channels without duplication.
func TestInterleavedLocksAndBarriers(t *testing.T) {
	const nprocs = 4
	eng, sys := world(nprocs)
	a := sys.Malloc(8 * 2)
	runAll(t, eng, sys, func(p *Proc) {
		for r := 0; r < 4; r++ {
			p.LockAcquire(0)
			p.WriteI64(a, p.ReadI64(a)+1)
			p.LockRelease(0)
			p.Barrier(2 * r)
			// Everyone observes the same running total.
			want := int64((r + 1) * nprocs)
			if got := p.ReadI64(a); got != want {
				t.Errorf("proc %d round %d: %d, want %d", p.ID(), r, got, want)
			}
			p.Barrier(2*r + 1)
		}
	})
}

// TestManyPagesSparseWrites: writers touch one word per page across many
// pages; readers fetch every page with one small diff each.
func TestManyPagesSparseWrites(t *testing.T) {
	const pages = 40
	eng, sys := world(2)
	a := sys.MallocPageAligned(4096 * pages)
	runAll(t, eng, sys, func(p *Proc) {
		if p.ID() == 0 {
			for pg := 0; pg < pages; pg++ {
				p.WriteI64(a+Addr(pg*4096), int64(pg+1))
			}
		}
		p.Barrier(0)
		if p.ID() == 1 {
			before := p.DiffBytes
			for pg := 0; pg < pages; pg++ {
				if got := p.ReadI64(a + Addr(pg*4096)); got != int64(pg+1) {
					t.Errorf("page %d: %d", pg, got)
				}
			}
			moved := p.DiffBytes - before
			if moved > pages*64 {
				t.Errorf("sparse writes moved %d diff bytes, want < %d", moved, pages*64)
			}
			if p.DiffRequests != pages {
				t.Errorf("diff requests = %d, want %d", p.DiffRequests, pages)
			}
		}
	})
}

// TestCoverScratchReuse: consecutive faults with different cover shapes.
// The reader faults on a page with two concurrent writers (two-target
// cover), then pages with a single writer (one-target cover), round after
// round — the reused cover scratch (target slots and their want lists)
// and the per-fault request objects must not leak state between faults of
// different shapes.
func TestCoverScratchReuse(t *testing.T) {
	const rounds = 6
	eng, sys := world(3)
	a := sys.MallocPageAligned(4096 * 3)
	runAll(t, eng, sys, func(p *Proc) {
		for r := 0; r < rounds; r++ {
			base := int64(100 * r)
			switch p.ID() {
			case 0:
				p.WriteI64(a, base+1)      // page 0, writer A
				p.WriteI64(a+4096, base+2) // page 1, sole writer
			case 1:
				p.WriteI64(a+8, base+3)      // page 0, writer B
				p.WriteI64(a+2*4096, base+4) // page 2, sole writer
			}
			p.Barrier(2 * r)
			if p.ID() == 2 {
				for _, c := range []struct {
					at   Addr
					want int64
				}{{a, base + 1}, {a + 8, base + 3}, {a + 4096, base + 2}, {a + 2*4096, base + 4}} {
					if got := p.ReadI64(c.at); got != c.want {
						t.Errorf("round %d addr %d: got %d, want %d", r, c.at, got, c.want)
					}
				}
			}
			p.Barrier(2*r + 1)
		}
	})
}
