package tmk

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/vnet"
)

// runSolo runs body on a single-processor system with nwords float64s of
// shared memory and returns nothing: single-proc runs never fault, so the
// benchmarks below isolate the access-check layer itself.
func runSolo(b *testing.B, nwords int, body func(p *Proc, base Addr)) {
	b.Helper()
	e := sim.NewEngine()
	n := vnet.New(vnet.FDDI())
	s := NewSystem(e, n, 1, DefaultConfig())
	base := s.Malloc(8 * nwords)
	s.Spawn(0, func(p *Proc) { body(p, base) })
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAccess measures the software access check on the scalar and
// bulk paths: per-element cost of reads and writes to valid pages.
func BenchmarkAccess(b *testing.B) {
	const nwords = 1 << 13 // 64 KB: 16 pages
	mask := Addr(nwords - 1)

	b.Run("scalar-read", func(b *testing.B) {
		runSolo(b, nwords, func(p *Proc, base Addr) {
			arr := p.F64Array(base, nwords)
			var sum float64
			for i := 0; i < b.N; i++ {
				sum += arr.At(int(Addr(i) & mask))
			}
			_ = sum
		})
	})
	b.Run("scalar-write", func(b *testing.B) {
		runSolo(b, nwords, func(p *Proc, base Addr) {
			arr := p.F64Array(base, nwords)
			for i := 0; i < b.N; i++ {
				arr.Set(int(Addr(i)&mask), float64(i))
			}
		})
	})
	b.Run("scalar-read-onepage", func(b *testing.B) {
		// All accesses inside one page: the best case for a last-page cache.
		runSolo(b, nwords, func(p *Proc, base Addr) {
			arr := p.F64Array(base, nwords)
			var sum float64
			for i := 0; i < b.N; i++ {
				sum += arr.At(int(Addr(i) & 0x1ff))
			}
			_ = sum
		})
	})
	b.Run("bulk-load", func(b *testing.B) {
		runSolo(b, nwords, func(p *Proc, base Addr) {
			arr := p.F64Array(base, nwords)
			dst := make([]float64, nwords)
			for i := 0; i < b.N; i++ {
				arr.Load(dst, 0, nwords)
			}
		})
		b.SetBytes(8 * nwords)
	})
	b.Run("bulk-store", func(b *testing.B) {
		runSolo(b, nwords, func(p *Proc, base Addr) {
			arr := p.F64Array(base, nwords)
			src := make([]float64, nwords)
			for i := 0; i < b.N; i++ {
				arr.Store(src, 0)
			}
		})
		b.SetBytes(8 * nwords)
	})
}

// BenchmarkFault measures the fault path end to end on a two-processor
// system: each round, proc 0 writes one word on each of several pages and
// both processors cross a barrier; proc 1 then reads every page, taking
// one access fault per page (write-notice scan, minimal cover, diff
// request/response, happens-before apply).  Allocations per round are the
// fault path's GC footprint.
func BenchmarkFault(b *testing.B) { benchFaultRound(b, vnet.FDDI()) }

// BenchmarkFaultReliable is the same round with the at-least-once layer
// armed: a zero-width partition makes the fault model Lossy() without
// ever dropping a message, so sequence numbers, retransmit timers and
// the retransmit-path timestamp clones (routed through the per-proc
// arena) all run on a deterministic schedule.
func BenchmarkFaultReliable(b *testing.B) {
	nc := vnet.FDDI()
	nc.Faults.Partitions = []vnet.Partition{{Start: sim.Millisecond, Heal: sim.Millisecond, Nodes: []int{1}}}
	benchFaultRound(b, nc)
}

func benchFaultRound(b *testing.B, nc vnet.Config) {
	const pages = 8
	e := sim.NewEngine()
	n := vnet.New(nc)
	s := NewSystem(e, n, 2, DefaultConfig())
	base := s.MallocPageAligned(4096 * pages)
	k := b.N
	s.Spawn(0, func(p *Proc) {
		for r := 0; r < k; r++ {
			for pg := 0; pg < pages; pg++ {
				p.WriteI64(base+Addr(pg*4096), int64(r+pg))
			}
			p.Barrier(2 * r)
			p.Barrier(2*r + 1)
		}
	})
	var faults int
	s.Spawn(1, func(p *Proc) {
		for r := 0; r < k; r++ {
			p.Barrier(2 * r)
			for pg := 0; pg < pages; pg++ {
				if got := p.ReadI64(base + Addr(pg*4096)); got != int64(r+pg) {
					b.Errorf("round %d page %d: got %d", r, pg, got)
					return
				}
			}
			p.Barrier(2*r + 1)
		}
		faults = p.Faults
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if faults != pages*k {
		b.Fatalf("faults = %d, want %d", faults, pages*k)
	}
}

// runLargeP runs b.N rounds of body-then-barrier on an nprocs system —
// the scale-out protocol benchmark harness.  Wall time per op is one
// full round across all processors.
func runLargeP(b *testing.B, nprocs int, cfg Config, body func(p *Proc, r int, base Addr)) {
	b.Helper()
	e := sim.NewEngine()
	n := vnet.New(vnet.FDDI())
	s := NewSystem(e, n, nprocs, cfg)
	base := s.MallocPageAligned(4096 * nprocs)
	k := b.N
	for i := 0; i < nprocs; i++ {
		s.Spawn(i, func(p *Proc) {
			for r := 0; r < k; r++ {
				if body != nil {
					body(p, r, base)
				}
				p.Barrier(r)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkLargeP measures the protocol paths the procs=64/256 scenario
// family leans on, at P=64: an empty barrier round (centralized versus
// radix-2 combining tree), a round where every processor closes an
// interval (64 write notices through the barrier), and an eager-mode
// round (flat broadcast versus radix-4 fan-out tree).
func BenchmarkLargeP(b *testing.B) {
	const nprocs = 64
	ownPage := func(p *Proc, r int, base Addr) {
		p.WriteI64(base+Addr(p.ID()*4096), int64(r))
	}
	tree := DefaultConfig()
	tree.TreeBarrier = 2
	eager := DefaultConfig()
	eager.EagerInvalidate = true
	eagerTree := eager
	eagerTree.TreeBarrier = 2
	eagerTree.TreeFanout = 4

	b.Run("barrier-central", func(b *testing.B) { runLargeP(b, nprocs, DefaultConfig(), nil) })
	b.Run("barrier-tree", func(b *testing.B) { runLargeP(b, nprocs, tree, nil) })
	b.Run("close-central", func(b *testing.B) { runLargeP(b, nprocs, DefaultConfig(), ownPage) })
	b.Run("close-tree", func(b *testing.B) { runLargeP(b, nprocs, tree, ownPage) })
	b.Run("eager-flat", func(b *testing.B) { runLargeP(b, nprocs, eager, ownPage) })
	b.Run("eager-tree", func(b *testing.B) { runLargeP(b, nprocs, eagerTree, ownPage) })
}

// faultAllocBudget is the ceiling on BenchmarkFault's allocs/op (one
// 8-page fault round: write notices, minimal cover, diff request/
// response, happens-before apply, two barriers).  History: 200 at PR 1,
// 61 after the PR 2 arena work, 32 once the vnet.Message free-list
// removed the per-send envelope allocation.  The budget leaves a little
// headroom over the measured 32; raising it needs a written
// justification in the commit that does.
const faultAllocBudget = 40

// reliableAllocBudget is the ceiling for the same round with the
// at-least-once layer armed (BenchmarkFaultReliable): the flat round
// plus sequence bookkeeping, timer scheduling, and the retransmit-path
// message builds, whose cloned-into-message timestamps must come from
// the per-proc arena rather than the heap.  Measured 54 when pinned.
const reliableAllocBudget = 64

// TestFaultPathAllocBudget pins the fault path's GC footprint: a
// steady-state faulting round must stay within faultAllocBudget
// allocations, and within reliableAllocBudget once the reliability
// layer arms.  This is the regression gate behind the free-list's
// "last per-send allocation" claim and the arena routing of the
// retransmit path's timestamp clones.
func TestFaultPathAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed budget check")
	}
	res := testing.Benchmark(BenchmarkFault)
	if got := res.AllocsPerOp(); got > faultAllocBudget {
		t.Errorf("fault round allocates %d times, budget %d", got, faultAllocBudget)
	}
	res = testing.Benchmark(BenchmarkFaultReliable)
	if got := res.AllocsPerOp(); got > reliableAllocBudget {
		t.Errorf("reliable fault round allocates %d times, budget %d", got, reliableAllocBudget)
	}
}
