package harness

import "testing"

// The strings below are the Table 1 and Table 2 renderings produced by
// the pre-records implementation at goldenScale, captured verbatim.  The
// record-driven renderers must reproduce them byte for byte: the API
// redesign moved where the numbers flow, not what they say.  Regenerate
// only on an intentional model or formatting change.

const goldenTable1 = `Table 1  Sequential Time of Applications (modeled)
Program      Problem Size                          Time(sec)
------------------------------------------------------------
EP           2^28 pairs (model), 419430 generated  88.6     
SOR-Zero     204x1536 f64, 4 sweeps, zero          1.5      
SOR-Nonzero  204x1536 f64, 4 sweeps, nonzero       0.5      
IS-Small     N=104857 Bmax=2^7, 2 iters            0.2      
IS-Large     N=104857 Bmax=2^15, 2 iters           0.7      
TSP          12 cities, threshold 8                0.4      
QSORT        25K integers, bubble 102              0.2      
Water-288    288 molecules, 2 steps                1.2      
Water-1728   512 molecules, 1 steps                2.0      
Barnes-Hut   819 bodies, 2 steps                   1.0      
3D-FFT       16^3 complex, 2 iters                 0.1      
ILINK        synthetic CLP, 2 families             3.4      
`

const goldenTable2 = `Table 2  Messages and Data at 8 Processors
Program      TMK Messages  TMK Kilobytes  PVM Messages  PVM Kilobytes
---------------------------------------------------------------------
EP           50            10             7             1            
SOR-Zero     268           35             63            347          
SOR-Nonzero  268           345            63            347          
IS-Small     184           76             28            14           
IS-Large     2019          5828           28            3670         
TSP          2769          645            530           15           
QSORT        16213         8554           2761          2436         
Water-288    749           588            128           111          
Water-1728   208           215            64            99           
Barnes-Hut   1428          386            112           598          
3D-FFT       252           479            112           115          
ILINK        602           683            28            495          
`

func TestRenderTable1MatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every sequential workload at goldenScale")
	}
	out, err := Table1(Apps(goldenScale))
	if err != nil {
		t.Fatal(err)
	}
	if out != goldenTable1 {
		t.Errorf("Table 1 rendering drifted:\ngot:\n%s\nwant:\n%s", out, goldenTable1)
	}
}

func TestRenderTable2MatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every app at 8 procs at goldenScale")
	}
	out, err := Table2(Apps(goldenScale))
	if err != nil {
		t.Fatal(err)
	}
	if out != goldenTable2 {
		t.Errorf("Table 2 rendering drifted:\ngot:\n%s\nwant:\n%s", out, goldenTable2)
	}
}
