package harness

import (
	"testing"

	"repro/internal/sim"
)

// TestGoldenGridNeverPolled proves the legacy polled wake path is dead
// code on the full golden grid: every blocking wait in the workloads,
// the protocol layers and the network registers with an indexed Source
// (WaitOn), so the engine's O(polled) repoll sweep never runs.  The
// counter is process-wide, so the test brackets full serial- and
// parallel-engine grids and requires an exactly zero delta.
func TestGoldenGridNeverPolled(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden grid in -short mode")
	}
	before := sim.PolledWaits()
	if _, err := goldenGrid(false, 0).Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := goldenGrid(true, 0).Run(); err != nil {
		t.Fatal(err)
	}
	if d := sim.PolledWaits() - before; d != 0 {
		t.Fatalf("golden grid took the polled wait path %d times; hot-path waits must carry a Source (WaitOn)", d)
	}
}
