package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
)

// progressGrid is a small multi-app, multi-backend grid with a baseline
// in it, so the enumeration exercises the dedup path too.
func progressGrid(t *testing.T, workers int, progress func(int, Record)) []Record {
	t.Helper()
	apps := Apps(0.01)
	recs, err := Grid{
		Apps:      []core.App{Find(apps, "EP"), Find(apps, "SOR-Nonzero")},
		Backends:  core.StandardBackends(),
		Scenarios: BaseScenarios(2, 4),
		Workers:   workers,
		Progress:  progress,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestGridProgressSerialVsPool pins the progress-callback contract the
// serve API streams over: the serial path reports every job in
// enumeration order, the worker pool reports the exact same (index,
// record) set (order unspecified, invocations serialized), and the
// returned slices stay byte-identical.
func TestGridProgressSerialVsPool(t *testing.T) {
	type seen struct {
		order []int
		byIdx map[int]Record
	}
	collect := func(s *seen) func(int, Record) {
		s.byIdx = map[int]Record{}
		return func(i int, rec Record) {
			// Invocations are serialized by contract; concurrent calls
			// would race on these writes and trip -race.
			s.order = append(s.order, i)
			if _, dup := s.byIdx[i]; dup {
				panic(fmt.Sprintf("progress index %d reported twice", i))
			}
			s.byIdx[i] = rec
		}
	}

	var serial, pooled seen
	serialRecs := progressGrid(t, 1, collect(&serial))
	pooledRecs := progressGrid(t, 4, collect(&pooled))

	if len(serial.order) != len(serialRecs) {
		t.Fatalf("serial progress reported %d jobs, grid returned %d", len(serial.order), len(serialRecs))
	}
	for k, i := range serial.order {
		if k != i {
			t.Fatalf("serial progress out of enumeration order: %v", serial.order)
		}
		if serial.byIdx[i] != serialRecs[i] {
			t.Fatalf("serial progress record %d differs from returned record", i)
		}
	}

	if len(pooled.byIdx) != len(serial.byIdx) {
		t.Fatalf("pool reported %d jobs, serial %d", len(pooled.byIdx), len(serial.byIdx))
	}
	for i, rec := range serial.byIdx {
		if pooled.byIdx[i] != rec {
			t.Fatalf("pool progress record %d differs from serial:\n  pool   %+v\n  serial %+v", i, pooled.byIdx[i], rec)
		}
	}

	var sb, pb bytes.Buffer
	if err := WriteJSON(&sb, serialRecs); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&pb, pooledRecs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Fatal("serial and pooled grid output not byte-identical with progress enabled")
	}
}

// brokenWriter fails every write after the first n bytes — a stand-in
// for an HTTP client that hung up mid-stream.
type brokenWriter struct {
	n   int
	err error
}

func (w *brokenWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

// TestWriteRecordsPropagatesWriterErrors pins the satellite fix: both
// record writers must surface a broken sink as an error — WriteCSV via
// its per-row flush checks (csv.Writer otherwise buffers the failure
// past the rows that hit it), WriteJSON via the encoder.
func TestWriteRecordsPropagatesWriterErrors(t *testing.T) {
	recs := make([]Record, 64)
	for i := range recs {
		recs[i] = Record{App: "app", Backend: "tmk", Scenario: "base", Procs: 8, TimeNS: int64(i)}
	}
	sentinel := errors.New("connection reset")

	for _, cut := range []int{0, 10, 200} {
		if err := WriteCSV(&brokenWriter{n: cut, err: sentinel}, recs); !errors.Is(err, sentinel) {
			t.Errorf("WriteCSV with sink broken after %d bytes: err = %v, want %v", cut, err, sentinel)
		}
		if err := WriteJSON(&brokenWriter{n: cut, err: sentinel}, recs); !errors.Is(err, sentinel) {
			t.Errorf("WriteJSON with sink broken after %d bytes: err = %v, want %v", cut, err, sentinel)
		}
	}

	// A healthy sink still round-trips cleanly.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatalf("WriteCSV on a healthy sink: %v", err)
	}
	if err := WriteJSON(&buf, recs); err != nil {
		t.Fatalf("WriteJSON on a healthy sink: %v", err)
	}
}

// TestRunJobsContextCancel pins the cancellation contract on both
// execution paths: a context canceled mid-sweep stops the remaining
// jobs and surfaces context.Canceled; a pre-canceled context runs
// nothing at all.
func TestRunJobsContextCancel(t *testing.T) {
	apps := Apps(0.01)
	grid := Grid{
		Apps:      []core.App{Find(apps, "EP")},
		Backends:  core.StandardBackends(),
		Scenarios: BaseScenarios(2, 4),
	}
	jobs, err := grid.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 3 {
		t.Fatalf("grid too small for the test: %d jobs", len(jobs))
	}

	t.Run("serial mid-sweep", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		var completed int
		_, err := RunJobsContext(ctx, jobs, 1, func(i int, rec Record) {
			completed++
			cancel() // first completion pulls the plug
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled serial sweep: %v, want context.Canceled", err)
		}
		if completed != 1 {
			t.Fatalf("serial sweep completed %d jobs after cancel, want 1", completed)
		}
	})

	t.Run("pool pre-canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var completed int
		_, err := RunJobsContext(ctx, jobs, 4, func(i int, rec Record) { completed++ })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("pre-canceled pool sweep: %v, want context.Canceled", err)
		}
		if completed != 0 {
			t.Fatalf("pre-canceled pool sweep completed %d jobs, want 0", completed)
		}
	})
}
