package harness

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
)

// metric is the triple the paper reports and the simulator guarantees to
// reproduce exactly: modeled time, wire messages, wire bytes.
type metric struct {
	time  int64
	msgs  int64
	bytes int64
}

func capture(t *testing.T, res core.Result, err error) metric {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	return metric{time: int64(res.Time), msgs: res.Net.Messages, bytes: res.Net.Bytes}
}

// goldenScale matches BenchScale in bench_test.go: the reduced workloads
// the quick-mode experiments run at.
const goldenScale = 0.1

// goldenProcs are the processor counts each experiment is pinned at.
var goldenProcs = [3]int{2, 4, 8}

// golden pins the modeled metrics of every registered experiment — all 12
// figures of the paper's evaluation — under both systems at 2, 4 and 8
// processors, as produced by the seed implementation.  The scheduler, the
// network layer and the DSM protocol internals may be rewritten freely,
// but these numbers must not move: they are modeled physics, not
// implementation detail.  Regenerate with `go run ./cmd/goldgen -format
// go` only when a change is *supposed* to alter the model.
var golden = map[string]map[string][3]metric{
	"EP": {
		"tmk": {
			{time: 44294244872, msgs: 8, bytes: 636},    // n=2
			{time: 22150492104, msgs: 22, bytes: 2534},  // n=4
			{time: 11083401536, msgs: 50, bytes: 10178}, // n=8
		},
		"pvm": {
			{time: 44292119512, msgs: 1, bytes: 119}, // n=2
			{time: 22146564056, msgs: 3, bytes: 357}, // n=4
			{time: 11074045144, msgs: 7, bytes: 833}, // n=8
		},
	},
	"SOR-Zero": {
		"tmk": {
			{time: 757787500, msgs: 36, bytes: 4031},   // n=2
			{time: 399175212, msgs: 116, bytes: 11569}, // n=4
			{time: 215133748, msgs: 268, bytes: 34665}, // n=8
		},
		"pvm": {
			{time: 733913784, msgs: 9, bytes: 50829},   // n=2
			{time: 382089320, msgs: 27, bytes: 150039}, // n=4
			{time: 198860888, msgs: 63, bytes: 347243}, // n=8
		},
	},
	"SOR-Nonzero": {
		"tmk": {
			{time: 278092884, msgs: 36, bytes: 53030},   // n=2
			{time: 153775264, msgs: 116, bytes: 142246}, // n=4
			{time: 92365120, msgs: 268, bytes: 345013},  // n=8
		},
		"pvm": {
			{time: 251964984, msgs: 9, bytes: 50829},   // n=2
			{time: 132556520, msgs: 27, bytes: 150039}, // n=4
			{time: 71648088, msgs: 63, bytes: 347243},  // n=8
		},
	},
	"IS-Small": {
		"tmk": {
			{time: 112261332, msgs: 24, bytes: 3453},  // n=2
			{time: 69671548, msgs: 75, bytes: 17592},  // n=4
			{time: 66491548, msgs: 184, bytes: 75676}, // n=8
		},
		"pvm": {
			{time: 106309664, msgs: 4, bytes: 2068},  // n=2
			{time: 55658048, msgs: 12, bytes: 6204},  // n=4
			{time: 32996816, msgs: 28, bytes: 14476}, // n=8
		},
	},
	"IS-Large": {
		"tmk": {
			{time: 481394068, msgs: 272, bytes: 340193},    // n=2
			{time: 548430656, msgs: 819, bytes: 1726410},   // n=4
			{time: 1122381048, msgs: 2019, bytes: 5827695}, // n=8
		},
		"pvm": {
			{time: 401228384, msgs: 4, bytes: 524308},   // n=2
			{time: 320360288, msgs: 12, bytes: 1572924}, // n=4
			{time: 410278496, msgs: 28, bytes: 3670156}, // n=8
		},
	},
	"TSP": {
		"tmk": {
			{time: 738599316, msgs: 2172, bytes: 162529}, // n=2
			{time: 768820156, msgs: 2514, bytes: 312457}, // n=4
			{time: 835448984, msgs: 2769, bytes: 645391}, // n=8
		},
		"pvm": {
			{time: 290976208, msgs: 514, bytes: 14493}, // n=2
			{time: 151876100, msgs: 520, bytes: 14547}, // n=4
			{time: 89126024, msgs: 530, bytes: 14637},  // n=8
		},
	},
	"QSORT": {
		"tmk": {
			{time: 1551475200, msgs: 5983, bytes: 1270139},  // n=2
			{time: 2634049774, msgs: 13393, bytes: 3770969}, // n=4
			{time: 3003734094, msgs: 16213, bytes: 8553867}, // n=8
		},
		"pvm": {
			{time: 613030252, msgs: 2749, bytes: 2435773}, // n=2
			{time: 475715660, msgs: 2753, bytes: 2435809}, // n=4
			{time: 470834672, msgs: 2761, bytes: 2435881}, // n=8
		},
	},
	"Water-288": {
		"tmk": {
			{time: 638271160, msgs: 46, bytes: 43098},   // n=2
			{time: 336679364, msgs: 191, bytes: 165592}, // n=4
			{time: 201091064, msgs: 749, bytes: 588499}, // n=8
		},
		"pvm": {
			{time: 626076512, msgs: 8, bytes: 27688},    // n=2
			{time: 315020992, msgs: 32, bytes: 55456},   // n=4
			{time: 161055872, msgs: 128, bytes: 111232}, // n=8
		},
	},
	"Water-1728": {
		"tmk": {
			{time: 991975916, msgs: 20, bytes: 18738},   // n=2
			{time: 504221420, msgs: 69, bytes: 62827},   // n=4
			{time: 265074700, msgs: 208, bytes: 214602}, // n=8
		},
		"pvm": {
			{time: 986125104, msgs: 4, bytes: 24596},  // n=2
			{time: 494310624, msgs: 16, bytes: 49232}, // n=4
			{time: 249184704, msgs: 64, bytes: 98624}, // n=8
		},
	},
	"Barnes-Hut": {
		"tmk": {
			{time: 535524296, msgs: 60, bytes: 47554},    // n=2
			{time: 294617780, msgs: 324, bytes: 148626},  // n=4
			{time: 191233704, msgs: 1428, bytes: 385742}, // n=8
		},
		"pvm": {
			{time: 525227468, msgs: 4, bytes: 85252},    // n=2
			{time: 281397720, msgs: 24, bytes: 255984},  // n=4
			{time: 164027632, msgs: 112, bytes: 598360}, // n=8
		},
	},
	"3D-FFT": {
		"tmk": {
			{time: 65667792, msgs: 36, bytes: 67672},   // n=2
			{time: 46808672, msgs: 108, bytes: 203640}, // n=4
			{time: 44627280, msgs: 252, bytes: 479416}, // n=8
		},
		"pvm": {
			{time: 59108144, msgs: 4, bytes: 65556},    // n=2
			{time: 31559088, msgs: 24, bytes: 98424},   // n=4
			{time: 18655088, msgs: 112, bytes: 115248}, // n=8
		},
	},
	"ILINK": {
		"tmk": {
			{time: 1765544552, msgs: 86, bytes: 103362}, // n=2
			{time: 964795948, msgs: 258, bytes: 297371}, // n=4
			{time: 622960960, msgs: 602, bytes: 683212}, // n=8
		},
		"pvm": {
			{time: 1735865920, msgs: 4, bytes: 85500},  // n=2
			{time: 925943408, msgs: 12, bytes: 226956}, // n=4
			{time: 539828120, msgs: 28, bytes: 495060}, // n=8
		},
	},
}

// goldenGrid is the full pinned grid: all 12 experiments x {tmk,pvm} x
// {2,4,8} processors.  parallelEngine switches every scenario onto the
// deterministically parallel engine; workers widens Grid.Run's pool.
func goldenGrid(parallelEngine bool, workers int) Grid {
	scs := BaseScenarios(goldenProcs[:]...)
	if parallelEngine {
		for i := range scs {
			scs[i].Parallel = true
		}
	}
	return Grid{
		Apps:      Apps(goldenScale),
		Backends:  []core.Backend{core.TMK, core.PVM},
		Scenarios: scs,
		Workers:   workers,
	}
}

// runGolden collects the golden metrics for one full pass: the same
// record grid cmd/goldgen dumps, folded into the pinned-table shape.
func runGolden(t *testing.T, parallelEngine bool, workers int) map[string]map[string][3]metric {
	t.Helper()
	recs, err := goldenGrid(parallelEngine, workers).Run()
	if err != nil {
		t.Fatal(err)
	}
	return foldRecords(t, recs)
}

// checkGolden asserts one pass's metrics against the pinned seed values:
// any drift in Time, Messages or Bytes is a determinism regression in
// the engine, the network model or the DSM protocol.
func checkGolden(t *testing.T, mode string, got map[string]map[string][3]metric) {
	t.Helper()
	for name, systems := range golden {
		for sys, want := range systems {
			for i, n := range goldenProcs {
				if g := got[name][sys][i]; g != want[i] {
					t.Errorf("%s: %s %s n=%d: got %+v, want %+v", mode, name, sys, n, g, want[i])
				}
			}
		}
	}
}

// TestGoldenMetrics pins the serial engine, serial grid — the oracle
// configuration every other mode is differenced against.
func TestGoldenMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden grid in -short mode")
	}
	checkGolden(t, "serial", runGolden(t, false, 0))
}

// TestGoldenMetricsParallelEngine reruns the full pinned grid on the
// deterministically parallel engine (sim.Options{Parallel}): same-time
// steps execute on concurrent goroutines, and every modeled metric must
// still match the seed byte for byte.
func TestGoldenMetricsParallelEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden grid in -short mode")
	}
	checkGolden(t, "parallel-engine", runGolden(t, true, 0))
}

// TestGoldenMetricsGridWorkers reruns the full pinned grid through the
// worker-pool grid: the records must be identical to the serial grid's —
// same values in the same order — not merely golden-equal, because
// downstream consumers (tables, goldgen diffs, JSON output) depend on
// enumeration order.
func TestGoldenMetricsGridWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden grid in -short mode")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4 // exercise real pool concurrency even on small hosts
	}
	serial, err := goldenGrid(false, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := goldenGrid(false, workers).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(pooled) {
		t.Fatalf("record counts differ: serial %d, workers %d", len(serial), len(pooled))
	}
	for i := range serial {
		if serial[i] != pooled[i] {
			t.Errorf("record %d differs:\nserial  %+v\nworkers %+v", i, serial[i], pooled[i])
		}
	}
	checkGolden(t, "grid-workers", foldRecords(t, pooled))
}

// TestGridWorkersStress randomizes worker counts (seeded) over a
// smaller grid, including the parallel engine, and requires every pass
// to reproduce the serial records exactly.
func TestGridWorkersStress(t *testing.T) {
	apps := []core.App{}
	for _, name := range []string{"SOR-Zero", "IS-Small", "QSORT"} {
		app := Find(Apps(goldenScale), name)
		if app == nil {
			t.Fatalf("experiment %q not registered", name)
		}
		apps = append(apps, app)
	}
	mk := func(par bool, workers int) Grid {
		scs := BaseScenarios(2, 4)
		// One lossy cell rides along: recovery traffic (timeouts,
		// retransmissions, ARQ delays) must be just as mode-independent
		// as the fault-free runs.
		scs = append(scs, LossScenarios(4, 0.05)...)
		for i := range scs {
			scs[i].Parallel = par
		}
		return Grid{
			Apps:      apps,
			Backends:  []core.Backend{core.Seq, core.TMK, core.PVM},
			Scenarios: scs,
			Workers:   workers,
		}
	}
	want, err := mk(false, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9137))
	for round := 0; round < 6; round++ {
		workers := 2 + rng.Intn(14)
		par := rng.Intn(2) == 1
		got, err := mk(par, workers).Run()
		if err != nil {
			t.Fatalf("round %d (workers=%d parallel=%v): %v", round, workers, par, err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d records, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("round %d (workers=%d parallel=%v) record %d:\ngot  %+v\nwant %+v",
					round, workers, par, i, got[i], want[i])
			}
		}
	}
}

// foldRecords reshapes grid records into the pinned-table form.
func foldRecords(t *testing.T, recs []Record) map[string]map[string][3]metric {
	t.Helper()
	out := map[string]map[string][3]metric{}
	for _, r := range recs {
		slot := -1
		for i, n := range goldenProcs {
			if r.Procs == n {
				slot = i
			}
		}
		if slot < 0 {
			t.Fatalf("unexpected proc count %d in grid records", r.Procs)
		}
		if out[r.App] == nil {
			out[r.App] = map[string][3]metric{}
		}
		m := out[r.App][r.Backend]
		m[slot] = metric{time: r.TimeNS, msgs: r.Messages, bytes: r.Bytes}
		out[r.App][r.Backend] = m
	}
	return out
}

// TestBackToBackRunsIdentical reruns two representative experiments — a
// barrier-only kernel and a false-sharing-heavy one — and requires
// bit-for-bit identical metrics: the engine must not leak host
// nondeterminism (goroutine scheduling, map order) into modeled results.
func TestBackToBackRunsIdentical(t *testing.T) {
	apps := Apps(goldenScale)
	for _, name := range []string{"SOR-Zero", "IS-Small"} {
		app := Find(apps, name)
		if app == nil {
			t.Fatalf("experiment %q not registered", name)
		}
		for _, n := range goldenProcs {
			for _, b := range []core.Backend{core.TMK, core.PVM} {
				r1, err1 := b.Run(app, core.Base(n))
				r2, err2 := b.Run(app, core.Base(n))
				if a, bb := capture(t, r1, err1), capture(t, r2, err2); a != bb {
					t.Errorf("%s %s n=%d: run1 %+v != run2 %+v", name, b.Name(), n, a, bb)
				}
			}
		}
	}
}
