package harness

import (
	"testing"

	"repro/internal/core"
)

// metric is the triple the paper reports and the simulator guarantees to
// reproduce exactly: modeled time, wire messages, wire bytes.
type metric struct {
	time  int64
	msgs  int64
	bytes int64
}

func capture(t *testing.T, res core.Result, err error) metric {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	return metric{time: int64(res.Time), msgs: res.Net.Messages, bytes: res.Net.Bytes}
}

// goldenScale matches BenchScale in bench_test.go: the reduced workloads
// the quick-mode experiments run at.
const goldenScale = 0.1

// golden pins the modeled metrics of two representative experiments — a
// barrier-only scientific kernel (SOR-Zero) and a false-sharing-heavy one
// (IS-Small) — under both systems at 4 and 8 processors, as produced by
// the seed implementation.  The scheduler and DSM access layer may be
// rewritten freely, but these numbers must not move: they are modeled
// physics, not implementation detail.  Regenerate with `go run
// ./cmd/goldgen` only when a change is *supposed* to alter the model.
var golden = map[string]map[string][2]metric{
	"SOR-Zero": {
		"tmk": {
			{time: 399175212, msgs: 116, bytes: 11569}, // n=4
			{time: 215133748, msgs: 268, bytes: 34665}, // n=8
		},
		"pvm": {
			{time: 382089320, msgs: 27, bytes: 150039}, // n=4
			{time: 198860888, msgs: 63, bytes: 347243}, // n=8
		},
	},
	"IS-Small": {
		"tmk": {
			{time: 69671548, msgs: 75, bytes: 17592},  // n=4
			{time: 66491548, msgs: 184, bytes: 75676}, // n=8
		},
		"pvm": {
			{time: 55658048, msgs: 12, bytes: 6204},  // n=4
			{time: 32996816, msgs: 28, bytes: 14476}, // n=8
		},
	},
}

// runOnce collects the golden metrics for one full pass.
func runGolden(t *testing.T) map[string]map[string][2]metric {
	t.Helper()
	runners := Experiments(goldenScale)
	out := map[string]map[string][2]metric{}
	for name := range golden {
		r := Find(runners, name)
		if r == nil {
			t.Fatalf("experiment %q not registered", name)
		}
		sys := map[string][2]metric{}
		for i, n := range []int{4, 8} {
			tres, terr := r.TMK(n)
			pres, perr := r.PVM(n)
			tm := sys["tmk"]
			tm[i] = capture(t, tres, terr)
			sys["tmk"] = tm
			pm := sys["pvm"]
			pm[i] = capture(t, pres, perr)
			sys["pvm"] = pm
		}
		out[r.Name] = sys
	}
	return out
}

// TestGoldenMetrics asserts the modeled results against the pinned seed
// values: any drift in Time, Messages or Bytes is a determinism
// regression in the engine, the network model or the DSM protocol.
func TestGoldenMetrics(t *testing.T) {
	got := runGolden(t)
	for name, systems := range golden {
		for sys, want := range systems {
			for i, n := range []int{4, 8} {
				if g := got[name][sys][i]; g != want[i] {
					t.Errorf("%s %s n=%d: got %+v, want %+v", name, sys, n, g, want[i])
				}
			}
		}
	}
}

// TestBackToBackRunsIdentical reruns the same experiments and requires
// bit-for-bit identical metrics: the engine must not leak host
// nondeterminism (goroutine scheduling, map order) into modeled results.
func TestBackToBackRunsIdentical(t *testing.T) {
	a := runGolden(t)
	b := runGolden(t)
	for name, systems := range a {
		for sys, am := range systems {
			bm := b[name][sys]
			for i, n := range []int{4, 8} {
				if am[i] != bm[i] {
					t.Errorf("%s %s n=%d: run1 %+v != run2 %+v", name, sys, n, am[i], bm[i])
				}
			}
		}
	}
}
