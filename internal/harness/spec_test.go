package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// specJob resolves one golden spec coordinate against the paper-scale
// registry.
func specJob(t *testing.T, apps []core.App, app, backend string, sc core.Scenario) Job {
	t.Helper()
	a := Find(apps, app)
	if a == nil {
		t.Fatalf("unknown app %q", app)
	}
	b, err := FindBackend(backend)
	if err != nil {
		t.Fatal(err)
	}
	return Job{App: a, Backend: b, Scenario: sc}
}

// TestSpecHashGolden pins the canonical cache keys of a fixed spec set.
// These hashes are the serve cache's content addresses: if this test
// fails, every cached record in every deployed store goes stale.  That
// is correct exactly when the change is a model change (bump
// EngineVersion, regenerate these goldens alongside golden_test.go) and
// a bug in every other case — canonicalization must not drift under
// refactors that keep the model fixed.
func TestSpecHashGolden(t *testing.T) {
	apps := Apps(1.0)
	golden := []struct {
		app, backend, scenario, hash string
	}{
		{"EP", "seq", "base", "d26b12d420946c3c98db896447eefc481deee2a78b9a46b1367982833390abce"},
		{"EP", "tmk", "base", "b2d219c0d9a0f3f6fdb1815b7082338232d1367f7ef6c8862a4590b70234cb04"},
		{"EP", "pvm", "base", "e49d2143243add0ec036947011c818134a83399b92b8d0f37d79340f68af0079"},
		{"SOR-Zero", "tmk", "base", "c52cddfeb01dec40bd10a80c90a06cafd969df2a467a4505eee70a61336ab3c1"},
		{"SOR-Zero", "tmk-sc", "base", "40b70e12c58f9d2f5b6706705416bf2d504dc54c133c5d9214f3849064cc899d"},
		{"SOR-Nonzero", "tmk", "page=1024", "a36ca8f9f79a02de86f8f33ee37914ffa6c440d7d9c80ceca829f0dbc3d726c7"},
		{"Water-288", "pvm", "loss=0.05", "36689b8f422a274df8444c974c814e60eb617802de09a7217e2a2ca1d002e245"},
	}
	scenario := func(name string, procs int) core.Scenario {
		switch name {
		case "base":
			return core.Base(procs)
		case "page=1024":
			return PageSizeScenarios(procs, 1024)[0]
		case "loss=0.05":
			return LossScenarios(procs, 0.05)[0]
		}
		t.Fatalf("unmapped scenario %q", name)
		return core.Scenario{}
	}
	for _, g := range golden {
		procs := 8
		if g.backend == "seq" {
			procs = 1
		}
		if g.app == "SOR-Zero" && g.backend == "tmk" {
			procs = 2
		}
		j := specJob(t, apps, g.app, g.backend, scenario(g.scenario, procs))
		if got := SpecHash(j); got != g.hash {
			t.Errorf("%s/%s/%s: hash %s, want %s\ncanonical spec:\n%s",
				g.app, g.backend, g.scenario, got, g.hash, CanonicalSpec(j))
		}
	}
}

// TestSpecHashInstanceInvariance proves the hash is a function of the
// spec, not of object identity: a freshly constructed registry yields
// the same hashes, so any process — this one, a restarted server, a
// future worker — addresses the same cache entries.
func TestSpecHashInstanceInvariance(t *testing.T) {
	a1 := Apps(1.0)
	a2 := Apps(1.0)
	j1 := specJob(t, a1, "EP", "tmk", core.Base(8))
	j2 := specJob(t, a2, "EP", "tmk", core.Base(8))
	if h1, h2 := SpecHash(j1), SpecHash(j2); h1 != h2 {
		t.Fatalf("same spec, different instances, different hashes: %s vs %s", h1, h2)
	}
}

// TestCanonicalMapOrder proves map iteration order cannot leak into the
// canonical rendering: maps populated in different insertion orders
// (and walked by Go's randomized iteration) render identically, with
// keys sorted.
func TestCanonicalMapOrder(t *testing.T) {
	m1 := map[string]int{}
	for _, k := range []string{"zeta", "alpha", "mid", "beta"} {
		m1[k] = len(k)
	}
	m2 := map[string]int{}
	for _, k := range []string{"beta", "mid", "zeta", "alpha"} {
		m2[k] = len(k)
	}
	c1 := CanonicalString("m", m1)
	c2 := CanonicalString("m", m2)
	if c1 != c2 {
		t.Fatalf("insertion order leaked into canonical form:\n%s\nvs\n%s", c1, c2)
	}
	want := "m.len=4\nm[alpha]=5\nm[beta]=4\nm[mid]=3\nm[zeta]=4\n"
	if c1 != want {
		t.Fatalf("canonical map rendering:\n%s\nwant:\n%s", c1, want)
	}
	// Repeat across many renderings: Go randomizes map iteration per
	// walk, so any order dependence would flake here immediately.
	for i := 0; i < 50; i++ {
		if got := CanonicalString("m", m1); got != want {
			t.Fatalf("rendering %d drifted:\n%s", i, got)
		}
	}
}

// TestSpecHashFieldSensitivity proves the hash moves when any spec
// field moves — page size, fault seed, processor count, problem size,
// backend, scenario name — and stays put for execution-mode knobs,
// which are byte-identical by contract and must share a cache entry.
func TestSpecHashFieldSensitivity(t *testing.T) {
	apps := Apps(1.0)
	base := specJob(t, apps, "EP", "tmk", core.Base(8))
	h0 := SpecHash(base)

	mutate := func(name string, f func(j *Job)) {
		j := base
		f(&j)
		if h := SpecHash(j); h == h0 {
			t.Errorf("%s: hash did not change", name)
		}
	}
	mutate("page size", func(j *Job) { j.Scenario.DSM.PageSize = 1024 })
	mutate("fault seed", func(j *Job) { j.Scenario.Net.Faults.Seed = 1 })
	mutate("loss rate", func(j *Job) { j.Scenario.Net.Faults.Loss = 0.05 })
	mutate("nprocs", func(j *Job) { j.Scenario.Config.Procs = 4 })
	mutate("latency", func(j *Job) { j.Scenario.Net.Latency *= 2 })
	mutate("xdr override", func(j *Job) { j.Scenario.XDRPerByte = 100 })
	mutate("master placement", func(j *Job) { j.Scenario.MasterColocated = true })
	mutate("scenario name", func(j *Job) { j.Scenario.Name = "other" })
	mutate("backend", func(j *Job) { j.Backend = core.PVM })
	mutate("app problem size", func(j *Job) { j.App = Find(Apps(0.5), "EP") })
	mutate("partition window", func(j *Job) {
		j.Scenario.Net.Faults.Partitions = PartitionScenarios(8)[0].Net.Faults.Partitions
	})

	// Execution mode is not a spec: the parallel engine's results are
	// byte-identical to the serial engine's, so both must hit the same
	// cache entry.
	par := base
	par.Scenario.Parallel = true
	if h := SpecHash(par); h != h0 {
		t.Errorf("parallel-engine knob moved the hash: %s vs %s", h, h0)
	}

	// The engine version prefixes every canonical spec: a model-change
	// bump strands every old hash, by construction.
	if !strings.Contains(CanonicalSpec(base), "engine="+EngineVersion+"\n") {
		t.Errorf("canonical spec does not pin the engine version:\n%s", CanonicalSpec(base))
	}
}
