package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// This file registers backend variants: ablations derived from the
// standard adapters by rewriting the scenario.  Each is one value — no
// application package changes, no new adapter code.

// PVMXDR is PVM as it would run on a heterogeneous cluster: every pack
// and unpack pays external-data-representation conversion.  The paper
// disables XDR (identical machines) and notes the conversion cost would
// otherwise narrow PVM's advantage on data-heavy applications.
var PVMXDR = core.Variant("pvm-xdr", core.PVM, func(sc core.Scenario) core.Scenario {
	sc.XDRPerByte = 100 * sim.Nanosecond
	return sc
})

// TMKSmallPage is TreadMarks on 1 KB pages: four times the faults and
// diff exchanges for the same sharing, isolating the page-granularity
// term of the DSM overhead.
var TMKSmallPage = core.Variant("tmk-1k", core.TMK, func(sc core.Scenario) core.Scenario {
	sc.DSM.PageSize = 1024
	return sc
})

// TMKEager is TreadMarks with eager invalidation
// (tmk.Config.EagerInvalidate): every interval close broadcasts its
// write notices instead of piggybacking them on the next grant or
// departure, approximating a sequentially consistent DSM.  The ablation
// isolates what laziness buys the paper's protocol: same applications,
// strictly more messages.
var TMKEager = core.Variant("tmk-sc", core.TMK, func(sc core.Scenario) core.Scenario {
	sc.DSM.EagerInvalidate = true
	return sc
})

// TMKTree is TreadMarks with the radix-2 combining-tree barrier
// (tmk.Config.TreeBarrier): arrivals climb a k-ary tree merging
// timestamps and interval records at each internal node, departures
// descend it with per-subtree record filtering.  The message *count*
// floor of a barrier — 2(n-1) — is inherent; what the tree buys at
// large P is fragmentation: centralized departures carry the full
// record union and straddle the MTU, tree departures exclude what each
// subtree already holds and fit in one fragment.
var TMKTree = core.Variant("tmk-tree", core.TMK, func(sc core.Scenario) core.Scenario {
	sc.DSM.TreeBarrier = 2
	return sc
})

// TMKSCTree is the eager-invalidate ablation rebuilt for large P: the
// combining-tree barrier plus a fan-out tree (tmk.Config.TreeFanout)
// for the per-interval invalidation broadcast, so neither the barrier
// manager nor a busy writer serializes O(P) sends.
var TMKSCTree = core.Variant("tmk-sc-tree", core.TMK, func(sc core.Scenario) core.Scenario {
	sc.DSM.EagerInvalidate = true
	sc.DSM.TreeBarrier = 2
	sc.DSM.TreeFanout = 4
	return sc
})

// Backends returns every registered backend: the standard adapters in
// reporting order, then the variants.
func Backends() []core.Backend {
	return append(core.StandardBackends(), PVMXDR, TMKSmallPage, TMKEager, TMKTree, TMKSCTree)
}

// FindBackend resolves a backend by name.
func FindBackend(name string) (core.Backend, error) {
	for _, b := range Backends() {
		if b.Name() == name {
			return b, nil
		}
	}
	var have []string
	for _, b := range Backends() {
		have = append(have, b.Name())
	}
	return nil, fmt.Errorf("unknown backend %q (have %v)", name, have)
}
