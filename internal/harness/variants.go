package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// This file registers backend variants: ablations derived from the
// standard adapters by rewriting the scenario.  Each is one value — no
// application package changes, no new adapter code.

// PVMXDR is PVM as it would run on a heterogeneous cluster: every pack
// and unpack pays external-data-representation conversion.  The paper
// disables XDR (identical machines) and notes the conversion cost would
// otherwise narrow PVM's advantage on data-heavy applications.
var PVMXDR = core.Variant("pvm-xdr", core.PVM, func(sc core.Scenario) core.Scenario {
	sc.XDRPerByte = 100 * sim.Nanosecond
	return sc
})

// TMKSmallPage is TreadMarks on 1 KB pages: four times the faults and
// diff exchanges for the same sharing, isolating the page-granularity
// term of the DSM overhead.
var TMKSmallPage = core.Variant("tmk-1k", core.TMK, func(sc core.Scenario) core.Scenario {
	sc.DSM.PageSize = 1024
	return sc
})

// TMKEager is TreadMarks with eager invalidation
// (tmk.Config.EagerInvalidate): every interval close broadcasts its
// write notices instead of piggybacking them on the next grant or
// departure, approximating a sequentially consistent DSM.  The ablation
// isolates what laziness buys the paper's protocol: same applications,
// strictly more messages.
var TMKEager = core.Variant("tmk-sc", core.TMK, func(sc core.Scenario) core.Scenario {
	sc.DSM.EagerInvalidate = true
	return sc
})

// Backends returns every registered backend: the standard adapters in
// reporting order, then the variants.
func Backends() []core.Backend {
	return append(core.StandardBackends(), PVMXDR, TMKSmallPage, TMKEager)
}

// FindBackend resolves a backend by name.
func FindBackend(name string) (core.Backend, error) {
	for _, b := range Backends() {
		if b.Name() == name {
			return b, nil
		}
	}
	var have []string
	for _, b := range Backends() {
		have = append(have, b.Name())
	}
	return nil, fmt.Errorf("unknown backend %q (have %v)", name, have)
}
