// Package harness is the experiment registry: one entry per table and
// figure of the paper's evaluation section.  Each experiment knows how to
// run its workload sequentially, under TreadMarks, and under PVM, at any
// processor count, and how to render the same rows and series the paper
// reports (Table 1, Table 2, Figures 1-12).
package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps/barnes"
	"repro/internal/apps/ep"
	"repro/internal/apps/fft"
	"repro/internal/apps/ilink"
	"repro/internal/apps/is"
	"repro/internal/apps/qsort"
	"repro/internal/apps/sor"
	"repro/internal/apps/tsp"
	"repro/internal/apps/water"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Runner abstracts one application/input combination.
type Runner struct {
	Name    string // e.g. "SOR-Zero"
	Figure  int    // paper figure number
	Problem string // problem-size description (Table 1 column)

	Seq func() (core.Result, error)
	TMK func(nprocs int) (core.Result, error)
	PVM func(nprocs int) (core.Result, error)
}

// Experiments returns the registry in the paper's figure order.
// scale < 1 shrinks the workloads (quick mode); 1.0 is paper scale.
func Experiments(scale float64) []Runner {
	shrink := func(n, min int) int {
		v := int(float64(n) * scale)
		if v < min {
			return min
		}
		return v
	}

	epCfg := ep.Paper()
	epCfg.Pairs = shrink(epCfg.Pairs, 1<<12)

	sorZ, sorNZ := sor.Paper(true), sor.Paper(false)
	sorZ.M = shrink(sorZ.M, 32)
	sorZ.Sweeps = shrink(sorZ.Sweeps, 4)
	sorNZ.M = shrink(sorNZ.M, 32)
	sorNZ.Sweeps = shrink(sorNZ.Sweeps, 4)

	isS, isL := is.PaperSmall(), is.PaperLarge()
	isS.Keys = shrink(isS.Keys, 1<<12)
	isS.Iters = shrink(isS.Iters, 2)
	isL.Keys = shrink(isL.Keys, 1<<12)
	isL.Iters = shrink(isL.Iters, 2)

	tspCfg := tsp.Paper()
	if scale < 1 {
		tspCfg.Cities = 12
		tspCfg.Threshold = 8
	}

	qsCfg := qsort.Paper()
	qsCfg.N = shrink(qsCfg.N, 1<<12)
	qsCfg.Threshold = shrink(qsCfg.Threshold, 64)

	w288, w1728 := water.Paper288(), water.Paper1728()
	w288.Steps = shrink(w288.Steps, 2)
	w1728.Steps = shrink(w1728.Steps, 1)
	if scale < 1 {
		w1728.Mols = 512
	}

	bhCfg := barnes.Paper()
	bhCfg.Bodies = shrink(bhCfg.Bodies, 128)
	bhCfg.Steps = shrink(bhCfg.Steps, 2)

	fftCfg := fft.Paper()
	if scale < 1 {
		fftCfg.N = 16
	}
	fftCfg.Iters = shrink(fftCfg.Iters, 2)

	ilCfg := ilink.Paper()
	ilCfg.Families = shrink(ilCfg.Families, 2)

	return []Runner{
		{
			Name: "EP", Figure: 1, Problem: fmt.Sprintf("2^28 pairs (model), %d generated", epCfg.Pairs),
			Seq: func() (core.Result, error) { r, _, err := ep.RunSeq(epCfg); return r, err },
			TMK: func(n int) (core.Result, error) { r, _, err := ep.RunTMK(epCfg, core.Default(n)); return r, err },
			PVM: func(n int) (core.Result, error) { r, _, err := ep.RunPVM(epCfg, core.Default(n)); return r, err },
		},
		{
			Name: "SOR-Zero", Figure: 2, Problem: fmt.Sprintf("%dx%d f64, %d sweeps, zero", sorZ.M, sorZ.N, sorZ.Sweeps),
			Seq: func() (core.Result, error) { r, _, err := sor.RunSeq(sorZ); return r, err },
			TMK: func(n int) (core.Result, error) { r, _, err := sor.RunTMK(sorZ, core.Default(n)); return r, err },
			PVM: func(n int) (core.Result, error) { r, _, err := sor.RunPVM(sorZ, core.Default(n)); return r, err },
		},
		{
			Name: "SOR-Nonzero", Figure: 3, Problem: fmt.Sprintf("%dx%d f64, %d sweeps, nonzero", sorNZ.M, sorNZ.N, sorNZ.Sweeps),
			Seq: func() (core.Result, error) { r, _, err := sor.RunSeq(sorNZ); return r, err },
			TMK: func(n int) (core.Result, error) { r, _, err := sor.RunTMK(sorNZ, core.Default(n)); return r, err },
			PVM: func(n int) (core.Result, error) { r, _, err := sor.RunPVM(sorNZ, core.Default(n)); return r, err },
		},
		{
			Name: "IS-Small", Figure: 4, Problem: fmt.Sprintf("N=%d Bmax=2^7, %d iters", isS.Keys, isS.Iters),
			Seq: func() (core.Result, error) { r, _, err := is.RunSeq(isS); return r, err },
			TMK: func(n int) (core.Result, error) { r, _, err := is.RunTMK(isS, core.Default(n)); return r, err },
			PVM: func(n int) (core.Result, error) { r, _, err := is.RunPVM(isS, core.Default(n)); return r, err },
		},
		{
			Name: "IS-Large", Figure: 5, Problem: fmt.Sprintf("N=%d Bmax=2^15, %d iters", isL.Keys, isL.Iters),
			Seq: func() (core.Result, error) { r, _, err := is.RunSeq(isL); return r, err },
			TMK: func(n int) (core.Result, error) { r, _, err := is.RunTMK(isL, core.Default(n)); return r, err },
			PVM: func(n int) (core.Result, error) { r, _, err := is.RunPVM(isL, core.Default(n)); return r, err },
		},
		{
			Name: "TSP", Figure: 6, Problem: fmt.Sprintf("%d cities, threshold %d", tspCfg.Cities, tspCfg.Threshold),
			Seq: func() (core.Result, error) { r, _, err := tsp.RunSeq(tspCfg); return r, err },
			TMK: func(n int) (core.Result, error) { r, _, err := tsp.RunTMK(tspCfg, core.Default(n)); return r, err },
			PVM: func(n int) (core.Result, error) { r, _, err := tsp.RunPVM(tspCfg, core.Default(n)); return r, err },
		},
		{
			Name: "QSORT", Figure: 7, Problem: fmt.Sprintf("%dK integers, bubble %d", qsCfg.N/1024, qsCfg.Threshold),
			Seq: func() (core.Result, error) { r, _, err := qsort.RunSeq(qsCfg); return r, err },
			TMK: func(n int) (core.Result, error) { r, _, err := qsort.RunTMK(qsCfg, core.Default(n)); return r, err },
			PVM: func(n int) (core.Result, error) { r, _, err := qsort.RunPVM(qsCfg, core.Default(n)); return r, err },
		},
		{
			Name: "Water-288", Figure: 8, Problem: fmt.Sprintf("%d molecules, %d steps", w288.Mols, w288.Steps),
			Seq: func() (core.Result, error) { r, _, err := water.RunSeq(w288); return r, err },
			TMK: func(n int) (core.Result, error) { r, _, err := water.RunTMK(w288, core.Default(n)); return r, err },
			PVM: func(n int) (core.Result, error) { r, _, err := water.RunPVM(w288, core.Default(n)); return r, err },
		},
		{
			Name: "Water-1728", Figure: 9, Problem: fmt.Sprintf("%d molecules, %d steps", w1728.Mols, w1728.Steps),
			Seq: func() (core.Result, error) { r, _, err := water.RunSeq(w1728); return r, err },
			TMK: func(n int) (core.Result, error) { r, _, err := water.RunTMK(w1728, core.Default(n)); return r, err },
			PVM: func(n int) (core.Result, error) { r, _, err := water.RunPVM(w1728, core.Default(n)); return r, err },
		},
		{
			Name: "Barnes-Hut", Figure: 10, Problem: fmt.Sprintf("%d bodies, %d steps", bhCfg.Bodies, bhCfg.Steps),
			Seq: func() (core.Result, error) { r, _, err := barnes.RunSeq(bhCfg); return r, err },
			TMK: func(n int) (core.Result, error) { r, _, err := barnes.RunTMK(bhCfg, core.Default(n)); return r, err },
			PVM: func(n int) (core.Result, error) { r, _, err := barnes.RunPVM(bhCfg, core.Default(n)); return r, err },
		},
		{
			Name: "3D-FFT", Figure: 11, Problem: fmt.Sprintf("%d^3 complex, %d iters", fftCfg.N, fftCfg.Iters),
			Seq: func() (core.Result, error) { r, _, err := fft.RunSeq(fftCfg); return r, err },
			TMK: func(n int) (core.Result, error) { r, _, err := fft.RunTMK(fftCfg, core.Default(n)); return r, err },
			PVM: func(n int) (core.Result, error) { r, _, err := fft.RunPVM(fftCfg, core.Default(n)); return r, err },
		},
		{
			Name: "ILINK", Figure: 12, Problem: fmt.Sprintf("synthetic CLP, %d families", ilCfg.Families),
			Seq: func() (core.Result, error) { r, _, err := ilink.RunSeq(ilCfg); return r, err },
			TMK: func(n int) (core.Result, error) { r, _, err := ilink.RunTMK(ilCfg, core.Default(n)); return r, err },
			PVM: func(n int) (core.Result, error) { r, _, err := ilink.RunPVM(ilCfg, core.Default(n)); return r, err },
		},
	}
}

// Find returns the runner whose name matches (case-insensitive,
// punctuation-insensitive), or nil.
func Find(runners []Runner, name string) *Runner {
	canon := func(s string) string {
		s = strings.ToLower(s)
		s = strings.NewReplacer("-", "", "_", "", " ", "").Replace(s)
		return s
	}
	for i := range runners {
		if canon(runners[i].Name) == canon(name) {
			return &runners[i]
		}
	}
	return nil
}

// Table1 renders the sequential-times table.
func Table1(runners []Runner) (string, error) {
	tbl := stats.Table{
		Title:  "Table 1  Sequential Time of Applications (modeled)",
		Header: []string{"Program", "Problem Size", "Time(sec)"},
	}
	for _, r := range runners {
		res, err := r.Seq()
		if err != nil {
			return "", fmt.Errorf("%s: %w", r.Name, err)
		}
		tbl.AddRow(r.Name, r.Problem, fmt.Sprintf("%.1f", res.Time.Seconds()))
	}
	return tbl.Render(), nil
}

// Table2 renders messages and kilobytes at 8 processors for both systems.
func Table2(runners []Runner) (string, error) {
	tbl := stats.Table{
		Title: "Table 2  Messages and Data at 8 Processors",
		Header: []string{"Program", "TMK Messages", "TMK Kilobytes",
			"PVM Messages", "PVM Kilobytes"},
	}
	for _, r := range runners {
		tres, err := r.TMK(8)
		if err != nil {
			return "", fmt.Errorf("%s tmk: %w", r.Name, err)
		}
		pres, err := r.PVM(8)
		if err != nil {
			return "", fmt.Errorf("%s pvm: %w", r.Name, err)
		}
		tbl.AddRow(r.Name,
			fmt.Sprintf("%d", tres.Net.Messages), fmt.Sprintf("%.0f", tres.Net.Kilobytes()),
			fmt.Sprintf("%d", pres.Net.Messages), fmt.Sprintf("%.0f", pres.Net.Kilobytes()))
	}
	return tbl.Render(), nil
}

// FigureData computes the speedup curves (1..maxProcs) for one runner.
func FigureData(r *Runner, maxProcs int) (stats.Figure, error) {
	seq, err := r.Seq()
	if err != nil {
		return stats.Figure{}, fmt.Errorf("%s seq: %w", r.Name, err)
	}
	var xs []int
	var tmkT, pvmT []sim.Time
	for n := 1; n <= maxProcs; n++ {
		tres, err := r.TMK(n)
		if err != nil {
			return stats.Figure{}, fmt.Errorf("%s tmk n=%d: %w", r.Name, n, err)
		}
		pres, err := r.PVM(n)
		if err != nil {
			return stats.Figure{}, fmt.Errorf("%s pvm n=%d: %w", r.Name, n, err)
		}
		xs = append(xs, n)
		tmkT = append(tmkT, tres.Time)
		pvmT = append(pvmT, pres.Time)
	}
	return stats.Figure{
		Title: fmt.Sprintf("Figure %d  %s", r.Figure, r.Name),
		Series: []stats.Series{
			{Name: "TreadMarks", X: xs, Y: stats.Speedup(seq.Time, tmkT)},
			{Name: "PVM", X: xs, Y: stats.Speedup(seq.Time, pvmT)},
		},
	}, nil
}

// Names lists the registered experiment names.
func Names(runners []Runner) []string {
	var out []string
	for _, r := range runners {
		out = append(out, r.Name)
	}
	sort.Strings(out)
	return out
}
