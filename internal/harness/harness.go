// Package harness is the experiment surface of the reproduction: a
// registry of the paper's twelve applications and a data-driven grid
// runner that crosses them with backends and scenarios.
//
// # Architecture
//
// Three core types (internal/core) make configurations declarative:
//
//   - core.App — one application/input combination, implemented once by
//     its package under internal/apps.  The registry (Apps) returns all
//     twelve in the paper's figure order, configured at a workload scale.
//   - core.Backend — adapts an App to one system.  The standard adapters
//     are core.Seq, core.TMK and core.PVM; Variants() adds derived
//     ablations such as PVM-with-XDR.  A new backend is one value.
//   - core.Scenario — one point in configuration space: processor count,
//     network cost model, DSM cost model, PVM placement and cost-model
//     overrides.  scenarios.go provides the stock axes (base testbed,
//     page-size sweep, link-bandwidth sweep, co-located master).
//
// A Grid is the cross product apps × backends × scenarios; Grid.Run
// executes it and emits one structured Record per run.  Runs are
// independent engines, so Grid.Workers spreads them across a worker
// pool (jobs scheduled by index, records collected by index: output
// byte-identical to the serial path) — apps implementing core.Cloneable
// run on per-job clones, the rest serialize per instance.  Everything
// else — the rendered Table 1/Table 2, the speedup figures, the goldens
// pinned in golden_test.go, cmd/goldgen, cmd/msvdsm's JSON/CSV output
// and the ablation studies — consumes the same records.
package harness

import (
	"sort"
	"strings"

	"repro/internal/apps/barnes"
	"repro/internal/apps/ep"
	"repro/internal/apps/fft"
	"repro/internal/apps/ilink"
	"repro/internal/apps/is"
	"repro/internal/apps/qsort"
	"repro/internal/apps/sor"
	"repro/internal/apps/tsp"
	"repro/internal/apps/water"
	"repro/internal/core"
)

// Apps returns the registry in the paper's figure order (Figures 1-12).
// scale < 1 shrinks the workloads (quick mode); 1.0 is paper scale.
func Apps(scale float64) []core.App {
	var apps []core.App
	for _, pkg := range []func(float64) []core.App{
		ep.Apps, sor.Apps, is.Apps, tsp.Apps, qsort.Apps,
		water.Apps, barnes.Apps, fft.Apps, ilink.Apps,
	} {
		apps = append(apps, pkg(scale)...)
	}
	sort.SliceStable(apps, func(i, j int) bool { return apps[i].Figure() < apps[j].Figure() })
	return apps
}

// BigApps returns the large-P registry: the same twelve experiments
// re-sized for the bigp scenario family, where the interesting axis is
// processor count (64, 256), not problem scale.  Workloads keep enough
// per-processor work to exercise the protocols at P=256 while a full
// grid stays CI-sized.
func BigApps(scale float64) []core.App {
	var apps []core.App
	for _, pkg := range []func(float64) []core.App{
		ep.BigApps, sor.BigApps, is.BigApps, tsp.BigApps, qsort.BigApps,
		water.BigApps, barnes.BigApps, fft.BigApps, ilink.BigApps,
	} {
		apps = append(apps, pkg(scale)...)
	}
	sort.SliceStable(apps, func(i, j int) bool { return apps[i].Figure() < apps[j].Figure() })
	return apps
}

// Find returns the app whose name matches (case-insensitive,
// punctuation-insensitive), or nil.
func Find(apps []core.App, name string) core.App {
	canon := func(s string) string {
		s = strings.ToLower(s)
		s = strings.NewReplacer("-", "", "_", "", " ", "").Replace(s)
		return s
	}
	for _, a := range apps {
		if canon(a.Name()) == canon(name) {
			return a
		}
	}
	return nil
}

// Names lists the registered experiment names.
func Names(apps []core.App) []string {
	var out []string
	for _, a := range apps {
		out = append(out, a.Name())
	}
	sort.Strings(out)
	return out
}
