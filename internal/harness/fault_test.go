package harness

import (
	"runtime"
	"testing"

	"repro/internal/core"
)

// faultScale keeps the fault-conformance workloads tiny: correctness
// under loss is the point, not the modeled numbers.
const faultScale = 0.01

// faultBackends is the reliability surface under test: the TreadMarks
// RPC layer (lazy and eager invalidate variants exercise different
// request/reply traffic) and PVM's stream transport.
func faultBackends() []core.Backend {
	return []core.Backend{core.TMK, TMKEager, core.PVM}
}

// checkApp runs one backend on one fault scenario and verifies the
// app's own output check — the end-to-end proof that every message the
// fault layer killed was recovered.
func checkApp(t *testing.T, app core.App, b core.Backend, sc core.Scenario) {
	t.Helper()
	if _, err := b.Run(app, sc); err != nil {
		t.Fatalf("%s/%s/%s n=%d: %v", app.Name(), b.Name(), sc.Name, sc.Procs, err)
	}
	if err := app.Check(); err != nil {
		t.Errorf("%s/%s/%s n=%d output check: %v", app.Name(), b.Name(), sc.Name, sc.Procs, err)
	}
}

// TestFaultConformance runs every registered app under every reliability
// backend at 5% seeded message loss across the paper's processor counts:
// all runs must complete and produce output identical to the app's own
// sequential run.
func TestFaultConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full app x backend x procs cross product under loss")
	}
	for _, app := range Apps(faultScale) {
		if _, err := core.Seq.Run(app, core.Base(1)); err != nil {
			t.Fatalf("%s seq: %v", app.Name(), err)
		}
		for _, b := range faultBackends() {
			for _, n := range []int{2, 4, 8} {
				checkApp(t, app, b, LossScenarios(n, 0.05)[0])
			}
		}
	}
}

// TestFaultRateSweep covers the rest of the fault axes — light and heavy
// loss, duplication, reordering, a healing partition — on a representative
// app subset (one barrier-heavy, one lock-heavy, one master/slave).
func TestFaultRateSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-axis sweep")
	}
	const n = 4
	scenarios := []core.Scenario{
		LossScenarios(n, 0.01)[0],
		LossScenarios(n, 0.20)[0],
		DupScenarios(n, 0.05)[0],
		ReorderScenarios(n, 0.05)[0],
		PartitionScenarios(n)[0],
	}
	for _, name := range []string{"SOR-Zero", "IS-Small", "QSORT"} {
		app := Find(Apps(faultScale), name)
		if app == nil {
			t.Fatalf("experiment %q not registered", name)
		}
		if _, err := core.Seq.Run(app, core.Base(1)); err != nil {
			t.Fatalf("%s seq: %v", app.Name(), err)
		}
		for _, b := range faultBackends() {
			for _, sc := range scenarios {
				checkApp(t, app, b, sc)
			}
		}
	}
}

// TestFaultSmoke is the -short slice of the conformance net: one
// barrier-heavy and one master/slave app at 5% loss and a partition.
func TestFaultSmoke(t *testing.T) {
	for _, name := range []string{"SOR-Zero", "QSORT"} {
		app := Find(Apps(faultScale), name)
		if app == nil {
			t.Fatalf("experiment %q not registered", name)
		}
		if _, err := core.Seq.Run(app, core.Base(1)); err != nil {
			t.Fatalf("%s seq: %v", app.Name(), err)
		}
		for _, b := range faultBackends() {
			checkApp(t, app, b, LossScenarios(4, 0.05)[0])
			checkApp(t, app, b, PartitionScenarios(4)[0])
		}
	}
}

// TestFaultCausalAdmission pins the cell that once broke the
// transitive closure of interval timestamps: under eager invalidation
// and heavy loss, a write notice can outrun the loss of another
// writer's causally-earlier notice, and admitting it early poisons the
// next interval's timestamp (minimalCover's dominance argument then
// picks servers that cannot cover every missing diff).  Causal
// admission in admitRecord buffers such notices; this run panicked
// before that check existed.
func TestFaultCausalAdmission(t *testing.T) {
	app := Find(Apps(0.05), "Water-1728")
	if app == nil {
		t.Fatal("experiment Water-1728 not registered")
	}
	if _, err := core.Seq.Run(app, core.Base(1)); err != nil {
		t.Fatalf("seq: %v", err)
	}
	checkApp(t, app, TMKEager, LossScenarios(8, 0.20)[0])
}

// TestFaultGoldenDeterminism pins one fault scenario and requires the
// parallel engine and the grid worker pool to reproduce the serial
// records byte for byte — the fault layer's determinism contract holds
// in every execution mode, recovery traffic included.
func TestFaultGoldenDeterminism(t *testing.T) {
	apps := []core.App{}
	for _, name := range []string{"SOR-Zero", "IS-Small", "QSORT"} {
		app := Find(Apps(faultScale), name)
		if app == nil {
			t.Fatalf("experiment %q not registered", name)
		}
		apps = append(apps, app)
	}
	mk := func(par bool, workers int) Grid {
		scs := append(LossScenarios(2, 0.05), LossScenarios(4, 0.05)...)
		scs = append(scs, PartitionScenarios(4)...)
		for i := range scs {
			scs[i].Parallel = par
		}
		return Grid{
			Apps:      apps,
			Backends:  []core.Backend{core.TMK, core.PVM},
			Scenarios: scs,
			Workers:   workers,
		}
	}
	want, err := mk(false, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	var sawRecovery bool
	for _, r := range want {
		if r.Dropped > 0 && r.Retrans > 0 {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Fatal("pinned fault grid produced no drop/retransmit activity")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	for _, mode := range []struct {
		name    string
		par     bool
		workers int
	}{
		{"parallel-engine", true, 0},
		{"grid-workers", false, workers},
		{"parallel-engine+workers", true, workers},
	} {
		got, err := mk(mode.par, mode.workers).Run()
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d records, want %d", mode.name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s record %d:\ngot  %+v\nwant %+v", mode.name, i, got[i], want[i])
			}
		}
	}
}
