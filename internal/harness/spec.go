package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// Content-addressed job specs.
//
// Every run in this reproduction is deterministic — the pinned goldens
// prove bit-identical modeled metrics across four execution modes — so
// a Record is a pure function of (app, backend, scenario, engine
// version).  SpecHash names that function application: a canonical hash
// of the full job spec, stable across processes and registry instances,
// usable as a cache key by any layer that memoizes records (the serve
// subsystem's store, a future coordinator/worker split).
//
// The canonical form is an order-stable text rendering: fixed header
// lines for the identity fields, then every non-zero leaf of the
// scenario's Config as one "path=value" line with struct fields in
// declaration order and map keys sorted.  Zero-valued leaves are
// omitted, so adding a new config knob whose zero value preserves
// today's behavior does not move existing hashes.  Two fields are
// deliberately excluded:
//
//   - Scenario.Config.Parallel selects an execution mode whose results
//     are byte-identical to the serial engine (that is its contract);
//     hashing it would split one cacheable result into two keys.
//   - The backend's configuration beyond its name: a Variant's scenario
//     rewrite is a fixed function of its registered name, versioned by
//     EngineVersion like every other piece of model code.
//
// EngineVersion ties hashes to the modeled-metrics vintage.  Bump it in
// lockstep with golden regeneration: any PR that changes modeled
// Time/Messages/Bytes (a "model-change" PR regenerating golden_test.go)
// must also bump EngineVersion, so stale cached records from the old
// model can never answer for the new one.  Pure performance work that
// keeps the goldens byte-identical must NOT bump it — warm caches stay
// warm across such releases.

// EngineVersion is the modeled-metrics vintage baked into every spec
// hash.  Bump rule: regenerated goldens => new version; byte-identical
// goldens => same version.
const EngineVersion = "msvdsm-1"

// SpecHash returns the content address of one grid job: the hex SHA-256
// of CanonicalSpec.  Equal hashes mean "the engine would produce the
// identical Record", so a memoizing store may answer one job with
// another's cached record.
func SpecHash(j Job) string {
	sum := sha256.Sum256([]byte(CanonicalSpec(j)))
	return hex.EncodeToString(sum[:])
}

// CanonicalSpec renders a grid job in the canonical text form SpecHash
// digests.  Exported for debugging and golden tests; the serve API's
// /v1/spec endpoint returns hashes derived from exactly this string.
func CanonicalSpec(j Job) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "engine=%s\n", EngineVersion)
	fmt.Fprintf(&sb, "app=%s\n", j.App.Name())
	fmt.Fprintf(&sb, "problem=%s\n", j.App.Problem())
	fmt.Fprintf(&sb, "backend=%s\n", j.Backend.Name())
	fmt.Fprintf(&sb, "scenario=%s\n", j.Scenario.Name)
	cfg := j.Scenario.Config
	cfg.Parallel = false // execution mode: results byte-identical by contract
	canonValue(&sb, "config", reflect.ValueOf(cfg))
	return sb.String()
}

// CanonicalString renders any config-like value (structs, maps, slices,
// scalars) in the canonical form CanonicalSpec uses for the scenario
// config.  Exported so tests can pin the ordering rules — in particular
// that map iteration order never leaks into the rendering.
func CanonicalString(name string, v any) string {
	var sb strings.Builder
	canonValue(&sb, name, reflect.ValueOf(v))
	return sb.String()
}

// canonValue appends the canonical "path=value" lines of v.  Struct
// fields render in declaration order, slice elements by index, map
// entries sorted by key; zero-valued leaves and empty containers render
// nothing.  Kinds a config struct should never contain (funcs,
// channels, unsafe pointers) panic loudly rather than hash ambiguously.
func canonValue(sb *strings.Builder, path string, v reflect.Value) {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			canonValue(sb, path+"."+t.Field(i).Name, v.Field(i))
		}
	case reflect.Slice, reflect.Array:
		if v.Len() == 0 {
			return
		}
		fmt.Fprintf(sb, "%s.len=%d\n", path, v.Len())
		for i := 0; i < v.Len(); i++ {
			canonValue(sb, fmt.Sprintf("%s[%d]", path, i), v.Index(i))
		}
	case reflect.Map:
		if v.Len() == 0 {
			return
		}
		keys := make([]string, 0, v.Len())
		byKey := make(map[string]reflect.Value, v.Len())
		for _, k := range v.MapKeys() {
			ks := fmt.Sprintf("%v", k.Interface())
			keys = append(keys, ks)
			byKey[ks] = v.MapIndex(k)
		}
		sort.Strings(keys)
		fmt.Fprintf(sb, "%s.len=%d\n", path, v.Len())
		for _, ks := range keys {
			canonValue(sb, path+"["+ks+"]", byKey[ks])
		}
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			return
		}
		canonValue(sb, path, v.Elem())
	case reflect.Bool:
		if v.Bool() {
			fmt.Fprintf(sb, "%s=true\n", path)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if n := v.Int(); n != 0 {
			fmt.Fprintf(sb, "%s=%d\n", path, n)
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		if n := v.Uint(); n != 0 {
			fmt.Fprintf(sb, "%s=%d\n", path, n)
		}
	case reflect.Float32, reflect.Float64:
		if f := v.Float(); f != 0 {
			fmt.Fprintf(sb, "%s=%g\n", path, f)
		}
	case reflect.String:
		if s := v.String(); s != "" {
			fmt.Fprintf(sb, "%s=%q\n", path, s)
		}
	case reflect.Complex64, reflect.Complex128:
		if c := v.Complex(); c != 0 {
			fmt.Fprintf(sb, "%s=%v\n", path, c)
		}
	default:
		panic(fmt.Sprintf("harness: cannot canonicalize %s (kind %s) in a job spec", path, v.Kind()))
	}
}
