package harness

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Selection names a grid in the user-facing selection vocabulary —
// the `msvdsm grid -apps/-backends/-scenarios/-nprocs` flags and the
// serve API's request schema are both thin parsers into this type, so
// the two surfaces resolve and validate identically.
type Selection struct {
	Apps      []string // app names; empty selects the full registry
	Backends  []string // backend names; empty selects tmk,pvm (bigp: tmk,tmk-sc,tmk-tree,pvm)
	Scenarios []string // scenario-set names; empty selects base
	NProcs    []int    // processor counts; empty selects each set's defaults
}

// FieldError tags a selection error with the request field at fault, so
// the HTTP layer can answer malformed specs with structured 400s while
// the CLI keeps printing the bare message.
type FieldError struct {
	Field string
	Err   error
}

func (e *FieldError) Error() string { return e.Err.Error() }
func (e *FieldError) Unwrap() error { return e.Err }

func fieldErr(field string, err error) error {
	return &FieldError{Field: field, Err: err}
}

// Resolve expands the selection into a concrete Grid against the app
// registry at the given workload scale.  Selecting the bigp scenario
// set anywhere swaps in the re-sized BigApps registry and, when no
// backends were named, the large-P backend comparison.  Every
// resolution error is a *FieldError naming the offending field and the
// valid choices.
func (sel Selection) Resolve(scale float64) (Grid, error) {
	sets := make([]string, 0, len(sel.Scenarios))
	for _, s := range sel.Scenarios {
		if s = strings.TrimSpace(s); s != "" {
			sets = append(sets, s)
		}
	}
	if len(sets) == 0 {
		sets = []string{"base"}
	}
	bigp := false
	for _, s := range sets {
		if s == "bigp" {
			bigp = true
		}
	}

	apps := Apps(scale)
	if bigp {
		// The scale-out family runs the re-sized workload registry, and
		// unless told otherwise compares the backends the large-P story
		// is about (the tree-barrier variant included).
		apps = BigApps(scale)
	}
	selected := apps
	if len(sel.Apps) > 0 {
		selected = nil
		for _, name := range sel.Apps {
			app := Find(apps, strings.TrimSpace(name))
			if app == nil {
				return Grid{}, fieldErr("apps", fmt.Errorf("unknown experiment %q (have %v)", name, Names(apps)))
			}
			selected = append(selected, app)
		}
	}

	names := sel.Backends
	if len(names) == 0 {
		names = []string{"tmk", "pvm"}
		if bigp {
			names = []string{"tmk", "tmk-sc", "tmk-tree", "pvm"}
		}
	}
	var backends []core.Backend
	for _, name := range names {
		b, err := FindBackend(strings.TrimSpace(name))
		if err != nil {
			return Grid{}, fieldErr("backends", err)
		}
		backends = append(backends, b)
	}

	for _, n := range sel.NProcs {
		if n < 1 {
			return Grid{}, fieldErr("nprocs", fmt.Errorf("bad processor count %d (want positive counts, e.g. 2,4,8)", n))
		}
	}

	var scenarios []core.Scenario
	for _, set := range sets {
		scs, err := ScenarioSet(set, sel.NProcs)
		if err != nil {
			return Grid{}, fieldErr("scenarios", err)
		}
		scenarios = append(scenarios, scs...)
	}

	return Grid{Apps: selected, Backends: backends, Scenarios: scenarios}, nil
}
