package harness

import (
	"fmt"

	"repro/internal/apps/is"
	"repro/internal/apps/sor"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/tmk"
)

// This file holds ablation experiments for the design parameters the
// paper's analysis hinges on: the virtual-memory page size (granularity
// of false sharing), the transport MTU (fragmentation of diff
// accumulation), and the raw protocol costs (barrier and lock latency).
// None of these appear as numbered figures in the paper, but they
// quantify the mechanisms §4 blames for DSM overhead.  The sweeps are
// plain grids: one app, one backend, a scenario axis; the tables are
// views of the records.

// ablationTable renders one sweep's records as (scenario, msgs, KB, sec).
func ablationTable(title string, recs []Record) string {
	tbl := stats.Table{
		Title:  title,
		Header: []string{"Scenario", "Messages", "Kilobytes", "Time(sec)"},
	}
	for _, r := range recs {
		tbl.AddRow(r.Scenario,
			fmt.Sprintf("%d", r.Messages),
			fmt.Sprintf("%.0f", r.Kilobytes()),
			fmt.Sprintf("%.2f", r.Seconds))
	}
	return tbl.Render()
}

// AblatePageSize reruns SOR-Nonzero under TreadMarks at several page
// sizes: larger pages mean fewer, bigger diffs and more false sharing on
// band boundaries.
func AblatePageSize(scale float64) (string, error) {
	cfg := sor.Paper(false)
	cfg.M = int(float64(cfg.M) * scale)
	if cfg.M < 64 {
		cfg.M = 64
	}
	cfg.Sweeps = 10
	recs, err := Grid{
		Apps:      []core.App{sor.NewApp(cfg)},
		Backends:  []core.Backend{core.TMK},
		Scenarios: PageSizeScenarios(8, 1024, 4096, 16384),
	}.Run()
	if err != nil {
		return "", err
	}
	return ablationTable("Ablation  SOR-Nonzero under TreadMarks vs page size (8 procs)", recs), nil
}

// AblateMTU reruns IS-Large under TreadMarks at several transport MTUs:
// diff accumulation produces multi-page responses, so a small MTU turns
// each into several wire messages (the paper notes the large TreadMarks
// MTU keeps this from being serious).
func AblateMTU(scale float64) (string, error) {
	cfg := is.PaperLarge()
	cfg.Keys = int(float64(cfg.Keys) * scale)
	if cfg.Keys < 1<<12 {
		cfg.Keys = 1 << 12
	}
	cfg.Iters = 4
	recs, err := Grid{
		Apps:      []core.App{is.NewApp(cfg)},
		Backends:  []core.Backend{core.TMK},
		Scenarios: MTUScenarios(8, 4096, 16384, 65536),
	}.Run()
	if err != nil {
		return "", err
	}
	return ablationTable("Ablation  IS-Large under TreadMarks vs transport MTU (8 procs)", recs), nil
}

// MicroBench measures the raw synchronization primitives the paper's
// analysis builds on: n-processor barrier latency and the three-message
// remote lock acquire.
func MicroBench() (string, error) {
	tbl := stats.Table{
		Title:  "Microbenchmarks  TreadMarks primitive latency",
		Header: []string{"Operation", "Procs", "Latency", "Messages"},
	}
	for _, n := range []int{2, 4, 8} {
		res, err := barrierLatency(n)
		if err != nil {
			return "", err
		}
		tbl.AddRow("barrier", fmt.Sprintf("%d", n),
			res.Time.String(), fmt.Sprintf("%d", res.Net.Messages))
	}
	res, err := remoteLockLatency()
	if err != nil {
		return "", err
	}
	tbl.AddRow("remote lock acquire", "2", res.Time.String(),
		fmt.Sprintf("%d", res.Net.Messages))
	res, err = pageFaultLatency()
	if err != nil {
		return "", err
	}
	tbl.AddRow("page fault (4KB diff)", "2", res.Time.String(),
		fmt.Sprintf("%d", res.Net.Messages))
	return tbl.Render(), nil
}

func barrierLatency(n int) (core.Result, error) {
	return core.RunTMK(core.Default(n),
		func(sys *tmk.System) { sys.Malloc(8) },
		func(p *tmk.Proc) { p.Barrier(0) })
}

func remoteLockLatency() (core.Result, error) {
	// Lock 1 is managed (and initially owned) by proc 1; proc 0 acquires
	// it remotely: request + grant.
	return core.RunTMK(core.Default(2),
		func(sys *tmk.System) { sys.Malloc(8) },
		func(p *tmk.Proc) {
			if p.ID() == 0 {
				p.LockAcquire(1)
				p.LockRelease(1)
			}
			// Proc 1's application thread returns immediately; its service
			// daemon answers the request, so the run's time is proc 0's
			// acquire+release latency.
		})
}

func pageFaultLatency() (core.Result, error) {
	var a tmk.Addr
	return core.RunTMK(core.Default(2),
		func(sys *tmk.System) {
			a = sys.MallocPageAligned(4096)
		},
		func(p *tmk.Proc) {
			if p.ID() == 0 {
				arr := p.I64Array(a, 512)
				for i := 0; i < 512; i++ {
					arr.Set(i, int64(i))
				}
			}
			p.Barrier(0)
			if p.ID() == 1 {
				before := p.Now()
				_ = p.ReadI64(a)
				_ = before
			}
		})
}

// Ablations runs every ablation study and concatenates the reports.
func Ablations(scale float64) (string, error) {
	out := ""
	s, err := AblatePageSize(scale)
	if err != nil {
		return "", err
	}
	out += s + "\n"
	s, err = AblateMTU(scale)
	if err != nil {
		return "", err
	}
	out += s + "\n"
	s, err = MicroBench()
	if err != nil {
		return "", err
	}
	out += s
	return out, nil
}
