package harness

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// This file renders []Record into the paper's artifacts.  The rendered
// strings are pinned by test against the pre-records implementation: the
// redesign changed where the numbers flow, not what they say.

// displayName maps backend names to the series labels the paper uses.
func displayName(backend string) string {
	switch backend {
	case "tmk":
		return "TreadMarks"
	case "pvm":
		return "PVM"
	}
	return backend
}

// RenderTable1 renders the sequential-times table from baseline records.
func RenderTable1(recs []Record) string {
	tbl := stats.Table{
		Title:  "Table 1  Sequential Time of Applications (modeled)",
		Header: []string{"Program", "Problem Size", "Time(sec)"},
	}
	for _, r := range recs {
		if r.Backend != "seq" {
			continue
		}
		tbl.AddRow(r.App, r.Problem, fmt.Sprintf("%.1f", r.Seconds))
	}
	return tbl.Render()
}

// RenderTable2 renders messages and kilobytes at 8 processors for both
// systems from base-scenario records.
func RenderTable2(recs []Record) string {
	tbl := stats.Table{
		Title: "Table 2  Messages and Data at 8 Processors",
		Header: []string{"Program", "TMK Messages", "TMK Kilobytes",
			"PVM Messages", "PVM Kilobytes"},
	}
	at8 := func(app, backend string) (Record, bool) {
		for _, r := range recs {
			if r.App == app && r.Backend == backend && r.Procs == 8 && r.Scenario == "base" {
				return r, true
			}
		}
		return Record{}, false
	}
	for _, app := range appOrder(recs) {
		tres, tok := at8(app, "tmk")
		pres, pok := at8(app, "pvm")
		if !tok || !pok {
			continue
		}
		tbl.AddRow(app,
			fmt.Sprintf("%d", tres.Messages), fmt.Sprintf("%.0f", tres.Kilobytes()),
			fmt.Sprintf("%d", pres.Messages), fmt.Sprintf("%.0f", pres.Kilobytes()))
	}
	return tbl.Render()
}

// appOrder lists the distinct app names in first-appearance order.
func appOrder(recs []Record) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range recs {
		if !seen[r.App] {
			seen[r.App] = true
			out = append(out, r.App)
		}
	}
	return out
}

// RenderFigure builds one speedup figure from records: the app's baseline
// record supplies the sequential time; every non-baseline backend present
// becomes a series over its base-scenario processor counts.
func RenderFigure(recs []Record, appName string) (stats.Figure, error) {
	var seq *Record
	perBackend := map[string][]Record{}
	var order []string
	figure := 0
	for i, r := range recs {
		if r.App != appName {
			continue
		}
		figure = r.Figure
		if r.Backend == "seq" {
			seq = &recs[i]
			continue
		}
		if r.Scenario != "base" {
			continue
		}
		if _, ok := perBackend[r.Backend]; !ok {
			order = append(order, r.Backend)
		}
		perBackend[r.Backend] = append(perBackend[r.Backend], r)
	}
	if seq == nil {
		return stats.Figure{}, fmt.Errorf("%s: no sequential baseline record", appName)
	}
	fig := stats.Figure{Title: fmt.Sprintf("Figure %d  %s", figure, appName)}
	for _, b := range order {
		rs := perBackend[b]
		sort.Slice(rs, func(i, j int) bool { return rs[i].Procs < rs[j].Procs })
		var xs []int
		var times []sim.Time
		for _, r := range rs {
			xs = append(xs, r.Procs)
			times = append(times, r.Time())
		}
		fig.Series = append(fig.Series, stats.Series{
			Name: displayName(b), X: xs, Y: stats.Speedup(seq.Time(), times),
		})
	}
	return fig, nil
}

// ---------------------------------------------------------------------
// Convenience wrappers: run the minimal grid for one artifact.

// Table1 runs the sequential baseline of every app and renders Table 1.
func Table1(apps []core.App) (string, error) {
	recs, err := Grid{Apps: apps, Backends: []core.Backend{core.Seq}}.Run()
	if err != nil {
		return "", err
	}
	return RenderTable1(recs), nil
}

// Table2 runs both systems at 8 processors and renders Table 2.
func Table2(apps []core.App) (string, error) {
	recs, err := Grid{
		Apps:      apps,
		Backends:  []core.Backend{core.TMK, core.PVM},
		Scenarios: BaseScenarios(8),
	}.Run()
	if err != nil {
		return "", err
	}
	return RenderTable2(recs), nil
}

// FigureData computes the speedup curves (1..maxProcs) for one app.
func FigureData(app core.App, maxProcs int) (stats.Figure, error) {
	var procs []int
	for n := 1; n <= maxProcs; n++ {
		procs = append(procs, n)
	}
	recs, err := Grid{
		Apps:      []core.App{app},
		Backends:  core.StandardBackends(),
		Scenarios: BaseScenarios(procs...),
	}.Run()
	if err != nil {
		return stats.Figure{}, err
	}
	return RenderFigure(recs, app.Name())
}
