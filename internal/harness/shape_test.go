package harness

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/apps/sor"
	"repro/internal/core"
)

// The shape tests verify the paper's qualitative claims end to end on
// reduced-scale workloads.  Detailed per-application shape checks live in
// each application package; these cover the registry plumbing, the grid
// runner, and the cross-application orderings the paper's summary calls
// out.

func TestRegistryComplete(t *testing.T) {
	apps := Apps(0.01)
	if len(apps) != 12 {
		t.Fatalf("got %d experiments, want 12 (figures 1-12)", len(apps))
	}
	seen := map[int]bool{}
	for _, a := range apps {
		if a.Figure() < 1 || a.Figure() > 12 || seen[a.Figure()] {
			t.Fatalf("bad figure number %d for %s", a.Figure(), a.Name())
		}
		seen[a.Figure()] = true
		if a.Problem() == "" {
			t.Fatalf("%s: empty problem description", a.Name())
		}
	}
}

func TestFind(t *testing.T) {
	apps := Apps(0.01)
	for _, name := range []string{"sor-zero", "SOR Zero", "sorzero", "IS-Large", "3d-fft", "Water-288"} {
		if Find(apps, name) == nil {
			t.Errorf("Find(%q) = nil", name)
		}
	}
	if Find(apps, "nosuch") != nil {
		t.Error("Find of unknown name should be nil")
	}
}

func TestTable1Renders(t *testing.T) {
	out, err := Table1(Apps(0.01))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EP", "SOR-Zero", "ILINK", "Time(sec)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all apps at 8 procs")
	}
	out, err := Table2(Apps(0.01))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TMK Messages", "PVM Kilobytes", "QSORT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFigureDataShape(t *testing.T) {
	apps := Apps(0.01)
	fig, err := FigureData(Find(apps, "EP"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != 4 || len(s.Y) != 4 {
			t.Fatalf("series %s has %d points, want 4", s.Name, len(s.X))
		}
		// Speedup at 1 processor is ~1 (small overheads only).
		if s.Y[0] < 0.7 || s.Y[0] > 1.05 {
			t.Errorf("%s speedup at 1 proc = %.2f, want ~1", s.Name, s.Y[0])
		}
	}
}

// TestSummaryOrderings verifies the abstract's grouping at 8 processors
// on mid-scale workloads: the within-10-15%% group (EP, Water-1728,
// ILINK, SOR) versus the 2x group (IS-Large).
func TestSummaryOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-scale sweep")
	}
	apps := Apps(0.25)
	gap := func(name string) float64 {
		app := Find(apps, name)
		if app == nil {
			t.Fatalf("missing %s", name)
		}
		tres, err := core.TMK.Run(app, core.Base(8))
		if err != nil {
			t.Fatalf("%s tmk: %v", name, err)
		}
		pres, err := core.PVM.Run(app, core.Base(8))
		if err != nil {
			t.Fatalf("%s pvm: %v", name, err)
		}
		return tres.Time.Seconds() / pres.Time.Seconds()
	}
	close := []string{"EP", "SOR-Nonzero", "ILINK"}
	for _, name := range close {
		if g := gap(name); g > 1.30 {
			t.Errorf("%s gap %.2f: paper groups it within ~10-15%%", name, g)
		}
	}
	if g := gap("IS-Large"); g < 1.5 {
		t.Errorf("IS-Large gap %.2f: paper reports ~2x", g)
	}
}

func TestAblationsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several 8-proc configurations")
	}
	out, err := Ablations(0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"page size", "MTU", "barrier", "remote lock acquire"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
}

// Smaller pages mean more messages for the same data (more faults, more
// diff requests) — the granularity trade-off behind false sharing.
func TestPageSizeAblationMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("8-proc sweeps")
	}
	cfg := sor.Paper(false)
	cfg.M = 128
	cfg.Sweeps = 10
	recs, err := Grid{
		Apps:      []core.App{sor.NewApp(cfg)},
		Backends:  []core.Backend{core.TMK},
		Scenarios: PageSizeScenarios(8, 1024, 4096),
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Messages <= recs[1].Messages {
		t.Fatalf("1KB pages sent %d msgs, 4KB %d: want more with smaller pages",
			recs[0].Messages, recs[1].Messages)
	}
}

// TestGridRecordsJSONRoundTrip pins the structured output surface: grid
// records survive a JSON encode/decode and a CSV encode with consistent
// geometry — the contract cmd/msvdsm's -format json|csv rides on.
func TestGridRecordsJSONRoundTrip(t *testing.T) {
	apps := Apps(0.01)
	recs, err := Grid{
		Apps:      []core.App{Find(apps, "EP")},
		Backends:  core.StandardBackends(),
		Scenarios: BaseScenarios(2),
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // seq baseline once + tmk + pvm
		t.Fatalf("got %d records, want 3", len(recs))
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var back []Record
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("records do not decode: %v", err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip lost records: %d vs %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("record %d changed in round trip:\n  out %+v\n  in  %+v", i, recs[i], back[i])
		}
	}
	buf.Reset()
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not parse: %v", err)
	}
	if len(rows) != len(recs)+1 {
		t.Fatalf("CSV rows = %d, want %d", len(rows), len(recs)+1)
	}
	for i, row := range rows {
		if len(row) != len(csvHeader) {
			t.Fatalf("CSV row %d has %d fields, want %d", i, len(row), len(csvHeader))
		}
	}
}

// TestExtensibilityEndToEnd is the redesign's acceptance check: a new
// scenario axis (page-size and bandwidth sweeps) and a derived backend
// variant (pvm-xdr) run through the same grid with zero edits inside
// internal/apps — and the variant's cost shows up in the records.
func TestExtensibilityEndToEnd(t *testing.T) {
	apps := Apps(0.01)
	scenarios := append(PageSizeScenarios(2, 1024, 4096), BandwidthScenarios(2)...)
	xdr, err := FindBackend("pvm-xdr")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Grid{
		Apps:      []core.App{Find(apps, "SOR-Nonzero")},
		Backends:  []core.Backend{core.TMK, core.PVM, xdr},
		Scenarios: scenarios,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * len(scenarios); len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
	byKey := func(backend, scenario string) Record {
		for _, r := range recs {
			if r.Backend == backend && r.Scenario == scenario {
				return r
			}
		}
		t.Fatalf("no record for %s/%s", backend, scenario)
		return Record{}
	}
	// XDR conversion costs CPU: same traffic, more time than plain PVM.
	plain := byKey("pvm", "page=4096")
	conv := byKey("pvm-xdr", "page=4096")
	if conv.Messages != plain.Messages || conv.Bytes != plain.Bytes {
		t.Errorf("xdr changed traffic: %+v vs %+v", conv, plain)
	}
	if conv.TimeNS <= plain.TimeNS {
		t.Errorf("xdr should cost time: %d <= %d", conv.TimeNS, plain.TimeNS)
	}
	// The slower link slows TreadMarks down.
	if fddi, eth := byKey("tmk", "fddi"), byKey("tmk", "eth10"); eth.TimeNS <= fddi.TimeNS {
		t.Errorf("eth10 should be slower than fddi: %d <= %d", eth.TimeNS, fddi.TimeNS)
	}
}

// TestAppBackendConformance runs every registered app under every
// registered backend on a tiny workload and checks its output against
// the app's own sequential run — the cross-product correctness net the
// App/Backend split makes possible.
func TestAppBackendConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full app x backend cross product")
	}
	for _, app := range Apps(0.01) {
		if _, err := core.Seq.Run(app, core.Base(1)); err != nil {
			t.Fatalf("%s seq: %v", app.Name(), err)
		}
		for _, b := range Backends() {
			if core.IsBaseline(b) {
				continue
			}
			if _, err := b.Run(app, core.Base(2)); err != nil {
				t.Fatalf("%s/%s: %v", app.Name(), b.Name(), err)
			}
			if err := app.Check(); err != nil {
				t.Errorf("%s/%s output check: %v", app.Name(), b.Name(), err)
			}
		}
	}
}

// TestTreeBarrierConformance runs every app under the combining-tree
// variants across processor counts from the degenerate two-node tree
// (root plus one leaf) up through a multi-level radix-2 tree at 64 —
// every structural case of the arrival/departure protocol — checking
// each output against the app's own sequential run.
func TestTreeBarrierConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full app x procs cross product")
	}
	for _, nprocs := range []int{2, 4, 8, 64} {
		for _, app := range Apps(0.01) {
			if _, err := core.Seq.Run(app, core.Base(1)); err != nil {
				t.Fatalf("%s seq: %v", app.Name(), err)
			}
			for _, b := range []core.Backend{TMKTree, TMKSCTree} {
				if _, err := b.Run(app, core.Base(nprocs)); err != nil {
					t.Fatalf("%s/%s procs=%d: %v", app.Name(), b.Name(), nprocs, err)
				}
				if err := app.Check(); err != nil {
					t.Errorf("%s/%s procs=%d output check: %v", app.Name(), b.Name(), nprocs, err)
				}
			}
		}
	}
}

// TestBigAppsMirrorApps pins the bigp registry's shape to the paper
// registry's: same app names in the same figure order, so `grid -apps`
// selection works identically in both families.  (Caught a real bug:
// the IS bucket-range clamp ran before the small/large name inference,
// collapsing IS-Large into a second IS-Small entry.)
func TestBigAppsMirrorApps(t *testing.T) {
	paper, big := Apps(1.0), BigApps(1.0)
	if len(big) != len(paper) {
		t.Fatalf("BigApps has %d entries, Apps has %d", len(big), len(paper))
	}
	for i, app := range paper {
		if big[i].Name() != app.Name() {
			t.Errorf("entry %d: BigApps name %q, Apps name %q", i, big[i].Name(), app.Name())
		}
		if big[i].Figure() != app.Figure() {
			t.Errorf("entry %d (%s): BigApps figure %d, Apps figure %d",
				i, app.Name(), big[i].Figure(), app.Figure())
		}
	}
}

// TestPlacementConformance runs every app under both manager-placement
// scenarios (fully centralized on proc 0, barrier managers spread),
// checking outputs against the sequential run: placement must move
// traffic, never results.
func TestPlacementConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full app x placement cross product")
	}
	for _, sc := range PlacementScenarios(4) {
		for _, app := range Apps(0.01) {
			if _, err := core.Seq.Run(app, core.Base(1)); err != nil {
				t.Fatalf("%s seq: %v", app.Name(), err)
			}
			if _, err := core.TMK.Run(app, sc); err != nil {
				t.Fatalf("%s/%s: %v", app.Name(), sc.Name, err)
			}
			if err := app.Check(); err != nil {
				t.Errorf("%s/%s output check: %v", app.Name(), sc.Name, err)
			}
		}
	}
}
