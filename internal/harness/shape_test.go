package harness

import (
	"strings"
	"testing"

	"repro/internal/apps/sor"
	"repro/internal/core"
)

// The shape tests verify the paper's qualitative claims end to end on
// reduced-scale workloads.  Detailed per-application shape checks live in
// each application package; these cover the registry plumbing and the
// cross-application orderings the paper's summary calls out.

func TestRegistryComplete(t *testing.T) {
	runners := Experiments(0.01)
	if len(runners) != 12 {
		t.Fatalf("got %d experiments, want 12 (figures 1-12)", len(runners))
	}
	seen := map[int]bool{}
	for _, r := range runners {
		if r.Figure < 1 || r.Figure > 12 || seen[r.Figure] {
			t.Fatalf("bad figure number %d for %s", r.Figure, r.Name)
		}
		seen[r.Figure] = true
		if r.Seq == nil || r.TMK == nil || r.PVM == nil {
			t.Fatalf("%s: missing runner function", r.Name)
		}
	}
}

func TestFind(t *testing.T) {
	runners := Experiments(0.01)
	for _, name := range []string{"sor-zero", "SOR Zero", "sorzero", "IS-Large", "3d-fft", "Water-288"} {
		if Find(runners, name) == nil {
			t.Errorf("Find(%q) = nil", name)
		}
	}
	if Find(runners, "nosuch") != nil {
		t.Error("Find of unknown name should be nil")
	}
}

func TestTable1Renders(t *testing.T) {
	runners := Experiments(0.01)
	out, err := Table1(runners)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EP", "SOR-Zero", "ILINK", "Time(sec)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all apps at 8 procs")
	}
	runners := Experiments(0.01)
	out, err := Table2(runners)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TMK Messages", "PVM Kilobytes", "QSORT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFigureDataShape(t *testing.T) {
	runners := Experiments(0.01)
	r := Find(runners, "EP")
	fig, err := FigureData(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != 4 || len(s.Y) != 4 {
			t.Fatalf("series %s has %d points, want 4", s.Name, len(s.X))
		}
		// Speedup at 1 processor is ~1 (small overheads only).
		if s.Y[0] < 0.7 || s.Y[0] > 1.05 {
			t.Errorf("%s speedup at 1 proc = %.2f, want ~1", s.Name, s.Y[0])
		}
	}
}

// TestSummaryOrderings verifies the abstract's grouping at 8 processors
// on mid-scale workloads: the within-10-15%% group (EP, Water-1728,
// ILINK, SOR) versus the 2x group (IS-Large).
func TestSummaryOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-scale sweep")
	}
	runners := Experiments(0.25)
	gap := func(name string) float64 {
		r := Find(runners, name)
		if r == nil {
			t.Fatalf("missing %s", name)
		}
		tres, err := r.TMK(8)
		if err != nil {
			t.Fatalf("%s tmk: %v", name, err)
		}
		pres, err := r.PVM(8)
		if err != nil {
			t.Fatalf("%s pvm: %v", name, err)
		}
		return tres.Time.Seconds() / pres.Time.Seconds()
	}
	close := []string{"EP", "SOR-Nonzero", "ILINK"}
	for _, name := range close {
		if g := gap(name); g > 1.30 {
			t.Errorf("%s gap %.2f: paper groups it within ~10-15%%", name, g)
		}
	}
	if g := gap("IS-Large"); g < 1.5 {
		t.Errorf("IS-Large gap %.2f: paper reports ~2x", g)
	}
}

func TestAblationsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several 8-proc configurations")
	}
	out, err := Ablations(0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"page size", "MTU", "barrier", "remote lock acquire"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
}

// Smaller pages mean more messages for the same data (more faults, more
// diff requests) — the granularity trade-off behind false sharing.
func TestPageSizeAblationMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("8-proc sweeps")
	}
	msgs := map[int]int64{}
	cfg := sor.Paper(false)
	cfg.M = 128
	cfg.Sweeps = 10
	for _, ps := range []int{1024, 4096} {
		ccfg := core.Default(8)
		ccfg.DSM.PageSize = ps
		res, _, err := sor.RunTMK(cfg, ccfg)
		if err != nil {
			t.Fatal(err)
		}
		msgs[ps] = res.Net.Messages
	}
	if msgs[1024] <= msgs[4096] {
		t.Fatalf("1KB pages sent %d msgs, 4KB %d: want more with smaller pages",
			msgs[1024], msgs[4096])
	}
}
