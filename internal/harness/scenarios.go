package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/vnet"
)

// This file declares the stock scenario axes.  A scenario is data: adding
// a sweep here (or in a caller) changes no application code and no
// backend code — the grid crosses whatever it is given.

// BaseScenarios returns the paper's testbed at each processor count.
func BaseScenarios(procs ...int) []core.Scenario {
	var out []core.Scenario
	for _, n := range procs {
		out = append(out, core.Base(n))
	}
	return out
}

// PageSizeScenarios sweeps the DSM page size (granularity of false
// sharing) at a fixed processor count.  The paper's testbed uses 4 KB.
func PageSizeScenarios(nprocs int, sizes ...int) []core.Scenario {
	if len(sizes) == 0 {
		sizes = []int{1024, 2048, 4096, 8192, 16384}
	}
	var out []core.Scenario
	for _, ps := range sizes {
		sc := core.Base(nprocs)
		sc.Name = fmt.Sprintf("page=%d", ps)
		sc.DSM.PageSize = ps
		out = append(out, sc)
	}
	return out
}

// MTUScenarios sweeps the transport MTU (fragmentation of multi-page
// diff responses) at a fixed processor count.
func MTUScenarios(nprocs int, mtus ...int) []core.Scenario {
	if len(mtus) == 0 {
		mtus = []int{4096, 16384, 65536}
	}
	var out []core.Scenario
	for _, mtu := range mtus {
		sc := core.Base(nprocs)
		sc.Name = fmt.Sprintf("mtu=%d", mtu)
		sc.Net.MTU = mtu
		out = append(out, sc)
	}
	return out
}

// BandwidthScenarios compares the paper's 100 Mbit/s FDDI against a
// 10 Mbit/s Ethernet at a fixed processor count: the link-bandwidth
// sensitivity of the DSM-versus-message-passing gap.
func BandwidthScenarios(nprocs int) []core.Scenario {
	fddi := core.Base(nprocs)
	fddi.Name = "fddi"
	eth := core.Base(nprocs)
	eth.Name = "eth10"
	eth.Net = vnet.Ethernet10()
	return []core.Scenario{fddi, eth}
}

// ColocatedScenario places the PVM master (for master/slave apps) on
// node 0 with slave 0, as in the paper's physical arrangement: their
// traffic crosses loopback and disappears from the message counts.
func ColocatedScenario(nprocs int) core.Scenario {
	sc := core.Base(nprocs)
	sc.Name = "colocated"
	sc.MasterColocated = true
	return sc
}

// scenarioSets is the single registry of named scenario axes: the CLI
// lists its keys and ScenarioSet resolves against it, so a new axis is
// one entry here.
var scenarioSets = []struct {
	name   string
	expand func(nprocs int) []core.Scenario
}{
	{"base", func(n int) []core.Scenario { return []core.Scenario{core.Base(n)} }},
	{"page", func(n int) []core.Scenario { return PageSizeScenarios(n) }},
	{"mtu", func(n int) []core.Scenario { return MTUScenarios(n) }},
	{"bw", BandwidthScenarios},
	{"colocated", func(n int) []core.Scenario { return []core.Scenario{ColocatedScenario(n)} }},
}

// ScenarioSets lists the registered scenario-axis names.
func ScenarioSets() []string {
	var out []string
	for _, s := range scenarioSets {
		out = append(out, s.name)
	}
	return out
}

// ScenarioSet resolves a named scenario axis at the given processor
// counts — the CLI's scenario-selection surface.  Sweep axes expand at
// each count.
func ScenarioSet(name string, procs []int) ([]core.Scenario, error) {
	for _, s := range scenarioSets {
		if s.name != name {
			continue
		}
		var out []core.Scenario
		for _, n := range procs {
			out = append(out, s.expand(n)...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unknown scenario set %q (have %v)", name, ScenarioSets())
}
