package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vnet"
)

// This file declares the stock scenario axes.  A scenario is data: adding
// a sweep here (or in a caller) changes no application code and no
// backend code — the grid crosses whatever it is given.

// BaseScenarios returns the paper's testbed at each processor count.
func BaseScenarios(procs ...int) []core.Scenario {
	var out []core.Scenario
	for _, n := range procs {
		out = append(out, core.Base(n))
	}
	return out
}

// PageSizeScenarios sweeps the DSM page size (granularity of false
// sharing) at a fixed processor count.  The paper's testbed uses 4 KB.
func PageSizeScenarios(nprocs int, sizes ...int) []core.Scenario {
	if len(sizes) == 0 {
		sizes = []int{1024, 2048, 4096, 8192, 16384}
	}
	var out []core.Scenario
	for _, ps := range sizes {
		sc := core.Base(nprocs)
		sc.Name = fmt.Sprintf("page=%d", ps)
		sc.DSM.PageSize = ps
		out = append(out, sc)
	}
	return out
}

// MTUScenarios sweeps the transport MTU (fragmentation of multi-page
// diff responses) at a fixed processor count.
func MTUScenarios(nprocs int, mtus ...int) []core.Scenario {
	if len(mtus) == 0 {
		mtus = []int{4096, 16384, 65536}
	}
	var out []core.Scenario
	for _, mtu := range mtus {
		sc := core.Base(nprocs)
		sc.Name = fmt.Sprintf("mtu=%d", mtu)
		sc.Net.MTU = mtu
		out = append(out, sc)
	}
	return out
}

// BandwidthScenarios compares the paper's 100 Mbit/s FDDI against a
// 10 Mbit/s Ethernet at a fixed processor count: the link-bandwidth
// sensitivity of the DSM-versus-message-passing gap.
func BandwidthScenarios(nprocs int) []core.Scenario {
	fddi := core.Base(nprocs)
	fddi.Name = "fddi"
	eth := core.Base(nprocs)
	eth.Name = "eth10"
	eth.Net = vnet.Ethernet10()
	return []core.Scenario{fddi, eth}
}

// LatencyScenarios sweeps the one-way wire latency from the paper's
// FDDI campus value out to WAN-class delays at a fixed processor count.
// Latency hits the DSM and message-passing systems asymmetrically: a
// TreadMarks page fault pays the round trip once per missing diff
// source, while PVM pays it once per application-level exchange.
func LatencyScenarios(nprocs int, lats ...sim.Time) []core.Scenario {
	if len(lats) == 0 {
		lats = []sim.Time{
			60 * sim.Microsecond, // the paper's FDDI testbed
			500 * sim.Microsecond,
			2 * sim.Millisecond, // metro-area link
			10 * sim.Millisecond,
			40 * sim.Millisecond, // WAN / transcontinental
		}
	}
	var out []core.Scenario
	for _, l := range lats {
		sc := core.Base(nprocs)
		sc.Name = fmt.Sprintf("lat=%dus", int64(l/sim.Microsecond))
		sc.Net.Latency = l
		out = append(out, sc)
	}
	return out
}

// HandlerScenarios sweeps the service-side cost of handling a protocol
// request (tmk.Config.HandlerOverhead) — the stand-in for the SIGIO
// interrupt-and-dispatch cost the paper identifies as a fixed per-message
// overhead of the DSM's request/reply structure.  PVM runs are unaffected
// (no service daemon), so the sweep isolates the interrupt-cost
// sensitivity of TreadMarks alone.
func HandlerScenarios(nprocs int, costs ...sim.Time) []core.Scenario {
	if len(costs) == 0 {
		costs = []sim.Time{
			0,
			30 * sim.Microsecond, // the paper's testbed
			100 * sim.Microsecond,
			300 * sim.Microsecond,
			1 * sim.Millisecond,
		}
	}
	var out []core.Scenario
	for _, c := range costs {
		sc := core.Base(nprocs)
		sc.Name = fmt.Sprintf("handler=%dus", int64(c/sim.Microsecond))
		sc.DSM.HandlerOverhead = c
		out = append(out, sc)
	}
	return out
}

// ColocatedScenario places the PVM master (for master/slave apps) on
// node 0 with slave 0, as in the paper's physical arrangement: their
// traffic crosses loopback and disappears from the message counts.
func ColocatedScenario(nprocs int) core.Scenario {
	sc := core.Base(nprocs)
	sc.Name = "colocated"
	sc.MasterColocated = true
	return sc
}

// PlacementScenarios sweeps synchronization-manager placement at a
// fixed processor count — the large-P question of whether proc 0
// serializes.  The testbed default distributes lock managers
// round-robin and centralizes barriers on proc 0; "mgr=proc0" pulls
// the lock managers onto proc 0 too (fully centralized), "mgr=spread"
// spreads the barrier managers round-robin as well (fully
// distributed).
func PlacementScenarios(nprocs int) []core.Scenario {
	central := core.Base(nprocs)
	central.Name = "mgr=proc0"
	central.DSM.CentralLockMgr = true
	spread := core.Base(nprocs)
	spread.Name = "mgr=spread"
	spread.DSM.SpreadBarrierMgr = true
	return []core.Scenario{central, spread}
}

// BigScenario is the procs=64/256 scale-out cell: the paper's testbed
// network at a processor count the paper's hardware never reached.
func BigScenario(nprocs int) core.Scenario {
	sc := core.Base(nprocs)
	sc.Name = "bigp"
	return sc
}

// faultSeed derives a stable fault-injection seed from a scenario's
// coordinates (FNV-1a over the name, mixed with the processor count), so
// every (scenario, nprocs) cell sees its own reproducible fault pattern.
func faultSeed(name string, nprocs int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= uint64(nprocs)
	h *= 1099511628211
	return h
}

// LossScenarios sweeps seeded message loss.  TreadMarks (UDP) recovers
// through the tmk at-least-once RPC layer; PVM (TCP) through the
// transport's emulated ARQ — the paper-era question of which protocol
// degrades more gracefully.
func LossScenarios(nprocs int, rates ...float64) []core.Scenario {
	if len(rates) == 0 {
		rates = []float64{0.01, 0.05, 0.20}
	}
	var out []core.Scenario
	for _, r := range rates {
		sc := core.Base(nprocs)
		sc.Name = fmt.Sprintf("loss=%g", r)
		sc.Net.Faults.Loss = r
		sc.Net.Faults.Seed = faultSeed(sc.Name, nprocs)
		out = append(out, sc)
	}
	return out
}

// DupScenarios sweeps seeded message duplication (duplicate suppression
// is exercised with nothing actually lost).
func DupScenarios(nprocs int, rates ...float64) []core.Scenario {
	if len(rates) == 0 {
		rates = []float64{0.01, 0.05, 0.20}
	}
	var out []core.Scenario
	for _, r := range rates {
		sc := core.Base(nprocs)
		sc.Name = fmt.Sprintf("dup=%g", r)
		sc.Net.Faults.Dup = r
		sc.Net.Faults.Seed = faultSeed(sc.Name, nprocs)
		out = append(out, sc)
	}
	return out
}

// ReorderScenarios holds back a fraction of datagrams plus uniform
// delivery jitter, stressing sequence-number filtering without loss.
func ReorderScenarios(nprocs int, rates ...float64) []core.Scenario {
	if len(rates) == 0 {
		rates = []float64{0.05, 0.20}
	}
	var out []core.Scenario
	for _, r := range rates {
		sc := core.Base(nprocs)
		sc.Name = fmt.Sprintf("reorder=%g", r)
		sc.Net.Faults.Reorder = r
		sc.Net.Faults.ReorderDelay = 1 * sim.Millisecond
		sc.Net.Faults.Jitter = 250 * sim.Microsecond
		sc.Net.Faults.Seed = faultSeed(sc.Name, nprocs)
		out = append(out, sc)
	}
	return out
}

// PartitionScenarios severs the last node from the rest of the cluster
// over an early virtual-time window that heals mid-run: datagrams into
// the partition drop (and are retransmitted until the heal), stream
// deliveries stall.  Runs shorter than the window start never notice.
func PartitionScenarios(nprocs int) []core.Scenario {
	sc := core.Base(nprocs)
	sc.Name = "partition"
	if nprocs > 1 {
		sc.Net.Faults.Partitions = []vnet.Partition{{
			Start: 5 * sim.Millisecond,
			Heal:  25 * sim.Millisecond,
			Nodes: []int{nprocs - 1},
		}}
		sc.Net.Faults.Seed = faultSeed(sc.Name, nprocs)
	}
	return []core.Scenario{sc}
}

// SlowScenarios scales the CPU costs the network model charges on the
// last node — the paper-era straggler workstation.  Not lossy: no
// reliability machinery arms, only the load imbalance shifts.
func SlowScenarios(nprocs int, factors ...float64) []core.Scenario {
	if len(factors) == 0 {
		factors = []float64{2, 4}
	}
	var out []core.Scenario
	for _, f := range factors {
		sc := core.Base(nprocs)
		sc.Name = fmt.Sprintf("slow=%gx", f)
		if nprocs > 1 {
			sl := make([]float64, nprocs)
			for i := range sl {
				sl[i] = 1
			}
			sl[nprocs-1] = f
			sc.Net.Faults.Slowdown = sl
		}
		out = append(out, sc)
	}
	return out
}

// scenarioSets is the single registry of named scenario axes: the CLI
// lists its keys and ScenarioSet resolves against it, so a new axis is
// one entry here.  procs lists the processor counts a set supports and
// defaults to when the caller passes none; nil means any count, with
// the testbed's 8 as the default.
var scenarioSets = []struct {
	name   string
	procs  []int
	expand func(nprocs int) []core.Scenario
}{
	{"base", nil, func(n int) []core.Scenario { return []core.Scenario{core.Base(n)} }},
	{"page", nil, func(n int) []core.Scenario { return PageSizeScenarios(n) }},
	{"mtu", nil, func(n int) []core.Scenario { return MTUScenarios(n) }},
	{"bw", nil, BandwidthScenarios},
	{"lat", nil, func(n int) []core.Scenario { return LatencyScenarios(n) }},
	{"handler", nil, func(n int) []core.Scenario { return HandlerScenarios(n) }},
	{"colocated", nil, func(n int) []core.Scenario { return []core.Scenario{ColocatedScenario(n)} }},
	{"placement", nil, PlacementScenarios},
	{"loss", nil, func(n int) []core.Scenario { return LossScenarios(n) }},
	{"dup", nil, func(n int) []core.Scenario { return DupScenarios(n) }},
	{"reorder", nil, func(n int) []core.Scenario { return ReorderScenarios(n) }},
	{"partition", nil, PartitionScenarios},
	{"slow", nil, func(n int) []core.Scenario { return SlowScenarios(n) }},
	{"bigp", []int{16, 64, 256}, func(n int) []core.Scenario { return []core.Scenario{BigScenario(n)} }},
}

// ScenarioSets lists the registered scenario-axis names.
func ScenarioSets() []string {
	var out []string
	for _, s := range scenarioSets {
		out = append(out, s.name)
	}
	return out
}

// ScenarioSetProcs returns the processor counts a named set runs at
// when the caller specifies none.
func ScenarioSetProcs(name string) []int {
	for _, s := range scenarioSets {
		if s.name == name {
			if s.procs != nil {
				return append([]int(nil), s.procs...)
			}
			return []int{8}
		}
	}
	return nil
}

// ScenarioSet resolves a named scenario axis at the given processor
// counts — the CLI's scenario-selection surface.  Sweep axes expand at
// each count; nil procs selects the set's defaults.  Sets that declare
// supported counts reject others by listing the valid choices, rather
// than expanding into a grid nothing was validated at.
func ScenarioSet(name string, procs []int) ([]core.Scenario, error) {
	for _, s := range scenarioSets {
		if s.name != name {
			continue
		}
		if procs == nil {
			procs = ScenarioSetProcs(name)
		}
		var out []core.Scenario
		for _, n := range procs {
			if s.procs != nil && !containsInt(s.procs, n) {
				return nil, fmt.Errorf("scenario set %q does not run at %d processors (valid: %v)",
					name, n, s.procs)
			}
			out = append(out, s.expand(n)...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unknown scenario set %q (have %v)", name, ScenarioSets())
}

func containsInt(xs []int, n int) bool {
	for _, x := range xs {
		if x == n {
			return true
		}
	}
	return false
}
