package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/sim"
)

// Record is one run's structured result: the coordinates that produced it
// (app, backend, scenario, processor count) plus the modeled measurements
// the paper reports and the TreadMarks behavioral detail.  Records are
// the single interchange format of the harness: tables, figures, goldens
// and the CLI's JSON/CSV output are all views of []Record.
type Record struct {
	App      string `json:"app"`
	Figure   int    `json:"figure,omitempty"`
	Problem  string `json:"problem,omitempty"`
	Backend  string `json:"backend"`
	Scenario string `json:"scenario"`
	Procs    int    `json:"procs"`

	TimeNS   int64   `json:"time_ns"`
	Seconds  float64 `json:"seconds"`
	Messages int64   `json:"messages"`
	Bytes    int64   `json:"bytes"`

	Faults        int   `json:"faults,omitempty"`
	DiffRequests  int   `json:"diff_requests,omitempty"`
	DiffsApplied  int   `json:"diffs_applied,omitempty"`
	DiffBytes     int64 `json:"diff_bytes,omitempty"`
	LockWaitNS    int64 `json:"lock_wait_ns,omitempty"`
	BarrierWaitNS int64 `json:"barrier_wait_ns,omitempty"`
}

// Time returns the modeled wall-clock as a sim.Time.
func (r Record) Time() sim.Time { return sim.Time(r.TimeNS) }

// Kilobytes reports Bytes in units of 1000 bytes (the paper's
// "Kilobytes") — the one definition every rendered table uses.
func (r Record) Kilobytes() float64 { return float64(r.Bytes) / 1000 }

// recordOf flattens one run result into a Record.
func recordOf(app core.App, b core.Backend, sc core.Scenario, res core.Result) Record {
	return Record{
		App:      app.Name(),
		Figure:   app.Figure(),
		Problem:  app.Problem(),
		Backend:  b.Name(),
		Scenario: sc.Name,
		Procs:    sc.Procs,

		TimeNS:   int64(res.Time),
		Seconds:  res.Time.Seconds(),
		Messages: res.Net.Messages,
		Bytes:    res.Net.Bytes,

		Faults:        res.Faults,
		DiffRequests:  res.DiffRequests,
		DiffsApplied:  res.DiffsApplied,
		DiffBytes:     res.DiffBytes,
		LockWaitNS:    int64(res.LockWait),
		BarrierWaitNS: int64(res.BarrierWait),
	}
}

// Grid is a declarative experiment plan: the cross product of apps,
// backends and scenarios.  Scenario-independent backends (the sequential
// baseline) run once per app at one processor, not once per scenario.
type Grid struct {
	Apps      []core.App
	Backends  []core.Backend
	Scenarios []core.Scenario
}

// Run executes the grid in deterministic order — apps outermost (registry
// order), then backends, then scenarios — and returns one record per run.
// The first failing run aborts the grid.
func (g Grid) Run() ([]Record, error) {
	if len(g.Scenarios) == 0 {
		for _, b := range g.Backends {
			if !core.IsBaseline(b) {
				return nil, fmt.Errorf("grid: backend %q needs scenarios, none given", b.Name())
			}
		}
	}
	var recs []Record
	for _, app := range g.Apps {
		for _, b := range g.Backends {
			if core.IsBaseline(b) {
				sc := core.Base(1)
				res, err := b.Run(app, sc)
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", app.Name(), b.Name(), err)
				}
				recs = append(recs, recordOf(app, b, sc, res))
				continue
			}
			for _, sc := range g.Scenarios {
				res, err := b.Run(app, sc)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s n=%d: %w", app.Name(), b.Name(), sc.Name, sc.Procs, err)
				}
				recs = append(recs, recordOf(app, b, sc, res))
			}
		}
	}
	return recs, nil
}

// WriteJSON emits the records as a JSON array (one object per run).
func WriteJSON(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// csvHeader is the fixed CSV column order.
var csvHeader = []string{
	"app", "figure", "problem", "backend", "scenario", "procs",
	"time_ns", "seconds", "messages", "bytes",
	"faults", "diff_requests", "diffs_applied", "diff_bytes",
	"lock_wait_ns", "barrier_wait_ns",
}

// WriteCSV emits the records as CSV with a header row.
func WriteCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range recs {
		row := []string{
			r.App, strconv.Itoa(r.Figure), r.Problem, r.Backend, r.Scenario,
			strconv.Itoa(r.Procs),
			strconv.FormatInt(r.TimeNS, 10),
			strconv.FormatFloat(r.Seconds, 'g', -1, 64),
			strconv.FormatInt(r.Messages, 10),
			strconv.FormatInt(r.Bytes, 10),
			strconv.Itoa(r.Faults),
			strconv.Itoa(r.DiffRequests),
			strconv.Itoa(r.DiffsApplied),
			strconv.FormatInt(r.DiffBytes, 10),
			strconv.FormatInt(r.LockWaitNS, 10),
			strconv.FormatInt(r.BarrierWaitNS, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
