package harness

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sim"
)

// Record is one run's structured result: the coordinates that produced it
// (app, backend, scenario, processor count) plus the modeled measurements
// the paper reports and the TreadMarks behavioral detail.  Records are
// the single interchange format of the harness: tables, figures, goldens
// and the CLI's JSON/CSV output are all views of []Record.
type Record struct {
	App      string `json:"app"`
	Figure   int    `json:"figure,omitempty"`
	Problem  string `json:"problem,omitempty"`
	Backend  string `json:"backend"`
	Scenario string `json:"scenario"`
	Procs    int    `json:"procs"`

	TimeNS   int64   `json:"time_ns"`
	Seconds  float64 `json:"seconds"`
	Messages int64   `json:"messages"`
	Bytes    int64   `json:"bytes"`

	// Fault-injection accounting (zero on a fault-free network): wire
	// transmissions killed by the fault layer, retransmitted/duplicated
	// ones, and protocol RPC timeouts fired.
	Dropped  int64 `json:"dropped,omitempty"`
	Retrans  int64 `json:"retrans,omitempty"`
	Timeouts int   `json:"timeouts,omitempty"`

	Faults        int   `json:"faults,omitempty"`
	DiffRequests  int   `json:"diff_requests,omitempty"`
	DiffsApplied  int   `json:"diffs_applied,omitempty"`
	DiffBytes     int64 `json:"diff_bytes,omitempty"`
	LockWaitNS    int64 `json:"lock_wait_ns,omitempty"`
	BarrierWaitNS int64 `json:"barrier_wait_ns,omitempty"`
}

// Time returns the modeled wall-clock as a sim.Time.
func (r Record) Time() sim.Time { return sim.Time(r.TimeNS) }

// Kilobytes reports Bytes in units of 1000 bytes (the paper's
// "Kilobytes") — the one definition every rendered table uses.
func (r Record) Kilobytes() float64 { return float64(r.Bytes) / 1000 }

// recordOf flattens one run result into a Record.
func recordOf(app core.App, b core.Backend, sc core.Scenario, res core.Result) Record {
	return Record{
		App:      app.Name(),
		Figure:   app.Figure(),
		Problem:  app.Problem(),
		Backend:  b.Name(),
		Scenario: sc.Name,
		Procs:    sc.Procs,

		TimeNS:   int64(res.Time),
		Seconds:  res.Time.Seconds(),
		Messages: res.Net.Messages,
		Bytes:    res.Net.Bytes,

		Dropped:  res.Net.Dropped,
		Retrans:  res.Net.Retrans,
		Timeouts: res.Timeouts,

		Faults:        res.Faults,
		DiffRequests:  res.DiffRequests,
		DiffsApplied:  res.DiffsApplied,
		DiffBytes:     res.DiffBytes,
		LockWaitNS:    int64(res.LockWait),
		BarrierWaitNS: int64(res.BarrierWait),
	}
}

// Grid is a declarative experiment plan: the cross product of apps,
// backends and scenarios.  Scenario-independent backends (the sequential
// baseline) run once per app at one processor, not once per scenario.
type Grid struct {
	Apps      []core.App
	Backends  []core.Backend
	Scenarios []core.Scenario

	// Workers widens Run into a worker pool: every run is an independent
	// engine, so up to Workers of them execute on concurrent goroutines.
	// Jobs are enumerated exactly as in the serial order and records land
	// in a preallocated slice by job index, so the output is byte-
	// identical to Workers <= 1 (the serial path, and the default).
	// Cloneable apps run on per-job clones; other apps' runs are
	// serialized per instance (their run state is not shareable).
	Workers int

	// Progress, when non-nil, is invoked once per completed job with the
	// job's enumeration index and its record.  The serial path reports in
	// enumeration order; the worker pool reports in completion order but
	// never concurrently, and with exactly the same (index, record) set.
	// A failing job reports no progress — its error aborts the grid.
	// Streaming consumers (the serve API) ride this callback.
	Progress func(index int, rec Record)
}

// Job is one enumerated run of a Grid: the (app, backend, scenario)
// coordinates that produce one Record.  Jobs are exported so layers
// above the grid — the serve result cache, a future coordinator/worker
// split — can enumerate, content-hash (SpecHash) and execute runs
// individually; Grid.Run is exactly Jobs followed by RunJobs.
type Job struct {
	App      core.App
	Backend  core.Backend
	Scenario core.Scenario
}

// Run executes the job and flattens the result into a Record.
func (j Job) Run() (Record, error) {
	res, err := j.Backend.Run(j.App, j.Scenario)
	if err != nil {
		if core.IsBaseline(j.Backend) {
			return Record{}, fmt.Errorf("%s/%s: %w", j.App.Name(), j.Backend.Name(), err)
		}
		return Record{}, fmt.Errorf("%s/%s/%s n=%d: %w", j.App.Name(), j.Backend.Name(), j.Scenario.Name, j.Scenario.Procs, err)
	}
	return recordOf(j.App, j.Backend, j.Scenario, res), nil
}

// Jobs enumerates the grid in deterministic order — apps outermost
// (registry order), then backends, then scenarios — with the baseline
// dedup applied.
func (g Grid) Jobs() ([]Job, error) {
	if len(g.Scenarios) == 0 {
		for _, b := range g.Backends {
			if !core.IsBaseline(b) {
				return nil, fmt.Errorf("grid: backend %q needs scenarios, none given", b.Name())
			}
		}
	}
	var jobs []Job
	for _, app := range g.Apps {
		for _, b := range g.Backends {
			if core.IsBaseline(b) {
				jobs = append(jobs, Job{App: app, Backend: b, Scenario: core.Base(1)})
				continue
			}
			for _, sc := range g.Scenarios {
				jobs = append(jobs, Job{App: app, Backend: b, Scenario: sc})
			}
		}
	}
	return jobs, nil
}

// Run executes the grid and returns one record per run in enumeration
// order.  With Workers <= 1 the runs execute serially on the calling
// goroutine and the first failing run aborts the grid; with Workers > 1
// they spread across a worker pool and the error of the earliest-indexed
// failing job is returned — the same error the serial path would have
// produced first.
func (g Grid) Run() ([]Record, error) {
	jobs, err := g.Jobs()
	if err != nil {
		return nil, err
	}
	return RunJobs(jobs, g.Workers, g.Progress)
}

// RunJobs executes an explicit job list (typically from Grid.Jobs, or a
// subset of it — the serve cache runs only its cold misses this way)
// under the Grid.Run execution contract: serial on the calling goroutine
// when workers <= 1, a worker pool otherwise, records by job index, the
// earliest-indexed failure reported, and the optional progress callback
// invoked per completed job as documented on Grid.Progress.
func RunJobs(jobs []Job, workers int, progress func(index int, rec Record)) ([]Record, error) {
	return RunJobsContext(context.Background(), jobs, workers, progress)
}

// RunJobsContext is RunJobs with cancellation: ctx is consulted before
// every job start (in the serial loop and in each pool worker), so a
// canceled sweep — a disconnected streaming client, a shutting-down
// server — stops burning CPU after at most the jobs already running.
// An individual simulation is not interruptible; cancellation is
// between-job granularity.  The first cancellation error observed is
// returned like any job failure.
func RunJobsContext(ctx context.Context, jobs []Job, workers int, progress func(index int, rec Record)) ([]Record, error) {
	if workers > 1 && len(jobs) > 1 {
		return runPool(ctx, jobs, workers, progress)
	}
	var recs []Record
	for i, j := range jobs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rec, err := j.Run()
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
		if progress != nil {
			progress(i, rec)
		}
	}
	return recs, nil
}

// runPool executes the jobs across a pool of workers, collecting records
// by job index so the output order and content match the serial path.
func runPool(ctx context.Context, jobs []Job, workers int, progress func(index int, rec Record)) ([]Record, error) {
	recs := make([]Record, len(jobs))
	errs := make([]error, len(jobs))
	// Isolate per-job app state: cloneable apps get a fresh clone per
	// job; the rest share their instance under a per-instance lock, so
	// two of their runs never interleave.
	locks := map[core.App]*sync.Mutex{}
	work := make([]Job, len(jobs))
	for i, j := range jobs {
		if c, ok := j.App.(core.Cloneable); ok {
			j.App = c.Clone()
		} else if locks[j.App] == nil {
			locks[j.App] = &sync.Mutex{}
		}
		work[i] = j
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(work) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if mu := locks[jobs[i].App]; mu != nil {
					mu.Lock()
					recs[i], errs[i] = work[i].Run()
					mu.Unlock()
				} else {
					recs[i], errs[i] = work[i].Run()
				}
				if progress != nil && errs[i] == nil {
					progressMu.Lock()
					progress(i, recs[i])
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return recs, nil
}

// WriteJSON emits the records as a JSON array (one object per run).
func WriteJSON(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// csvHeader is the fixed CSV column order.
var csvHeader = []string{
	"app", "figure", "problem", "backend", "scenario", "procs",
	"time_ns", "seconds", "messages", "bytes",
	"dropped", "retrans", "timeouts",
	"faults", "diff_requests", "diffs_applied", "diff_bytes",
	"lock_wait_ns", "barrier_wait_ns",
}

// WriteCSV emits the records as CSV with a header row.  The underlying
// writer is flushed and checked per row, so a sink that breaks mid-
// stream (a closed HTTP connection) surfaces as an error at the first
// failing record instead of being swallowed by csv.Writer's buffering
// until the end.
func WriteCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, r := range recs {
		row := []string{
			r.App, strconv.Itoa(r.Figure), r.Problem, r.Backend, r.Scenario,
			strconv.Itoa(r.Procs),
			strconv.FormatInt(r.TimeNS, 10),
			strconv.FormatFloat(r.Seconds, 'g', -1, 64),
			strconv.FormatInt(r.Messages, 10),
			strconv.FormatInt(r.Bytes, 10),
			strconv.FormatInt(r.Dropped, 10),
			strconv.FormatInt(r.Retrans, 10),
			strconv.Itoa(r.Timeouts),
			strconv.Itoa(r.Faults),
			strconv.Itoa(r.DiffRequests),
			strconv.Itoa(r.DiffsApplied),
			strconv.FormatInt(r.DiffBytes, 10),
			strconv.FormatInt(r.LockWaitNS, 10),
			strconv.FormatInt(r.BarrierWaitNS, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
	}
	return nil
}
