package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sim"
)

// Record is one run's structured result: the coordinates that produced it
// (app, backend, scenario, processor count) plus the modeled measurements
// the paper reports and the TreadMarks behavioral detail.  Records are
// the single interchange format of the harness: tables, figures, goldens
// and the CLI's JSON/CSV output are all views of []Record.
type Record struct {
	App      string `json:"app"`
	Figure   int    `json:"figure,omitempty"`
	Problem  string `json:"problem,omitempty"`
	Backend  string `json:"backend"`
	Scenario string `json:"scenario"`
	Procs    int    `json:"procs"`

	TimeNS   int64   `json:"time_ns"`
	Seconds  float64 `json:"seconds"`
	Messages int64   `json:"messages"`
	Bytes    int64   `json:"bytes"`

	// Fault-injection accounting (zero on a fault-free network): wire
	// transmissions killed by the fault layer, retransmitted/duplicated
	// ones, and protocol RPC timeouts fired.
	Dropped  int64 `json:"dropped,omitempty"`
	Retrans  int64 `json:"retrans,omitempty"`
	Timeouts int   `json:"timeouts,omitempty"`

	Faults        int   `json:"faults,omitempty"`
	DiffRequests  int   `json:"diff_requests,omitempty"`
	DiffsApplied  int   `json:"diffs_applied,omitempty"`
	DiffBytes     int64 `json:"diff_bytes,omitempty"`
	LockWaitNS    int64 `json:"lock_wait_ns,omitempty"`
	BarrierWaitNS int64 `json:"barrier_wait_ns,omitempty"`
}

// Time returns the modeled wall-clock as a sim.Time.
func (r Record) Time() sim.Time { return sim.Time(r.TimeNS) }

// Kilobytes reports Bytes in units of 1000 bytes (the paper's
// "Kilobytes") — the one definition every rendered table uses.
func (r Record) Kilobytes() float64 { return float64(r.Bytes) / 1000 }

// recordOf flattens one run result into a Record.
func recordOf(app core.App, b core.Backend, sc core.Scenario, res core.Result) Record {
	return Record{
		App:      app.Name(),
		Figure:   app.Figure(),
		Problem:  app.Problem(),
		Backend:  b.Name(),
		Scenario: sc.Name,
		Procs:    sc.Procs,

		TimeNS:   int64(res.Time),
		Seconds:  res.Time.Seconds(),
		Messages: res.Net.Messages,
		Bytes:    res.Net.Bytes,

		Dropped:  res.Net.Dropped,
		Retrans:  res.Net.Retrans,
		Timeouts: res.Timeouts,

		Faults:        res.Faults,
		DiffRequests:  res.DiffRequests,
		DiffsApplied:  res.DiffsApplied,
		DiffBytes:     res.DiffBytes,
		LockWaitNS:    int64(res.LockWait),
		BarrierWaitNS: int64(res.BarrierWait),
	}
}

// Grid is a declarative experiment plan: the cross product of apps,
// backends and scenarios.  Scenario-independent backends (the sequential
// baseline) run once per app at one processor, not once per scenario.
type Grid struct {
	Apps      []core.App
	Backends  []core.Backend
	Scenarios []core.Scenario

	// Workers widens Run into a worker pool: every run is an independent
	// engine, so up to Workers of them execute on concurrent goroutines.
	// Jobs are enumerated exactly as in the serial order and records land
	// in a preallocated slice by job index, so the output is byte-
	// identical to Workers <= 1 (the serial path, and the default).
	// Cloneable apps run on per-job clones; other apps' runs are
	// serialized per instance (their run state is not shareable).
	Workers int
}

// gridJob is one run of the enumerated grid.
type gridJob struct {
	app core.App
	b   core.Backend
	sc  core.Scenario
}

func (j gridJob) run() (Record, error) {
	res, err := j.b.Run(j.app, j.sc)
	if err != nil {
		if core.IsBaseline(j.b) {
			return Record{}, fmt.Errorf("%s/%s: %w", j.app.Name(), j.b.Name(), err)
		}
		return Record{}, fmt.Errorf("%s/%s/%s n=%d: %w", j.app.Name(), j.b.Name(), j.sc.Name, j.sc.Procs, err)
	}
	return recordOf(j.app, j.b, j.sc, res), nil
}

// jobs enumerates the grid in deterministic order — apps outermost
// (registry order), then backends, then scenarios — with the baseline
// dedup applied.
func (g Grid) jobs() ([]gridJob, error) {
	if len(g.Scenarios) == 0 {
		for _, b := range g.Backends {
			if !core.IsBaseline(b) {
				return nil, fmt.Errorf("grid: backend %q needs scenarios, none given", b.Name())
			}
		}
	}
	var jobs []gridJob
	for _, app := range g.Apps {
		for _, b := range g.Backends {
			if core.IsBaseline(b) {
				jobs = append(jobs, gridJob{app: app, b: b, sc: core.Base(1)})
				continue
			}
			for _, sc := range g.Scenarios {
				jobs = append(jobs, gridJob{app: app, b: b, sc: sc})
			}
		}
	}
	return jobs, nil
}

// Run executes the grid and returns one record per run in enumeration
// order.  With Workers <= 1 the runs execute serially on the calling
// goroutine and the first failing run aborts the grid; with Workers > 1
// they spread across a worker pool and the error of the earliest-indexed
// failing job is returned — the same error the serial path would have
// produced first.
func (g Grid) Run() ([]Record, error) {
	jobs, err := g.jobs()
	if err != nil {
		return nil, err
	}
	if g.Workers > 1 && len(jobs) > 1 {
		return runPool(jobs, g.Workers)
	}
	var recs []Record
	for _, j := range jobs {
		rec, err := j.run()
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// runPool executes the jobs across a pool of workers, collecting records
// by job index so the output order and content match the serial path.
func runPool(jobs []gridJob, workers int) ([]Record, error) {
	recs := make([]Record, len(jobs))
	errs := make([]error, len(jobs))
	// Isolate per-job app state: cloneable apps get a fresh clone per
	// job; the rest share their instance under a per-instance lock, so
	// two of their runs never interleave.
	locks := map[core.App]*sync.Mutex{}
	work := make([]gridJob, len(jobs))
	for i, j := range jobs {
		if c, ok := j.app.(core.Cloneable); ok {
			j.app = c.Clone()
		} else if locks[j.app] == nil {
			locks[j.app] = &sync.Mutex{}
		}
		work[i] = j
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(work) {
					return
				}
				if mu := locks[jobs[i].app]; mu != nil {
					mu.Lock()
					recs[i], errs[i] = work[i].run()
					mu.Unlock()
				} else {
					recs[i], errs[i] = work[i].run()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return recs, nil
}

// WriteJSON emits the records as a JSON array (one object per run).
func WriteJSON(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// csvHeader is the fixed CSV column order.
var csvHeader = []string{
	"app", "figure", "problem", "backend", "scenario", "procs",
	"time_ns", "seconds", "messages", "bytes",
	"dropped", "retrans", "timeouts",
	"faults", "diff_requests", "diffs_applied", "diff_bytes",
	"lock_wait_ns", "barrier_wait_ns",
}

// WriteCSV emits the records as CSV with a header row.
func WriteCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range recs {
		row := []string{
			r.App, strconv.Itoa(r.Figure), r.Problem, r.Backend, r.Scenario,
			strconv.Itoa(r.Procs),
			strconv.FormatInt(r.TimeNS, 10),
			strconv.FormatFloat(r.Seconds, 'g', -1, 64),
			strconv.FormatInt(r.Messages, 10),
			strconv.FormatInt(r.Bytes, 10),
			strconv.FormatInt(r.Dropped, 10),
			strconv.FormatInt(r.Retrans, 10),
			strconv.Itoa(r.Timeouts),
			strconv.Itoa(r.Faults),
			strconv.Itoa(r.DiffRequests),
			strconv.Itoa(r.DiffsApplied),
			strconv.FormatInt(r.DiffBytes, 10),
			strconv.FormatInt(r.LockWaitNS, 10),
			strconv.FormatInt(r.BarrierWaitNS, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
