package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/harness"
)

// Sentinel results of Worker.Run under injected faults, so tests can
// assert which path a worker died on.
var (
	// ErrCrashed reports the worker stopped mid-job via
	// FaultConfig.CrashOnJob: no completion was sent and heartbeats
	// ceased, exactly like a SIGKILL.
	ErrCrashed = errors.New("dispatch: worker crashed (injected fault)")

	// ErrStalled reports the worker wedged on a lease via
	// FaultConfig.StallOnJob until its context was canceled.
	ErrStalled = errors.New("dispatch: worker stalled (injected fault)")
)

// WorkerOptions configures a fleet worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (the msvdsm serve
	// address), e.g. "http://127.0.0.1:8177".  Required.
	Coordinator string

	// Name identifies the worker in coordinator logs.
	Name string

	// Client is the HTTP client to use (default http.DefaultClient).
	Client *http.Client

	// PollWait bounds one lease long-poll (default 2s).
	PollWait time.Duration

	// Faults injects deterministic misbehavior; see FaultConfig.
	Faults FaultConfig

	// Logf, when non-nil, receives worker lifecycle events.
	Logf func(format string, args ...any)
}

// Worker is the fleet member: it registers with the coordinator,
// long-polls for job leases, runs each job through the local registries
// (verifying the spec hash first), and reports records back.  Cancel
// the Run context to drain gracefully: the worker stops taking leases,
// finishes its in-flight job, reports it, deregisters and returns.
type Worker struct {
	opts WorkerOptions

	mu        sync.Mutex
	id        string
	heartbeat time.Duration
	leaseTTL  time.Duration

	jobs int // lease ordinal, drives the fault harness
}

// NewWorker returns an unstarted worker; call Run to join the fleet.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.PollWait <= 0 {
		opts.PollWait = 2 * time.Second
	}
	return &Worker{opts: opts}
}

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

func (w *Worker) workerID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// Run joins the fleet and processes leases until ctx is canceled
// (graceful drain) or an injected fault kills the worker.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}

	// Heartbeats outlive ctx slightly: they stop when Run returns, not
	// when drain starts, so an in-flight job keeps its worker live.
	hbCtx, stopHB := context.WithCancel(context.Background())
	defer stopHB()
	go w.heartbeatLoop(hbCtx)

	// Announce drain the moment it is requested — even mid-job — so
	// the coordinator stops offering this worker new work immediately.
	go func() {
		<-ctx.Done()
		dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		w.post(dctx, "drain", workerIDRequest{WorkerID: w.workerID()}, nil)
	}()

	for {
		if ctx.Err() != nil {
			w.deregister()
			w.logf("dispatch: worker %s drained cleanly", w.workerID())
			return nil
		}
		grant, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				continue // drain path above
			}
			if errors.Is(err, ErrUnknownWorker) {
				w.logf("dispatch: worker registration lost; re-registering")
				if rerr := w.register(ctx); rerr != nil {
					return rerr
				}
				continue
			}
			w.logf("dispatch: lease poll failed: %v (retrying)", err)
			select {
			case <-time.After(500 * time.Millisecond):
			case <-ctx.Done():
			}
			continue
		}
		if grant == nil {
			continue // long-poll timed out with no work
		}

		w.jobs++
		switch w.opts.Faults.action(w.jobs) {
		case faultCrash:
			w.logf("dispatch: worker %s crashing on job %d (injected)", w.workerID(), w.jobs)
			return ErrCrashed
		case faultStall:
			w.logf("dispatch: worker %s stalling on job %d (injected)", w.workerID(), w.jobs)
			<-ctx.Done()
			return ErrStalled
		case faultReject:
			w.logf("dispatch: worker %s rejecting job %d (injected)", w.workerID(), w.jobs)
			w.complete(grant, nil, "injected reject fault")
			continue
		case faultSlow:
			delay := w.opts.Faults.SlowDelay
			if delay <= 0 {
				delay = 2 * w.leaseDuration()
			}
			w.logf("dispatch: worker %s slow on job %d (injected %v)", w.workerID(), w.jobs, delay)
			time.Sleep(delay)
		}

		job, err := grant.Job.Resolve(grant.Hash)
		if err != nil {
			w.complete(grant, nil, err.Error())
			continue
		}
		rec, err := job.Run()
		if err != nil {
			w.complete(grant, nil, err.Error())
			continue
		}
		w.complete(grant, &rec, "")
	}
}

func (w *Worker) leaseDuration() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.leaseTTL <= 0 {
		return 10 * time.Second
	}
	return w.leaseTTL
}

// register joins (or re-joins) the fleet, retrying with backoff until
// ctx is canceled.
func (w *Worker) register(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for {
		var reply registerReply
		_, err := w.post(ctx, "register", registerRequest{Name: w.opts.Name}, &reply)
		if err == nil && reply.WorkerID != "" {
			w.mu.Lock()
			w.id = reply.WorkerID
			w.heartbeat = time.Duration(reply.HeartbeatMillis) * time.Millisecond
			w.leaseTTL = time.Duration(reply.LeaseTTLMillis) * time.Millisecond
			w.mu.Unlock()
			w.logf("dispatch: registered as %s (heartbeat %v, lease ttl %v)", reply.WorkerID, w.heartbeat, w.leaseTTL)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.logf("dispatch: register failed: %v (retrying in %v)", err, backoff)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		backoff = min(2*backoff, 5*time.Second)
	}
}

func (w *Worker) heartbeatLoop(ctx context.Context) {
	w.mu.Lock()
	interval := w.heartbeat
	w.mu.Unlock()
	if interval <= 0 {
		interval = 2 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		hctx, cancel := context.WithTimeout(ctx, interval)
		var reply heartbeatReply
		_, err := w.post(hctx, "heartbeat", heartbeatRequest{WorkerID: w.workerID()}, &reply)
		cancel()
		if err != nil && ctx.Err() == nil {
			w.logf("dispatch: heartbeat failed: %v", err)
		}
	}
}

// lease long-polls the coordinator for one grant; nil means no work.
func (w *Worker) lease(ctx context.Context) (*LeaseGrant, error) {
	var grant LeaseGrant
	status, err := w.post(ctx, "lease", leaseRequest{
		WorkerID:   w.workerID(),
		WaitMillis: w.opts.PollWait.Milliseconds(),
	}, &grant)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	return &grant, nil
}

// complete reports a lease outcome.  It runs on a background context so
// a result computed during drain still lands, and treats delivery
// failure as survivable: the coordinator's lease expiry will reassign.
func (w *Worker) complete(grant *LeaseGrant, rec *harness.Record, workErr string) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var reply completeReply
	_, err := w.post(ctx, "complete", completeRequest{
		WorkerID: w.workerID(),
		LeaseID:  grant.LeaseID,
		Hash:     grant.Hash,
		Record:   rec,
		Error:    workErr,
	}, &reply)
	if err != nil {
		w.logf("dispatch: completion for job %.12s lost: %v (lease expiry will reassign)", grant.Hash, err)
	}
}

func (w *Worker) deregister() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	w.post(ctx, "deregister", workerIDRequest{WorkerID: w.workerID()}, nil)
}

// post sends one JSON request to a /v1/dispatch endpoint and decodes
// the reply into out (when non-nil and the reply has a body).  Protocol
// errors surface as ErrUnknownWorker/ErrDraining so callers can react.
func (w *Worker) post(ctx context.Context, endpoint string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	url := w.opts.Coordinator + "/v1/dispatch/" + endpoint
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusGone:
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, ErrUnknownWorker
	case http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, ErrDraining
	case http.StatusOK, http.StatusNoContent:
		if out != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return resp.StatusCode, fmt.Errorf("dispatch: decode %s reply: %w", endpoint, err)
			}
		}
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return resp.StatusCode, fmt.Errorf("dispatch: %s: status %d: %s", endpoint, resp.StatusCode, bytes.TrimSpace(msg))
	}
}
