// Package dispatch is the fault-tolerant coordinator/worker tier: it
// farms cache-miss grid jobs from the serve API across a fleet of
// worker processes over HTTP, and keeps a sweep correct — byte-identical
// to the serial local run — while workers crash, stall, reject work, or
// vanish mid-job.
//
// # Lease protocol
//
// Workers pull; the coordinator never dials a worker.  A worker
// registers (POST /v1/dispatch/register), receives a worker id plus the
// protocol intervals, and then loops: long-poll for a lease
// (/v1/dispatch/lease), run the job, report the result
// (/v1/dispatch/complete), all while a background heartbeat
// (/v1/dispatch/heartbeat) keeps it live.  Every job is leased to one
// worker at a time with a deadline (Config.LeaseTTL); a lease that
// expires, or whose worker misses the liveness window
// (Config.Liveness, default 3x the heartbeat interval), is revoked and
// its job requeued with capped exponential backoff
// (Config.RetryBase doubling per failure up to Config.RetryCap, at most
// Config.MaxAttempts grants per job).  A straggling lease older than
// Config.HedgeAfter is additionally hedged: an idle worker gets a
// second lease on the same job, and whichever completion arrives first
// wins.
//
// # Exactly-once results
//
// The job wire format (JobRef) names a job by the grid selection
// vocabulary plus the job's index in the deterministic enumeration;
// the worker re-resolves the selection against its own registries and
// refuses the lease unless harness.SpecHash of the job it enumerated
// matches the hash the lease was granted under.  Completions are keyed
// by that same hash: the first valid completion finishes the job (a
// late result from an expired lease is still accepted — the hash names
// the work, not the lease), every later one is suppressed as a
// duplicate, and the serve layer's store writes are idempotent because
// equal hashes mean byte-identical records.  Hence a sweep through a
// fleet with crashing and stalling workers yields exactly the records
// of the serial local run: no losses (expiry/liveness requeue every
// abandoned job), no duplicates (hash-keyed suppression), no reordering
// (records land by job index).
//
// # Degradation
//
// Dispatching never strands a request: Do returns ErrNoWorkers when no
// live worker exists (or none remain after retries), ErrDraining when
// the coordinator is shutting down, and a terminal error when a job
// exhausts MaxAttempts — in every case the serve cold path falls back
// to computing the job locally, which is always correct, just not
// scaled out.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/harness"
)

// Dispatch errors the serve layer treats as "fall back to local
// compute" rather than request failures.
var (
	// ErrNoWorkers reports that no live, non-draining worker is
	// registered (at submission, or after every registered worker died
	// while the job was queued).
	ErrNoWorkers = errors.New("dispatch: no live workers")

	// ErrDraining reports that the coordinator is shutting down and no
	// longer accepts new jobs.
	ErrDraining = errors.New("dispatch: coordinator draining")

	// ErrUnknownWorker reports a worker id the coordinator does not
	// know — expired by the liveness reaper or from a previous
	// coordinator incarnation.  Workers re-register on it.
	ErrUnknownWorker = errors.New("dispatch: unknown worker")
)

// Config tunes the dispatcher's reliability machinery.  The zero value
// gets production-shaped defaults; tests shrink every interval.
type Config struct {
	// LeaseTTL is how long a worker holds a job before the lease
	// expires and the job is reassigned (default 10s).
	LeaseTTL time.Duration

	// Heartbeat is the interval workers are told to beat at
	// (default 2s).
	Heartbeat time.Duration

	// Liveness is the silence window after which a worker is declared
	// dead and its leases revoked (default 3x Heartbeat).  Lease polls
	// and completions also refresh liveness.
	Liveness time.Duration

	// RetryBase and RetryCap bound the exponential backoff between
	// grants of a failed/expired job: RetryBase doubles per failure up
	// to RetryCap (defaults 50ms and 5s).
	RetryBase time.Duration
	RetryCap  time.Duration

	// MaxAttempts caps lease grants per job; exhausting it fails the
	// job back to the caller, which computes locally (default 5).
	MaxAttempts int

	// HedgeAfter is the age at which an outstanding lease becomes
	// eligible for hedged re-dispatch to an idle worker (default
	// LeaseTTL/2; negative disables hedging).
	HedgeAfter time.Duration

	// Logf, when non-nil, receives recovery-path events (expiries,
	// revocations, hedges, worker loss).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 2 * time.Second
	}
	if c.Liveness <= 0 {
		c.Liveness = 3 * c.Heartbeat
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = c.LeaseTTL / 2
	}
	return c
}

// JobRef names one grid job on the wire: the selection that enumerates
// the grid (the msvdsm grid vocabulary, shared with the serve API) plus
// the job's index in the deterministic enumeration.  The executing
// worker re-resolves the selection against its own registries, so only
// names travel — never config structs — and the spec hash check in
// Resolve proves both sides enumerated the identical job.
type JobRef struct {
	Apps      []string `json:"apps,omitempty"`
	Backends  []string `json:"backends,omitempty"`
	Scenarios []string `json:"scenarios,omitempty"`
	NProcs    []int    `json:"nprocs,omitempty"`
	Scale     float64  `json:"scale,omitempty"`
	Index     int      `json:"index"`
}

// Resolve materializes the referenced job from the local registries and
// verifies its content hash against the hash the lease was granted
// under.  A mismatch means the two processes disagree about the model
// (version skew) — running the job anyway could silently cache a wrong
// record, so it is refused.
func (ref JobRef) Resolve(wantHash string) (harness.Job, error) {
	scale := ref.Scale
	if scale == 0 {
		scale = 1.0
	}
	sel := harness.Selection{
		Apps:      ref.Apps,
		Backends:  ref.Backends,
		Scenarios: ref.Scenarios,
		NProcs:    ref.NProcs,
	}
	grid, err := sel.Resolve(scale)
	if err != nil {
		return harness.Job{}, fmt.Errorf("dispatch: resolve job ref: %w", err)
	}
	jobs, err := grid.Jobs()
	if err != nil {
		return harness.Job{}, fmt.Errorf("dispatch: enumerate job ref: %w", err)
	}
	if ref.Index < 0 || ref.Index >= len(jobs) {
		return harness.Job{}, fmt.Errorf("dispatch: job index %d out of range (grid has %d jobs)", ref.Index, len(jobs))
	}
	job := jobs[ref.Index]
	if h := harness.SpecHash(job); h != wantHash {
		return harness.Job{}, fmt.Errorf("dispatch: spec hash mismatch for job %d (lease %.12s, local %.12s): engine version skew between coordinator and worker", ref.Index, wantHash, h)
	}
	return job, nil
}

// LeaseGrant is one granted lease on the wire.
type LeaseGrant struct {
	LeaseID   string `json:"lease_id"`
	Hash      string `json:"hash"`
	Job       JobRef `json:"job"`
	TTLMillis int64  `json:"ttl_ms"`
}

// task is one dispatched job: queued, leased (possibly twice, hedged),
// then done.  Tasks are keyed by spec hash.
type task struct {
	hash     string
	ref      JobRef
	attempts int               // lease grants
	failures int               // expiries + revocations + worker errors
	readyAt  time.Time         // backoff gate while queued
	leases   map[string]*lease // outstanding grants
	queued   bool              // currently in d.pending

	done chan struct{}
	rec  harness.Record
	err  error
}

type lease struct {
	id       string
	worker   string
	deadline time.Time
	granted  time.Time
	hedged   bool
	t        *task
}

type workerState struct {
	id       string
	name     string
	lastSeen time.Time
	draining bool
	leases   map[string]*lease
}

// Stats is the dispatcher counter snapshot, embedded in /v1/stats.
type Stats struct {
	WorkersLive          int   `json:"workers_live"`
	WorkersDraining      int   `json:"workers_draining"`
	WorkersRegistered    int64 `json:"workers_registered"`
	WorkersLost          int64 `json:"workers_lost"`
	TasksQueued          int   `json:"tasks_queued"`
	LeasesOutstanding    int   `json:"leases_outstanding"`
	LeasesGranted        int64 `json:"leases_granted"`
	LeasesExpired        int64 `json:"leases_expired"`
	LeasesRevoked        int64 `json:"leases_revoked"`
	Reassigned           int64 `json:"reassigned"`
	Hedged               int64 `json:"hedged"`
	Completions          int64 `json:"completions"`
	LateCompletions      int64 `json:"late_completions"`
	DuplicateCompletions int64 `json:"duplicate_completions"`
	WorkerErrors         int64 `json:"worker_errors"`
	TasksDispatched      int64 `json:"tasks_dispatched"`
	TasksFailed          int64 `json:"tasks_failed"`
}

// Dispatcher is the coordinator side of the tier: the lease table, the
// worker registry, and the reaper that turns missed deadlines into
// reassignment.
type Dispatcher struct {
	cfg Config

	mu      sync.Mutex
	notify  chan struct{} // closed and replaced on every wake-worthy change
	workers map[string]*workerState
	tasks   map[string]*task // active, by spec hash
	pending []*task          // queued tasks in arrival order
	leases  map[string]*lease
	nextID  int64
	drain   bool
	closed  bool

	stats struct {
		workersRegistered, workersLost               int64
		leasesGranted, leasesExpired, leasesRevoked  int64
		reassigned, hedged                           int64
		completions, lateCompletions, dupCompletions int64
		workerErrors, tasksDispatched, tasksFailed   int64
	}

	stopReaper chan struct{}
	reaperDone chan struct{}
}

// New returns a running dispatcher (its reaper goroutine started).
// Close it when done.
func New(cfg Config) *Dispatcher {
	d := &Dispatcher{
		cfg:        cfg.withDefaults(),
		notify:     make(chan struct{}),
		workers:    map[string]*workerState{},
		tasks:      map[string]*task{},
		leases:     map[string]*lease{},
		stopReaper: make(chan struct{}),
		reaperDone: make(chan struct{}),
	}
	go d.reap()
	return d
}

func (d *Dispatcher) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// notifyLocked wakes every blocked Lease long-poll.  Caller holds d.mu.
func (d *Dispatcher) notifyLocked() {
	close(d.notify)
	d.notify = make(chan struct{})
}

// Register adds a worker and returns its id plus the protocol intervals
// it must honor.
func (d *Dispatcher) Register(name string) (id string, leaseTTL, heartbeat time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextID++
	id = fmt.Sprintf("w%d", d.nextID)
	d.workers[id] = &workerState{
		id: id, name: name, lastSeen: time.Now(),
		leases: map[string]*lease{},
	}
	d.stats.workersRegistered++
	d.logf("dispatch: worker %s (%s) registered", id, name)
	return id, d.cfg.LeaseTTL, d.cfg.Heartbeat
}

// Heartbeat refreshes a worker's liveness.  draining reports whether
// the coordinator wants the fleet to wind down.
func (d *Dispatcher) Heartbeat(workerID string) (draining bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.workers[workerID]
	if w == nil {
		return false, ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	return d.drain, nil
}

// DrainWorker marks a worker as winding down: it receives no new
// leases but its in-flight completions are still accepted.
func (d *Dispatcher) DrainWorker(workerID string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.workers[workerID]
	if w == nil {
		return ErrUnknownWorker
	}
	if !w.draining {
		w.draining = true
		d.logf("dispatch: worker %s (%s) draining", w.id, w.name)
		d.failPendingIfNoWorkersLocked()
	}
	return nil
}

// Deregister removes a worker; any leases it still holds are revoked
// and their jobs requeued.
func (d *Dispatcher) Deregister(workerID string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.workers[workerID]
	if w == nil {
		return ErrUnknownWorker
	}
	d.removeWorkerLocked(w, "deregistered")
	return nil
}

// removeWorkerLocked drops a worker, revoking and requeueing its
// leases.  Caller holds d.mu.
func (d *Dispatcher) removeWorkerLocked(w *workerState, why string) {
	delete(d.workers, w.id)
	if len(w.leases) > 0 {
		d.logf("dispatch: worker %s (%s) %s; revoking %d leases", w.id, w.name, why, len(w.leases))
	} else {
		d.logf("dispatch: worker %s (%s) %s", w.id, w.name, why)
	}
	for _, l := range w.leases {
		d.stats.leasesRevoked++
		d.dropLeaseLocked(l, true)
	}
	d.failPendingIfNoWorkersLocked()
	d.notifyLocked()
}

// failPendingIfNoWorkersLocked bounces queued, unleased tasks back to
// their waiters with ErrNoWorkers once no live worker remains — the
// serve layer's cue to compute locally.  Without it a sweep whose fleet
// departed mid-run would block on tasks nobody will ever lease.  Caller
// holds d.mu.
func (d *Dispatcher) failPendingIfNoWorkersLocked() {
	if d.hasWorkersLocked() {
		return
	}
	for _, t := range append([]*task(nil), d.pending...) {
		if len(t.leases) == 0 {
			d.stats.tasksFailed++
			d.finishLocked(t, harness.Record{}, ErrNoWorkers)
		}
	}
}

// hasWorkersLocked reports a live, non-draining worker.  Caller holds
// d.mu.
func (d *Dispatcher) hasWorkersLocked() bool {
	for _, w := range d.workers {
		if !w.draining {
			return true
		}
	}
	return false
}

// HasWorkers reports whether the fleet can currently accept work; the
// serve cold path consults it before dispatching instead of computing
// locally.
func (d *Dispatcher) HasWorkers() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hasWorkersLocked()
}

// Do dispatches one job to the fleet and blocks until a worker
// completes it, the job fails terminally, or ctx is canceled.
// Concurrent Do calls for the same hash share one task.  ErrNoWorkers
// and ErrDraining mean "compute locally instead".
func (d *Dispatcher) Do(ctx context.Context, ref JobRef, hash string) (harness.Record, error) {
	d.mu.Lock()
	if d.closed || d.drain {
		d.mu.Unlock()
		return harness.Record{}, ErrDraining
	}
	if !d.hasWorkersLocked() {
		d.mu.Unlock()
		return harness.Record{}, ErrNoWorkers
	}
	t, ok := d.tasks[hash]
	if !ok {
		t = &task{hash: hash, ref: ref, leases: map[string]*lease{}, done: make(chan struct{})}
		d.tasks[hash] = t
		d.enqueueLocked(t)
		d.stats.tasksDispatched++
	}
	d.mu.Unlock()

	select {
	case <-t.done:
		return t.rec, t.err
	case <-ctx.Done():
		// The task stays live for any other waiter (and a completion
		// still lands in the store via the next request); this caller
		// just stops waiting.
		return harness.Record{}, ctx.Err()
	}
}

// enqueueLocked puts a task (back) on the pending queue.  Caller holds
// d.mu.
func (d *Dispatcher) enqueueLocked(t *task) {
	if t.queued {
		return
	}
	t.queued = true
	d.pending = append(d.pending, t)
	d.notifyLocked()
}

// dequeueLocked removes a task from pending.  Caller holds d.mu.
func (d *Dispatcher) dequeueLocked(t *task) {
	if !t.queued {
		return
	}
	t.queued = false
	for i, q := range d.pending {
		if q == t {
			d.pending = append(d.pending[:i], d.pending[i+1:]...)
			return
		}
	}
}

// Lease blocks up to wait for a job to lease to workerID and returns
// the grant, or nil when none became available.  A lease poll also
// refreshes the worker's liveness.
func (d *Dispatcher) Lease(workerID string, wait time.Duration) (*LeaseGrant, error) {
	deadline := time.Now().Add(wait)
	for {
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return nil, ErrDraining
		}
		w := d.workers[workerID]
		if w == nil {
			d.mu.Unlock()
			return nil, ErrUnknownWorker
		}
		now := time.Now()
		w.lastSeen = now
		if !d.drain && !w.draining {
			if t := d.pickLocked(now); t != nil {
				g := d.grantLocked(w, t, now, false)
				d.mu.Unlock()
				return g, nil
			}
			if t := d.hedgeLocked(w, now); t != nil {
				g := d.grantLocked(w, t, now, true)
				d.mu.Unlock()
				return g, nil
			}
		}
		ch := d.notify
		d.mu.Unlock()

		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, nil
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return nil, nil
		}
	}
}

// pickLocked pops the first backoff-ready pending task.  Caller holds
// d.mu.
func (d *Dispatcher) pickLocked(now time.Time) *task {
	for _, t := range d.pending {
		if !t.readyAt.After(now) {
			d.dequeueLocked(t)
			return t
		}
	}
	return nil
}

// hedgeLocked finds the oldest straggler lease eligible for hedged
// re-dispatch to this worker: a single outstanding lease, older than
// HedgeAfter, held by a different worker.  Caller holds d.mu.
func (d *Dispatcher) hedgeLocked(w *workerState, now time.Time) *task {
	if d.cfg.HedgeAfter < 0 {
		return nil
	}
	var oldest *lease
	for _, l := range d.leases {
		if l.worker == w.id || len(l.t.leases) != 1 {
			continue
		}
		if now.Sub(l.granted) < d.cfg.HedgeAfter {
			continue
		}
		if oldest == nil || l.granted.Before(oldest.granted) {
			oldest = l
		}
	}
	if oldest == nil {
		return nil
	}
	return oldest.t
}

// grantLocked issues a lease on t to w.  Caller holds d.mu.
func (d *Dispatcher) grantLocked(w *workerState, t *task, now time.Time, hedged bool) *LeaseGrant {
	d.nextID++
	l := &lease{
		id:       fmt.Sprintf("l%d", d.nextID),
		worker:   w.id,
		deadline: now.Add(d.cfg.LeaseTTL),
		granted:  now,
		hedged:   hedged,
		t:        t,
	}
	t.leases[l.id] = l
	t.attempts++
	d.leases[l.id] = l
	w.leases[l.id] = l
	d.stats.leasesGranted++
	if hedged {
		d.stats.hedged++
		d.logf("dispatch: hedging straggler job %.12s on worker %s", t.hash, w.id)
	}
	return &LeaseGrant{
		LeaseID:   l.id,
		Hash:      t.hash,
		Job:       t.ref,
		TTLMillis: d.cfg.LeaseTTL.Milliseconds(),
	}
}

// dropLeaseLocked removes a lease from every table and, when requeue is
// set and no sibling (hedge) lease still covers the task, requeues or
// terminally fails its task.  Caller holds d.mu.
func (d *Dispatcher) dropLeaseLocked(l *lease, requeue bool) {
	delete(d.leases, l.id)
	if w := d.workers[l.worker]; w != nil {
		delete(w.leases, l.id)
	}
	t := l.t
	delete(t.leases, l.id)
	if !requeue || d.isDone(t) {
		return
	}
	if len(t.leases) > 0 {
		return // a hedge twin is still running the job
	}
	t.failures++
	switch {
	case t.failures >= d.cfg.MaxAttempts:
		d.stats.tasksFailed++
		d.finishLocked(t, harness.Record{},
			fmt.Errorf("dispatch: job %.12s failed %d times (last lease on %s); giving up", t.hash, t.failures, l.worker))
	case !d.hasWorkersLocked():
		d.stats.tasksFailed++
		d.finishLocked(t, harness.Record{}, ErrNoWorkers)
	default:
		backoff := d.cfg.RetryBase << (t.failures - 1)
		if backoff > d.cfg.RetryCap || backoff <= 0 {
			backoff = d.cfg.RetryCap
		}
		t.readyAt = time.Now().Add(backoff)
		d.stats.reassigned++
		d.enqueueLocked(t)
	}
}

func (d *Dispatcher) isDone(t *task) bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// finishLocked completes a task (success or terminal failure), drops
// its remaining leases and wakes its waiters.  Caller holds d.mu.
func (d *Dispatcher) finishLocked(t *task, rec harness.Record, err error) {
	if d.isDone(t) {
		return
	}
	t.rec, t.err = rec, err
	delete(d.tasks, t.hash)
	d.dequeueLocked(t)
	for _, l := range t.leases {
		delete(d.leases, l.id)
		if w := d.workers[l.worker]; w != nil {
			delete(w.leases, l.id)
		}
		delete(t.leases, l.id)
	}
	close(t.done)
}

// Complete reports a lease outcome.  A successful record finishes the
// task on first arrival — even if the lease already expired (the hash
// names the work, not the lease) — and is suppressed as a duplicate on
// any later arrival.  A worker error requeues the job with backoff.
// accepted reports whether this completion finished the task.
func (d *Dispatcher) Complete(workerID, leaseID, hash string, rec *harness.Record, workErr string) (accepted bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if w := d.workers[workerID]; w != nil {
		w.lastSeen = time.Now()
	}
	l := d.leases[leaseID]
	t := d.tasks[hash]
	if t == nil {
		// Task already finished (or never existed): a duplicate from a
		// hedge twin or an expired-lease retry.  Exactly-once holds
		// because the store upsert for an equal hash is idempotent.
		d.stats.dupCompletions++
		if l != nil {
			d.dropLeaseLocked(l, false)
		}
		return false, nil
	}
	if workErr != "" {
		d.stats.workerErrors++
		d.logf("dispatch: worker %s failed job %.12s: %s", workerID, hash, workErr)
		if l != nil && l.t == t {
			d.dropLeaseLocked(l, true)
		}
		return false, nil
	}
	if rec == nil {
		return false, fmt.Errorf("dispatch: completion for job %.12s carries neither record nor error", hash)
	}
	d.stats.completions++
	if l == nil {
		// The lease expired (or its worker was declared dead) before
		// the result arrived, but the result is still the right bytes
		// for this hash: accept it rather than burn another worker.
		d.stats.lateCompletions++
		d.logf("dispatch: late completion for job %.12s from worker %s accepted", hash, workerID)
	}
	d.finishLocked(t, *rec, nil)
	return true, nil
}

// StartDrain begins coordinator shutdown: no new jobs are accepted and
// no new leases granted.  Queued jobs that no lease covers fail with
// ErrDraining, bouncing their waiting requests back to local compute;
// in-flight leases may still complete.
func (d *Dispatcher) StartDrain() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.drain {
		return
	}
	d.drain = true
	d.logf("dispatch: coordinator draining (%d leases in flight, %d jobs queued)", len(d.leases), len(d.pending))
	for _, t := range append([]*task(nil), d.pending...) {
		if len(t.leases) == 0 {
			d.stats.tasksFailed++
			d.finishLocked(t, harness.Record{}, ErrDraining)
		}
	}
	d.notifyLocked()
}

// Quiesce blocks until no leases remain outstanding or ctx expires.
func (d *Dispatcher) Quiesce(ctx context.Context) error {
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	for {
		d.mu.Lock()
		n := len(d.leases)
		d.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// Close shuts the dispatcher down: drains, fails every remaining task,
// and stops the reaper.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.drain = true
	for _, t := range d.tasks {
		d.stats.tasksFailed++
		d.finishLocked(t, harness.Record{}, ErrDraining)
	}
	d.notifyLocked()
	d.mu.Unlock()
	close(d.stopReaper)
	<-d.reaperDone
}

// Stats returns a counter snapshot.
func (d *Dispatcher) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := Stats{
		TasksQueued:          len(d.pending),
		LeasesOutstanding:    len(d.leases),
		WorkersRegistered:    d.stats.workersRegistered,
		WorkersLost:          d.stats.workersLost,
		LeasesGranted:        d.stats.leasesGranted,
		LeasesExpired:        d.stats.leasesExpired,
		LeasesRevoked:        d.stats.leasesRevoked,
		Reassigned:           d.stats.reassigned,
		Hedged:               d.stats.hedged,
		Completions:          d.stats.completions,
		LateCompletions:      d.stats.lateCompletions,
		DuplicateCompletions: d.stats.dupCompletions,
		WorkerErrors:         d.stats.workerErrors,
		TasksDispatched:      d.stats.tasksDispatched,
		TasksFailed:          d.stats.tasksFailed,
	}
	for _, w := range d.workers {
		if w.draining {
			st.WorkersDraining++
		} else {
			st.WorkersLive++
		}
	}
	return st
}

// reap is the background deadline loop: it expires leases, declares
// silent workers dead, and wakes lease polls when backoff-gated work
// becomes ready.
func (d *Dispatcher) reap() {
	defer close(d.reaperDone)
	tick := d.cfg.Heartbeat / 4
	if base := d.cfg.RetryBase / 2; base < tick {
		tick = base
	}
	if ttl := d.cfg.LeaseTTL / 4; ttl < tick {
		tick = ttl
	}
	tick = min(max(tick, 2*time.Millisecond), 100*time.Millisecond)
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-d.stopReaper:
			return
		case <-ticker.C:
		}
		d.mu.Lock()
		now := time.Now()
		for _, l := range d.leases {
			if l.deadline.After(now) {
				continue
			}
			d.stats.leasesExpired++
			d.logf("dispatch: lease %s (job %.12s) on worker %s expired; reassigning", l.id, l.t.hash, l.worker)
			d.dropLeaseLocked(l, true)
		}
		for _, w := range d.workers {
			if now.Sub(w.lastSeen) <= d.cfg.Liveness {
				continue
			}
			d.stats.workersLost++
			d.removeWorkerLocked(w, "missed liveness window")
		}
		if len(d.pending) > 0 || len(d.leases) > 0 {
			// Wake pollers: backoff gates and hedge eligibility are time
			// events no state change announces.
			d.notifyLocked()
		}
		d.mu.Unlock()
	}
}
