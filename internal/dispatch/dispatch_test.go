package dispatch

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// quietCfg shrinks every interval for tests and makes liveness huge so
// workers never die by accident; tests that want liveness reaping
// override Heartbeat/Liveness themselves.
func quietCfg() Config {
	return Config{
		LeaseTTL:    150 * time.Millisecond,
		Heartbeat:   10 * time.Second,
		RetryBase:   5 * time.Millisecond,
		RetryCap:    50 * time.Millisecond,
		MaxAttempts: 4,
		HedgeAfter:  -1, // hedging off unless a test wants it
	}
}

func testRecord(ns int64) harness.Record {
	return harness.Record{App: "fake", Backend: "tmk", Scenario: "base", Procs: 2, TimeNS: ns}
}

// doAsync starts a Do call and returns its result channel.
func doAsync(d *Dispatcher, hash string) chan struct {
	rec harness.Record
	err error
} {
	ch := make(chan struct {
		rec harness.Record
		err error
	}, 1)
	go func() {
		rec, err := d.Do(context.Background(), JobRef{}, hash)
		ch <- struct {
			rec harness.Record
			err error
		}{rec, err}
	}()
	return ch
}

func waitStat(t *testing.T, d *Dispatcher, what string, get func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if get(d.Stats()) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; stats %+v", what, d.Stats())
}

// TestLeaseExpiryAndDuplicateSuppression drives the heart of the
// exactly-once argument: a lease expires, the job is reassigned, and
// then BOTH workers complete it.  The first (late, expired-lease)
// completion wins; the second is suppressed as a duplicate; the waiter
// sees exactly one record.
func TestLeaseExpiryAndDuplicateSuppression(t *testing.T) {
	d := New(quietCfg())
	defer d.Close()
	w1, _, _ := d.Register("w1")
	w2, _, _ := d.Register("w2")

	res := doAsync(d, "job-a")
	g1, err := d.Lease(w1, time.Second)
	if err != nil || g1 == nil {
		t.Fatalf("w1 lease: %v %v", g1, err)
	}
	if g1.Hash != "job-a" {
		t.Fatalf("w1 leased %q, want job-a", g1.Hash)
	}

	waitStat(t, d, "lease expiry", func(s Stats) bool { return s.LeasesExpired >= 1 })
	waitStat(t, d, "reassignment", func(s Stats) bool { return s.Reassigned >= 1 })

	g2, err := d.Lease(w2, time.Second)
	if err != nil || g2 == nil || g2.Hash != "job-a" {
		t.Fatalf("w2 lease after expiry: %v %v", g2, err)
	}

	// The stalled worker finally reports — its lease is long dead, but
	// the result is the right bytes for this hash, so it is accepted.
	rec := testRecord(42)
	accepted, err := d.Complete(w1, g1.LeaseID, "job-a", &rec, "")
	if err != nil || !accepted {
		t.Fatalf("late completion: accepted=%v err=%v", accepted, err)
	}
	// The reassigned worker's duplicate is suppressed.
	accepted, err = d.Complete(w2, g2.LeaseID, "job-a", &rec, "")
	if err != nil || accepted {
		t.Fatalf("duplicate completion: accepted=%v err=%v, want suppressed", accepted, err)
	}

	got := <-res
	if got.err != nil || got.rec.TimeNS != 42 {
		t.Fatalf("Do returned (%+v, %v), want the completed record", got.rec, got.err)
	}
	st := d.Stats()
	if st.DuplicateCompletions != 1 || st.LateCompletions != 1 || st.Completions != 1 {
		t.Fatalf("stats: dup=%d late=%d completions=%d, want 1/1/1",
			st.DuplicateCompletions, st.LateCompletions, st.Completions)
	}
}

// TestWorkerLossRevokesLeases kills a worker by silence: its lease is
// revoked at the liveness deadline and the job lands on the survivor.
func TestWorkerLossRevokesLeases(t *testing.T) {
	cfg := quietCfg()
	cfg.LeaseTTL = 5 * time.Second // expiry must not beat liveness here
	cfg.Heartbeat = 20 * time.Millisecond
	cfg.Liveness = 60 * time.Millisecond
	d := New(cfg)
	defer d.Close()

	w1, _, _ := d.Register("doomed")
	w2, _, _ := d.Register("survivor")
	// Keep the survivor alive for the whole test.
	stopHB := make(chan struct{})
	defer close(stopHB)
	go func() {
		for {
			select {
			case <-stopHB:
				return
			case <-time.After(15 * time.Millisecond):
				d.Heartbeat(w2)
			}
		}
	}()

	res := doAsync(d, "job-b")
	if g, err := d.Lease(w1, time.Second); err != nil || g == nil {
		t.Fatalf("w1 lease: %v %v", g, err)
	}
	// w1 never heartbeats again: the reaper declares it dead and
	// requeues the job.
	waitStat(t, d, "worker loss", func(s Stats) bool { return s.WorkersLost >= 1 && s.LeasesRevoked >= 1 })

	g2, err := d.Lease(w2, time.Second)
	if err != nil || g2 == nil || g2.Hash != "job-b" {
		t.Fatalf("survivor lease: %v %v", g2, err)
	}
	rec := testRecord(7)
	if accepted, err := d.Complete(w2, g2.LeaseID, "job-b", &rec, ""); err != nil || !accepted {
		t.Fatalf("survivor completion: %v %v", accepted, err)
	}
	if got := <-res; got.err != nil || got.rec.TimeNS != 7 {
		t.Fatalf("Do returned (%+v, %v)", got.rec, got.err)
	}
}

// TestRejectBackoffAndMaxAttempts exhausts a job's attempts through
// repeated worker errors and checks the terminal failure.
func TestRejectBackoffAndMaxAttempts(t *testing.T) {
	cfg := quietCfg()
	d := New(cfg)
	defer d.Close()
	w1, _, _ := d.Register("rejector")

	res := doAsync(d, "job-c")
	rejects := 0
	for rejects < cfg.MaxAttempts {
		g, err := d.Lease(w1, 2*time.Second)
		if err != nil {
			t.Fatalf("lease %d: %v", rejects, err)
		}
		if g == nil {
			t.Fatalf("no lease after %d rejects (backoff should requeue)", rejects)
		}
		d.Complete(w1, g.LeaseID, g.Hash, nil, "injected reject")
		rejects++
	}
	got := <-res
	if got.err == nil || !strings.Contains(got.err.Error(), "giving up") {
		t.Fatalf("Do error = %v, want terminal give-up", got.err)
	}
	st := d.Stats()
	if st.WorkerErrors != int64(cfg.MaxAttempts) || st.TasksFailed != 1 {
		t.Fatalf("stats: workerErrors=%d tasksFailed=%d", st.WorkerErrors, st.TasksFailed)
	}
}

// TestHedgedRedispatch lets a straggler lease age past HedgeAfter and
// checks an idle second worker gets a twin lease on the same job.
func TestHedgedRedispatch(t *testing.T) {
	cfg := quietCfg()
	cfg.LeaseTTL = 5 * time.Second
	cfg.HedgeAfter = 20 * time.Millisecond
	d := New(cfg)
	defer d.Close()
	w1, _, _ := d.Register("straggler")
	w2, _, _ := d.Register("hedger")

	res := doAsync(d, "job-d")
	g1, err := d.Lease(w1, time.Second)
	if err != nil || g1 == nil {
		t.Fatalf("w1 lease: %v %v", g1, err)
	}
	time.Sleep(30 * time.Millisecond)
	g2, err := d.Lease(w2, time.Second)
	if err != nil || g2 == nil || g2.Hash != "job-d" {
		t.Fatalf("hedge lease: %v %v", g2, err)
	}
	rec := testRecord(9)
	if accepted, _ := d.Complete(w2, g2.LeaseID, "job-d", &rec, ""); !accepted {
		t.Fatal("hedge completion not accepted")
	}
	if got := <-res; got.err != nil || got.rec.TimeNS != 9 {
		t.Fatalf("Do returned (%+v, %v)", got.rec, got.err)
	}
	// The straggler's eventual completion is a duplicate.
	if accepted, _ := d.Complete(w1, g1.LeaseID, "job-d", &rec, ""); accepted {
		t.Fatal("straggler completion should be suppressed")
	}
	st := d.Stats()
	if st.Hedged != 1 || st.DuplicateCompletions != 1 {
		t.Fatalf("stats: hedged=%d dup=%d, want 1/1", st.Hedged, st.DuplicateCompletions)
	}
}

// TestNoWorkersAndDrainErrors pins the fallback contract: Do without a
// fleet says ErrNoWorkers, Do on a draining coordinator says
// ErrDraining, and a draining worker is not leased to.
func TestNoWorkersAndDrainErrors(t *testing.T) {
	d := New(quietCfg())
	defer d.Close()

	if _, err := d.Do(context.Background(), JobRef{}, "h"); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("Do with no workers: %v, want ErrNoWorkers", err)
	}

	w1, _, _ := d.Register("lone")
	if err := d.DrainWorker(w1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Do(context.Background(), JobRef{}, "h"); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("Do with only draining workers: %v, want ErrNoWorkers", err)
	}
	if g, err := d.Lease(w1, 10*time.Millisecond); err != nil || g != nil {
		t.Fatalf("draining worker got lease %v (err %v)", g, err)
	}

	w2, _, _ := d.Register("late")
	_ = w2
	d.StartDrain()
	if _, err := d.Do(context.Background(), JobRef{}, "h"); !errors.Is(err, ErrDraining) {
		t.Fatalf("Do while draining: %v, want ErrDraining", err)
	}
}

// TestDrainFailsQueuedTasks checks StartDrain bounces unleased queued
// jobs back to their waiters with ErrDraining (the serve layer's cue to
// compute locally) while the lease table quiesces.
func TestDrainFailsQueuedTasks(t *testing.T) {
	d := New(quietCfg())
	defer d.Close()
	d.Register("idle")

	res := doAsync(d, "job-e")
	// Wait until the task is queued, then drain before any lease.
	waitStat(t, d, "task queued", func(s Stats) bool { return s.TasksQueued == 1 })
	d.StartDrain()
	got := <-res
	if !errors.Is(got.err, ErrDraining) {
		t.Fatalf("queued task after drain: %v, want ErrDraining", got.err)
	}
	if err := d.Quiesce(context.Background()); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
}

// TestDeregisterRequeues checks a graceful worker exit requeues its
// outstanding leases immediately.
func TestDeregisterRequeues(t *testing.T) {
	d := New(quietCfg())
	defer d.Close()
	w1, _, _ := d.Register("leaver")
	w2, _, _ := d.Register("stayer")

	res := doAsync(d, "job-f")
	if g, err := d.Lease(w1, time.Second); err != nil || g == nil {
		t.Fatalf("w1 lease: %v %v", g, err)
	}
	if err := d.Deregister(w1); err != nil {
		t.Fatal(err)
	}
	g2, err := d.Lease(w2, time.Second)
	if err != nil || g2 == nil || g2.Hash != "job-f" {
		t.Fatalf("lease after deregister: %v %v", g2, err)
	}
	rec := testRecord(3)
	d.Complete(w2, g2.LeaseID, "job-f", &rec, "")
	if got := <-res; got.err != nil || got.rec.TimeNS != 3 {
		t.Fatalf("Do returned (%+v, %v)", got.rec, got.err)
	}
	if st := d.Stats(); st.LeasesRevoked != 1 {
		t.Fatalf("leasesRevoked=%d, want 1", st.LeasesRevoked)
	}
}

// TestDoContextCancel checks a canceled waiter detaches without killing
// the task.
func TestDoContextCancel(t *testing.T) {
	d := New(quietCfg())
	defer d.Close()
	d.Register("w")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.Do(ctx, JobRef{}, "job-g"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do with canceled ctx: %v", err)
	}
}

// TestJobRefResolve checks the wire ref round-trips through the local
// registries and that a wrong hash is refused, not run.
func TestJobRefResolve(t *testing.T) {
	ref := JobRef{Apps: []string{"sor-nonzero"}, Backends: []string{"tmk"}, NProcs: []int{2}, Scale: 0.01, Index: 0}

	sel := harness.Selection{Apps: ref.Apps, Backends: ref.Backends, NProcs: ref.NProcs}
	grid, err := sel.Resolve(ref.Scale)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := grid.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	want := harness.SpecHash(jobs[0])

	job, err := ref.Resolve(want)
	if err != nil {
		t.Fatalf("resolve with matching hash: %v", err)
	}
	if h := harness.SpecHash(job); h != want {
		t.Fatalf("resolved job hashes to %s, want %s", h, want)
	}

	if _, err := ref.Resolve("0000beef"); err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("resolve with wrong hash: %v, want mismatch refusal", err)
	}
	bad := ref
	bad.Index = 99
	if _, err := bad.Resolve(want); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("resolve with bad index: %v, want range refusal", err)
	}
}

// TestFaultConfigDeterminism pins the fault harness: exact ordinal
// triggers, precedence, and seed-stable rate draws.
func TestFaultConfigDeterminism(t *testing.T) {
	f := FaultConfig{CrashOnJob: 3, StallOnJob: 3, RejectOnJob: 5}
	if f.action(3) != faultCrash {
		t.Fatal("crash should take precedence over stall on the same ordinal")
	}
	if f.action(5) != faultReject {
		t.Fatal("reject ordinal should fire")
	}
	if f.action(1) != faultNone || f.action(4) != faultNone {
		t.Fatal("untargeted ordinals should be clean")
	}

	seeded := FaultConfig{Seed: 12345, RejectRate: 0.3, SlowRate: 0.3}
	var first []faultAction
	for n := 1; n <= 64; n++ {
		first = append(first, seeded.action(n))
	}
	var rejects, slows int
	for n := 1; n <= 64; n++ {
		if a := seeded.action(n); a != first[n-1] {
			t.Fatalf("draw for job %d not deterministic: %v then %v", n, first[n-1], a)
		} else if a == faultReject {
			rejects++
		} else if a == faultSlow {
			slows++
		}
	}
	if rejects == 0 || slows == 0 {
		t.Fatalf("seeded rates at 0.3 over 64 jobs drew rejects=%d slows=%d; expected both nonzero", rejects, slows)
	}
	other := FaultConfig{Seed: 99999, RejectRate: 0.3, SlowRate: 0.3}
	same := true
	for n := 1; n <= 64; n++ {
		if other.action(n) != first[n-1] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault patterns")
	}
}

// TestLastWorkerExitFailsQueuedTasks pins the fleet-departure path: a
// job queued behind a fleet whose last worker leaves (gracefully or by
// liveness loss) must bounce back with ErrNoWorkers, not strand its
// waiter.
func TestLastWorkerExitFailsQueuedTasks(t *testing.T) {
	d := New(quietCfg())
	defer d.Close()
	w1, _, _ := d.Register("only")

	res := doAsync(d, "job-h")
	waitStat(t, d, "task queued", func(s Stats) bool { return s.TasksQueued == 1 })
	if err := d.Deregister(w1); err != nil {
		t.Fatal(err)
	}
	got := <-res
	if !errors.Is(got.err, ErrNoWorkers) {
		t.Fatalf("queued task after last worker left: %v, want ErrNoWorkers", got.err)
	}

	// Same via DrainWorker: a draining-only fleet takes no new leases,
	// so queued work must bounce too.
	w2, _, _ := d.Register("draining")
	res = doAsync(d, "job-i")
	waitStat(t, d, "second task queued", func(s Stats) bool { return s.TasksQueued == 1 })
	if err := d.DrainWorker(w2); err != nil {
		t.Fatal(err)
	}
	got = <-res
	if !errors.Is(got.err, ErrNoWorkers) {
		t.Fatalf("queued task after last worker drained: %v, want ErrNoWorkers", got.err)
	}
}
