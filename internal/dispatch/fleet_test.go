// Package dispatch_test holds the fleet end-to-end suite: a real serve
// API over a real dispatcher, workers speaking the HTTP protocol, and
// injected crashes/stalls mid-sweep — asserting the response bytes
// never differ from the local serial run.  It lives outside package
// dispatch because it imports internal/serve, which imports dispatch.
package dispatch_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/harness"
	"repro/internal/serve"
)

const (
	fleetScale = 0.01
	fleetQuery = "/v1/grid?apps=ep,is-small&backends=tmk,pvm&scenarios=base&nprocs=2,4&scale=0.01"
)

// fleetOracle computes the sweep the boring way: serial, local, no
// cache, no fleet — the byte-identity reference.
func fleetOracle(t *testing.T) []byte {
	t.Helper()
	sel := harness.Selection{
		Apps:      []string{"ep", "is-small"},
		Backends:  []string{"tmk", "pvm"},
		Scenarios: []string{"base"},
		NProcs:    []int{2, 4},
	}
	grid, err := sel.Resolve(fleetScale)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := grid.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := harness.RunJobs(jobs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := harness.WriteJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fleetServer boots a serve API fronting a dispatcher with fast
// recovery intervals.
func fleetServer(t *testing.T, cfg dispatch.Config) (*serve.Server, *dispatch.Dispatcher, *httptest.Server) {
	t.Helper()
	store, err := serve.NewStore(0, "")
	if err != nil {
		t.Fatal(err)
	}
	d := dispatch.New(cfg)
	t.Cleanup(d.Close)
	srv := serve.New(serve.Options{Scale: fleetScale, Workers: 2, Store: store, Dispatcher: d})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, d, ts
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFleetByteIdenticalUnderFaults is the acceptance sweep: three
// workers — one crashes on its first job (heartbeats cease, like a
// SIGKILL), one stalls on its first job holding the lease forever, one
// healthy — and the grid response must still be byte-identical to the
// local serial run, with the recoveries visible in the stats.
func TestFleetByteIdenticalUnderFaults(t *testing.T) {
	want := fleetOracle(t)

	srv, d, ts := fleetServer(t, dispatch.Config{
		LeaseTTL:   1 * time.Second,
		Heartbeat:  100 * time.Millisecond, // liveness 300ms
		RetryBase:  10 * time.Millisecond,
		RetryCap:   100 * time.Millisecond,
		HedgeAfter: -1, // force the expiry path: the hedge would rescue the stalled job first
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 3)
	for _, w := range []struct {
		name   string
		faults dispatch.FaultConfig
	}{
		{"crasher", dispatch.FaultConfig{CrashOnJob: 1}},
		{"staller", dispatch.FaultConfig{StallOnJob: 1}},
		{"healthy", dispatch.FaultConfig{}},
	} {
		wk := dispatch.NewWorker(dispatch.WorkerOptions{
			Coordinator: ts.URL,
			Name:        w.name,
			PollWait:    50 * time.Millisecond,
			Faults:      w.faults,
		})
		go func() { runErr <- wk.Run(ctx) }()
	}
	waitCond(t, "3 workers registered", func() bool {
		st := d.Stats()
		return st.WorkersLive+st.WorkersDraining == 3
	})

	status, body := httpGet(t, ts.URL+fleetQuery)
	if status != http.StatusOK {
		t.Fatalf("fleet sweep: status %d, body %s", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("fleet sweep bytes differ from local serial run:\nfleet: %s\nlocal: %s", body, want)
	}

	// The crasher must have died on a job (revoked at the liveness
	// deadline), the staller's lease must have expired, and both jobs
	// must have been reassigned — the sweep could not have finished
	// otherwise.
	st := srv.Stats()
	if st.Dispatch == nil {
		t.Fatal("stats missing dispatch section")
	}
	if st.Dispatch.WorkersLost < 1 {
		t.Errorf("workers_lost = %d, want >= 1 (crashed worker)", st.Dispatch.WorkersLost)
	}
	if st.Dispatch.LeasesExpired < 1 {
		t.Errorf("leases_expired = %d, want >= 1 (stalled worker)", st.Dispatch.LeasesExpired)
	}
	if st.Dispatch.Reassigned < 2 {
		t.Errorf("reassigned = %d, want >= 2 (crash + stall)", st.Dispatch.Reassigned)
	}
	if st.Dispatched < 1 {
		t.Errorf("dispatched = %d, want >= 1", st.Dispatched)
	}
	if st.Dispatched+st.Fallbacks != 8 || st.RecordsServed != 8 {
		t.Errorf("dispatched=%d fallbacks=%d records=%d, want dispatched+fallbacks == records == 8",
			st.Dispatched, st.Fallbacks, st.RecordsServed)
	}

	// A warm replay needs no fleet at all and returns the same bytes.
	status, warm := httpGet(t, ts.URL+fleetQuery)
	if status != http.StatusOK || !bytes.Equal(warm, want) {
		t.Fatalf("warm replay: status %d, bytes equal %v", status, bytes.Equal(warm, want))
	}

	cancel()
	var crashed, stalled bool
	for i := 0; i < 3; i++ {
		select {
		case err := <-runErr:
			switch {
			case errors.Is(err, dispatch.ErrCrashed):
				crashed = true
			case errors.Is(err, dispatch.ErrStalled):
				stalled = true
			case err != nil:
				t.Errorf("worker exit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("worker did not exit after drain")
		}
	}
	if !crashed || !stalled {
		t.Errorf("crashed=%v stalled=%v, want both injected faults to have fired", crashed, stalled)
	}
}

// TestFleetDrainFallsBackLocal drains the only worker mid-sweep (its
// context cancels while it stalls on its third job) and checks the
// sweep still completes with the exact serial bytes: dispatched jobs
// from before the drain, local fallback for the rest.
func TestFleetDrainFallsBackLocal(t *testing.T) {
	want := fleetOracle(t)

	srv, _, ts := fleetServer(t, dispatch.Config{
		LeaseTTL:  1 * time.Second,
		Heartbeat: 100 * time.Millisecond,
		RetryBase: 10 * time.Millisecond,
		RetryCap:  100 * time.Millisecond,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wk := dispatch.NewWorker(dispatch.WorkerOptions{
		Coordinator: ts.URL,
		Name:        "drainee",
		PollWait:    50 * time.Millisecond,
		Faults:      dispatch.FaultConfig{StallOnJob: 3},
	})
	runErr := make(chan error, 1)
	go func() { runErr <- wk.Run(ctx) }()
	waitCond(t, "worker registered", func() bool { return srv.Stats().Dispatch.WorkersLive == 1 })

	sweep := make(chan []byte, 1)
	go func() {
		_, body := httpGet(t, ts.URL+fleetQuery)
		sweep <- body
	}()

	// Let the fleet serve two jobs, then pull the worker out from under
	// the sweep (it is wedged on its third lease by then, or about to
	// be — either way the drain must hand the rest back to local
	// compute).
	waitCond(t, "2 jobs dispatched", func() bool { return srv.Stats().Dispatched >= 2 })
	cancel()

	select {
	case body := <-sweep:
		if !bytes.Equal(body, want) {
			t.Fatalf("drained sweep bytes differ from local serial run:\nfleet: %s\nlocal: %s", body, want)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("sweep did not complete after worker drain")
	}

	st := srv.Stats()
	if st.Dispatched < 2 || st.Fallbacks < 1 || st.Computed < 1 {
		t.Errorf("dispatched=%d fallbacks=%d computed=%d, want >=2/>=1/>=1",
			st.Dispatched, st.Fallbacks, st.Computed)
	}
	if st.Dispatched+st.Fallbacks != 8 {
		t.Errorf("dispatched=%d + fallbacks=%d != 8 jobs", st.Dispatched, st.Fallbacks)
	}

	select {
	case err := <-runErr:
		if err != nil && !errors.Is(err, dispatch.ErrStalled) {
			t.Errorf("worker exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit")
	}
}

// TestFleetNoWorkersComputesLocally checks a dispatcher-equipped server
// with an empty fleet behaves exactly like a plain one: local compute,
// no fallback counting (nothing was ever dispatched), same bytes.
func TestFleetNoWorkersComputesLocally(t *testing.T) {
	want := fleetOracle(t)
	srv, _, ts := fleetServer(t, dispatch.Config{})

	status, body := httpGet(t, ts.URL+fleetQuery)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("empty-fleet sweep bytes differ from local serial run")
	}
	st := srv.Stats()
	if st.Computed != 8 || st.Dispatched != 0 || st.Fallbacks != 0 {
		t.Errorf("computed=%d dispatched=%d fallbacks=%d, want 8/0/0", st.Computed, st.Dispatched, st.Fallbacks)
	}
	if st.Dispatch == nil {
		t.Error("stats missing dispatch section")
	}
}

// TestWorkerRejectCompletesElsewhere runs a two-worker fleet where one
// worker rejects its first job with an injected error: the job must be
// requeued and completed by the other worker, not failed.
func TestWorkerRejectCompletesElsewhere(t *testing.T) {
	want := fleetOracle(t)
	srv, d, ts := fleetServer(t, dispatch.Config{
		LeaseTTL:  2 * time.Second,
		Heartbeat: 100 * time.Millisecond,
		RetryBase: 10 * time.Millisecond,
		RetryCap:  100 * time.Millisecond,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 2)
	for i, faults := range []dispatch.FaultConfig{{RejectOnJob: 1}, {}} {
		wk := dispatch.NewWorker(dispatch.WorkerOptions{
			Coordinator: ts.URL,
			Name:        fmt.Sprintf("w%d", i),
			PollWait:    50 * time.Millisecond,
			Faults:      faults,
		})
		go func() { runErr <- wk.Run(ctx) }()
	}
	waitCond(t, "2 workers registered", func() bool { return d.Stats().WorkersLive == 2 })

	status, body := httpGet(t, ts.URL+fleetQuery)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("reject-fleet sweep bytes differ from local serial run")
	}
	st := srv.Stats()
	if st.Dispatch.WorkerErrors < 1 || st.Dispatch.Reassigned < 1 {
		t.Errorf("worker_errors=%d reassigned=%d, want >= 1 each", st.Dispatch.WorkerErrors, st.Dispatch.Reassigned)
	}
	if st.Dispatched != 8 || st.Computed != 0 {
		t.Errorf("dispatched=%d computed=%d, want 8/0 (rejected job completes on the other worker)", st.Dispatched, st.Computed)
	}

	cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-runErr:
			if err != nil {
				t.Errorf("worker exit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("worker did not exit after drain")
		}
	}
}
