package dispatch

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/harness"
)

// Wire bodies of the /v1/dispatch endpoints.  All endpoints are POST
// with JSON bodies; an unknown worker id answers 410 Gone so the
// worker knows to re-register (its registration died with a previous
// coordinator incarnation or the liveness reaper).

type registerRequest struct {
	Name string `json:"name"`
}

type registerReply struct {
	WorkerID        string `json:"worker_id"`
	LeaseTTLMillis  int64  `json:"lease_ttl_ms"`
	HeartbeatMillis int64  `json:"heartbeat_ms"`
}

type leaseRequest struct {
	WorkerID   string `json:"worker_id"`
	WaitMillis int64  `json:"wait_ms"`
}

type completeRequest struct {
	WorkerID string          `json:"worker_id"`
	LeaseID  string          `json:"lease_id"`
	Hash     string          `json:"hash"`
	Record   *harness.Record `json:"record,omitempty"`
	Error    string          `json:"error,omitempty"`
}

type completeReply struct {
	Accepted bool `json:"accepted"`
}

type heartbeatRequest struct {
	WorkerID string `json:"worker_id"`
}

type heartbeatReply struct {
	Draining bool `json:"draining"`
}

type workerIDRequest struct {
	WorkerID string `json:"worker_id"`
}

// maxLeaseWait caps a single long-poll so a dead client cannot pin a
// handler goroutine indefinitely.
const maxLeaseWait = 30 * time.Second

// Handler returns the coordinator's worker-facing route mux, serving
// under /v1/dispatch/.  The serve API mounts it next to /v1/grid.
func (d *Dispatcher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/dispatch/register", func(w http.ResponseWriter, r *http.Request) {
		var req registerRequest
		if !decodeBody(w, r, &req) {
			return
		}
		id, ttl, hb := d.Register(req.Name)
		writeJSON(w, registerReply{
			WorkerID:        id,
			LeaseTTLMillis:  ttl.Milliseconds(),
			HeartbeatMillis: hb.Milliseconds(),
		})
	})
	mux.HandleFunc("/v1/dispatch/lease", func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if !decodeBody(w, r, &req) {
			return
		}
		wait := time.Duration(req.WaitMillis) * time.Millisecond
		if wait <= 0 || wait > maxLeaseWait {
			wait = maxLeaseWait
		}
		g, err := d.Lease(req.WorkerID, wait)
		if err != nil {
			writeDispatchError(w, err)
			return
		}
		if g == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, g)
	})
	mux.HandleFunc("/v1/dispatch/complete", func(w http.ResponseWriter, r *http.Request) {
		var req completeRequest
		if !decodeBody(w, r, &req) {
			return
		}
		accepted, err := d.Complete(req.WorkerID, req.LeaseID, req.Hash, req.Record, req.Error)
		if err != nil {
			writeDispatchError(w, err)
			return
		}
		writeJSON(w, completeReply{Accepted: accepted})
	})
	mux.HandleFunc("/v1/dispatch/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if !decodeBody(w, r, &req) {
			return
		}
		draining, err := d.Heartbeat(req.WorkerID)
		if err != nil {
			writeDispatchError(w, err)
			return
		}
		writeJSON(w, heartbeatReply{Draining: draining})
	})
	mux.HandleFunc("/v1/dispatch/drain", func(w http.ResponseWriter, r *http.Request) {
		var req workerIDRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if err := d.DrainWorker(req.WorkerID); err != nil {
			writeDispatchError(w, err)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("/v1/dispatch/deregister", func(w http.ResponseWriter, r *http.Request) {
		var req workerIDRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if err := d.Deregister(req.WorkerID); err != nil {
			writeDispatchError(w, err)
			return
		}
		writeJSON(w, struct{}{})
	})
	return mux
}

func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, `{"error":"POST only"}`, http.StatusMethodNotAllowed)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(dst); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, "bad request body: "+err.Error()), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeDispatchError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownWorker):
		status = http.StatusGone
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{err.Error()})
}
