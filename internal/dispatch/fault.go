package dispatch

import "time"

// FaultConfig is the deterministic worker-fault harness: it makes a
// worker misbehave on exactly reproducible jobs so every recovery path
// in the dispatcher — lease expiry, liveness revocation, error
// requeue, duplicate suppression — is exercised by seeded tests and CI
// rather than by luck.  Jobs are numbered 1,2,... in the order this
// worker leases them; the *OnJob triggers fire on that ordinal, and the
// *Rate draws are a pure splitmix64 hash of (Seed, ordinal, kind) —
// the same decision pattern as vnet's message-fault layer, independent
// of timing or scheduling.
type FaultConfig struct {
	// Seed keys the rate draws.  Two workers with the same config and
	// seed misbehave on the same job ordinals.
	Seed uint64

	// CrashOnJob kills the worker while it handles its nth leased job
	// (1-based): the run loop stops without completing and heartbeats
	// cease, as if the process were SIGKILLed.  0 disables.
	CrashOnJob int

	// StallOnJob wedges the worker on its nth leased job: the lease is
	// held, heartbeats continue, but no completion ever arrives — the
	// pure lease-expiry path, with the worker still "live".  0 disables.
	StallOnJob int

	// RejectOnJob fails the nth leased job with an injected error.
	// 0 disables.
	RejectOnJob int

	// RejectRate is a seeded per-job probability of rejecting.
	RejectRate float64

	// SlowRate is a seeded per-job probability of sleeping SlowDelay
	// before completing (straggler emulation for the hedging path).
	SlowRate float64

	// SlowDelay is the injected straggler delay (default 2x the lease
	// TTL when a slow draw fires with no delay configured, which
	// guarantees the lease expires first).
	SlowDelay time.Duration
}

type faultAction int

const (
	faultNone faultAction = iota
	faultCrash
	faultStall
	faultReject
	faultSlow
)

// Draw kinds keep the per-ordinal decisions independent streams.
const (
	faultKindReject uint64 = 0x72656a // "rej"
	faultKindSlow   uint64 = 0x736c6f // "slo"
)

// splitmix64 is the finalizing mixer of the splitmix64 generator: a
// cheap, well-distributed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns a uniform [0,1) decision for (seed, ordinal, kind).
func draw(seed uint64, n int, kind uint64) float64 {
	h := splitmix64(splitmix64(seed^uint64(n)) + kind)
	return float64(h>>11) / (1 << 53)
}

// action decides what this worker does with its nth leased job.  Exact
// ordinal triggers take precedence over rate draws; crash beats stall
// beats reject beats slow.
func (f FaultConfig) action(n int) faultAction {
	switch {
	case f.CrashOnJob > 0 && n == f.CrashOnJob:
		return faultCrash
	case f.StallOnJob > 0 && n == f.StallOnJob:
		return faultStall
	case f.RejectOnJob > 0 && n == f.RejectOnJob:
		return faultReject
	case f.RejectRate > 0 && draw(f.Seed, n, faultKindReject) < f.RejectRate:
		return faultReject
	case f.SlowRate > 0 && draw(f.Seed, n, faultKindSlow) < f.SlowRate:
		return faultSlow
	}
	return faultNone
}
