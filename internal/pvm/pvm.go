// Package pvm reimplements the user-visible interface of the Parallel
// Virtual Machine message-passing library (paper §2.1) on top of the
// simulated cluster.
//
// As in PVM 3.3, user data is packed into a typed send buffer before
// dispatch and unpacked from a receive buffer afterwards; pack and unpack
// calls must match in type and item count.  Sends are non-blocking (the
// buffer is handed to the transport and the call returns); receives come
// in blocking (Recv) and non-blocking (NRecv) flavors.  Multicast and
// broadcast primitives send to several destinations.
//
// Processes communicate over direct TCP connections (the configuration the
// paper measures), so the accounting matches the paper's PVM columns in
// Table 2: one message per user-level send, bytes of user data only.
// XDR conversion is modeled as an optional per-byte CPU cost and is
// disabled by default, as in the paper (identical machines).
package pvm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sim"
	"repro/internal/vnet"
)

// System is one PVM virtual machine: a set of processes on the simulated
// cluster.  Process ids ("tids") are dense integers; ids 0..n-1 are the
// regular processes and ids ≥ n are extra processes (e.g. a master that
// shares a node with slave 0, as in the paper's TSP and QSORT).
type System struct {
	eng  *sim.Engine
	net  *vnet.Network
	n    int
	eps  []*vnet.Endpoint
	xdr  bool
	xdrC sim.Time // per-byte XDR conversion cost when enabled
}

// New creates a PVM system with n regular processes.
func New(eng *sim.Engine, net *vnet.Network, n int) *System {
	if n < 1 {
		panic("pvm: need at least one process")
	}
	s := &System{eng: eng, net: net, n: n}
	for i := 0; i < n; i++ {
		// Endpoint id == process id: messages carry the sender's process
		// id, so receivers address peers by id even when extra processes
		// share a node (SpawnExtraAt).
		s.eps = append(s.eps, net.NewEndpointID(i, i, false))
	}
	return s
}

// EnableXDR turns on external-data-representation conversion, charging
// perByte of CPU at both pack and unpack time.  The paper disables XDR
// because all machines are identical; tests exercise both settings.
func (s *System) EnableXDR(perByte sim.Time) {
	s.xdr = true
	s.xdrC = perByte
}

// NumTasks returns the number of regular processes.
func (s *System) NumTasks() int { return s.n }

// Spawn registers the body for regular process id.
func (s *System) Spawn(id int, body func(*Proc)) {
	if id < 0 || id >= s.n {
		panic(fmt.Sprintf("pvm: spawn id %d out of range", id))
	}
	p := &Proc{sys: s, id: id, ep: s.eps[id]}
	s.eng.Spawn(fmt.Sprintf("pvm%d", id), false, func(c *sim.Ctx) {
		p.ctx = c
		body(p)
	})
}

// SpawnExtra registers an additional process (id ≥ n), such as the master
// in a master/slave decomposition, on a fresh node of its own.  It
// returns the new process id.  The extra process gets its own endpoint
// and exchanges real messages with every slave.
func (s *System) SpawnExtra(name string, body func(*Proc)) int {
	return s.SpawnExtraAt(name, -1, body)
}

// SpawnExtraAt registers an additional process placed on the given node:
// -1 means a fresh node of its own (SpawnExtra), while an existing node
// id co-locates the process with that node's regular process — traffic
// between the two crosses loopback, costs almost nothing and is not
// counted as user messages, modeling the paper's master sharing a
// workstation with slave 0.  Addressing is by process id either way:
// messages carry the sender's process id, so Recv(src, tag) with src
// naming the extra process matches only it, and Buffer.Src() reports the
// true sender even when two processes share a node.
func (s *System) SpawnExtraAt(name string, node int, body func(*Proc)) int {
	id := len(s.eps)
	if node < 0 {
		node = id
	} else if node >= s.n {
		panic(fmt.Sprintf("pvm: extra process placed on unknown node %d", node))
	}
	ep := s.net.NewEndpointID(node, id, false)
	s.eps = append(s.eps, ep)
	p := &Proc{sys: s, id: id, ep: ep}
	s.eng.Spawn(name, false, func(c *sim.Ctx) {
		p.ctx = c
		body(p)
	})
	return id
}

// UserStats sums user-level message statistics across all processes:
// the quantities the paper reports for PVM in Table 2.
func (s *System) UserStats() vnet.Stats {
	var st vnet.Stats
	for _, ep := range s.eps {
		st.Add(ep.Stats())
	}
	return st
}

// packPerByte is the modeled memcpy cost of packing or unpacking user data.
const packPerByte = 5 * sim.Nanosecond

// Proc is one PVM process.
type Proc struct {
	sys  *System
	id   int
	ep   *vnet.Endpoint
	ctx  *sim.Ctx
	send *Buffer

	// sendHint estimates this process's next message size from the sizes
	// it has dispatched.  Applications send the same message shapes over
	// and over (boundary rows, force blocks, count arrays), so presizing
	// the next send buffer eliminates the repeated grow-and-copy
	// reallocations on the pack path.  Send buffers cannot be pooled
	// outright — their bytes are handed to the transport without a copy
	// — but their capacity is known in advance.  The hint rises to the
	// observed size immediately and decays geometrically when messages
	// shrink, so one huge send (QSORT's initial full-array shipment)
	// does not pin every later buffer at its capacity.
	sendHint int
}

// ID returns the process id (0-based).
func (p *Proc) ID() int { return p.id }

// N returns the number of regular processes in the system.
func (p *Proc) N() int { return p.sys.n }

// Ctx exposes the underlying sim context for compute-cost charging.
func (p *Proc) Ctx() *sim.Ctx { return p.ctx }

// Now returns the process's virtual clock.
func (p *Proc) Now() sim.Time { return p.ctx.Now() }

// Compute charges local computation time.
func (p *Proc) Compute(d sim.Time) { p.ctx.Compute(d) }

// InitSend clears and returns the process's send buffer (pvm_initsend),
// presized to the largest message this process has dispatched so far.
func (p *Proc) InitSend() *Buffer {
	p.send = &Buffer{proc: p}
	if p.sendHint > 0 {
		p.send.data = make([]byte, 0, p.sendHint)
	}
	return p.send
}

// SendBuf returns the current send buffer, or panics if InitSend has not
// been called.
func (p *Proc) SendBuf() *Buffer {
	if p.send == nil {
		panic("pvm: Send without InitSend")
	}
	return p.send
}

// Send dispatches the current send buffer to dst with the given tag
// (pvm_send).  The send is non-blocking: it returns once the buffer has
// been handed to the transport.
//
// The packed bytes are handed to the transport without a defensive copy:
// Pack* calls only ever append, so later packing into this or a fresh
// buffer (InitSend) cannot alter bytes already in flight.
func (p *Proc) Send(dst, tag int) {
	buf := p.SendBuf()
	p.sys.checkDst(dst)
	p.noteSent(len(buf.data))
	p.ep.Send(p.ctx, p.sys.eps[dst], tag, buf.data)
}

// noteSent records a dispatched message size for InitSend presizing:
// rise immediately, decay halfway toward smaller sizes.
func (p *Proc) noteSent(n int) {
	if n >= p.sendHint {
		p.sendHint = n
	} else {
		p.sendHint -= (p.sendHint - n) / 2
	}
}

// Mcast dispatches the current send buffer to each destination
// (pvm_mcast).  Each destination counts as one user-level message.
// Destinations share one payload; receive buffers never mutate it.
func (p *Proc) Mcast(dsts []int, tag int) {
	buf := p.SendBuf()
	p.noteSent(len(buf.data))
	for _, d := range dsts {
		p.sys.checkDst(d)
		p.ep.Send(p.ctx, p.sys.eps[d], tag, buf.data)
	}
}

// Bcast dispatches the current send buffer to every regular process except
// the sender.
func (p *Proc) Bcast(tag int) {
	var dsts []int
	for i := 0; i < p.sys.n; i++ {
		if i != p.id {
			dsts = append(dsts, i)
		}
	}
	p.Mcast(dsts, tag)
}

// Recv blocks until a message with the given source and tag arrives
// (pvm_recv).  Negative src or tag match anything; src is a process id.
// The returned buffer is positioned for unpacking.  The transport
// envelope is recycled here; the payload bytes live on inside the buffer.
func (p *Proc) Recv(src, tag int) *Buffer {
	m := p.ep.Recv(p.ctx, src, tag)
	b := &Buffer{proc: p, data: m.Payload, src: m.From, tag: m.Tag}
	p.ep.Free(p.ctx, m)
	return b
}

// NRecv is the non-blocking receive (pvm_nrecv): it returns nil when no
// matching message has arrived yet, allowing the caller to overlap useful
// work with communication.
func (p *Proc) NRecv(src, tag int) *Buffer {
	m := p.ep.TryRecv(p.ctx, src, tag)
	if m == nil {
		return nil
	}
	b := &Buffer{proc: p, data: m.Payload, src: m.From, tag: m.Tag}
	p.ep.Free(p.ctx, m)
	return b
}

// Probe reports whether a matching message has arrived (pvm_probe).
func (p *Proc) Probe(src, tag int) bool {
	return p.ep.Probe(p.ctx, src, tag)
}

func (s *System) checkDst(dst int) {
	if dst < 0 || dst >= len(s.eps) {
		panic(fmt.Sprintf("pvm: destination %d out of range", dst))
	}
}

// Type tags for packed runs.
const (
	tInt32 byte = iota + 1
	tInt64
	tFloat64
	tBytes
)

func typeName(t byte) string {
	switch t {
	case tInt32:
		return "int32"
	case tInt64:
		return "int64"
	case tFloat64:
		return "float64"
	case tBytes:
		return "bytes"
	}
	return fmt.Sprintf("type%d", t)
}

// Buffer is a typed pack/unpack buffer.  Data is stored as a sequence of
// runs, each a (type, count) header followed by little-endian items.
// Unpack calls must match the corresponding pack calls in type and item
// count, as required by PVM.
type Buffer struct {
	proc *Proc
	data []byte
	rpos int
	src  int
	tag  int
}

// Src returns the sender's process id.
func (b *Buffer) Src() int { return b.src }

// Tag returns the tag of a received buffer.
func (b *Buffer) Tag() int { return b.tag }

// Len returns the encoded length in bytes (the user data the paper counts).
func (b *Buffer) Len() int { return len(b.data) }

func (b *Buffer) charge(n int) {
	if b.proc == nil {
		return
	}
	c := sim.Time(n) * packPerByte
	if b.proc.sys.xdr {
		c += sim.Time(n) * b.proc.sys.xdrC
	}
	b.proc.ctx.Compute(c)
}

func (b *Buffer) header(t byte, count int) {
	b.data = append(b.data, t)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(count))
	b.data = append(b.data, tmp[:]...)
}

// grow extends the buffer by n bytes in one step and returns the region
// to fill, so bulk packs cost one allocation check instead of one append
// per item.
func (b *Buffer) grow(n int) []byte {
	off := len(b.data)
	if cap(b.data)-off < n {
		nd := make([]byte, off, 2*off+n)
		copy(nd, b.data)
		b.data = nd
	}
	b.data = b.data[:off+n]
	return b.data[off:]
}

// PackInt32 packs count items from vals starting at offset 0 with the
// given stride (pvm_pkint).  stride 1 packs consecutive items.
func (b *Buffer) PackInt32(vals []int32, count, stride int) {
	checkStride(len(vals), count, stride)
	b.header(tInt32, count)
	dst := b.grow(4 * count)
	for i := 0; i < count; i++ {
		binary.LittleEndian.PutUint32(dst[4*i:], uint32(vals[i*stride]))
	}
	b.charge(4 * count)
}

// PackInt64 packs count int64 items with the given stride (pvm_pklong).
func (b *Buffer) PackInt64(vals []int64, count, stride int) {
	checkStride(len(vals), count, stride)
	b.header(tInt64, count)
	dst := b.grow(8 * count)
	for i := 0; i < count; i++ {
		binary.LittleEndian.PutUint64(dst[8*i:], uint64(vals[i*stride]))
	}
	b.charge(8 * count)
}

// PackFloat64 packs count float64 items with the given stride
// (pvm_pkdouble).
func (b *Buffer) PackFloat64(vals []float64, count, stride int) {
	checkStride(len(vals), count, stride)
	b.header(tFloat64, count)
	dst := b.grow(8 * count)
	for i := 0; i < count; i++ {
		binary.LittleEndian.PutUint64(dst[8*i:], floatBits(vals[i*stride]))
	}
	b.charge(8 * count)
}

// PackBytes packs raw bytes (pvm_pkbyte, stride 1).
func (b *Buffer) PackBytes(vals []byte) {
	b.header(tBytes, len(vals))
	b.data = append(b.data, vals...)
	b.charge(len(vals))
}

// PackOneInt32 packs a single int32 value.
func (b *Buffer) PackOneInt32(v int32) { b.PackInt32([]int32{v}, 1, 1) }

// PackOneInt64 packs a single int64 value.
func (b *Buffer) PackOneInt64(v int64) { b.PackInt64([]int64{v}, 1, 1) }

// PackOneFloat64 packs a single float64 value.
func (b *Buffer) PackOneFloat64(v float64) { b.PackFloat64([]float64{v}, 1, 1) }

func (b *Buffer) readHeader(want byte, count int) {
	if b.rpos+5 > len(b.data) {
		panic(fmt.Sprintf("pvm: unpack past end of buffer (pos %d, len %d)", b.rpos, len(b.data)))
	}
	t := b.data[b.rpos]
	n := int(binary.LittleEndian.Uint32(b.data[b.rpos+1 : b.rpos+5]))
	if t != want {
		panic(fmt.Sprintf("pvm: unpack type mismatch: packed %s, unpacking %s", typeName(t), typeName(want)))
	}
	if n != count {
		panic(fmt.Sprintf("pvm: unpack count mismatch: packed %d %s items, unpacking %d", n, typeName(t), count))
	}
	b.rpos += 5
}

// UnpackInt32 unpacks count items into dst with the given stride.
func (b *Buffer) UnpackInt32(dst []int32, count, stride int) {
	checkStride(len(dst), count, stride)
	b.readHeader(tInt32, count)
	for i := 0; i < count; i++ {
		dst[i*stride] = int32(binary.LittleEndian.Uint32(b.data[b.rpos:]))
		b.rpos += 4
	}
	b.charge(4 * count)
}

// UnpackInt64 unpacks count int64 items into dst with the given stride.
func (b *Buffer) UnpackInt64(dst []int64, count, stride int) {
	checkStride(len(dst), count, stride)
	b.readHeader(tInt64, count)
	for i := 0; i < count; i++ {
		dst[i*stride] = int64(binary.LittleEndian.Uint64(b.data[b.rpos:]))
		b.rpos += 8
	}
	b.charge(8 * count)
}

// UnpackFloat64 unpacks count float64 items into dst with the given stride.
func (b *Buffer) UnpackFloat64(dst []float64, count, stride int) {
	checkStride(len(dst), count, stride)
	b.readHeader(tFloat64, count)
	for i := 0; i < count; i++ {
		dst[i*stride] = floatFromBits(binary.LittleEndian.Uint64(b.data[b.rpos:]))
		b.rpos += 8
	}
	b.charge(8 * count)
}

// UnpackBytes unpacks count raw bytes.
func (b *Buffer) UnpackBytes(count int) []byte {
	b.readHeader(tBytes, count)
	out := append([]byte(nil), b.data[b.rpos:b.rpos+count]...)
	b.rpos += count
	b.charge(count)
	return out
}

// UnpackOneInt32 unpacks a single int32 value.
func (b *Buffer) UnpackOneInt32() int32 {
	var v [1]int32
	b.UnpackInt32(v[:], 1, 1)
	return v[0]
}

// UnpackOneInt64 unpacks a single int64 value.
func (b *Buffer) UnpackOneInt64() int64 {
	var v [1]int64
	b.UnpackInt64(v[:], 1, 1)
	return v[0]
}

// UnpackOneFloat64 unpacks a single float64 value.
func (b *Buffer) UnpackOneFloat64() float64 {
	var v [1]float64
	b.UnpackFloat64(v[:], 1, 1)
	return v[0]
}

func checkStride(n, count, stride int) {
	if stride < 1 {
		panic("pvm: stride must be >= 1")
	}
	if count < 0 || (count > 0 && (count-1)*stride >= n) {
		panic(fmt.Sprintf("pvm: pack/unpack of %d items with stride %d overruns slice of %d", count, stride, n))
	}
}
