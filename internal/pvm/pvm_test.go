package pvm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/vnet"
)

func newWorld(n int) (*sim.Engine, *System) {
	eng := sim.NewEngine()
	net := vnet.New(vnet.FDDI())
	return eng, New(eng, net, n)
}

func TestPingPong(t *testing.T) {
	eng, sys := newWorld(2)
	sys.Spawn(0, func(p *Proc) {
		b := p.InitSend()
		b.PackOneInt32(42)
		b.PackFloat64([]float64{1.5, 2.5, 3.5}, 3, 1)
		p.Send(1, 9)
		r := p.Recv(1, 10)
		if got := r.UnpackOneInt32(); got != 43 {
			t.Errorf("reply = %d, want 43", got)
		}
	})
	sys.Spawn(1, func(p *Proc) {
		r := p.Recv(0, 9)
		if got := r.UnpackOneInt32(); got != 42 {
			t.Errorf("got %d, want 42", got)
		}
		fs := make([]float64, 3)
		r.UnpackFloat64(fs, 3, 1)
		if fs[0] != 1.5 || fs[1] != 2.5 || fs[2] != 3.5 {
			t.Errorf("floats = %v", fs)
		}
		b := p.InitSend()
		b.PackOneInt32(43)
		p.Send(0, 10)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := sys.UserStats()
	if st.Messages != 2 {
		t.Fatalf("messages = %d, want 2", st.Messages)
	}
}

func TestStridePackUnpack(t *testing.T) {
	eng, sys := newWorld(2)
	src := []int32{0, 10, 1, 11, 2, 12, 3, 13}
	sys.Spawn(0, func(p *Proc) {
		b := p.InitSend()
		b.PackInt32(src[1:], 4, 2) // 10, 11, 12, 13
		p.Send(1, 1)
	})
	sys.Spawn(1, func(p *Proc) {
		r := p.Recv(0, 1)
		dst := make([]int32, 7)
		r.UnpackInt32(dst, 4, 2) // positions 0,2,4,6
		want := []int32{10, 0, 11, 0, 12, 0, 13}
		for i := range want {
			if dst[i] != want[i] {
				t.Errorf("dst = %v, want %v", dst, want)
				break
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	eng, sys := newWorld(2)
	sys.Spawn(0, func(p *Proc) {
		b := p.InitSend()
		b.PackOneFloat64(3.14)
		p.Send(1, 1)
	})
	sys.Spawn(1, func(p *Proc) {
		r := p.Recv(0, 1)
		r.UnpackOneInt32() // wrong type: must panic
	})
	err := eng.Run()
	if err == nil || !strings.Contains(err.Error(), "type mismatch") {
		t.Fatalf("err = %v, want type mismatch", err)
	}
}

func TestCountMismatchPanics(t *testing.T) {
	eng, sys := newWorld(2)
	sys.Spawn(0, func(p *Proc) {
		b := p.InitSend()
		b.PackInt32([]int32{1, 2, 3}, 3, 1)
		p.Send(1, 1)
	})
	sys.Spawn(1, func(p *Proc) {
		r := p.Recv(0, 1)
		dst := make([]int32, 2)
		r.UnpackInt32(dst, 2, 1)
	})
	err := eng.Run()
	if err == nil || !strings.Contains(err.Error(), "count mismatch") {
		t.Fatalf("err = %v, want count mismatch", err)
	}
}

func TestUnpackPastEndPanics(t *testing.T) {
	eng, sys := newWorld(2)
	sys.Spawn(0, func(p *Proc) {
		p.InitSend()
		p.Send(1, 1) // empty buffer
	})
	sys.Spawn(1, func(p *Proc) {
		r := p.Recv(0, 1)
		r.UnpackOneInt32()
	})
	err := eng.Run()
	if err == nil || !strings.Contains(err.Error(), "past end") {
		t.Fatalf("err = %v, want past-end panic", err)
	}
}

func TestBcastReachesAllOthers(t *testing.T) {
	const n = 5
	eng, sys := newWorld(n)
	got := make([]int32, n)
	sys.Spawn(0, func(p *Proc) {
		b := p.InitSend()
		b.PackOneInt32(99)
		p.Bcast(4)
	})
	for i := 1; i < n; i++ {
		id := i
		sys.Spawn(id, func(p *Proc) {
			got[id] = p.Recv(0, 4).UnpackOneInt32()
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if got[i] != 99 {
			t.Fatalf("proc %d got %d", i, got[i])
		}
	}
	if st := sys.UserStats(); st.Messages != n-1 {
		t.Fatalf("bcast counted %d messages, want %d", st.Messages, n-1)
	}
}

func TestMcastSubset(t *testing.T) {
	eng, sys := newWorld(4)
	sys.Spawn(0, func(p *Proc) {
		b := p.InitSend()
		b.PackOneInt32(7)
		p.Mcast([]int{2, 3}, 1)
	})
	sys.Spawn(1, func(p *Proc) {
		if p.NRecv(-1, -1) != nil {
			t.Error("proc 1 should receive nothing")
		}
	})
	for _, id := range []int{2, 3} {
		sys.Spawn(id, func(p *Proc) {
			if v := p.Recv(0, 1).UnpackOneInt32(); v != 7 {
				t.Errorf("got %d", v)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNRecvPolling(t *testing.T) {
	eng, sys := newWorld(2)
	sys.Spawn(0, func(p *Proc) {
		p.Compute(5 * sim.Millisecond)
		b := p.InitSend()
		b.PackOneInt32(1)
		p.Send(1, 2)
	})
	sys.Spawn(1, func(p *Proc) {
		polls := 0
		for {
			if r := p.NRecv(0, 2); r != nil {
				r.UnpackOneInt32()
				break
			}
			polls++
			p.Compute(sim.Millisecond) // "other useful work"
			p.Ctx().Yield()
		}
		if polls == 0 {
			t.Error("expected at least one empty poll before arrival")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendWithoutInitSendPanics(t *testing.T) {
	eng, sys := newWorld(2)
	sys.Spawn(0, func(p *Proc) {
		p.Send(1, 1)
	})
	sys.Spawn(1, func(p *Proc) {})
	err := eng.Run()
	if err == nil || !strings.Contains(err.Error(), "InitSend") {
		t.Fatalf("err = %v", err)
	}
}

func TestSpawnExtraMaster(t *testing.T) {
	eng, sys := newWorld(2)
	masterID := -1
	results := make(chan int32, 2) // buffered; engine is serial so no race
	sys.Spawn(0, func(p *Proc) {
		r := p.Recv(masterID, 5)
		results <- r.UnpackOneInt32()
	})
	sys.Spawn(1, func(p *Proc) {
		r := p.Recv(masterID, 5)
		results <- r.UnpackOneInt32()
	})
	masterID = sys.SpawnExtra("master", func(p *Proc) {
		for i := 0; i < 2; i++ {
			b := p.InitSend()
			b.PackOneInt32(int32(100 + i))
			p.Send(i, 5)
		}
	})
	if masterID != 2 {
		t.Fatalf("master id = %d, want 2", masterID)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	a, b := <-results, <-results
	if a+b != 201 {
		t.Fatalf("results %d + %d", a, b)
	}
}

func TestXDRChargesTime(t *testing.T) {
	run := func(xdr bool) sim.Time {
		eng, sys := newWorld(2)
		if xdr {
			sys.EnableXDR(100 * sim.Nanosecond)
		}
		sys.Spawn(0, func(p *Proc) {
			b := p.InitSend()
			b.PackFloat64(make([]float64, 10000), 10000, 1)
			p.Send(1, 1)
		})
		sys.Spawn(1, func(p *Proc) {
			dst := make([]float64, 10000)
			p.Recv(0, 1).UnpackFloat64(dst, 10000, 1)
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.MaxPrimaryClock()
	}
	plain, withXDR := run(false), run(true)
	if withXDR <= plain {
		t.Fatalf("XDR run (%v) should be slower than plain (%v)", withXDR, plain)
	}
}

// Property: pack/unpack round-trips arbitrary float64 slices exactly
// (including NaN bit patterns via the bits representation, which quick
// won't generate; NaN is covered separately below).
func TestPackUnpackRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		b := &Buffer{}
		b.PackFloat64(vals, len(vals), 1)
		out := make([]float64, len(vals))
		b.UnpackFloat64(out, len(vals), 1)
		for i := range vals {
			if vals[i] != out[i] && !(math.IsNaN(vals[i]) && math.IsNaN(out[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPackUnpackInt64RoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		b := &Buffer{}
		b.PackInt64(vals, len(vals), 1)
		out := make([]int64, len(vals))
		b.UnpackInt64(out, len(vals), 1)
		for i := range vals {
			if vals[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNaNRoundTrip(t *testing.T) {
	b := &Buffer{}
	b.PackOneFloat64(math.NaN())
	if v := b.UnpackOneFloat64(); !math.IsNaN(v) {
		t.Fatalf("NaN round-trip = %v", v)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	b := &Buffer{}
	b.PackBytes([]byte("hello world"))
	if got := string(b.UnpackBytes(11)); got != "hello world" {
		t.Fatalf("got %q", got)
	}
}

func TestBufferMetadata(t *testing.T) {
	eng, sys := newWorld(2)
	sys.Spawn(0, func(p *Proc) {
		b := p.InitSend()
		b.PackOneInt32(1)
		p.Send(1, 77)
	})
	sys.Spawn(1, func(p *Proc) {
		r := p.Recv(-1, -1)
		if r.Src() != 0 || r.Tag() != 77 {
			t.Errorf("src=%d tag=%d", r.Src(), r.Tag())
		}
		if r.Len() != 9 { // 5-byte header + 4-byte int32
			t.Errorf("len = %d, want 9", r.Len())
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStrideValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for overrunning stride")
		}
	}()
	b := &Buffer{}
	b.PackInt32([]int32{1, 2, 3}, 3, 2) // needs index 4: overrun
}

// TestProbe: probing does not consume the message.
func TestProbe(t *testing.T) {
	eng, sys := newWorld(2)
	sys.Spawn(0, func(p *Proc) {
		b := p.InitSend()
		b.PackOneInt32(5)
		p.Send(1, 9)
	})
	sys.Spawn(1, func(p *Proc) {
		p.Compute(10 * sim.Millisecond)
		p.Ctx().Yield()
		if !p.Probe(0, 9) {
			t.Error("probe should see the message")
		}
		if !p.Probe(0, 9) {
			t.Error("probe must not consume")
		}
		if v := p.Recv(0, 9).UnpackOneInt32(); v != 5 {
			t.Errorf("got %d", v)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFIFOBetweenPair: PVM messages between a pair preserve send order.
func TestFIFOBetweenPair(t *testing.T) {
	eng, sys := newWorld(2)
	const k = 10
	sys.Spawn(0, func(p *Proc) {
		for i := 0; i < k; i++ {
			b := p.InitSend()
			b.PackOneInt32(int32(i))
			p.Send(1, 1)
		}
	})
	sys.Spawn(1, func(p *Proc) {
		for i := 0; i < k; i++ {
			if v := p.Recv(0, 1).UnpackOneInt32(); v != int32(i) {
				t.Fatalf("got %d, want %d", v, i)
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestInitSendPresized pins the send-buffer presizing: after a message
// has been dispatched, the next InitSend returns a buffer whose capacity
// already covers a same-shaped message, so packing it never reallocates.
func TestInitSendPresized(t *testing.T) {
	eng, sys := newWorld(2)
	vals := make([]float64, 512)
	sys.Spawn(0, func(p *Proc) {
		for round := 0; round < 3; round++ {
			b := p.InitSend()
			if round > 0 {
				if got := cap(b.data); got < 5+8*len(vals) {
					t.Errorf("round %d: InitSend cap = %d, want >= %d", round, got, 5+8*len(vals))
				}
				before := &b.data[:1][0]
				b.PackFloat64(vals, len(vals), 1)
				if &b.data[0] != before {
					t.Errorf("round %d: pack reallocated a presized buffer", round)
				}
			} else {
				b.PackFloat64(vals, len(vals), 1)
			}
			p.Send(1, 1)
		}
	})
	sys.Spawn(1, func(p *Proc) {
		got := make([]float64, len(vals))
		for round := 0; round < 3; round++ {
			r := p.Recv(0, 1)
			r.UnpackFloat64(got, len(got), 1)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSpawnExtraAtColocated pins the placement axis at the pvm layer: an
// extra process on node 0 exchanges loopback (uncounted) messages with
// the regular process there, and process-id addressing still works.
func TestSpawnExtraAtColocated(t *testing.T) {
	eng, sys := newWorld(2)
	sys.Spawn(0, func(p *Proc) {
		b := p.InitSend()
		b.PackOneInt32(10)
		p.Send(2, 1)
		r := p.Recv(2, 2) // master by process id, though it sits on node 0
		if got := r.UnpackOneInt32(); got != 11 {
			t.Errorf("reply = %d, want 11", got)
		}
	})
	sys.Spawn(1, func(p *Proc) {
		b := p.InitSend()
		b.PackOneInt32(20)
		p.Send(2, 1)
		r := p.Recv(2, 2)
		if got := r.UnpackOneInt32(); got != 21 {
			t.Errorf("reply = %d, want 21", got)
		}
	})
	id := sys.SpawnExtraAt("master", 0, func(p *Proc) {
		for i := 0; i < 2; i++ {
			r := p.Recv(-1, 1)
			v := r.UnpackOneInt32()
			dst := 0
			if v == 20 {
				dst = 1
			}
			b := p.InitSend()
			b.PackOneInt32(v + 1)
			p.Send(dst, 2)
		}
	})
	if id != 2 {
		t.Fatalf("extra process id = %d, want 2", id)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Only the slave-1 exchanges cross the wire: 2 of 4 messages.
	if got := sys.UserStats().Messages; got != 2 {
		t.Errorf("counted messages = %d, want 2 (master/slave-0 is loopback)", got)
	}
}
