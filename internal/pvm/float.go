package pvm

import "math"

// floatBits and floatFromBits isolate the float64 wire representation.
func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(u uint64) float64 { return math.Float64frombits(u) }
