package stats

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:  "Table 1  Sequential Time of Applications",
		Header: []string{"Program", "Problem Size", "Time(sec)"},
	}
	tbl.AddRow("EP", "2^25", "105.0")
	tbl.AddRow("SOR-Zero", "2048x1536", "44.5")
	out := tbl.Render()
	if !strings.Contains(out, "Program") || !strings.Contains(out, "SOR-Zero") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every row's second column starts at the same offset.
	hdrIdx := strings.Index(lines[1], "Problem Size")
	rowIdx := strings.Index(lines[3], "2^25")
	if hdrIdx != rowIdx {
		t.Fatalf("misaligned columns: %d vs %d\n%s", hdrIdx, rowIdx, out)
	}
}

func TestSpeedup(t *testing.T) {
	seq := 80 * sim.Second
	par := []sim.Time{80 * sim.Second, 40 * sim.Second, 10 * sim.Second}
	s := Speedup(seq, par)
	if s[0] != 1 || s[1] != 2 || s[2] != 8 {
		t.Fatalf("speedups = %v", s)
	}
	if z := Speedup(seq, []sim.Time{0}); z[0] != 0 {
		t.Fatalf("zero time should give zero speedup, got %v", z[0])
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{
		Title: "Figure 1  EP",
		Series: []Series{
			{Name: "TreadMarks", X: []int{1, 2, 4, 8}, Y: []float64{1, 1.9, 3.8, 7.4}},
			{Name: "PVM", X: []int{1, 2, 4, 8}, Y: []float64{1, 2.0, 3.9, 7.6}},
		},
	}
	out := f.Render()
	for _, want := range []string{"Figure 1", "TreadMarks", "PVM", "nprocs", "7.40", "7.60"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Chart markers present.
	if !strings.Contains(out, "T") || !strings.Contains(out, "P") {
		t.Fatalf("chart markers missing:\n%s", out)
	}
}

func TestFigureRenderEmpty(t *testing.T) {
	f := Figure{Title: "empty"}
	if out := f.Render(); !strings.Contains(out, "empty") {
		t.Fatalf("empty figure render: %q", out)
	}
}
