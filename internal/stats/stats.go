// Package stats renders the tables and speedup figures of the evaluation:
// aligned text tables (Tables 1 and 2) and speedup-versus-processors
// series with a simple ASCII chart (Figures 1-12).
package stats

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
)

// Table is a titled text table with aligned columns.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Series is one curve of a speedup figure.
type Series struct {
	Name string
	X    []int     // processor counts
	Y    []float64 // speedups
}

// Figure is a set of speedup curves, one per system.
type Figure struct {
	Title  string
	Series []Series
}

// Speedup derives speedups from a sequential time and parallel times.
func Speedup(seq sim.Time, par []sim.Time) []float64 {
	out := make([]float64, len(par))
	for i, p := range par {
		if p > 0 {
			out[i] = seq.Seconds() / p.Seconds()
		}
	}
	return out
}

// Render prints the figure as a value table followed by an ASCII chart in
// the style of the paper's speedup plots (x: processors, y: speedup).
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)

	// Value table.
	tbl := Table{Header: []string{"nprocs"}}
	for _, s := range f.Series {
		tbl.Header = append(tbl.Header, s.Name)
	}
	if len(f.Series) > 0 {
		for i, x := range f.Series[0].X {
			row := []string{fmt.Sprintf("%d", x)}
			for _, s := range f.Series {
				row = append(row, fmt.Sprintf("%.2f", s.Y[i]))
			}
			tbl.AddRow(row...)
		}
	}
	b.WriteString(tbl.Render())

	// ASCII chart: rows from max speedup down to 1.
	maxY := 1.0
	maxX := 0
	for _, s := range f.Series {
		for _, y := range s.Y {
			if y > maxY {
				maxY = y
			}
		}
		for _, x := range s.X {
			if x > maxX {
				maxX = x
			}
		}
	}
	if maxX == 0 {
		return b.String()
	}
	const height = 12
	const colw = 6
	top := math.Ceil(maxY)
	marks := []byte{'T', 'P'} // TreadMarks, PVM
	grid := make([][]byte, height+1)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", (maxX+1)*colw))
	}
	for si, s := range f.Series {
		mark := byte('0' + si)
		if si < len(marks) {
			mark = marks[si]
		}
		for i, x := range s.X {
			r := int(math.Round((top - s.Y[i]) / top * float64(height)))
			if r < 0 {
				r = 0
			}
			if r > height {
				r = height
			}
			c := x * colw
			if grid[r][c] != ' ' {
				c++ // nudge overlapping points
			}
			grid[r][c] = mark
		}
	}
	fmt.Fprintf(&b, "\nspeedup (T=TreadMarks, P=PVM), y-max=%.0f\n", top)
	for r := 0; r <= height; r++ {
		y := top * float64(height-r) / float64(height)
		fmt.Fprintf(&b, "%5.1f |%s\n", y, strings.TrimRight(string(grid[r]), " "))
	}
	b.WriteString("      +")
	b.WriteString(strings.Repeat("-", (maxX+1)*colw-4))
	b.WriteByte('\n')
	b.WriteString("       ")
	for x := 1; x <= maxX; x++ {
		fmt.Fprintf(&b, "%*d", colw, x)
	}
	b.WriteString("   nprocs\n")
	return b.String()
}
