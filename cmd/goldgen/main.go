// Command goldgen dumps the modeled metrics (Time, Messages, Bytes) of
// every registered experiment under both systems at 2/4/8 processors.
// Its output is a stable golden reference: capture it before and after an
// engine or protocol change and diff — any difference means the change
// altered modeled physics, not just implementation.  The pinned values in
// internal/harness/golden_test.go are regenerated from this output.
package main

import (
	"flag"
	"fmt"

	"repro/internal/harness"
)

func main() {
	scale := flag.Float64("scale", 0.1, "workload scale (1.0 = paper scale)")
	flag.Parse()
	for _, r := range harness.Experiments(*scale) {
		for _, n := range []int{2, 4, 8} {
			tres, err := r.TMK(n)
			if err != nil {
				panic(err)
			}
			pres, err := r.PVM(n)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%s tmk n=%d time=%d msgs=%d bytes=%d\n", r.Name, n, tres.Time, tres.Net.Messages, tres.Net.Bytes)
			fmt.Printf("%s pvm n=%d time=%d msgs=%d bytes=%d\n", r.Name, n, pres.Time, pres.Net.Messages, pres.Net.Bytes)
		}
	}
}
