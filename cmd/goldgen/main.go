// Command goldgen dumps the modeled metrics (Time, Messages, Bytes) of
// every registered experiment under both systems at 2/4/8 processors.
// Its output is a stable golden reference: capture it before and after an
// engine or protocol change and diff — any difference means the change
// altered modeled physics, not just implementation.  The pinned values in
// internal/harness/golden_test.go are regenerated from this output:
//
//	go run ./cmd/goldgen -format go
//
// emits the Go table literal to paste over the `golden` map, so
// regeneration after an intentional model change is mechanical.
//
// goldgen is a thin view over the harness grid: it runs
// apps x {tmk,pvm} x base{2,4,8} and reformats the records.
package main

import (
	"flag"
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/harness"
)

var goldenProcs = []int{2, 4, 8}

func main() {
	scale := flag.Float64("scale", 0.1, "workload scale (1.0 = paper scale)")
	format := flag.String("format", "text", `output format: "text" (diffable lines) or "go" (golden_test.go table literal)`)
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "grid worker pool width (1 = serial); output is identical at any width")
	flag.Parse()

	apps := harness.Apps(*scale)
	recs, err := harness.Grid{
		Apps:      apps,
		Backends:  []core.Backend{core.TMK, core.PVM},
		Scenarios: harness.BaseScenarios(goldenProcs...),
		Workers:   *workers,
	}.Run()
	if err != nil {
		panic(err)
	}
	at := func(app, sys string, n int) harness.Record {
		for _, r := range recs {
			if r.App == app && r.Backend == sys && r.Procs == n {
				return r
			}
		}
		panic(fmt.Sprintf("goldgen: missing record %s/%s n=%d", app, sys, n))
	}

	switch *format {
	case "text":
		for _, app := range apps {
			for _, n := range goldenProcs {
				for _, sys := range []string{"tmk", "pvm"} {
					r := at(app.Name(), sys, n)
					fmt.Printf("%s %s n=%d time=%d msgs=%d bytes=%d\n",
						r.App, r.Backend, n, r.TimeNS, r.Messages, r.Bytes)
				}
			}
		}
	case "go":
		fmt.Printf("var golden = map[string]map[string][3]metric{\n")
		for _, app := range apps {
			fmt.Printf("\t%q: {\n", app.Name())
			for _, sys := range []string{"tmk", "pvm"} {
				fmt.Printf("\t\t%q: {\n", sys)
				for _, n := range goldenProcs {
					r := at(app.Name(), sys, n)
					fmt.Printf("\t\t\t{time: %d, msgs: %d, bytes: %d}, // n=%d\n",
						r.TimeNS, r.Messages, r.Bytes, n)
				}
				fmt.Printf("\t\t},\n")
			}
			fmt.Printf("\t},\n")
		}
		fmt.Printf("}\n")
	default:
		panic(fmt.Sprintf("goldgen: unknown format %q", *format))
	}
}
