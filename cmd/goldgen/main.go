// Command goldgen dumps the modeled metrics (Time, Messages, Bytes) of
// every registered experiment under both systems at 2/4/8 processors.
// Its output is a stable golden reference: capture it before and after an
// engine or protocol change and diff — any difference means the change
// altered modeled physics, not just implementation.  The pinned values in
// internal/harness/golden_test.go are regenerated from this output:
//
//	go run ./cmd/goldgen -format go
//
// emits the Go table literal to paste over the `golden` map, so
// regeneration after an intentional model change is mechanical.
package main

import (
	"flag"
	"fmt"

	"repro/internal/harness"
)

func main() {
	scale := flag.Float64("scale", 0.1, "workload scale (1.0 = paper scale)")
	format := flag.String("format", "text", `output format: "text" (diffable lines) or "go" (golden_test.go table literal)`)
	flag.Parse()

	type row struct {
		name      string
		sys       string
		time      [3]int64
		msgs      [3]int64
		bytesOnWr [3]int64
	}
	var rows []row
	for _, r := range harness.Experiments(*scale) {
		tr := row{name: r.Name, sys: "tmk"}
		pr := row{name: r.Name, sys: "pvm"}
		for i, n := range []int{2, 4, 8} {
			tres, err := r.TMK(n)
			if err != nil {
				panic(err)
			}
			pres, err := r.PVM(n)
			if err != nil {
				panic(err)
			}
			tr.time[i], tr.msgs[i], tr.bytesOnWr[i] = int64(tres.Time), tres.Net.Messages, tres.Net.Bytes
			pr.time[i], pr.msgs[i], pr.bytesOnWr[i] = int64(pres.Time), pres.Net.Messages, pres.Net.Bytes
		}
		rows = append(rows, tr, pr)
	}

	switch *format {
	case "text":
		for i := 0; i < len(rows); i += 2 {
			for j, n := range []int{2, 4, 8} {
				for _, r := range []row{rows[i], rows[i+1]} {
					fmt.Printf("%s %s n=%d time=%d msgs=%d bytes=%d\n",
						r.name, r.sys, n, r.time[j], r.msgs[j], r.bytesOnWr[j])
				}
			}
		}
	case "go":
		fmt.Printf("var golden = map[string]map[string][3]metric{\n")
		for i := 0; i < len(rows); i += 2 {
			fmt.Printf("\t%q: {\n", rows[i].name)
			for _, r := range []row{rows[i], rows[i+1]} {
				fmt.Printf("\t\t%q: {\n", r.sys)
				for j, n := range []int{2, 4, 8} {
					fmt.Printf("\t\t\t{time: %d, msgs: %d, bytes: %d}, // n=%d\n",
						r.time[j], r.msgs[j], r.bytesOnWr[j], n)
				}
				fmt.Printf("\t\t},\n")
			}
			fmt.Printf("\t},\n")
		}
		fmt.Printf("}\n")
	default:
		panic(fmt.Sprintf("goldgen: unknown format %q", *format))
	}
}
