// Command msvdsm regenerates the tables and figures of "Message Passing
// Versus Distributed Shared Memory on Networks of Workstations" (SC '95)
// on the simulated workstation cluster.
//
// Usage:
//
//	msvdsm table1                # Table 1: sequential times
//	msvdsm table2                # Table 2: messages and data at 8 procs
//	msvdsm fig <name>            # one speedup figure (e.g. fig sor-zero)
//	msvdsm figures               # all twelve speedup figures
//	msvdsm all                   # everything
//	msvdsm list                  # experiment names
//
// Flags:
//
//	-scale f   workload scale factor (default 1.0 = paper scale;
//	           0.1 runs in seconds for a quick look)
//	-procs n   maximum processor count for figures (default 8)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper scale)")
	procs := flag.Int("procs", 8, "maximum processor count for figures")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	runners := harness.Experiments(*scale)
	cmd := strings.ToLower(flag.Arg(0))
	var err error
	switch cmd {
	case "table1":
		err = printTable1(runners)
	case "table2":
		err = printTable2(runners)
	case "fig", "figure":
		if flag.NArg() < 2 {
			fmt.Fprintln(os.Stderr, "msvdsm fig <name>; see 'msvdsm list'")
			os.Exit(2)
		}
		err = printFigure(runners, flag.Arg(1), *procs)
	case "figures":
		err = printAllFigures(runners, *procs)
	case "ablate":
		var out string
		out, err = harness.Ablations(*scale)
		if err == nil {
			fmt.Println(out)
		}
	case "all":
		if err = printTable1(runners); err == nil {
			if err = printTable2(runners); err == nil {
				err = printAllFigures(runners, *procs)
			}
		}
	case "list":
		for _, n := range harness.Names(runners) {
			fmt.Println(n)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "msvdsm:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `msvdsm - PVM vs TreadMarks comparison (SC '95 reproduction)

usage: msvdsm [-scale f] [-procs n] <command>

commands:
  table1        sequential times of the applications (Table 1)
  table2        messages and data at 8 processors (Table 2)
  fig <name>    one speedup figure (Figures 1-12)
  figures       all twelve speedup figures
  ablate        page-size / MTU ablations and primitive microbenchmarks
  all           tables and figures
  list          experiment names
`)
	flag.PrintDefaults()
}

func printTable1(runners []harness.Runner) error {
	out, err := harness.Table1(runners)
	if err != nil {
		return err
	}
	fmt.Println(out)
	return nil
}

func printTable2(runners []harness.Runner) error {
	out, err := harness.Table2(runners)
	if err != nil {
		return err
	}
	fmt.Println(out)
	return nil
}

func printFigure(runners []harness.Runner, name string, procs int) error {
	r := harness.Find(runners, name)
	if r == nil {
		return fmt.Errorf("unknown experiment %q (try 'msvdsm list')", name)
	}
	fig, err := harness.FigureData(r, procs)
	if err != nil {
		return err
	}
	fmt.Println(fig.Render())
	return nil
}

func printAllFigures(runners []harness.Runner, procs int) error {
	for i := range runners {
		fig, err := harness.FigureData(&runners[i], procs)
		if err != nil {
			return err
		}
		fmt.Println(fig.Render())
	}
	return nil
}
