// Command msvdsm regenerates the tables and figures of "Message Passing
// Versus Distributed Shared Memory on Networks of Workstations" (SC '95)
// on the simulated workstation cluster, and runs arbitrary experiment
// grids (apps x backends x scenarios) beyond the paper's.
//
// Usage:
//
//	msvdsm table1                # Table 1: sequential times
//	msvdsm table2                # Table 2: messages and data at 8 procs
//	msvdsm fig <name>            # one speedup figure (e.g. fig sor-zero)
//	msvdsm figures               # all twelve speedup figures
//	msvdsm grid [grid flags]     # run a custom grid, emit records
//	msvdsm serve [serve flags]   # HTTP/JSON experiment service with a
//	                             # content-addressed result cache and an
//	                             # optional worker-fleet dispatcher
//	msvdsm worker [worker flags] # join a coordinator's fleet and run
//	                             # leased grid jobs
//	msvdsm ablate                # page-size / MTU ablations, microbenchmarks
//	msvdsm all                   # tables and figures
//	msvdsm list                  # experiment, backend and scenario names
//
// Flags:
//
//	-scale f        workload scale factor (default 1.0 = paper scale;
//	                0.1 runs in seconds for a quick look)
//	-procs n        maximum processor count for figures (default 8)
//	-format f       output format: text, json or csv (default text).
//	                json/csv emit the structured result records behind
//	                the tables and figures.
//	-j n            grid worker pool width (default GOMAXPROCS): runs
//	                are independent engines, so tables, figures and
//	                grids execute up to n runs concurrently.  Output is
//	                byte-identical to -j 1.
//	-parsim         run each simulation on the deterministically
//	                parallel engine (sim.Options{Parallel}); modeled
//	                results are byte-identical to the serial engine.
//	-cpuprofile f   write a CPU profile of the whole invocation to f
//	                (inspect with 'go tool pprof')
//	-memprofile f   write an allocation profile to f at exit
//
// Grid flags (after the grid command):
//
//	-apps a,b,..      apps to run (default: all twelve)
//	-backends a,b,..  backends (default tmk,pvm; see 'msvdsm list')
//	-scenarios a,..   scenario sets: base, page, mtu, bw, lat, handler,
//	                colocated, placement, the fault axes loss, dup,
//	                reorder, partition, slow (seeded fault injection;
//	                see vnet), and bigp — the procs=16/64/256 scale-out
//	                family, which swaps in re-sized workloads and
//	                defaults -backends to tmk,tmk-sc,tmk-tree,pvm
//	-nprocs 2,4,8     processor counts the scenario sets expand at
//	                (default: each set's own counts — 8 for most,
//	                16,64,256 for bigp)
//
// Serve flags (after the serve command):
//
//	-addr a:p         listen address (default 127.0.0.1:8177)
//	-cache-dir d      persist cached records as <hash>.json files, so a
//	                restarted server stays warm (default: memory only)
//	-cache-entries n  in-memory cache capacity in records (default
//	                65536; 0 = unbounded)
//	-workers          accept a worker fleet: expose the /v1/dispatch
//	                lease API and farm cache-miss jobs to registered
//	                workers, falling back to local compute when none
//	                are live
//	-lease-ttl d      job lease duration before reassignment (10s)
//	-heartbeat d      worker heartbeat interval (2s; liveness is 3x)
//	-drain d          graceful-shutdown drain deadline (15s)
//
// Worker flags (after the worker command):
//
//	-coordinator url  coordinator base URL (required)
//	-name s           worker name in coordinator logs
//	-poll d           lease long-poll duration (2s)
//	-fault-*          deterministic fault injection (crash/stall/reject/
//	                slow on exact job ordinals or seeded rates); the
//	                reliability tests and the CI fleet smoke drive these
//
// The service answers /v1/grid with the same record JSON the grid
// command emits, memoized by a canonical content hash of each job spec;
// the global -scale, -j and -parsim flags set the server's workload
// scale, cold-path worker pool and engine mode.  See internal/serve for
// the API and cache-key documentation, and internal/dispatch for the
// lease protocol and its fault-tolerance machinery.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/harness"
	"repro/internal/serve"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper scale)")
	procs := flag.Int("procs", 8, "maximum processor count for figures")
	format := flag.String("format", "text", "output format: text, json or csv")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "grid worker pool width (1 = serial)")
	parsim := flag.Bool("parsim", false, "use the deterministically parallel engine per run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to `file`")
	memprofile := flag.String("memprofile", "", "write an allocation profile to `file` at exit")
	flag.Usage = usage
	flag.Parse()
	run := runOpts{workers: *workers, parsim: *parsim}
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(os.Stderr, "msvdsm: unknown format %q (have text, json, csv)\n", *format)
		os.Exit(2)
	}
	stopProfiles, perr := startProfiles(*cpuprofile, *memprofile)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "msvdsm:", perr)
		os.Exit(1)
	}
	apps := harness.Apps(*scale)
	cmd := strings.ToLower(flag.Arg(0))
	var err error
	switch cmd {
	case "table1":
		err = runTable1(apps, *format, run)
	case "table2":
		err = runTable2(apps, *format, run)
	case "fig", "figure":
		if flag.NArg() < 2 {
			fmt.Fprintln(os.Stderr, "msvdsm fig <name>; see 'msvdsm list'")
			stopProfiles()
			os.Exit(2)
		}
		err = runFigures(apps, []string{flag.Arg(1)}, *procs, *format, run)
	case "figures":
		err = runFigures(apps, nil, *procs, *format, run)
	case "grid":
		err = runGrid(*scale, flag.Args()[1:], *format, run)
	case "serve":
		err = runServe(flag.Args()[1:], *scale, run)
	case "worker":
		err = runWorker(flag.Args()[1:])
	case "ablate":
		var out string
		out, err = harness.Ablations(*scale)
		if err == nil {
			fmt.Println(out)
		}
	case "all":
		if *format != "text" {
			// One structured document, not three concatenated ones: the
			// figures grid (seq + both systems at 1..procs) is a superset
			// of the tables' records, so emit it once.
			err = runFigures(apps, nil, *procs, *format, run)
			break
		}
		if err = runTable1(apps, *format, run); err == nil {
			if err = runTable2(apps, *format, run); err == nil {
				err = runFigures(apps, nil, *procs, *format, run)
			}
		}
	case "list":
		fmt.Println("experiments:")
		for _, n := range harness.Names(apps) {
			fmt.Println("  " + n)
		}
		fmt.Println("backends:")
		for _, b := range harness.Backends() {
			fmt.Println("  " + b.Name())
		}
		fmt.Println("scenario sets:")
		for _, s := range harness.ScenarioSets() {
			fmt.Println("  " + s)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
		usage()
		stopProfiles()
		os.Exit(2)
	}
	stopProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "msvdsm:", err)
		os.Exit(1)
	}
}

// startProfiles turns on the requested runtime profiles and returns a
// stop function that flushes them.  os.Exit skips deferred calls, so
// every exit path after this point invokes the stop function explicitly
// before exiting — a truncated CPU profile is unreadable.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem == "" {
			return
		}
		f, err := os.Create(mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "msvdsm:", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle the live set so the profile reflects retained memory
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "msvdsm:", err)
		}
	}, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `msvdsm - PVM vs TreadMarks comparison (SC '95 reproduction)

usage: msvdsm [-scale f] [-procs n] [-format text|json|csv] <command>

commands:
  table1        sequential times of the applications (Table 1)
  table2        messages and data at 8 processors (Table 2)
  fig <name>    one speedup figure (Figures 1-12)
  figures       all twelve speedup figures
  grid          run a custom apps x backends x scenarios grid
                (-apps, -backends, -scenarios, -nprocs; see package doc)
  serve         HTTP/JSON experiment service with a content-addressed
                result cache and optional worker-fleet dispatch
                (-addr, -cache-dir, -cache-entries, -workers)
  worker        join a coordinator's worker fleet (-coordinator url)
  ablate        page-size / MTU ablations and primitive microbenchmarks
  all           tables and figures
  list          experiment, backend and scenario-set names
`)
	flag.PrintDefaults()
}

// runOpts carries the execution knobs every command applies: the grid
// worker pool width and the per-run engine choice.
type runOpts struct {
	workers int
	parsim  bool
}

// scenarios applies the engine choice to a scenario list.
func (o runOpts) scenarios(scs []core.Scenario) []core.Scenario {
	if o.parsim {
		for i := range scs {
			scs[i].Parallel = true
		}
	}
	return scs
}

// grid assembles a Grid with this invocation's worker pool.
func (o runOpts) grid(apps []core.App, backends []core.Backend, scs []core.Scenario) harness.Grid {
	return harness.Grid{Apps: apps, Backends: backends, Scenarios: o.scenarios(scs), Workers: o.workers}
}

// emit prints records in the requested structured format, or renders them
// with the given text renderer.
func emit(recs []harness.Record, format string, text func([]harness.Record) string) error {
	switch format {
	case "json":
		return harness.WriteJSON(os.Stdout, recs)
	case "csv":
		return harness.WriteCSV(os.Stdout, recs)
	default:
		fmt.Println(text(recs))
		return nil
	}
}

func runTable1(apps []core.App, format string, run runOpts) error {
	recs, err := run.grid(apps, []core.Backend{core.Seq}, nil).Run()
	if err != nil {
		return err
	}
	return emit(recs, format, harness.RenderTable1)
}

func runTable2(apps []core.App, format string, run runOpts) error {
	recs, err := run.grid(apps, []core.Backend{core.TMK, core.PVM}, harness.BaseScenarios(8)).Run()
	if err != nil {
		return err
	}
	return emit(recs, format, harness.RenderTable2)
}

func runFigures(apps []core.App, names []string, maxProcs int, format string, run runOpts) error {
	selected := apps
	if names != nil {
		selected = nil
		for _, name := range names {
			app := harness.Find(apps, name)
			if app == nil {
				return fmt.Errorf("unknown experiment %q (try 'msvdsm list')", name)
			}
			selected = append(selected, app)
		}
	}
	var procs []int
	for n := 1; n <= maxProcs; n++ {
		procs = append(procs, n)
	}
	recs, err := run.grid(selected, core.StandardBackends(), harness.BaseScenarios(procs...)).Run()
	if err != nil {
		return err
	}
	return emit(recs, format, func(rs []harness.Record) string {
		var parts []string
		for _, app := range selected {
			fig, err := harness.RenderFigure(rs, app.Name())
			if err != nil {
				parts = append(parts, fmt.Sprintf("%s: %v", app.Name(), err))
				continue
			}
			parts = append(parts, fig.Render())
		}
		return strings.Join(parts, "\n")
	})
}

// runGrid parses the grid command's own flags and runs the described
// cross product.  Selection resolution (names, defaults, bigp registry
// swap, validation errors) lives in harness.Selection, which the serve
// API shares — the two surfaces accept and reject identically.
func runGrid(scale float64, args []string, format string, run runOpts) error {
	fs := flag.NewFlagSet("grid", flag.ContinueOnError)
	appsFlag := fs.String("apps", "", "comma-separated app names (default: all)")
	backendsFlag := fs.String("backends", "", "comma-separated backend names (default tmk,pvm; bigp: tmk,tmk-sc,tmk-tree,pvm)")
	scenariosFlag := fs.String("scenarios", "base", "comma-separated scenario sets")
	nprocsFlag := fs.String("nprocs", "", "comma-separated processor counts (default: per scenario set)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sel := harness.Selection{
		Apps:      splitList(*appsFlag),
		Backends:  splitList(*backendsFlag),
		Scenarios: splitList(*scenariosFlag),
	}
	if *nprocsFlag != "" {
		for _, s := range strings.Split(*nprocsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -nprocs entry %q (want comma-separated positive counts, e.g. 2,4,8)", s)
			}
			sel.NProcs = append(sel.NProcs, n)
		}
	}

	grid, err := sel.Resolve(scale)
	if err != nil {
		return err
	}
	grid.Scenarios = run.scenarios(grid.Scenarios)
	grid.Workers = run.workers
	recs, err := grid.Run()
	if err != nil {
		return err
	}
	return emit(recs, format, renderGridTable)
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// runServe starts the experiment service: the serve API over this
// invocation's scale and worker pool, backed by a content-addressed
// record cache and, with -workers, fronting a worker fleet through the
// lease dispatcher.  See internal/serve and internal/dispatch.
//
// SIGINT/SIGTERM triggers a graceful shutdown: the dispatcher stops
// leasing and waits for in-flight leases, then http.Server.Shutdown
// drains in-flight requests up to the -drain deadline.  A clean drain
// exits 0; blowing the deadline forces connections closed and exits
// nonzero.  A second signal forces immediate process death.
func runServe(args []string, scale float64, run runOpts) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8177", "listen address")
	cacheDir := fs.String("cache-dir", "", "persist cached records as <hash>.json files in this directory")
	cacheEntries := fs.Int("cache-entries", 65536, "in-memory cache capacity in records (0 = unbounded)")
	workersAPI := fs.Bool("workers", false, "accept a worker fleet: expose /v1/dispatch and lease cache-miss jobs to registered workers")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "worker job lease duration before reassignment")
	heartbeat := fs.Duration("heartbeat", 2*time.Second, "worker heartbeat interval (liveness window is 3x)")
	drainTimeout := fs.Duration("drain", 15*time.Second, "graceful shutdown drain deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := serve.NewStore(*cacheEntries, *cacheDir)
	if err != nil {
		return err
	}
	var dsp *dispatch.Dispatcher
	if *workersAPI {
		dsp = dispatch.New(dispatch.Config{
			LeaseTTL:  *leaseTTL,
			Heartbeat: *heartbeat,
			Logf:      log.Printf,
		})
	}
	srv := serve.New(serve.Options{
		Scale:      scale,
		Workers:    run.workers,
		Parallel:   run.parsim,
		Store:      store,
		Dispatcher: dsp,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler: srv.Handler(),
		// A client that never finishes its headers, or an idle
		// keep-alive connection, must not pin a goroutine forever.
		// There is deliberately no overall write timeout: cold grid
		// sweeps stream for as long as the jobs take.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fleet := ""
	if dsp != nil {
		fleet = fmt.Sprintf(", worker fleet on /v1/dispatch (lease ttl %v)", *leaseTTL)
	}
	fmt.Printf("msvdsm serve: engine %s, scale %g, %d workers%s; listening on http://%s\n",
		harness.EngineVersion, scale, run.workers, fleet, ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		if dsp != nil {
			dsp.Close()
		}
		return err
	case <-sigCtx.Done():
	}
	stop() // restore default handling: a second signal kills immediately
	log.Printf("msvdsm serve: signal received; draining (deadline %v)", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if dsp != nil {
		// Stop leasing first so queued jobs bounce back to local
		// compute, then let in-flight leases report their results
		// before the listener goes away.
		dsp.StartDrain()
		if err := dsp.Quiesce(ctx); err != nil {
			log.Printf("msvdsm serve: %d worker leases still in flight at drain deadline", dsp.Stats().LeasesOutstanding)
		}
	}
	shutdownErr := httpSrv.Shutdown(ctx)
	if dsp != nil {
		dsp.Close()
	}
	// The disk cache writes synchronously on every Put, so a clean
	// Shutdown (all in-flight computes finished) implies the cache is
	// flushed; nothing more to persist here.
	if shutdownErr != nil {
		httpSrv.Close()
		return fmt.Errorf("forced shutdown: in-flight requests outlived the %v drain deadline: %w", *drainTimeout, shutdownErr)
	}
	log.Printf("msvdsm serve: clean shutdown")
	return nil
}

// runWorker joins a coordinator's fleet: register, long-poll for job
// leases, run each leased job through the local registries (the spec
// hash check refuses version-skewed work), report records back.
// SIGINT/SIGTERM drains gracefully — announce drain, finish the
// in-flight job, deregister, exit 0; a second signal kills immediately.
// The -fault-* flags are the deterministic fault-injection harness the
// reliability tests and CI drive.
func runWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL (required), e.g. http://127.0.0.1:8177")
	name := fs.String("name", "", "worker name in coordinator logs (default host:pid)")
	poll := fs.Duration("poll", 2*time.Second, "lease long-poll duration")
	faultSeed := fs.Uint64("fault-seed", 0, "seed for the fault-injection rate draws")
	crashOn := fs.Int("fault-crash-on", 0, "crash (no completion, heartbeats stop) on the nth leased job")
	stallOn := fs.Int("fault-stall-on", 0, "stall (hold the lease forever, keep heartbeating) on the nth leased job")
	rejectOn := fs.Int("fault-reject-on", 0, "reject the nth leased job with an injected error")
	rejectRate := fs.Float64("fault-reject-rate", 0, "seeded per-job rejection probability")
	slowRate := fs.Float64("fault-slow-rate", 0, "seeded per-job straggler probability")
	slowDelay := fs.Duration("fault-slow-delay", 0, "injected straggler delay (default 2x lease ttl)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator == "" {
		return fmt.Errorf("worker: -coordinator is required")
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	w := dispatch.NewWorker(dispatch.WorkerOptions{
		Coordinator: strings.TrimRight(*coordinator, "/"),
		Name:        *name,
		PollWait:    *poll,
		Faults: dispatch.FaultConfig{
			Seed:        *faultSeed,
			CrashOnJob:  *crashOn,
			StallOnJob:  *stallOn,
			RejectOnJob: *rejectOn,
			RejectRate:  *rejectRate,
			SlowRate:    *slowRate,
			SlowDelay:   *slowDelay,
		},
		Logf: log.Printf,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // second signal: default handling, immediate death
	}()
	log.Printf("msvdsm worker %s: joining %s (engine %s)", *name, *coordinator, harness.EngineVersion)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	// A drain signal that lands while the worker is between leases (or
	// mid-retry against a gone coordinator) is a clean exit, not a fault.
	return nil
}

// renderGridTable is the text view of raw grid records.
func renderGridTable(recs []harness.Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %-12s %6s %14s %10s %12s\n",
		"app", "backend", "scenario", "procs", "time", "messages", "bytes")
	for _, r := range recs {
		fmt.Fprintf(&b, "%-12s %-8s %-12s %6d %14s %10d %12d\n",
			r.App, r.Backend, r.Scenario, r.Procs, r.Time().String(), r.Messages, r.Bytes)
	}
	return strings.TrimRight(b.String(), "\n")
}
